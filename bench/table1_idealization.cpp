/**
 * @file
 * Regenerates Table I: "CPI components by idealizing structures".
 *
 * mcf on KNL: the 1-cycle-ALU improvement is mostly *hidden* under Dcache
 * misses — idealizing both improves CPI by more than the sum of the
 * individual improvements (super-additive).
 * mcf on BDW: branch misprediction and Dcache penalties *overlap* —
 * idealizing both improves CPI by less than the sum (sub-additive).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

int
main()
{
    using namespace stackscope;

    bench::banner(
        "Table I - CPI components by idealizing structures (mcf)",
        "no single additive CPI stack exists: penalties hide (KNL) or "
        "overlap (BDW)");

    const bench::RunLengths run = bench::benchRun();
    trace::SyntheticParams params = trace::findWorkload("mcf").params;
    params.num_instrs = run.total;
    trace::SyntheticGenerator gen(params);
    sim::SimOptions options;
    options.warmup_instrs = run.warmup;

    struct Row
    {
        const char *label;
        sim::Idealization ideal;
        double paper_cpi;
        double paper_diff;
    };

    const struct
    {
        const char *machine;
        const char *header;
        std::vector<Row> rows;
    } tables[] = {
        {"knl", "mcf on KNL",
         {
             {"All real", {}, 1.41, 0.0},
             {"1-cycle ALU", {.single_cycle_alu = true}, 1.38, 0.02},
             {"perfect Dcache", {.perfect_dcache = true}, 1.11, 0.30},
             {"perf. Dcache & 1-cyc. ALU",
              sim::Idealization{.perfect_dcache = true,
                                .single_cycle_alu = true},
              1.05, 0.36},
         }},
        {"bdw", "mcf on BDW",
         {
             {"All real", {}, 0.72, 0.0},
             {"perfect bpred", {.perfect_bpred = true}, 0.39, 0.33},
             {"perfect Dcache", {.perfect_dcache = true}, 0.43, 0.29},
             {"perfect bpred & Dcache",
              sim::Idealization{.perfect_dcache = true,
                                .perfect_bpred = true},
              0.25, 0.47},
         }},
    };

    for (const auto &table : tables) {
        const sim::MachineConfig machine = sim::machineByName(table.machine);
        std::printf("%s\n", table.header);
        std::printf("  %-28s %9s %9s | %9s %9s\n", "Config", "CPI",
                    "Diff.CPI", "paperCPI", "paperDiff");

        double real_cpi = 0.0;
        std::vector<double> diffs;
        for (const Row &row : table.rows) {
            const sim::SimResult r = sim::simulate(
                sim::applyIdealization(machine, row.ideal), gen, options);
            if (!row.ideal.any())
                real_cpi = r.cpi;
            const double diff = real_cpi - r.cpi;
            diffs.push_back(diff);
            std::printf("  %-28s %9.3f %9.3f | %9.2f %9.2f\n", row.label,
                        r.cpi, diff, row.paper_cpi, row.paper_diff);
        }

        // The headline interaction: combined vs sum of individual diffs.
        const double sum_individual = diffs[1] + diffs[2];
        const double combined = diffs[3];
        std::printf("  -> individual diffs sum to %.3f; combined diff is "
                    "%.3f (%s, paper reports %s)\n\n",
                    sum_individual, combined,
                    combined > sum_individual + 1e-3
                        ? "SUPER-additive: stalls were hidden"
                        : (combined < sum_individual - 1e-3
                               ? "SUB-additive: stalls overlap"
                               : "additive"),
                    table.rows[3].paper_diff >
                            table.rows[1].paper_diff +
                                table.rows[2].paper_diff
                        ? "super-additive"
                        : "sub-additive");
    }
    return 0;
}
