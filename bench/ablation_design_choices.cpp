/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 * 1. Width normalization (§III-A): accounting every stage with W = the
 *    minimum stage width (plus carry-over) keeps the base component equal
 *    across the three stacks; accounting with native stage widths breaks
 *    comparability (the wider issue stage reports a smaller base and
 *    invents stall cycles that merely reflect the width difference).
 * 2. Wrong-path handling (§III-B): oracle vs the hardware-simple rule vs
 *    speculative counters — how close the two implementable schemes come
 *    to the oracle attribution.
 * 3. The prefetcher/MSHR interaction behind the bwaves case study: with
 *    the prefetcher ablated away, the Icache component becomes an honest
 *    predictor again, at the cost of a much higher total CPI.
 */

#include <cstdio>
#include <vector>

#include "analysis/render.hpp"
#include "bench_util.hpp"
#include "core/ooo_core.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

std::unique_ptr<trace::TraceSource>
workloadTrace(const char *name, std::uint64_t total)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = total;
    return std::make_unique<trace::SyntheticGenerator>(p);
}

void
widthNormalizationAblation(std::uint64_t total, std::uint64_t warmup)
{
    std::printf("--- Ablation 1: width normalization (gcc on BDW) ---\n");
    auto trace = workloadTrace("gcc", total);

    for (const bool native : {false, true}) {
        sim::MachineConfig machine = sim::bdwConfig();
        machine.core.accounting_native_widths = native;
        sim::SimOptions so;
        so.warmup_instrs = warmup;
        const sim::SimResult r = sim::simulate(machine, *trace, so);
        std::printf("%s:\n",
                    native ? "native stage widths (no normalization)"
                           : "normalized W = min stage width (paper)");
        std::printf("%s",
                    analysis::renderCpiStacks(
                        {r.cpiStack(Stage::kDispatch),
                         r.cpiStack(Stage::kIssue),
                         r.cpiStack(Stage::kCommit)},
                        {"dispatch", "issue", "commit"}, "")
                        .c_str());
        const double bd = r.cpiStack(Stage::kDispatch)[CpiComponent::kBase];
        const double bi = r.cpiStack(Stage::kIssue)[CpiComponent::kBase];
        const double bc = r.cpiStack(Stage::kCommit)[CpiComponent::kBase];
        std::printf("  base components equal: %s (%.3f / %.3f / %.3f)\n\n",
                    std::abs(bd - bc) < 0.01 && std::abs(bi - bc) < 0.01
                        ? "YES"
                        : "NO",
                    bd, bi, bc);
    }
}

void
speculationAblation(std::uint64_t total, std::uint64_t warmup)
{
    std::printf("--- Ablation 2: wrong-path handling (§III-B) ---\n");
    for (const char *name : {"deepsjeng", "mcf"}) {
        auto trace = workloadTrace(name, total);
        std::vector<stacks::CpiStack> stacks_out;
        std::vector<std::string> labels;
        for (const auto &[label, mode] :
             {std::pair{"oracle", stacks::SpeculationMode::kOracle},
              std::pair{"simple", stacks::SpeculationMode::kSimple},
              std::pair{"counters",
                        stacks::SpeculationMode::kSpecCounters}}) {
            sim::SimOptions so;
            so.warmup_instrs = warmup;
            so.spec_mode = mode;
            const sim::SimResult r =
                sim::simulate(sim::bdwConfig(), *trace, so);
            stacks_out.push_back(r.cpiStack(Stage::kDispatch));
            labels.emplace_back(label);
        }
        std::printf("%s",
                    analysis::renderCpiStacks(
                        stacks_out, labels,
                        std::string(name) + " dispatch stack on BDW:")
                        .c_str());
        const double oracle_bpred = stacks_out[0][CpiComponent::kBpred];
        std::printf("  bpred error vs oracle: simple %+.3f, "
                    "spec-counters %+.3f\n\n",
                    stacks_out[1][CpiComponent::kBpred] - oracle_bpred,
                    stacks_out[2][CpiComponent::kBpred] - oracle_bpred);
    }
}

void
prefetcherAblation(std::uint64_t total, std::uint64_t warmup)
{
    std::printf("--- Ablation 3: prefetcher behind the bwaves case "
                "(Fig. 3(c)) ---\n");
    auto trace = workloadTrace("bwaves", total);
    for (const bool prefetch : {true, false}) {
        sim::MachineConfig machine = sim::bdwConfig();
        machine.core.mem.prefetch.enable = prefetch;
        sim::SimOptions so;
        so.warmup_instrs = warmup;
        const sim::SimResult real = sim::simulate(machine, *trace, so);
        sim::Idealization ideal;
        ideal.perfect_icache = true;
        const double actual =
            sim::cpiReduction(machine, *trace, ideal, so);
        const double icache_commit =
            real.cpiStack(Stage::kCommit)[CpiComponent::kIcache];
        std::printf("  prefetcher %s: CPI %.3f, commit Icache comp %.3f, "
                    "actual perfect-I$ gain %.3f\n",
                    prefetch ? "ON " : "OFF", real.cpi, icache_commit,
                    actual);
    }
    std::printf("  (with the prefetcher on, prefetch traffic occupies the "
                "L2 MSHRs;\n   removing Icache misses mostly shifts "
                "queueing onto data misses)\n");
}

}  // namespace

int
main()
{
    bench::banner("Ablations - design choices behind the accounting "
                  "algorithms",
                  "width normalization keeps base components comparable; "
                  "speculative counters track the oracle closely; the "
                  "simple rule is coarser; prefetch/MSHR pressure explains "
                  "the bwaves second-order effect");
    const bench::RunLengths run = bench::benchRun(150'000);
    widthNormalizationAblation(run.total, run.warmup);
    speculationAblation(run.total, run.warmup);
    prefetcherAblation(run.total, run.warmup);
    return 0;
}
