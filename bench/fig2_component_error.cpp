/**
 * @file
 * Regenerates Figure 2: distributions of the per-component error of each
 * single-stage CPI stack versus the multi-stage representation, on BDW
 * and KNL.
 *
 * Methodology (§V-A): for every workload whose component exceeds 10% of
 * CPI in any stack, idealize the corresponding structure, measure the
 * actual CPI reduction, and compare against the predicted component. The
 * multi-stage "error" is zero when the actual reduction falls within the
 * [min, max] across the three stacks; otherwise it is the error of the
 * closest stack.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/boxplot.hpp"
#include "bench_util.hpp"
#include "runner/batch_runner.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

struct Knob
{
    const char *name;
    CpiComponent comp;
    sim::Idealization ideal;
};

const Knob kKnobs[] = {
    {"Icache", CpiComponent::kIcache, {.perfect_icache = true}},
    {"Dcache", CpiComponent::kDcache, {.perfect_dcache = true}},
    {"bpred", CpiComponent::kBpred, {.perfect_bpred = true}},
    {"ALU", CpiComponent::kAluLat, {.single_cycle_alu = true}},
};

}  // namespace

int
main()
{
    bench::banner(
        "Figure 2 - error of single-stage vs multi-stage CPI stacks "
        "(BDW and KNL)",
        "the multi-stage representation has the smallest error: most "
        "actual CPI reductions fall within the dispatch/issue/commit "
        "component bounds");

    const bench::RunLengths run = bench::benchRun();
    sim::SimOptions options;
    options.warmup_instrs = run.warmup;
    runner::BatchRunner batch(bench::benchThreads());

    for (const char *machine_name : {"bdw", "knl"}) {
        const sim::MachineConfig machine = sim::machineByName(machine_name);
        std::printf("--- %s ---\n", machine.name.c_str());

        // errors[knob][stage or "multi"] -> samples over workloads
        std::map<std::string, std::map<std::string, std::vector<double>>>
            errors;
        int filtered_zeros = 0;

        const std::vector<trace::Workload> &workloads =
            trace::allSpecWorkloads();
        auto makeTrace = [&](const trace::Workload &w) {
            trace::SyntheticParams params = w.params;
            params.num_instrs = run.total;
            return trace::SyntheticGenerator(params);
        };

        // Phase 1: every workload's real configuration, one batch.
        std::vector<runner::SimJob> real_jobs;
        for (const trace::Workload &w : workloads) {
            real_jobs.push_back(
                runner::makeJob(w.name, machine, makeTrace(w), options));
        }
        const runner::BatchResult reals = batch.run(std::move(real_jobs));

        // Phase 2: one idealized run per (workload, knob) pair whose
        // component is at least 10% of CPI in some stack (§V-A); the
        // below-threshold 'zeros' are filtered as in the paper.
        struct Pair
        {
            std::size_t workload;
            const Knob *knob;
        };
        std::vector<Pair> pairs;
        std::vector<runner::SimJob> ideal_jobs;
        std::vector<analysis::MultiStageStacks> stacks;
        stacks.reserve(workloads.size());
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            const sim::SimResult &real = reals.outcomes[wi].single;
            stacks.push_back(analysis::multiStageOf(real));
            for (const Knob &k : kKnobs) {
                const analysis::ComponentBounds b =
                    analysis::componentBounds(stacks[wi], k.comp);
                if (b.hi < 0.10 * real.cpi) {
                    ++filtered_zeros;
                    continue;
                }
                pairs.push_back({wi, &k});
                ideal_jobs.push_back(runner::makeJob(
                    workloads[wi].name + "/" + k.name,
                    sim::applyIdealization(machine, k.ideal),
                    makeTrace(workloads[wi]), options));
            }
        }
        const runner::BatchResult ideals = batch.run(std::move(ideal_jobs));

        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            const Knob &k = *pairs[pi].knob;
            const analysis::MultiStageStacks &ms = stacks[pairs[pi].workload];
            const double actual =
                reals.outcomes[pairs[pi].workload].single.cpi -
                ideals.outcomes[pi].single.cpi;
            errors[k.name]["dispatch"].push_back(
                analysis::singleStackError(ms.dispatch, k.comp, actual));
            errors[k.name]["issue"].push_back(
                analysis::singleStackError(ms.issue, k.comp, actual));
            errors[k.name]["commit"].push_back(
                analysis::singleStackError(ms.commit, k.comp, actual));
            errors[k.name]["multi"].push_back(
                analysis::multiStageError(ms, k.comp, actual));
        }

        std::printf("(filtered %d near-zero component/workload pairs, as in "
                    "the paper)\n\n",
                    filtered_zeros);

        for (const Knob &k : kKnobs) {
            auto it = errors.find(k.name);
            if (it == errors.end() || it->second.begin()->second.empty()) {
                std::printf("%s: no workload exceeds the 10%% threshold\n\n",
                            k.name);
                continue;
            }
            std::vector<analysis::BoxPlotEntry> boxes;
            for (const char *stage :
                 {"dispatch", "issue", "commit", "multi"}) {
                boxes.push_back(
                    analysis::makeBox(stage, it->second[stage]));
            }
            std::printf("%s",
                        analysis::renderBoxPlot(
                            boxes, std::string(k.name) +
                                       " component error (CPI units), " +
                                       machine.name)
                            .c_str());
            // The paper's headline: the multi-stage box is the tightest.
            const auto multi = fiveNumberSummary(it->second["multi"]);
            const auto disp = fiveNumberSummary(it->second["dispatch"]);
            const auto comm = fiveNumberSummary(it->second["commit"]);
            const double multi_iqr = multi.q3 - multi.q1;
            const double disp_iqr = disp.q3 - disp.q1;
            const double comm_iqr = comm.q3 - comm.q1;
            std::printf("  multi-stage IQR %.3f vs dispatch %.3f / commit "
                        "%.3f -> %s\n\n",
                        multi_iqr, disp_iqr, comm_iqr,
                        multi_iqr <= disp_iqr + 1e-9 &&
                                multi_iqr <= comm_iqr + 1e-9
                            ? "multi-stage tightest (matches paper)"
                            : "check: single stack tighter here");
        }
    }
    return 0;
}
