/**
 * @file
 * Shared helpers for the experiment-regeneration binaries: run length
 * control, banner printing and component-group mapping used by the
 * FLOPS-vs-CPI comparisons.
 */

#ifndef STACKSCOPE_BENCH_BENCH_UTIL_HPP
#define STACKSCOPE_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <string>

#include "stacks/stack.hpp"

namespace stackscope::bench {

/**
 * Instructions per simulation. Default @p dflt; override with the
 * STACKSCOPE_BENCH_INSTRS environment variable (e.g. 1000000 to match the
 * paper's 1B-instruction windows more closely at higher runtime).
 */
std::uint64_t benchInstrs(std::uint64_t dflt = 250'000);

/** Trace length plus warmup window for one experiment run. */
struct RunLengths
{
    std::uint64_t total;   ///< trace length to generate
    std::uint64_t warmup;  ///< instructions before measurement starts
};

/**
 * Measured-window sizing: `measured` instructions preceded by a
 * half-length warmup (the paper fast-forwards before its 1B-instruction
 * measurement windows, §IV).
 */
RunLengths benchRun(std::uint64_t dflt_measured = 250'000);

/**
 * Batch-runner worker threads for the experiment drivers. Default 0
 * (= all hardware threads); override with STACKSCOPE_BENCH_THREADS, e.g.
 * 1 to force the serial schedule when comparing outputs or timing.
 */
unsigned benchThreads();

/** Print the experiment banner with the paper reference. */
void banner(const std::string &experiment_id, const std::string &claim);

/**
 * The Figure 4/5 component correspondence between CPI/IPC stacks and
 * FLOPS stacks: base, frontend, memory, depend, rest.
 */
struct GroupedStack
{
    double base = 0.0;
    double frontend = 0.0;
    double memory = 0.0;
    double depend = 0.0;
    double rest = 0.0;

    GroupedStack &
    operator+=(const GroupedStack &o)
    {
        base += o.base;
        frontend += o.frontend;
        memory += o.memory;
        depend += o.depend;
        rest += o.rest;
        return *this;
    }

    GroupedStack
    scaled(double f) const
    {
        return {base * f, frontend * f, memory * f, depend * f, rest * f};
    }

    GroupedStack
    operator-(const GroupedStack &o) const
    {
        return {base - o.base, frontend - o.frontend, memory - o.memory,
                depend - o.depend, rest - o.rest};
    }
};

/** Group a normalized CPI stack into the Fig. 4 categories. */
GroupedStack groupCpi(const stacks::CpiStack &normalized);

/** Group a normalized FLOPS stack into the Fig. 4 categories. */
GroupedStack groupFlops(const stacks::FlopsStack &normalized);

}  // namespace stackscope::bench

#endif  // STACKSCOPE_BENCH_BENCH_UTIL_HPP
