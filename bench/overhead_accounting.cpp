/**
 * @file
 * Reproduces the §IV overhead claim: adding multi-stage CPI stack and
 * FLOPS stack accounting to the simulator costs ~nothing (the paper
 * reports <1% slowdown over Sniper, which already measured dispatch
 * stacks) — and extends it to the host-side telemetry added on top: the
 * metrics registry and disabled-level logging must stay under 2% vs a
 * telemetry-free loop.
 *
 * Two outputs:
 *  - the usual google-benchmark table (all BM_* variants), and
 *  - a machine-readable BENCH_overhead.json (path overridable via
 *    STACKSCOPE_BENCH_JSON) from a self-timed baseline-vs-telemetry
 *    comparison: per-variant median and stddev of ns per simulated
 *    cycle, the derived telemetry overhead percentage, and a snapshot
 *    of the metrics the instrumented loop produced. CI archives it and
 *    the overhead figure is the one docs/observability.md quotes.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/stats_math.hpp"
#include "core/ooo_core.hpp"
#include "obs/interval.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;

constexpr std::uint64_t kInstrs = 50'000;
constexpr int kRepetitions = 9;  // odd, so the median is one sample

trace::SyntheticParams
workloadParams()
{
    trace::SyntheticParams p = trace::findWorkload("gcc").params;
    p.num_instrs = kInstrs;
    return p;
}

core::OooCore
makeCore(bool accounting, stacks::SpeculationMode mode)
{
    core::CoreParams params = sim::bdwConfig().core;
    params.accounting_enabled = accounting;
    params.spec_mode = mode;
    return core::OooCore(
        params, std::make_unique<trace::SyntheticGenerator>(workloadParams()));
}

// ---------------------------------------------------------------------
// google-benchmark variants (human-readable table)

void
runOnce(benchmark::State &state, bool accounting,
        stacks::SpeculationMode mode)
{
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        core::OooCore core = makeCore(accounting, mode);
        core.run(0);
        benchmark::DoNotOptimize(core.cycles());
        instrs += core.stats().instrs_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}

void
BM_AccountingOff(benchmark::State &state)
{
    runOnce(state, false, stacks::SpeculationMode::kOracle);
}

void
BM_AccountingOn(benchmark::State &state)
{
    runOnce(state, true, stacks::SpeculationMode::kOracle);
}

void
BM_AccountingSpecCounters(benchmark::State &state)
{
    runOnce(state, true, stacks::SpeculationMode::kSpecCounters);
}

void
BM_AccountingWithTelemetry(benchmark::State &state)
{
    // Accounting plus the host-telemetry hot path: one counter increment
    // and one disabled log::debug per cycle, a histogram record and a
    // gauge store every 1024 cycles. The delta vs BM_AccountingOn is the
    // telemetry overhead the <2% budget covers.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter cycles_total = reg.counter("bench.cycles_total");
    obs::Gauge progress = reg.gauge("bench.progress_cycles");
    obs::Histogram blocks = reg.histogram(
        "bench.block_kilocycles", {1.0, 4.0, 16.0, 64.0, 256.0});
    log::setThreshold(log::Level::kError);  // debug records are disabled

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        core::OooCore core =
            makeCore(true, stacks::SpeculationMode::kOracle);
        while (!core.done()) {
            core.cycle();
            cycles_total.inc();
            log::debug("bench", "tick");
            if ((core.cycles() & 1023) == 0) {
                progress.set(static_cast<double>(core.cycles()));
                blocks.record(static_cast<double>(core.cycles()) / 1000.0);
            }
        }
        benchmark::DoNotOptimize(core.cycles());
        instrs += core.stats().instrs_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}

void
BM_AccountingWithObservability(benchmark::State &state)
{
    // Full observability on top of accounting: interval snapshots every
    // 1000 cycles plus per-cycle pipeline event tracing. The delta vs
    // BM_AccountingOn is the observability overhead quoted in
    // docs/observability.md.
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        core::OooCore core =
            makeCore(true, stacks::SpeculationMode::kOracle);
        obs::IntervalAccountant iacct(1000);
        obs::PipelineTracer tracer;
        while (!core.done()) {
            core.cycle();
            tracer.observe(core.cycles() - 1, core.cycleState(),
                           core.stats().squashed_uops);
            if (iacct.due(core.cycles()))
                iacct.snapshot(core);
        }
        iacct.finish(core);
        tracer.finish(core.cycles());
        benchmark::DoNotOptimize(iacct.take().samples.size());
        benchmark::DoNotOptimize(tracer.take().events.size());
        instrs += core.stats().instrs_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}

void
BM_AccountantTickOnly(benchmark::State &state)
{
    // Isolate the marginal cost of one accountant tick.
    stacks::CpiAccountant acct({stacks::Stage::kDispatch, 4,
                                stacks::SpeculationMode::kOracle});
    stacks::CycleState s;
    s.n_dispatch = 3;
    s.fe_has_correct = true;
    s.fe_has_any = true;
    for (auto _ : state) {
        acct.tick(s);
        benchmark::DoNotOptimize(&acct);
    }
}

BENCHMARK(BM_AccountingOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingSpecCounters)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingWithTelemetry)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingWithObservability)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountantTickOnly);

// ---------------------------------------------------------------------
// Self-timed comparison feeding BENCH_overhead.json

enum class Variant
{
    kAccountingOff,
    kBaseline,    // accounting on, no telemetry in the loop
    kTelemetry,   // accounting on + metrics + disabled logging
};

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::kAccountingOff: return "accounting_off";
      case Variant::kBaseline: return "accounting_on";
      default: return "accounting_on_telemetry";
    }
}

/** One run; returns ns per simulated cycle. */
double
timedRun(Variant variant, std::uint64_t &cycles_out)
{
    core::OooCore core =
        makeCore(variant != Variant::kAccountingOff,
                 stacks::SpeculationMode::kOracle);

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter cycles_total = reg.counter("bench.cycles_total");
    obs::Gauge progress = reg.gauge("bench.progress_cycles");
    obs::Histogram blocks = reg.histogram(
        "bench.block_kilocycles", {1.0, 4.0, 16.0, 64.0, 256.0});

    const auto start = std::chrono::steady_clock::now();
    if (variant == Variant::kTelemetry) {
        while (!core.done()) {
            core.cycle();
            cycles_total.inc();
            log::debug("bench", "tick");
            if ((core.cycles() & 1023) == 0) {
                progress.set(static_cast<double>(core.cycles()));
                blocks.record(static_cast<double>(core.cycles()) / 1000.0);
            }
        }
    } else {
        while (!core.done())
            core.cycle();
    }
    const auto stop = std::chrono::steady_clock::now();

    cycles_out = core.cycles();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return cycles_out > 0 ? ns / static_cast<double>(cycles_out) : 0.0;
}

struct VariantStats
{
    Variant variant;
    std::vector<double> ns_per_cycle;
    std::uint64_t cycles = 0;
};

void
writeMetricsSnapshot(obs::JsonWriter &w, const obs::MetricsSnapshot &snap)
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const obs::CounterValue &c : snap.counters)
        w.key(c.name).value(c.value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const obs::GaugeValue &g : snap.gauges)
        w.key(g.name).value(g.value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const obs::HistogramValue &h : snap.histograms) {
        w.key(h.name).beginObject();
        w.key("bounds").beginArray();
        for (const double b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("counts").beginArray();
        for (const std::uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.key("total").value(h.total);
        w.key("sum").value(h.sum);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

int
measureOverheadAndWriteJson()
{
    log::setThreshold(log::Level::kError);

    std::vector<VariantStats> stats;
    for (const Variant v : {Variant::kAccountingOff, Variant::kBaseline,
                            Variant::kTelemetry}) {
        VariantStats s;
        s.variant = v;
        timedRun(v, s.cycles);  // warmup, not recorded
        stats.push_back(std::move(s));
    }
    // Interleave repetitions round-robin so slow drift (thermals, other
    // tenants) hits every variant equally instead of biasing the last.
    for (int rep = 0; rep < kRepetitions; ++rep) {
        for (VariantStats &s : stats)
            s.ns_per_cycle.push_back(timedRun(s.variant, s.cycles));
    }

    const auto median = [](const std::vector<double> &xs) {
        return percentile(xs, 0.5);
    };
    // The overhead figure uses the per-variant *minimum*: scheduler and
    // cache noise only ever add time, so min is the noise-robust
    // estimator of the true cost (medians swing several percent on a
    // busy host; the medians and raw samples are still in the JSON).
    const auto minimum = [](const std::vector<double> &xs) {
        return *std::min_element(xs.begin(), xs.end());
    };
    const double base = minimum(stats[1].ns_per_cycle);
    const double tele = minimum(stats[2].ns_per_cycle);
    const double overhead_pct =
        base > 0.0 ? (tele - base) / base * 100.0 : 0.0;

    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("stackscope-bench");
    w.key("version").value(1);
    w.key("benchmark").value("overhead_accounting");
    w.key("workload").value("gcc");
    w.key("instrs").value(kInstrs);
    w.key("repetitions").value(kRepetitions);
    w.key("variants").beginArray();
    for (const VariantStats &s : stats) {
        w.beginObject();
        w.key("name").value(variantName(s.variant));
        w.key("min_ns_per_cycle").value(minimum(s.ns_per_cycle));
        w.key("median_ns_per_cycle").value(median(s.ns_per_cycle));
        w.key("stddev_ns_per_cycle").value(stddev(s.ns_per_cycle));
        w.key("cycles").value(s.cycles);
        w.key("samples_ns_per_cycle").beginArray();
        for (const double x : s.ns_per_cycle)
            w.value(x);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("telemetry_overhead_pct").value(overhead_pct);
    w.key("host_metrics");
    writeMetricsSnapshot(w, obs::MetricsRegistry::global().snapshot());
    w.endObject();

    const char *env = std::getenv("STACKSCOPE_BENCH_JSON");
    const std::string path = env != nullptr ? env : "BENCH_overhead.json";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "overhead_accounting: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);

    std::printf(
        "telemetry overhead: %.2f%% (baseline %.2f ns/cycle, "
        "telemetry %.2f ns/cycle, %d reps) -> %s\n",
        overhead_pct, base, tele, kRepetitions, path.c_str());
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const int rc = measureOverheadAndWriteJson();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return rc;
}
