/**
 * @file
 * Reproduces the §IV overhead claim: adding multi-stage CPI stack and
 * FLOPS stack accounting to the simulator costs ~nothing (the paper
 * reports <1% slowdown over Sniper, which already measured dispatch
 * stacks).
 *
 * google-benchmark binary: compares full simulation runtime with
 * accounting disabled, enabled (all four accountants) and enabled with
 * speculative counters.
 */

#include <benchmark/benchmark.h>

#include "core/ooo_core.hpp"
#include "obs/interval.hpp"
#include "obs/trace_events.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;

trace::SyntheticParams
workloadParams()
{
    trace::SyntheticParams p = trace::findWorkload("gcc").params;
    p.num_instrs = 50'000;
    return p;
}

void
runOnce(benchmark::State &state, bool accounting,
        stacks::SpeculationMode mode)
{
    const trace::SyntheticParams wp = workloadParams();
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        core::CoreParams params = sim::bdwConfig().core;
        params.accounting_enabled = accounting;
        params.spec_mode = mode;
        core::OooCore core(params,
                           std::make_unique<trace::SyntheticGenerator>(wp));
        core.run(0);
        benchmark::DoNotOptimize(core.cycles());
        instrs += core.stats().instrs_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}

void
BM_AccountingOff(benchmark::State &state)
{
    runOnce(state, false, stacks::SpeculationMode::kOracle);
}

void
BM_AccountingOn(benchmark::State &state)
{
    runOnce(state, true, stacks::SpeculationMode::kOracle);
}

void
BM_AccountingSpecCounters(benchmark::State &state)
{
    runOnce(state, true, stacks::SpeculationMode::kSpecCounters);
}

void
BM_AccountingWithObservability(benchmark::State &state)
{
    // Full observability on top of accounting: interval snapshots every
    // 1000 cycles plus per-cycle pipeline event tracing. The delta vs
    // BM_AccountingOn is the observability overhead quoted in
    // docs/observability.md.
    const trace::SyntheticParams wp = workloadParams();
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        core::CoreParams params = sim::bdwConfig().core;
        params.accounting_enabled = true;
        params.spec_mode = stacks::SpeculationMode::kOracle;
        core::OooCore core(params,
                           std::make_unique<trace::SyntheticGenerator>(wp));
        obs::IntervalAccountant iacct(1000);
        obs::PipelineTracer tracer;
        while (!core.done()) {
            core.cycle();
            tracer.observe(core.cycles() - 1, core.cycleState(),
                           core.stats().squashed_uops);
            if (iacct.due(core.cycles()))
                iacct.snapshot(core);
        }
        iacct.finish(core);
        tracer.finish(core.cycles());
        benchmark::DoNotOptimize(iacct.take().samples.size());
        benchmark::DoNotOptimize(tracer.take().events.size());
        instrs += core.stats().instrs_committed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate,
        benchmark::Counter::kIs1000);
}

void
BM_AccountantTickOnly(benchmark::State &state)
{
    // Isolate the marginal cost of one accountant tick.
    stacks::CpiAccountant acct({stacks::Stage::kDispatch, 4,
                                stacks::SpeculationMode::kOracle});
    stacks::CycleState s;
    s.n_dispatch = 3;
    s.fe_has_correct = true;
    s.fe_has_any = true;
    for (auto _ : state) {
        acct.tick(s);
        benchmark::DoNotOptimize(&acct);
    }
}

BENCHMARK(BM_AccountingOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingSpecCounters)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountingWithObservability)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AccountantTickOnly);

}  // namespace

BENCHMARK_MAIN();
