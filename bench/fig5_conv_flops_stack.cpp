/**
 * @file
 * Regenerates Figure 5: the IPC stack and FLOPS stack of one convolution
 * training-forward configuration on SKX, without and with a perfect
 * Dcache.
 *
 * Expected shape (paper §V-B): IPC is near ideal while FLOPS is a
 * fraction of peak; the FLOPS stack blames frontend (too few VFP uops),
 * memory (FMAs waiting on their loads) and dependences, plus an
 * "Unsched" synchronization component. With a perfect Dcache both IPC
 * and FLOPS improve modestly and the memory component migrates into
 * frontend/depend.
 */

#include <cstdio>

#include "analysis/render.hpp"
#include "bench_util.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "trace/hpc_kernels.hpp"

int
main()
{
    using namespace stackscope;
    using stacks::FlopsComponent;

    bench::banner(
        "Figure 5 - IPC and FLOPS stacks for conv train fwd on SKX, "
        "without and with a perfect Dcache",
        "near-ideal IPC can hide FLOPS far below peak; the FLOPS stack "
        "explains why and how it shifts when memory is idealized");

    const bench::RunLengths run = bench::benchRun(200'000);
    sim::SimOptions options;
    options.warmup_instrs = run.warmup;
    const unsigned cores = 4;

    const trace::HpcBenchmark *bench_cfg = nullptr;
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite()) {
        if (bm.name == "conv_fwd_0")
            bench_cfg = &bm;
    }
    if (bench_cfg == nullptr)
        return 1;

    const sim::MachineConfig skx = sim::skxConfig();
    const trace::HpcTarget target{skx.core.flops_vec_lanes,
                                  trace::SgemmCodegen::kSkxBroadcast};
    auto tr = bench_cfg->make(target, run.total);

    double flops_real = 0.0;
    double flops_pd = 0.0;
    for (const bool perfect_dcache : {false, true}) {
        sim::MachineConfig machine = skx;
        if (perfect_dcache) {
            sim::Idealization ideal;
            ideal.perfect_dcache = true;
            machine = sim::applyIdealization(machine, ideal);
        }
        const sim::MulticoreResult r =
            sim::simulateMulticore(machine, *tr, cores, options);

        std::printf("--- %s ---\n", machine.name.c_str());
        std::printf("average IPC %.2f of max 4\n", r.avg_ipc);
        std::printf("%s\n",
                    analysis::renderCpiStack(r.ipcStack(4),
                                             "IPC stack (height = max IPC)")
                        .c_str());
        const stacks::FlopsStack socket = r.socketFlopsStack();
        std::printf("%s",
                    analysis::renderFlopsStack(
                        socket, "FLOPS stack (height = socket peak)",
                        "flops/s")
                        .c_str());
        std::printf("achieved %s of %s (%.0f%% of peak; paper: 1.7 of 4 "
                    "TFLOPS = 43%% before idealization)\n\n",
                    analysis::formatFlops(r.socket_flops).c_str(),
                    analysis::formatFlops(r.socket_peak_flops).c_str(),
                    100.0 * r.socket_flops / r.socket_peak_flops);
        if (perfect_dcache)
            flops_pd = r.socket_flops;
        else
            flops_real = r.socket_flops;
    }

    std::printf("perfect Dcache changed achieved FLOPS by %+.1f%% "
                "(paper: both IPC and FLOPS rise modestly, ~+0.2 units)\n",
                100.0 * (flops_pd - flops_real) / flops_real);
    return 0;
}
