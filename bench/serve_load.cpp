/**
 * @file
 * Load generator for the `stackscope serve` daemon: concurrent clients
 * hammering a running daemon over its Unix-domain socket with a mixed
 * hit/miss spec set, verifying the cache's byte-identity guarantee and
 * recording per-class latency percentiles.
 *
 * Usage:
 *   stackscope serve --socket /tmp/ss.sock &
 *   bench/serve_load --socket /tmp/ss.sock [--clients N] [--requests N]
 *                    [--specs N] [--instrs N]
 *
 * Each client opens one connection and issues its requests serially,
 * cycling through `--specs` distinct job specs, so after the first wave
 * of cold misses the steady state is cache hits — the production-shaped
 * mix the ISSUE acceptance criterion measures (hit p50 < 1 ms).
 * Every result frame's verbatim report bytes are compared against the
 * first response seen for that cache key; any divergence fails the run.
 *
 * Output is BENCH_serve.json (path overridable via
 * STACKSCOPE_BENCH_JSON), schema `stackscope-serve-load-v1` — see
 * docs/formats.md. Exit 0 only when all requests succeeded, at least
 * one hit was observed and every response was byte-identical per key.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/report.hpp"

namespace {

using namespace stackscope;

struct LoadOptions
{
    std::string socket_path;
    unsigned clients = 4;
    unsigned requests = 32;  ///< per client
    unsigned specs = 4;      ///< distinct job specs in the mix
    std::uint64_t instrs = 20'000;
};

struct ClientResult
{
    std::vector<double> hit_ms;
    std::vector<double> miss_ms;  ///< miss + coalesced
    unsigned errors = 0;
};

/** First-seen report bytes per cache key, for byte-identity checking. */
std::mutex g_reports_mutex;
std::map<std::string, std::string> g_reports;
bool g_identical = true;

constexpr const char *kWorkloads[] = {"mcf", "gcc", "bwaves", "povray",
                                      "lbm", "imagick"};

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, std::string_view bytes)
{
    while (!bytes.empty()) {
        const ssize_t n =
            ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

/** Read one '\n'-terminated frame using @p pending as carry-over. */
bool
readFrame(int fd, std::string &pending, std::string &frame)
{
    char buf[65536];
    for (;;) {
        const std::size_t pos = pending.find('\n');
        if (pos != std::string::npos) {
            frame = pending.substr(0, pos + 1);
            pending.erase(0, pos + 1);
            return true;
        }
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        pending.append(buf, static_cast<std::size_t>(n));
    }
}

std::string
specLine(const LoadOptions &opt, unsigned spec_index, unsigned request_id)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("analyze")
        .key("id").value(std::to_string(request_id))
        .key("spec").beginObject()
        .key("workload").value(kWorkloads[spec_index %
                                          std::size(kWorkloads)])
        .key("machine").value("bdw")
        .key("instrs").value(opt.instrs)
        .endObject()
        .endObject();
    return w.str() + "\n";
}

/** Verbatim report bytes: from after `"report":` to the frame's `}`. */
std::string_view
reportBytes(const std::string &frame)
{
    const std::size_t start = frame.find("\"report\":");
    const std::size_t end = frame.rfind('}');
    if (start == std::string::npos || end == std::string::npos ||
        end <= start)
        return {};
    return std::string_view(frame).substr(start + 9, end - start - 9);
}

void
clientMain(const LoadOptions &opt, unsigned client_index,
           ClientResult *result)
{
    const int fd = connectUnix(opt.socket_path);
    if (fd < 0) {
        result->errors += opt.requests;
        return;
    }
    std::string pending;
    std::string frame;
    if (!readFrame(fd, pending, frame)) {  // hello
        result->errors += opt.requests;
        ::close(fd);
        return;
    }
    for (unsigned i = 0; i < opt.requests; ++i) {
        // Stagger start offsets so the cold wave spreads over all specs
        // and concurrent same-key requests (coalescing) still happen.
        const unsigned spec_index = (client_index + i) % opt.specs;
        const auto t0 = std::chrono::steady_clock::now();
        if (!sendAll(fd, specLine(opt, spec_index, i))) {
            ++result->errors;
            break;
        }
        bool done = false;
        while (!done) {
            if (!readFrame(fd, pending, frame)) {
                ++result->errors;
                ::close(fd);
                return;
            }
            const obs::JsonValue parsed = obs::parseJson(
                std::string_view(frame.data(), frame.size() - 1));
            const std::string &type = parsed.at("type").string;
            if (type == "progress")
                continue;
            done = true;
            if (type != "result") {
                ++result->errors;
                continue;
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const std::string &outcome = parsed.at("cache").string;
            if (outcome == "hit")
                result->hit_ms.push_back(ms);
            else
                result->miss_ms.push_back(ms);
            const std::string &key = parsed.at("key").string;
            const std::string report(reportBytes(frame));
            std::lock_guard<std::mutex> lock(g_reports_mutex);
            auto [it, inserted] = g_reports.emplace(key, report);
            if (!inserted && it->second != report)
                g_identical = false;
        }
    }
    ::close(fd);
}

double
percentile(std::vector<double> &sorted_ms, double p)
{
    if (sorted_ms.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ms.size() - 1));
    return sorted_ms[rank];
}

/** Daemon-side observability counters scraped after the load. */
struct DaemonStats
{
    bool fetched = false;
    std::uint64_t traced_requests = 0;
    /** Requests whose span stack failed the 1 ms conservation check —
     *  the bench gate requires zero (spans must stay additive). */
    std::uint64_t conservation_failures = 0;
    double slo_attainment = 0.0;
    double slo_p50_ms = 0.0;
    bool slo_ok = false;
};

/** One statusz exchange on a fresh control connection. */
DaemonStats
fetchDaemonStats(const std::string &socket_path)
{
    DaemonStats stats;
    const int fd = connectUnix(socket_path);
    if (fd < 0)
        return stats;
    std::string pending;
    std::string frame;
    if (!readFrame(fd, pending, frame) ||  // hello
        !sendAll(fd, "{\"type\":\"statusz\",\"id\":\"bench\"}\n") ||
        !readFrame(fd, pending, frame)) {
        ::close(fd);
        return stats;
    }
    ::close(fd);
    const obs::JsonValue status = obs::parseJson(
        std::string_view(frame.data(), frame.size() - 1));
    const obs::JsonValue *metrics = status.find("host_metrics");
    const obs::JsonValue *counters =
        metrics != nullptr ? metrics->find("counters") : nullptr;
    if (counters == nullptr)
        return stats;
    stats.fetched = true;
    if (const obs::JsonValue *v =
            counters->find("serve.traced_requests_total"))
        stats.traced_requests = static_cast<std::uint64_t>(v->number);
    if (const obs::JsonValue *v =
            counters->find("serve.trace_conservation_failures_total"))
        stats.conservation_failures =
            static_cast<std::uint64_t>(v->number);
    if (const obs::JsonValue *slo = status.find("slo")) {
        stats.slo_attainment = slo->at("attainment").number;
        stats.slo_p50_ms = slo->at("p50_ms").number;
        stats.slo_ok = slo->at("ok").boolean;
    }
    return stats;
}

}  // namespace

int
main(int argc, char **argv)
{
    LoadOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socket_path = value();
        } else if (arg == "--clients") {
            opt.clients = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--requests") {
            opt.requests = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--specs") {
            opt.specs = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--instrs") {
            opt.instrs = std::stoull(value());
        } else {
            std::fprintf(stderr,
                         "usage: serve_load --socket PATH [--clients N] "
                         "[--requests N] [--specs N] [--instrs N]\n");
            return 2;
        }
    }
    if (opt.socket_path.empty()) {
        std::fprintf(stderr, "serve_load: --socket PATH is required\n");
        return 2;
    }
    opt.specs = std::max(1u, std::min<unsigned>(
                                 opt.specs, std::size(kWorkloads)));

    std::vector<ClientResult> results(opt.clients);
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (unsigned c = 0; c < opt.clients; ++c)
        threads.emplace_back(clientMain, opt, c, &results[c]);
    for (std::thread &t : threads)
        t.join();

    std::vector<double> hits;
    std::vector<double> misses;
    unsigned errors = 0;
    for (const ClientResult &r : results) {
        hits.insert(hits.end(), r.hit_ms.begin(), r.hit_ms.end());
        misses.insert(misses.end(), r.miss_ms.begin(), r.miss_ms.end());
        errors += r.errors;
    }
    std::sort(hits.begin(), hits.end());
    std::sort(misses.begin(), misses.end());
    const std::size_t total = hits.size() + misses.size();
    const double hit_rate =
        total == 0 ? 0.0
                   : static_cast<double>(hits.size()) /
                         static_cast<double>(total);

    // Post-load daemon introspection: the request traces the daemon
    // recorded for our load must all have passed span conservation.
    const DaemonStats daemon = fetchDaemonStats(opt.socket_path);

    obs::JsonWriter w;
    w.beginObject()
        .key("schema").value("stackscope-serve-load-v1")
        .key("clients").value(opt.clients)
        .key("requests_per_client").value(opt.requests)
        .key("distinct_specs").value(opt.specs)
        .key("instrs").value(opt.instrs)
        .key("completed").value(static_cast<std::uint64_t>(total))
        .key("errors").value(errors)
        .key("hits").value(static_cast<std::uint64_t>(hits.size()))
        .key("misses").value(static_cast<std::uint64_t>(misses.size()))
        .key("hit_rate").value(hit_rate)
        .key("hit_p50_ms").value(percentile(hits, 0.50))
        .key("hit_p99_ms").value(percentile(hits, 0.99))
        .key("miss_p50_ms").value(percentile(misses, 0.50))
        .key("miss_p99_ms").value(percentile(misses, 0.99))
        .key("byte_identical").value(g_identical)
        .key("daemon_stats_fetched").value(daemon.fetched)
        .key("traced_requests").value(daemon.traced_requests)
        .key("conservation_failures").value(daemon.conservation_failures)
        .key("slo_attainment").value(daemon.slo_attainment)
        .key("slo_p50_ms").value(daemon.slo_p50_ms)
        .key("slo_ok").value(daemon.slo_ok)
        .endObject();

    const char *env = std::getenv("STACKSCOPE_BENCH_JSON");
    const std::string path = env != nullptr ? env : "BENCH_serve.json";
    obs::writeTextFile(path, w.str() + "\n");

    std::printf("serve_load: %zu requests (%zu hits, %zu misses), "
                "%u errors\n",
                total, hits.size(), misses.size(), errors);
    std::printf("  hit  p50 %.3f ms   p99 %.3f ms\n",
                percentile(hits, 0.50), percentile(hits, 0.99));
    std::printf("  miss p50 %.3f ms   p99 %.3f ms\n",
                percentile(misses, 0.50), percentile(misses, 0.99));
    std::printf("  byte_identical: %s   -> %s\n",
                g_identical ? "true" : "false", path.c_str());
    if (daemon.fetched) {
        std::printf("  daemon: %llu traced, %llu conservation failures, "
                    "slo attainment %.4f (p50 %.3f ms, %s)\n",
                    static_cast<unsigned long long>(
                        daemon.traced_requests),
                    static_cast<unsigned long long>(
                        daemon.conservation_failures),
                    daemon.slo_attainment, daemon.slo_p50_ms,
                    daemon.slo_ok ? "ok" : "MISSED");
    } else {
        std::printf("  daemon: statusz scrape failed\n");
    }

    if (errors > 0 || hits.empty() || !g_identical)
        return 1;
    // Span stacks are a conservation-checked contract, same as the CPI
    // stacks: any trace whose spans failed to sum to wall time within
    // tolerance fails the bench.
    if (!daemon.fetched || daemon.conservation_failures != 0) {
        std::fprintf(stderr,
                     "serve_load: span conservation check failed\n");
        return 1;
    }
    return 0;
}
