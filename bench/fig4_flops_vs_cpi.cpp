/**
 * @file
 * Regenerates Figure 4: the relative difference per component between the
 * issue-stage CPI stack and the FLOPS stack for the DeepBench suite on
 * KNL and SKX, averaged per benchmark group.
 *
 * Expected shape (paper §V-B):
 *  - the FLOPS base component is always smaller than the CPI base
 *    component (negative difference), much more so on KNL (2-wide: all
 *    uops would have to be FMAs to reach parity);
 *  - sgemm on KNL compensates mostly in the *memory* component (JIT
 *    memory-operand FMAs wait on L1 loads);
 *  - sgemm on SKX compensates mostly in the *dependence* component
 *    (broadcast-fed register FMAs);
 *  - convolutions show a large frontend difference (low VFP fraction)
 *    plus a 5-10% memory component.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runner/batch_runner.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/hpc_kernels.hpp"

int
main()
{
    using namespace stackscope;
    using bench::GroupedStack;

    bench::banner(
        "Figure 4 - issue-stage CPI stack vs FLOPS stack, DeepBench on KNL "
        "and SKX",
        "FLOPS stacks expose HPC bottlenecks (few VFP uops, load-fed FMAs, "
        "broadcast dependences) that CPI stacks cannot show");

    const bench::RunLengths run = bench::benchRun(150'000);
    sim::SimOptions options;
    options.warmup_instrs = run.warmup;
    runner::BatchRunner batch(bench::benchThreads());

    const struct
    {
        const char *machine;
        trace::SgemmCodegen style;
    } targets[] = {
        {"knl", trace::SgemmCodegen::kKnlJit},
        {"skx", trace::SgemmCodegen::kSkxBroadcast},
    };

    for (const auto &t : targets) {
        const sim::MachineConfig machine = sim::machineByName(t.machine);
        const trace::HpcTarget target{machine.core.flops_vec_lanes, t.style};

        std::map<std::string, GroupedStack> group_diff;
        std::map<std::string, int> group_count;

        // The whole DeepBench suite for this target runs as one batch.
        const std::vector<trace::HpcBenchmark> &suite =
            trace::deepBenchSuite();
        std::vector<runner::SimJob> jobs;
        for (const trace::HpcBenchmark &bm : suite) {
            auto tr = bm.make(target, run.total);
            jobs.push_back(runner::makeJob(bm.name, machine, *tr, options));
        }
        const runner::BatchResult results = batch.run(std::move(jobs));

        for (std::size_t i = 0; i < suite.size(); ++i) {
            const sim::SimResult &r = results.outcomes[i].single;
            const GroupedStack cpi = bench::groupCpi(
                r.cpiStack(stacks::Stage::kIssue).normalized());
            const GroupedStack flops =
                bench::groupFlops(r.flops_cycles.normalized());
            group_diff[suite[i].group] += flops - cpi;
            ++group_count[suite[i].group];
        }

        std::printf("--- %s ---\n", machine.name.c_str());
        std::printf("%-12s %9s %9s %9s %9s %9s\n", "group", "base",
                    "frontend", "memory", "depend", "rest");
        for (const char *group : {"sgemm_train", "sgemm_inf", "conv_fwd",
                                  "conv_bwd_f", "conv_bwd_d"}) {
            const GroupedStack d =
                group_diff[group].scaled(1.0 / group_count[group]);
            std::printf("%-12s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%\n",
                        group, 100.0 * d.base, 100.0 * d.frontend,
                        100.0 * d.memory, 100.0 * d.depend, 100.0 * d.rest);
        }

        // Headline checks against the paper's qualitative findings.
        const GroupedStack strain =
            group_diff["sgemm_train"].scaled(1.0 /
                                             group_count["sgemm_train"]);
        std::printf("\nFLOPS base < CPI base (negative diff): %s\n",
                    strain.base < 0.0 ? "OK" : "VIOLATED");
        if (t.style == trace::SgemmCodegen::kKnlJit) {
            std::printf("KNL sgemm compensates in memory (%+.1f%%) more "
                        "than depend (%+.1f%%): %s\n\n",
                        100.0 * strain.memory, 100.0 * strain.depend,
                        strain.memory > strain.depend ? "OK"
                                                      : "check tuning");
        } else {
            std::printf("SKX sgemm compensates in depend (%+.1f%%) more "
                        "than memory (%+.1f%%): %s\n\n",
                        100.0 * strain.depend, 100.0 * strain.memory,
                        strain.depend > strain.memory ? "OK"
                                                      : "check tuning");
        }
    }
    return 0;
}
