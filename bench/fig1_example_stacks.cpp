/**
 * @file
 * Regenerates Figure 1: example CPI stacks for one benchmark (gcc)
 * measured at the dispatch, issue and commit stages.
 *
 * The paper's point: the three stacks disagree on how cycles distribute
 * over components (the dispatch stack emphasizes frontend causes, the
 * commit stack backend causes) while summing to the same total CPI.
 */

#include <cstdio>

#include "analysis/csv.hpp"
#include "analysis/render.hpp"
#include "bench_util.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

int
main()
{
    using namespace stackscope;
    using stacks::Stage;

    bench::banner("Figure 1 - example CPI stacks at dispatch, issue and "
                  "commit (gcc on BDW)",
                  "per-stage stacks redistribute the same total CPI across "
                  "different components");

    const bench::RunLengths run = bench::benchRun();
    trace::SyntheticParams params = trace::findWorkload("gcc").params;
    params.num_instrs = run.total;
    trace::SyntheticGenerator gen(params);

    sim::SimOptions options;
    options.warmup_instrs = run.warmup;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, options);
    std::printf("%s\n", analysis::renderMultiStage(r, "gcc").c_str());

    std::printf("CSV:\n%s\n",
                analysis::cpiStackCsvHeader("stage").c_str());
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        std::printf("%s\n",
                    analysis::toCsvRow(std::string(toString(s)),
                                       r.cpiStack(s))
                        .c_str());
    }

    // The structural relations of §III-A.
    const auto &d = r.cpiStack(Stage::kDispatch);
    const auto &c = r.cpiStack(Stage::kCommit);
    using C = stacks::CpiComponent;
    std::printf("\nfrontend (I$+bpred) at dispatch %.3f >= commit %.3f : %s\n",
                d[C::kIcache] + d[C::kBpred], c[C::kIcache] + c[C::kBpred],
                d[C::kIcache] + d[C::kBpred] >=
                        c[C::kIcache] + c[C::kBpred] - 1e-6
                    ? "OK"
                    : "VIOLATED");
    std::printf("backend (D$) at commit %.3f >= dispatch %.3f : %s\n",
                c[C::kDcache], d[C::kDcache],
                c[C::kDcache] >= d[C::kDcache] - 1e-6 ? "OK" : "VIOLATED");
    return 0;
}
