#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

namespace stackscope::bench {

std::uint64_t
benchInstrs(std::uint64_t dflt)
{
    if (const char *env = std::getenv("STACKSCOPE_BENCH_INSTRS")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return dflt;
}

RunLengths
benchRun(std::uint64_t dflt_measured)
{
    const std::uint64_t measured = benchInstrs(dflt_measured);
    return {measured + measured / 2, measured / 2};
}

unsigned
benchThreads()
{
    if (const char *env = std::getenv("STACKSCOPE_BENCH_THREADS"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return 0;
}

void
banner(const std::string &experiment_id, const std::string &claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment_id.c_str());
    std::printf("Paper: Eyerman et al., \"Extending the Performance Analysis\n"
                "Tool Box: Multi-Stage CPI Stacks and FLOPS Stacks\", "
                "ISPASS 2018.\n");
    std::printf("Claim under reproduction: %s\n", claim.c_str());
    std::printf("==============================================================\n\n");
}

GroupedStack
groupCpi(const stacks::CpiStack &n)
{
    using C = stacks::CpiComponent;
    GroupedStack g;
    g.base = n[C::kBase];
    g.frontend = n[C::kIcache] + n[C::kBpred] + n[C::kMicrocode];
    g.memory = n[C::kDcache];
    g.depend = n[C::kDepend] + n[C::kAluLat];
    g.rest = n[C::kOther] + n[C::kUnsched];
    return g;
}

GroupedStack
groupFlops(const stacks::FlopsStack &n)
{
    using F = stacks::FlopsComponent;
    GroupedStack g;
    g.base = n[F::kBase];
    g.frontend = n[F::kFrontend];
    g.memory = n[F::kMem];
    g.depend = n[F::kDepend];
    g.rest = n[F::kNonFma] + n[F::kMask] + n[F::kNonVfp] + n[F::kUnsched];
    return g;
}

}  // namespace stackscope::bench
