/**
 * @file
 * Regenerates Figure 3: the five multi-stage CPI stack case studies,
 * before and after making components perfect.
 *
 * (a) mcf/BDW     - bpred bracketed by dispatch/commit; D$ by commit.
 * (b) cactus/BDW  - Icache reduction within bounds; Icache and Dcache
 *                   couple through the unified L2 (second-order effect).
 * (c) bwaves/BDW  - an Icache component that does not materialize: Icache
 *                   misses queue behind prefetches on the L2 MSHRs.
 * (d) povray/KNL  - Microcode component; ALU and bpred bracketed.
 * (e) imagick/KNL - the issue stack reveals multi-cycle ALU latency where
 *                   dispatch/commit report dependences.
 */

#include <cstdio>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/render.hpp"
#include "bench_util.hpp"
#include "core/ooo_core.hpp"
#include "runner/batch_runner.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

struct Case
{
    const char *fig;
    const char *workload;
    const char *machine;
    const char *story;
    std::vector<sim::Idealization> ideals;
};

void
runCase(const Case &c, std::uint64_t instrs, runner::BatchRunner &batch)
{
    std::printf("--- Fig. 3(%s): %s on %s ---\n%s\n\n", c.fig, c.workload,
                c.machine, c.story);

    const bench::RunLengths run = bench::benchRun(instrs);
    trace::SyntheticParams params =
        trace::findWorkload(c.workload).params;
    params.num_instrs = run.total;
    trace::SyntheticGenerator gen(params);
    const sim::MachineConfig machine = sim::machineByName(c.machine);

    sim::SimOptions options;
    options.warmup_instrs = run.warmup;

    // The real run and every idealized variant of this case, one batch.
    std::vector<runner::SimJob> jobs;
    jobs.push_back(runner::makeJob("real", machine, gen, options));
    for (const sim::Idealization &ideal : c.ideals) {
        jobs.push_back(runner::makeJob(
            ideal.label(), sim::applyIdealization(machine, ideal), gen,
            options));
    }
    const runner::BatchResult results = batch.run(std::move(jobs));

    const sim::SimResult &real = results.outcomes.front().single;
    std::printf("%s\n",
                analysis::renderMultiStage(real, c.workload).c_str());

    const analysis::MultiStageStacks ms = analysis::multiStageOf(real);

    for (std::size_t i = 0; i < c.ideals.size(); ++i) {
        const sim::Idealization &ideal = c.ideals[i];
        const sim::SimResult &after = results.outcomes[i + 1].single;
        const double delta = real.cpi - after.cpi;
        std::printf("  %-26s CPI %.3f -> %.3f (reduction %.3f)\n",
                    ideal.label().c_str(), real.cpi, after.cpi, delta);

        // Show the bracketing for the directly affected component.
        CpiComponent comp = CpiComponent::kDcache;
        if (ideal.perfect_icache)
            comp = CpiComponent::kIcache;
        else if (ideal.perfect_bpred)
            comp = CpiComponent::kBpred;
        else if (ideal.single_cycle_alu)
            comp = CpiComponent::kAluLat;
        const auto b = analysis::componentBounds(ms, comp);
        std::printf("      %s component: dispatch %.3f / issue %.3f / "
                    "commit %.3f -> bounds [%.3f, %.3f] %s\n",
                    std::string(componentName(comp)).c_str(),
                    ms.dispatch[comp], ms.issue[comp], ms.commit[comp], b.lo,
                    b.hi,
                    b.contains(delta)
                        ? "CONTAIN the actual reduction"
                        : "do NOT contain it (second-order effect)");
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    bench::banner("Figure 3 - multi-stage CPI stack case studies",
                  "per-component dispatch/commit values bracket the true "
                  "improvement; the exceptions are second-order effects "
                  "(unified-L2 coupling, MSHR contention)");

    const std::uint64_t instrs = bench::benchInstrs();  // measured window
    runner::BatchRunner batch(bench::benchThreads());

    const Case cases[] = {
        {"a", "mcf", "bdw",
         "Dcache-bound pointer chaser with data-dependent branches.",
         {{.perfect_bpred = true}, {.perfect_dcache = true}}},
        {"b", "cactus", "bdw",
         "Huge code footprint; I and D contend in the unified L2, coupling "
         "the Icache and Dcache components.",
         {{.perfect_icache = true}, {.perfect_dcache = true}}},
        {"c", "bwaves", "bdw",
         "Streaming solver. All three stacks show an Icache component, but "
         "a perfect Icache barely helps: Icache misses were queueing "
         "behind prefetch traffic on the L2 MSHRs, and that queueing time "
         "simply moves to the Dcache misses.",
         {{.perfect_icache = true}, {.perfect_dcache = true}}},
        {"d", "povray", "knl",
         "Microcoded ops stall the 2-wide KNL decoder (Microcode "
         "component); ALU and bpred reductions fall between dispatch and "
         "commit components.",
         {{.single_cycle_alu = true}, {.perfect_bpred = true}}},
        {"e", "imagick", "knl",
         "Dependence chains of multi-cycle ALU ops: dispatch/commit blame "
         "'Depend', the issue stack (which sees producers) blames 'ALU "
         "lat' - and 1-cycle ALUs indeed recover it.",
         {{.single_cycle_alu = true}}},
    };

    for (const Case &c : cases)
        runCase(c, instrs, batch);

    // Extra diagnostics for the bwaves MSHR story.
    {
        trace::SyntheticParams params =
            trace::findWorkload("bwaves").params;
        params.num_instrs = instrs;
        trace::SyntheticGenerator gen(params);
        core::CoreParams cp = sim::bdwConfig().core;
        core::OooCore core(cp, gen.clone());
        core.run(0);
        std::printf("bwaves/BDW diagnostics: %llu prefetches issued, "
                    "%llu cycles of MSHR queueing\n",
                    static_cast<unsigned long long>(
                        core.caches().prefetchesIssued()),
                    static_cast<unsigned long long>(
                        core.caches().mshrWaitCycles()));
    }
    return 0;
}
