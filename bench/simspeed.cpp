/**
 * @file
 * Simulation-speed benchmark for the batched per-cycle engine: runs the
 * Figure 2 grid (all SPEC-inspired workloads x {bdw, knl}) once with the
 * batched engine (packed cycle records + idle skip-ahead) and once with
 * the per-cycle reference engine, and reports host cycles/second for
 * both plus the speedup ratio.
 *
 * Output is BENCH_simspeed.json (path overridable via
 * STACKSCOPE_BENCH_JSON), schema `stackscope-simspeed-v2` — see
 * docs/formats.md. CI feeds it to tools/check_simspeed.py, which exits 4
 * when the batched/reference speedup falls more than 10% below the
 * committed bench/simspeed_baseline.json or any single grid point runs
 * slower batched than reference. The speedup ratio is self-normalizing
 * (both engines run on the same host in the same process), so the gate is
 * meaningful across machines of different absolute speed.
 *
 * `--profile` re-runs the grid with a core::StageProfile sink attached,
 * adding a per-stage wall-time breakdown
 * (fetch/dispatch/issue/writeback/commit/accounting) for each engine to
 * the JSON under "profile". The clock reads around every stage cost a few
 * percent, so profile timings inform the next headroom hunt but the
 * speedup gate should use a run without --profile.
 *
 * The two engines must also agree exactly: every grid point asserts
 * cycle- and instruction-identity between batched and reference runs, so
 * a speed win can never silently buy a timing divergence. (The golden
 * bit-identity test suite checks the stacks too; here the cheap check
 * doubles as a smoke test on the full grid at bench length.)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/ooo_core.hpp"
#include "obs/json.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;

struct EngineSample
{
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    double seconds = 0.0;

    double
    cyclesPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
    }
};

struct GridPoint
{
    std::string workload;
    std::string machine;
    EngineSample batched;
    EngineSample reference;

    double
    speedup() const
    {
        return batched.cyclesPerSec() > 0.0 && reference.seconds > 0.0
                   ? batched.cyclesPerSec() / reference.cyclesPerSec()
                   : 0.0;
    }
};

EngineSample
runPoint(const sim::MachineConfig &machine, const trace::Workload &workload,
         std::uint64_t instrs, bool batched,
         core::StageProfile *profile = nullptr)
{
    trace::SyntheticParams p = workload.params;
    p.num_instrs = instrs;
    core::CoreParams params = machine.core;
    params.batched_accounting = batched;
    core::OooCore core(params,
                       std::make_unique<trace::SyntheticGenerator>(p));
    core.setStageProfile(profile);

    const auto start = std::chrono::steady_clock::now();
    core.run(0);
    const auto end = std::chrono::steady_clock::now();

    EngineSample s;
    s.cycles = core.cycles();
    s.instrs = core.stats().instrs_committed;
    s.seconds = std::chrono::duration<double>(end - start).count();
    return s;
}

void
writeProfile(obs::JsonWriter &w, const core::StageProfile &p)
{
    const struct
    {
        const char *name;
        std::uint64_t ns;
    } stages[] = {
        {"writeback", p.writeback_ns}, {"commit", p.commit_ns},
        {"issue", p.issue_ns},         {"dispatch", p.dispatch_ns},
        {"fetch", p.fetch_ns},         {"accounting", p.accounting_ns},
    };
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.ns;
    w.beginObject();
    w.key("cycles").value(p.cycles);
    w.key("total_ns").value(total);
    for (const auto &s : stages)
        w.key((std::string(s.name) + "_ns").c_str()).value(s.ns);
    w.key("shares").beginObject();
    for (const auto &s : stages)
        w.key(s.name).value(
            total > 0 ? static_cast<double>(s.ns) / static_cast<double>(total)
                      : 0.0);
    w.endObject();
    w.endObject();
}

}  // namespace

int
main(int argc, char **argv)
{
    bool do_profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--profile") {
            do_profile = true;
        } else {
            std::fprintf(stderr, "usage: simspeed [--profile]\n");
            return 2;
        }
    }

    const std::uint64_t instrs = bench::benchInstrs(200'000);
    bench::banner("simspeed",
                  "batched cycle-record engine vs per-cycle reference on "
                  "the Fig. 2 grid");

    const std::vector<std::string> machines = {"bdw", "knl"};
    std::vector<GridPoint> points;
    core::StageProfile batched_profile;
    core::StageProfile reference_profile;
    std::uint64_t batched_cycles = 0;
    std::uint64_t reference_cycles = 0;
    double batched_seconds = 0.0;
    double reference_seconds = 0.0;
    bool identical = true;

    std::printf("%-14s %-4s %12s %12s %8s\n", "workload", "mach",
                "batched c/s", "reference c/s", "speedup");
    for (const trace::Workload &w : trace::allSpecWorkloads()) {
        for (const std::string &mname : machines) {
            const sim::MachineConfig machine = sim::machineByName(mname);
            GridPoint pt;
            pt.workload = w.name;
            pt.machine = mname;
            pt.reference =
                runPoint(machine, w, instrs, /*batched=*/false,
                         do_profile ? &reference_profile : nullptr);
            pt.batched =
                runPoint(machine, w, instrs, /*batched=*/true,
                         do_profile ? &batched_profile : nullptr);

            if (pt.batched.cycles != pt.reference.cycles ||
                pt.batched.instrs != pt.reference.instrs) {
                identical = false;
                std::fprintf(stderr,
                             "simspeed: ENGINE MISMATCH %s@%s: batched "
                             "%llu cycles / %llu instrs, reference %llu "
                             "cycles / %llu instrs\n",
                             w.name.c_str(), mname.c_str(),
                             static_cast<unsigned long long>(
                                 pt.batched.cycles),
                             static_cast<unsigned long long>(
                                 pt.batched.instrs),
                             static_cast<unsigned long long>(
                                 pt.reference.cycles),
                             static_cast<unsigned long long>(
                                 pt.reference.instrs));
            }

            batched_cycles += pt.batched.cycles;
            batched_seconds += pt.batched.seconds;
            reference_cycles += pt.reference.cycles;
            reference_seconds += pt.reference.seconds;
            std::printf("%-14s %-4s %12.0f %12.0f %7.2fx\n",
                        pt.workload.c_str(), pt.machine.c_str(),
                        pt.batched.cyclesPerSec(),
                        pt.reference.cyclesPerSec(), pt.speedup());
            points.push_back(pt);
        }
    }

    const double batched_cps =
        batched_seconds > 0.0
            ? static_cast<double>(batched_cycles) / batched_seconds
            : 0.0;
    const double reference_cps =
        reference_seconds > 0.0
            ? static_cast<double>(reference_cycles) / reference_seconds
            : 0.0;
    const double speedup =
        reference_cps > 0.0 ? batched_cps / reference_cps : 0.0;

    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("stackscope-simspeed-v2");
    w.key("instrs_per_point").value(instrs);
    w.key("engines_identical").value(identical);
    w.key("profiled").value(do_profile);
    w.key("points").beginArray();
    for (const GridPoint &pt : points) {
        w.beginObject();
        w.key("workload").value(pt.workload);
        w.key("machine").value(pt.machine);
        for (const bool batched : {true, false}) {
            const EngineSample &s = batched ? pt.batched : pt.reference;
            w.key(batched ? "batched" : "reference").beginObject();
            w.key("cycles").value(s.cycles);
            w.key("instrs").value(s.instrs);
            w.key("seconds").value(s.seconds);
            w.key("cycles_per_sec").value(s.cyclesPerSec());
            w.endObject();
        }
        w.key("speedup").value(pt.speedup());
        w.endObject();
    }
    w.endArray();
    w.key("totals").beginObject();
    w.key("batched_cycles").value(batched_cycles);
    w.key("batched_seconds").value(batched_seconds);
    w.key("batched_cycles_per_sec").value(batched_cps);
    w.key("reference_cycles").value(reference_cycles);
    w.key("reference_seconds").value(reference_seconds);
    w.key("reference_cycles_per_sec").value(reference_cps);
    w.key("speedup_vs_reference").value(speedup);
    w.endObject();
    if (do_profile) {
        w.key("profile").beginObject();
        w.key("batched");
        writeProfile(w, batched_profile);
        w.key("reference");
        writeProfile(w, reference_profile);
        w.endObject();
    }
    w.endObject();

    const char *env = std::getenv("STACKSCOPE_BENCH_JSON");
    const std::string path = env != nullptr ? env : "BENCH_simspeed.json";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "simspeed: cannot write %s\n", path.c_str());
        return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);

    std::printf("TOTAL: batched %.0f cycles/sec, reference %.0f "
                "cycles/sec, speedup %.2fx -> %s\n",
                batched_cps, reference_cps, speedup, path.c_str());
    if (do_profile) {
        for (const bool batched : {true, false}) {
            const core::StageProfile &p =
                batched ? batched_profile : reference_profile;
            const std::uint64_t total = p.writeback_ns + p.commit_ns +
                                        p.issue_ns + p.dispatch_ns +
                                        p.fetch_ns + p.accounting_ns;
            std::printf(
                "PROFILE %-9s wb %4.1f%%  commit %4.1f%%  issue %4.1f%%  "
                "dispatch %4.1f%%  fetch %4.1f%%  acct %4.1f%%  "
                "(%.2fs over %llu cycles)\n",
                batched ? "batched" : "reference",
                100.0 * p.writeback_ns / total, 100.0 * p.commit_ns / total,
                100.0 * p.issue_ns / total, 100.0 * p.dispatch_ns / total,
                100.0 * p.fetch_ns / total, 100.0 * p.accounting_ns / total,
                total / 1e9, static_cast<unsigned long long>(p.cycles));
        }
    }
    return identical ? 0 : 1;
}
