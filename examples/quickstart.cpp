/**
 * @file
 * Quickstart: simulate one workload on one machine and print its
 * multi-stage CPI stacks.
 *
 * Usage: quickstart [workload] [machine]
 *   workload: any preset from the workload library (default: mcf)
 *   machine:  bdw | knl | skx (default: bdw)
 */

#include <cstdio>
#include <string>

#include "analysis/render.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

int
main(int argc, char **argv)
{
    using namespace stackscope;

    const std::string workload_name = argc > 1 ? argv[1] : "mcf";
    const std::string machine_name = argc > 2 ? argv[2] : "bdw";

    const trace::Workload workload = trace::findWorkload(workload_name);
    const sim::MachineConfig machine = sim::machineByName(machine_name);

    std::printf("stackscope quickstart: %s (%s) on %s\n",
                workload.name.c_str(), workload.description.c_str(),
                machine.name.c_str());

    trace::SyntheticGenerator gen(workload.params);
    const sim::SimResult result = sim::simulate(machine, gen);

    std::printf("%s",
                analysis::renderMultiStage(result, workload.name).c_str());

    std::printf("\nRun details: %llu branches (%.2f%% mispredicted), "
                "%llu loads (%.2f%% L1D misses)\n",
                static_cast<unsigned long long>(result.stats.branches),
                result.stats.branches == 0
                    ? 0.0
                    : 100.0 * result.stats.branch_mispredicts /
                          result.stats.branches,
                static_cast<unsigned long long>(result.stats.loads),
                result.stats.loads == 0
                    ? 0.0
                    : 100.0 * result.stats.l1d_load_misses /
                          result.stats.loads);
    return 0;
}
