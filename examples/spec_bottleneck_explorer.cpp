/**
 * @file
 * Bottleneck explorer: for one workload (or all), print the multi-stage
 * CPI stacks next to the *measured* effect of idealizing each structure —
 * the paper's core use case: the dispatch and commit components bracket
 * the real improvement.
 *
 * Usage: spec_bottleneck_explorer [workload|all] [machine] [instrs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/render.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

void
explore(const trace::Workload &workload, const sim::MachineConfig &machine,
        std::uint64_t instrs)
{
    trace::SyntheticParams params = workload.params;
    params.num_instrs = instrs;
    trace::SyntheticGenerator gen(params);

    const sim::SimResult real = sim::simulate(machine, gen);
    std::printf("%s", analysis::renderMultiStage(real, workload.name).c_str());

    const analysis::MultiStageStacks ms{real.cpiStack(Stage::kDispatch),
                                        real.cpiStack(Stage::kIssue),
                                        real.cpiStack(Stage::kCommit)};

    const struct
    {
        const char *label;
        sim::Idealization ideal;
        CpiComponent comp;
    } knobs[] = {
        {"perfect I$", {.perfect_icache = true}, CpiComponent::kIcache},
        {"perfect D$", {.perfect_dcache = true}, CpiComponent::kDcache},
        {"perfect bpred", {.perfect_bpred = true}, CpiComponent::kBpred},
        {"1-cycle ALU", {.single_cycle_alu = true}, CpiComponent::kAluLat},
    };

    std::printf("  %-14s %9s %9s %9s %9s  %s\n", "idealization", "actual",
                "lo-bound", "hi-bound", "error", "verdict");
    for (const auto &k : knobs) {
        const double actual = sim::cpiReduction(machine, gen, k.ideal);
        const analysis::ComponentBounds b =
            analysis::componentBounds(ms, k.comp);
        const double err = analysis::multiStageError(ms, k.comp, actual);
        std::printf("  %-14s %9.3f %9.3f %9.3f %9.3f  %s\n", k.label, actual,
                    b.lo, b.hi, err,
                    err == 0.0 ? "within multi-stage bounds"
                               : "outside (second-order effects)");
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "mcf";
    const std::string machine_name = argc > 2 ? argv[2] : "bdw";
    const std::uint64_t instrs =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200'000;

    const sim::MachineConfig machine = sim::machineByName(machine_name);
    std::printf("== stackscope bottleneck explorer (%s, %llu instrs) ==\n\n",
                machine.name.c_str(),
                static_cast<unsigned long long>(instrs));

    if (which == "all") {
        for (const trace::Workload &w : trace::allSpecWorkloads())
            explore(w, machine, instrs);
    } else {
        explore(trace::findWorkload(which), machine, instrs);
    }
    return 0;
}
