/**
 * @file
 * HPC FLOPS-stack analysis: run a DeepBench-style kernel on KNL or SKX and
 * print the FLOPS stack next to the IPC stack — the paper's §V-B analysis
 * flow (low FLOPS despite near-ideal IPC, and why).
 *
 * Usage: hpc_flops_analysis [kernel] [machine] [cores]
 *   kernel:  a name from the DeepBench suite (default conv_fwd_0), or
 *            "list" to enumerate.
 *   machine: knl | skx (default skx)
 *   cores:   simulated cores sharing an uncore (default 2)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/render.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "trace/hpc_kernels.hpp"

int
main(int argc, char **argv)
{
    using namespace stackscope;

    const std::string kernel = argc > 1 ? argv[1] : "conv_fwd_0";
    const std::string machine_name = argc > 2 ? argv[2] : "skx";
    const unsigned cores =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

    if (kernel == "list") {
        for (const trace::HpcBenchmark &bm : trace::deepBenchSuite())
            std::printf("%-16s (%s)\n", bm.name.c_str(), bm.group.c_str());
        return 0;
    }

    const trace::HpcBenchmark *bench = nullptr;
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite()) {
        if (bm.name == kernel)
            bench = &bm;
    }
    if (bench == nullptr) {
        std::fprintf(stderr, "unknown kernel '%s' (try 'list')\n",
                     kernel.c_str());
        return 1;
    }

    const sim::MachineConfig machine = sim::machineByName(machine_name);
    const trace::HpcTarget target{
        machine.core.flops_vec_lanes,
        machine_name == "knl" ? trace::SgemmCodegen::kKnlJit
                              : trace::SgemmCodegen::kSkxBroadcast};
    auto trace = bench->make(target);

    std::printf("== %s on %s (%u cores sharing an uncore slice; socket "
                "peak %s) ==\n\n",
                bench->name.c_str(), machine.name.c_str(), cores,
                analysis::formatFlops(machine.socketPeakFlops()).c_str());

    const sim::MulticoreResult r =
        sim::simulateMulticore(machine, *trace, cores);

    std::printf("average IPC %.2f of max %u\n\n", r.avg_ipc,
                machine.core.effectiveWidth());
    std::printf("%s\n",
                analysis::renderCpiStack(
                    r.cpiStack(stacks::Stage::kIssue), "issue-stage CPI stack")
                    .c_str());

    const stacks::FlopsStack socket = r.socketFlopsStack();
    std::printf("%s\n",
                analysis::renderFlopsStack(socket, "socket FLOPS stack",
                                           "flops/s")
                    .c_str());
    std::printf("achieved: %s of %s peak (%.0f%%)\n",
                analysis::formatFlops(r.socket_flops).c_str(),
                analysis::formatFlops(r.socket_peak_flops).c_str(),
                100.0 * r.socket_flops / r.socket_peak_flops);
    return 0;
}
