/**
 * @file
 * Using the TraceBuilder API to analyze a hand-written kernel: a dot
 * product implemented two ways (scalar vs vector-FMA), showing how the
 * multi-stage CPI stacks and the FLOPS stack expose the difference.
 *
 * Usage: custom_trace_builder [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "analysis/render.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/trace_builder.hpp"

namespace {

using namespace stackscope;

/** Scalar dot product: load a, load b, multiply, accumulate. */
std::unique_ptr<trace::TraceSource>
scalarDot(unsigned iterations)
{
    trace::TraceBuilder b;
    auto acc = b.fpAdd();
    // Padding so the accumulator dependence distance inside the loop body
    // equals the body length (repeatLast preserves distances, giving the
    // loop-carried accumulator chain).
    b.nop();
    b.nop();
    b.at(0x401000);
    auto a0 = b.load(0x10000000);
    auto b0 = b.load(0x20000000);
    auto m0 = b.fpMul({a0, b0});
    acc = b.fpAdd({m0, acc});
    auto ptr = b.alu();
    b.branch(true, {ptr});
    b.repeatLast(6, iterations - 1);
    return b.build();
}

/** Vectorized dot product with 8 accumulators of 16-lane FMAs. */
std::unique_ptr<trace::TraceSource>
vectorDot(unsigned iterations)
{
    trace::TraceBuilder b;
    std::vector<trace::InstrHandle> acc;
    for (int i = 0; i < 8; ++i)
        acc.push_back(b.vadd(16));
    b.at(0x402000);
    for (unsigned it = 0; it < iterations; ++it) {
        b.at(0x402000);
        for (int u = 0; u < 8; ++u) {
            auto a = b.load(0x10000000 + (it * 8 + u) % 2048 * 64);
            auto v = b.load(0x20000000 + (it * 8 + u) % 2048 * 64);
            acc[u] = b.vfma(16, {a, v, acc[u]});
        }
        auto ptr = b.alu();
        b.branch(true, {ptr});
    }
    return b.build();
}

void
analyze(const char *name, const trace::TraceSource &trace,
        const sim::MachineConfig &machine)
{
    const sim::SimResult r = sim::simulate(machine, trace);
    std::printf("%s", analysis::renderMultiStage(r, name).c_str());
    std::printf("%s",
                analysis::renderFlopsStack(
                    r.flopsStack(), "  FLOPS stack (flops/s, core-level)",
                    "flops/s")
                    .c_str());
    std::printf("  achieved %s of %s core peak\n\n",
                analysis::formatFlops(r.achievedFlops()).c_str(),
                analysis::formatFlops(r.core_peak_flops).c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    const unsigned iterations =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 20000;
    const sim::MachineConfig machine = sim::skxConfig();

    std::printf("== dot-product kernels on %s (%u iterations) ==\n\n",
                machine.name.c_str(), iterations);
    analyze("scalar dot product", *scalarDot(iterations), machine);
    analyze("vector-FMA dot product", *vectorDot(iterations), machine);
    std::printf("The FLOPS stack separates 'too few VFP instructions'\n"
                "(frontend) from masking, memory and dependence losses -\n"
                "information the CPI stacks alone cannot provide (§V-B).\n");
    return 0;
}
