# Empty dependencies file for fig2_component_error.
# This may be replaced when dependencies are built.
