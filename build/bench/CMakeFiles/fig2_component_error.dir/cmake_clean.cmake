file(REMOVE_RECURSE
  "CMakeFiles/fig2_component_error.dir/bench_util.cpp.o"
  "CMakeFiles/fig2_component_error.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig2_component_error.dir/fig2_component_error.cpp.o"
  "CMakeFiles/fig2_component_error.dir/fig2_component_error.cpp.o.d"
  "fig2_component_error"
  "fig2_component_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_component_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
