file(REMOVE_RECURSE
  "CMakeFiles/table1_idealization.dir/bench_util.cpp.o"
  "CMakeFiles/table1_idealization.dir/bench_util.cpp.o.d"
  "CMakeFiles/table1_idealization.dir/table1_idealization.cpp.o"
  "CMakeFiles/table1_idealization.dir/table1_idealization.cpp.o.d"
  "table1_idealization"
  "table1_idealization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_idealization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
