# Empty compiler generated dependencies file for table1_idealization.
# This may be replaced when dependencies are built.
