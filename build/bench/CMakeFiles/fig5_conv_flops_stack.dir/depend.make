# Empty dependencies file for fig5_conv_flops_stack.
# This may be replaced when dependencies are built.
