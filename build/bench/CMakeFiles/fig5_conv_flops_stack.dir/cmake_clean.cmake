file(REMOVE_RECURSE
  "CMakeFiles/fig5_conv_flops_stack.dir/bench_util.cpp.o"
  "CMakeFiles/fig5_conv_flops_stack.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig5_conv_flops_stack.dir/fig5_conv_flops_stack.cpp.o"
  "CMakeFiles/fig5_conv_flops_stack.dir/fig5_conv_flops_stack.cpp.o.d"
  "fig5_conv_flops_stack"
  "fig5_conv_flops_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_conv_flops_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
