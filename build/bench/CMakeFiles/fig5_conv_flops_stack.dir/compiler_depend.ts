# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_conv_flops_stack.
