# Empty compiler generated dependencies file for fig4_flops_vs_cpi.
# This may be replaced when dependencies are built.
