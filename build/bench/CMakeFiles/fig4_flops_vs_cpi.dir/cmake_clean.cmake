file(REMOVE_RECURSE
  "CMakeFiles/fig4_flops_vs_cpi.dir/bench_util.cpp.o"
  "CMakeFiles/fig4_flops_vs_cpi.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig4_flops_vs_cpi.dir/fig4_flops_vs_cpi.cpp.o"
  "CMakeFiles/fig4_flops_vs_cpi.dir/fig4_flops_vs_cpi.cpp.o.d"
  "fig4_flops_vs_cpi"
  "fig4_flops_vs_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_flops_vs_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
