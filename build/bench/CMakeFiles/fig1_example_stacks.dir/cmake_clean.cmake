file(REMOVE_RECURSE
  "CMakeFiles/fig1_example_stacks.dir/bench_util.cpp.o"
  "CMakeFiles/fig1_example_stacks.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig1_example_stacks.dir/fig1_example_stacks.cpp.o"
  "CMakeFiles/fig1_example_stacks.dir/fig1_example_stacks.cpp.o.d"
  "fig1_example_stacks"
  "fig1_example_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
