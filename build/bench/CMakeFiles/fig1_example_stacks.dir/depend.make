# Empty dependencies file for fig1_example_stacks.
# This may be replaced when dependencies are built.
