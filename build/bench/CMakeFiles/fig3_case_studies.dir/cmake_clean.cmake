file(REMOVE_RECURSE
  "CMakeFiles/fig3_case_studies.dir/bench_util.cpp.o"
  "CMakeFiles/fig3_case_studies.dir/bench_util.cpp.o.d"
  "CMakeFiles/fig3_case_studies.dir/fig3_case_studies.cpp.o"
  "CMakeFiles/fig3_case_studies.dir/fig3_case_studies.cpp.o.d"
  "fig3_case_studies"
  "fig3_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
