# Empty compiler generated dependencies file for fig3_case_studies.
# This may be replaced when dependencies are built.
