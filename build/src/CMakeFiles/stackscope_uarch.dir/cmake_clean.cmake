file(REMOVE_RECURSE
  "CMakeFiles/stackscope_uarch.dir/uarch/branch_predictor.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/branch_predictor.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/cache.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/cache.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/cache_hierarchy.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/cache_hierarchy.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/fu_pool.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/fu_pool.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/prefetcher.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/prefetcher.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/reservation_station.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/reservation_station.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/rob.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/rob.cpp.o.d"
  "CMakeFiles/stackscope_uarch.dir/uarch/tlb.cpp.o"
  "CMakeFiles/stackscope_uarch.dir/uarch/tlb.cpp.o.d"
  "libstackscope_uarch.a"
  "libstackscope_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
