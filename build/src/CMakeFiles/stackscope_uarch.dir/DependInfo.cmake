
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/branch_predictor.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/branch_predictor.cpp.o.d"
  "/root/repo/src/uarch/cache.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/cache.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/cache.cpp.o.d"
  "/root/repo/src/uarch/cache_hierarchy.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/cache_hierarchy.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/cache_hierarchy.cpp.o.d"
  "/root/repo/src/uarch/fu_pool.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/fu_pool.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/fu_pool.cpp.o.d"
  "/root/repo/src/uarch/prefetcher.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/prefetcher.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/prefetcher.cpp.o.d"
  "/root/repo/src/uarch/reservation_station.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/reservation_station.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/reservation_station.cpp.o.d"
  "/root/repo/src/uarch/rob.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/rob.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/rob.cpp.o.d"
  "/root/repo/src/uarch/tlb.cpp" "src/CMakeFiles/stackscope_uarch.dir/uarch/tlb.cpp.o" "gcc" "src/CMakeFiles/stackscope_uarch.dir/uarch/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
