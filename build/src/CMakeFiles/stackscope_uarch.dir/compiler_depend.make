# Empty compiler generated dependencies file for stackscope_uarch.
# This may be replaced when dependencies are built.
