file(REMOVE_RECURSE
  "libstackscope_uarch.a"
)
