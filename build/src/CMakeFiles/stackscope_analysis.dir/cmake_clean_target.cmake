file(REMOVE_RECURSE
  "libstackscope_analysis.a"
)
