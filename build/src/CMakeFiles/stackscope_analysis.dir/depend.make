# Empty dependencies file for stackscope_analysis.
# This may be replaced when dependencies are built.
