file(REMOVE_RECURSE
  "CMakeFiles/stackscope_analysis.dir/analysis/bounds.cpp.o"
  "CMakeFiles/stackscope_analysis.dir/analysis/bounds.cpp.o.d"
  "CMakeFiles/stackscope_analysis.dir/analysis/boxplot.cpp.o"
  "CMakeFiles/stackscope_analysis.dir/analysis/boxplot.cpp.o.d"
  "CMakeFiles/stackscope_analysis.dir/analysis/csv.cpp.o"
  "CMakeFiles/stackscope_analysis.dir/analysis/csv.cpp.o.d"
  "CMakeFiles/stackscope_analysis.dir/analysis/render.cpp.o"
  "CMakeFiles/stackscope_analysis.dir/analysis/render.cpp.o.d"
  "libstackscope_analysis.a"
  "libstackscope_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
