# Empty dependencies file for stackscope_core.
# This may be replaced when dependencies are built.
