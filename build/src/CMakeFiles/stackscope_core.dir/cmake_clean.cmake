file(REMOVE_RECURSE
  "CMakeFiles/stackscope_core.dir/core/ooo_core.cpp.o"
  "CMakeFiles/stackscope_core.dir/core/ooo_core.cpp.o.d"
  "libstackscope_core.a"
  "libstackscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
