file(REMOVE_RECURSE
  "libstackscope_core.a"
)
