# Empty dependencies file for stackscope_stacks.
# This may be replaced when dependencies are built.
