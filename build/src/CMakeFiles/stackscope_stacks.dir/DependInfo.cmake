
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stacks/components.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/components.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/components.cpp.o.d"
  "/root/repo/src/stacks/cpi_accountant.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/cpi_accountant.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/cpi_accountant.cpp.o.d"
  "/root/repo/src/stacks/cycle_state.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/cycle_state.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/cycle_state.cpp.o.d"
  "/root/repo/src/stacks/flops_accountant.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/flops_accountant.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/flops_accountant.cpp.o.d"
  "/root/repo/src/stacks/speculation.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/speculation.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/speculation.cpp.o.d"
  "/root/repo/src/stacks/stack.cpp" "src/CMakeFiles/stackscope_stacks.dir/stacks/stack.cpp.o" "gcc" "src/CMakeFiles/stackscope_stacks.dir/stacks/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
