file(REMOVE_RECURSE
  "CMakeFiles/stackscope_stacks.dir/stacks/components.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/components.cpp.o.d"
  "CMakeFiles/stackscope_stacks.dir/stacks/cpi_accountant.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/cpi_accountant.cpp.o.d"
  "CMakeFiles/stackscope_stacks.dir/stacks/cycle_state.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/cycle_state.cpp.o.d"
  "CMakeFiles/stackscope_stacks.dir/stacks/flops_accountant.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/flops_accountant.cpp.o.d"
  "CMakeFiles/stackscope_stacks.dir/stacks/speculation.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/speculation.cpp.o.d"
  "CMakeFiles/stackscope_stacks.dir/stacks/stack.cpp.o"
  "CMakeFiles/stackscope_stacks.dir/stacks/stack.cpp.o.d"
  "libstackscope_stacks.a"
  "libstackscope_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
