file(REMOVE_RECURSE
  "libstackscope_stacks.a"
)
