# Empty dependencies file for stackscope_common.
# This may be replaced when dependencies are built.
