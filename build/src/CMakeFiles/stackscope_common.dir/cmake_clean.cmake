file(REMOVE_RECURSE
  "CMakeFiles/stackscope_common.dir/common/rng.cpp.o"
  "CMakeFiles/stackscope_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/stackscope_common.dir/common/stats_math.cpp.o"
  "CMakeFiles/stackscope_common.dir/common/stats_math.cpp.o.d"
  "libstackscope_common.a"
  "libstackscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
