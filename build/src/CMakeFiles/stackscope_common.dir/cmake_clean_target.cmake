file(REMOVE_RECURSE
  "libstackscope_common.a"
)
