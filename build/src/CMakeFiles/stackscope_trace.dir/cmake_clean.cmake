file(REMOVE_RECURSE
  "CMakeFiles/stackscope_trace.dir/trace/hpc_kernels.cpp.o"
  "CMakeFiles/stackscope_trace.dir/trace/hpc_kernels.cpp.o.d"
  "CMakeFiles/stackscope_trace.dir/trace/instruction.cpp.o"
  "CMakeFiles/stackscope_trace.dir/trace/instruction.cpp.o.d"
  "CMakeFiles/stackscope_trace.dir/trace/synthetic_generator.cpp.o"
  "CMakeFiles/stackscope_trace.dir/trace/synthetic_generator.cpp.o.d"
  "CMakeFiles/stackscope_trace.dir/trace/trace_builder.cpp.o"
  "CMakeFiles/stackscope_trace.dir/trace/trace_builder.cpp.o.d"
  "CMakeFiles/stackscope_trace.dir/trace/workload_library.cpp.o"
  "CMakeFiles/stackscope_trace.dir/trace/workload_library.cpp.o.d"
  "libstackscope_trace.a"
  "libstackscope_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
