# Empty dependencies file for stackscope_trace.
# This may be replaced when dependencies are built.
