file(REMOVE_RECURSE
  "libstackscope_trace.a"
)
