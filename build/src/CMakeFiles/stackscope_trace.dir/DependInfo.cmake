
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/hpc_kernels.cpp" "src/CMakeFiles/stackscope_trace.dir/trace/hpc_kernels.cpp.o" "gcc" "src/CMakeFiles/stackscope_trace.dir/trace/hpc_kernels.cpp.o.d"
  "/root/repo/src/trace/instruction.cpp" "src/CMakeFiles/stackscope_trace.dir/trace/instruction.cpp.o" "gcc" "src/CMakeFiles/stackscope_trace.dir/trace/instruction.cpp.o.d"
  "/root/repo/src/trace/synthetic_generator.cpp" "src/CMakeFiles/stackscope_trace.dir/trace/synthetic_generator.cpp.o" "gcc" "src/CMakeFiles/stackscope_trace.dir/trace/synthetic_generator.cpp.o.d"
  "/root/repo/src/trace/trace_builder.cpp" "src/CMakeFiles/stackscope_trace.dir/trace/trace_builder.cpp.o" "gcc" "src/CMakeFiles/stackscope_trace.dir/trace/trace_builder.cpp.o.d"
  "/root/repo/src/trace/workload_library.cpp" "src/CMakeFiles/stackscope_trace.dir/trace/workload_library.cpp.o" "gcc" "src/CMakeFiles/stackscope_trace.dir/trace/workload_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
