
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core_config.cpp" "src/CMakeFiles/stackscope_sim.dir/sim/core_config.cpp.o" "gcc" "src/CMakeFiles/stackscope_sim.dir/sim/core_config.cpp.o.d"
  "/root/repo/src/sim/multicore.cpp" "src/CMakeFiles/stackscope_sim.dir/sim/multicore.cpp.o" "gcc" "src/CMakeFiles/stackscope_sim.dir/sim/multicore.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/CMakeFiles/stackscope_sim.dir/sim/presets.cpp.o" "gcc" "src/CMakeFiles/stackscope_sim.dir/sim/presets.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/stackscope_sim.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/stackscope_sim.dir/sim/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
