file(REMOVE_RECURSE
  "CMakeFiles/stackscope_sim.dir/sim/core_config.cpp.o"
  "CMakeFiles/stackscope_sim.dir/sim/core_config.cpp.o.d"
  "CMakeFiles/stackscope_sim.dir/sim/multicore.cpp.o"
  "CMakeFiles/stackscope_sim.dir/sim/multicore.cpp.o.d"
  "CMakeFiles/stackscope_sim.dir/sim/presets.cpp.o"
  "CMakeFiles/stackscope_sim.dir/sim/presets.cpp.o.d"
  "CMakeFiles/stackscope_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/stackscope_sim.dir/sim/simulation.cpp.o.d"
  "libstackscope_sim.a"
  "libstackscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
