# Empty compiler generated dependencies file for stackscope_sim.
# This may be replaced when dependencies are built.
