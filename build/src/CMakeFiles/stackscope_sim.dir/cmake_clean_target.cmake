file(REMOVE_RECURSE
  "libstackscope_sim.a"
)
