
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/idealization_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/idealization_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/idealization_test.cpp.o.d"
  "/root/repo/tests/sim/multicore_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/multicore_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/multicore_test.cpp.o.d"
  "/root/repo/tests/sim/simulation_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/simulation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
