
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/hpc_kernels_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/hpc_kernels_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/hpc_kernels_test.cpp.o.d"
  "/root/repo/tests/trace/synthetic_generator_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/synthetic_generator_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/synthetic_generator_test.cpp.o.d"
  "/root/repo/tests/trace/trace_builder_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_builder_test.cpp.o.d"
  "/root/repo/tests/trace/workload_library_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/workload_library_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/workload_library_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
