file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/uarch/branch_predictor_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/branch_predictor_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/cache_hierarchy_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/cache_hierarchy_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/cache_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/cache_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/fu_pool_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/fu_pool_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/prefetcher_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/prefetcher_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/rob_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/rob_test.cpp.o.d"
  "CMakeFiles/test_uarch.dir/uarch/tlb_test.cpp.o"
  "CMakeFiles/test_uarch.dir/uarch/tlb_test.cpp.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
