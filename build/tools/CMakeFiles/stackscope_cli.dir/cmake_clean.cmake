file(REMOVE_RECURSE
  "CMakeFiles/stackscope_cli.dir/stackscope_cli.cpp.o"
  "CMakeFiles/stackscope_cli.dir/stackscope_cli.cpp.o.d"
  "stackscope"
  "stackscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
