# Empty dependencies file for stackscope_cli.
# This may be replaced when dependencies are built.
