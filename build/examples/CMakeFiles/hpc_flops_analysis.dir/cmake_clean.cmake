file(REMOVE_RECURSE
  "CMakeFiles/hpc_flops_analysis.dir/hpc_flops_analysis.cpp.o"
  "CMakeFiles/hpc_flops_analysis.dir/hpc_flops_analysis.cpp.o.d"
  "hpc_flops_analysis"
  "hpc_flops_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_flops_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
