# Empty dependencies file for hpc_flops_analysis.
# This may be replaced when dependencies are built.
