# Empty dependencies file for custom_trace_builder.
# This may be replaced when dependencies are built.
