file(REMOVE_RECURSE
  "CMakeFiles/custom_trace_builder.dir/custom_trace_builder.cpp.o"
  "CMakeFiles/custom_trace_builder.dir/custom_trace_builder.cpp.o.d"
  "custom_trace_builder"
  "custom_trace_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_trace_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
