
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spec_bottleneck_explorer.cpp" "examples/CMakeFiles/spec_bottleneck_explorer.dir/spec_bottleneck_explorer.cpp.o" "gcc" "examples/CMakeFiles/spec_bottleneck_explorer.dir/spec_bottleneck_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stackscope_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stackscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
