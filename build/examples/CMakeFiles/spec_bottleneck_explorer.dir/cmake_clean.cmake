file(REMOVE_RECURSE
  "CMakeFiles/spec_bottleneck_explorer.dir/spec_bottleneck_explorer.cpp.o"
  "CMakeFiles/spec_bottleneck_explorer.dir/spec_bottleneck_explorer.cpp.o.d"
  "spec_bottleneck_explorer"
  "spec_bottleneck_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_bottleneck_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
