# Empty dependencies file for spec_bottleneck_explorer.
# This may be replaced when dependencies are built.
