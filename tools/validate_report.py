#!/usr/bin/env python3
"""Validate a stackscope run report against the docs/formats.md contract.

Checks, for report schema v1 and v2:
  * the schema/version envelope and required keys at every level;
  * every stage stack uses exactly the documented component names, and
    every FLOPS stack the documented FLOPS component names;
  * the stack law: each result's cycle stacks sum to its cycle count;
  * interval conservation: when intervals are present, windows tile
    [0, cycles) contiguously and the cycle-weighted window stacks sum to
    the whole-run stack within 1e-9 * cycles;
  * v2 only: the "host_metrics" member exists and is null or a
    well-formed snapshot (counters/gauges/histograms, each histogram
    with len(counts) == len(bounds) + 1 and total == sum(counts));
  * v2 only: an optional per-job "job_status" section is well-formed
    (status/attempts/error); jobs whose status is timeout, quarantined
    or skipped carry an empty results array and a null aggregate, while
    completed jobs ("ok"/"retried", or no job_status at all) must have
    exactly one result per core.

Accepts wire-delivered reports too (docs/serving.md): the input may be
a bare report (with or without a trailing newline), a serve `result`
frame, or an HTTP /analyze response body — frames are unwrapped to
their embedded "report" member before validation. Pass `-` to read
from stdin, e.g. piped straight out of tools/stackscope_client.py.

Stdlib only:  python3 tools/validate_report.py report.json
              tools/stackscope_client.py ... | python3 tools/validate_report.py -
"""

import json
import sys

CPI_COMPONENTS = ["Base", "Icache", "Bpred", "Dcache", "ALU lat", "Depend",
                  "Microcode", "Other", "Unsched"]
FLOPS_COMPONENTS = ["Base", "Non-FMA", "Mask", "Frontend", "Non-VFP",
                    "Memory", "Depend", "Unsched"]
STAGES = ["dispatch", "issue", "commit"]
JOB_STATUSES = {"ok", "retried", "timeout", "quarantined", "skipped"}
COMPLETED_STATUSES = {"ok", "retried"}
RESULT_KEYS = {"core", "machine", "cycles", "instrs", "cpi", "ipc",
               "freq_hz", "core_peak_flops", "achieved_flops", "stats",
               "cpi_stacks", "cycle_stacks", "flops_cycles", "validation",
               "intervals", "trace"}


class Failure(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Failure(message)


def check_stack(stack, components, where):
    require(isinstance(stack, dict), f"{where}: not an object")
    require(sorted(stack) == sorted(components),
            f"{where}: components {sorted(stack)} != documented "
            f"{sorted(components)}")
    for name, v in stack.items():
        require(isinstance(v, (int, float)),
                f"{where}[{name}]: non-numeric value {v!r}")


def check_staged_stacks(stacks, components, where):
    require(sorted(stacks) == sorted(STAGES),
            f"{where}: stages {sorted(stacks)} != {sorted(STAGES)}")
    for stage in STAGES:
        check_stack(stacks[stage], components, f"{where}.{stage}")


def check_intervals(iv, result, where):
    require(iv["window"] >= 1, f"{where}: window < 1")
    samples = iv["samples"]
    require(samples, f"{where}: empty samples")
    tol = 1e-9 * max(1.0, result["cycles"])
    summed = {s: dict.fromkeys(CPI_COMPONENTS, 0.0) for s in STAGES}
    fsummed = dict.fromkeys(FLOPS_COMPONENTS, 0.0)
    prev_end = 0
    instrs = 0
    for i, s in enumerate(samples):
        w = f"{where}.samples[{i}]"
        require(s["start"] == prev_end, f"{w}: gap (start {s['start']}, "
                f"previous end {prev_end})")
        require(s["end"] > s["start"], f"{w}: empty window")
        prev_end = s["end"]
        instrs += s["instrs"]
        check_staged_stacks(s["cycle_stacks"], CPI_COMPONENTS,
                            f"{w}.cycle_stacks")
        check_stack(s["flops_cycles"], FLOPS_COMPONENTS, f"{w}.flops_cycles")
        for stage in STAGES:
            for c, v in s["cycle_stacks"][stage].items():
                summed[stage][c] += v
        for c, v in s["flops_cycles"].items():
            fsummed[c] += v
    require(prev_end == result["cycles"],
            f"{where}: windows end at {prev_end}, run has "
            f"{result['cycles']} cycles")
    require(instrs == result["instrs"],
            f"{where}: window instrs sum {instrs} != {result['instrs']}")
    for stage in STAGES:
        for c in CPI_COMPONENTS:
            whole = result["cycle_stacks"][stage][c]
            require(abs(summed[stage][c] - whole) <= tol,
                    f"{where}: {stage}/{c} summed {summed[stage][c]} != "
                    f"whole-run {whole} (tol {tol})")
    for c in FLOPS_COMPONENTS:
        whole = result["flops_cycles"][c]
        require(abs(fsummed[c] - whole) <= tol,
                f"{where}: flops/{c} summed {fsummed[c]} != {whole}")


def check_result(result, where):
    require(RESULT_KEYS <= set(result),
            f"{where}: missing keys {sorted(RESULT_KEYS - set(result))}")
    check_staged_stacks(result["cpi_stacks"], CPI_COMPONENTS,
                        f"{where}.cpi_stacks")
    check_staged_stacks(result["cycle_stacks"], CPI_COMPONENTS,
                        f"{where}.cycle_stacks")
    check_stack(result["flops_cycles"], FLOPS_COMPONENTS,
                f"{where}.flops_cycles")
    # The stack law (paper Table II): each stage's cycle stack sums to
    # the run's cycle count.
    tol = 1e-6 * max(1.0, result["cycles"])
    for stage in STAGES:
        total = sum(result["cycle_stacks"][stage].values())
        require(abs(total - result["cycles"]) <= tol,
                f"{where}.cycle_stacks.{stage}: sums to {total}, run has "
                f"{result['cycles']} cycles")
    val = result["validation"]
    for key in ("policy", "checks_run", "passed", "violations"):
        require(key in val, f"{where}.validation: missing '{key}'")
    if result["intervals"] is not None:
        check_intervals(result["intervals"], result, f"{where}.intervals")
    if result["trace"] is not None:
        for key in ("captured", "emitted", "dropped", "end_cycle"):
            require(key in result["trace"], f"{where}.trace: missing '{key}'")


def check_host_metrics(hm):
    if hm is None:
        return
    require(isinstance(hm, dict), "host_metrics: not an object or null")
    for key in ("counters", "gauges", "histograms"):
        require(key in hm, f"host_metrics: missing '{key}'")
    for name, v in hm["counters"].items():
        require(isinstance(v, int) and v >= 0,
                f"host_metrics.counters[{name}]: not a non-negative int")
    for name, v in hm["gauges"].items():
        require(isinstance(v, (int, float)),
                f"host_metrics.gauges[{name}]: non-numeric value {v!r}")
    for name, h in hm["histograms"].items():
        where = f"host_metrics.histograms[{name}]"
        for key in ("bounds", "counts", "total", "sum"):
            require(key in h, f"{where}: missing '{key}'")
        require(len(h["counts"]) == len(h["bounds"]) + 1,
                f"{where}: {len(h['counts'])} counts for "
                f"{len(h['bounds'])} bounds")
        require(h["bounds"] == sorted(h["bounds"]),
                f"{where}: bounds not ascending")
        require(sum(h["counts"]) == h["total"],
                f"{where}: counts sum to {sum(h['counts'])}, "
                f"total says {h['total']}")


def check_report(doc):
    require(doc.get("schema") == "stackscope-report",
            f"schema is {doc.get('schema')!r}, expected 'stackscope-report'")
    version = doc.get("version")
    require(version in (1, 2),
            f"version is {version!r}, this checker knows v1 and v2")
    require(isinstance(doc.get("command"), str), "missing 'command'")
    if version >= 2:
        require("host_metrics" in doc, "v2 report missing 'host_metrics'")
        check_host_metrics(doc["host_metrics"])
    jobs = doc.get("jobs")
    require(isinstance(jobs, list) and jobs, "missing or empty 'jobs'")
    results = 0
    for j, job in enumerate(jobs):
        where = f"jobs[{j}]"
        for key in ("label", "cores", "options", "results", "aggregate"):
            require(key in job, f"{where}: missing '{key}'")
        # "job_status" (v2, additive): absent means completed; failed or
        # skipped jobs legitimately carry no results.
        completed = True
        if "job_status" in job:
            status = job["job_status"]
            for key in ("status", "attempts", "error"):
                require(key in status, f"{where}.job_status: missing "
                        f"'{key}'")
            require(status["status"] in JOB_STATUSES,
                    f"{where}.job_status: unknown status "
                    f"{status['status']!r}")
            require(isinstance(status["attempts"], int)
                    and status["attempts"] >= 0,
                    f"{where}.job_status: bad attempts "
                    f"{status['attempts']!r}")
            completed = status["status"] in COMPLETED_STATUSES
            require(completed == (status["error"] == ""),
                    f"{where}.job_status: error text and status disagree")
        if completed:
            require(len(job["results"]) == job["cores"],
                    f"{where}: {len(job['results'])} results for "
                    f"{job['cores']} cores")
        else:
            require(job["results"] == [],
                    f"{where}: failed job carries results")
            require(job["aggregate"] is None,
                    f"{where}: failed job carries an aggregate")
        for r, result in enumerate(job["results"]):
            check_result(result, f"{where}.results[{r}]")
            results += 1
        if completed and job["cores"] > 1:
            require(job["aggregate"] is not None,
                    f"{where}: multicore job lacks aggregate")
    return len(jobs), results


def unwrap(doc):
    """Return the report object inside ``doc``.

    A report read off the serve wire may arrive wrapped: a `result`
    frame ({"type":"result",...,"report":{...}}) from the NDJSON
    protocol, or the equivalent HTTP /analyze body. A bare report is
    returned as-is; anything else fails with a clear message.
    """
    require(isinstance(doc, dict), "input: not a JSON object")
    if doc.get("schema") == "stackscope-report":
        return doc
    if "report" in doc:
        inner = doc["report"]
        require(isinstance(inner, dict),
                "input: 'report' member is not an object")
        return inner
    raise Failure("input: neither a stackscope report nor a serve "
                  "result frame")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} report.json|- ", file=sys.stderr)
        return 2
    path = sys.argv[1]
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    # json.loads tolerates both a missing trailing newline (reports
    # sliced out of a wire frame) and the file-form trailing newline.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"FAIL: input is not valid JSON: {e}")
        return 1
    try:
        doc = unwrap(doc)
        jobs, results = check_report(doc)
    except Failure as e:
        print(f"FAIL: {e}")
        return 1
    source = "stdin" if path == "-" else path
    print(f"OK: {source} is a valid v{doc.get('version')} report "
          f"({jobs} job(s), {results} result(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
