#!/usr/bin/env python3
"""Gate the engine-speed benchmark against its committed baseline.

Reads a fresh ``BENCH_simspeed.json`` (schema ``stackscope-simspeed-v1``,
written by ``bench/simspeed``) and the committed baseline
``bench/simspeed_baseline.json``, then fails when the batched engine's
advantage over the per-cycle reference engine has regressed by more than
the tolerance (default 10%).

The gated metric is ``totals.speedup_vs_reference`` — a *ratio* of two
timings taken back-to-back in the same process, so shared-runner noise
largely cancels where raw cycles/sec would not. Absolute throughput is
still printed for the log, but never gated.

Exit codes follow docs/exit_codes.md:
  0  speedup within tolerance of the baseline
  1  internal error
  2  usage error, unreadable input, or schema mismatch
  4  regression — speedup fell more than --tolerance below the baseline,
     or the benchmark recorded an engine mismatch (engines_identical
     false), which makes its timings meaningless

Stdlib only:
  python3 tools/check_simspeed.py BENCH_simspeed.json [baseline.json]
"""

import argparse
import json
import os
import sys

SCHEMA = "stackscope-simspeed-v1"
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "bench", "simspeed_baseline.json")


def load(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {what} {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != SCHEMA:
        print(f"FAIL: {what} {path}: schema {doc.get('schema')!r}, "
              f"expected {SCHEMA!r}", file=sys.stderr)
        raise SystemExit(2)
    return doc


def speedup_of(doc, path):
    try:
        s = doc["totals"]["speedup_vs_reference"]
    except (KeyError, TypeError):
        print(f"FAIL: {path}: missing totals.speedup_vs_reference",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(s, (int, float)) or s <= 0:
        print(f"FAIL: {path}: bad speedup value {s!r}", file=sys.stderr)
        raise SystemExit(2)
    return float(s)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", help="fresh BENCH_simspeed.json to check")
    ap.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                    help="committed baseline (default: "
                         "bench/simspeed_baseline.json)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10)")
    args = ap.parse_args()
    if not 0 <= args.tolerance < 1:
        ap.error("--tolerance must be in [0, 1)")

    fresh = load(args.bench, "benchmark")
    base = load(args.baseline, "baseline")

    if fresh.get("engines_identical") is not True:
        print(f"FAIL: {args.bench}: engines_identical is "
              f"{fresh.get('engines_identical')!r} — the batched engine "
              f"diverged from the reference, timings are meaningless")
        return 4

    got = speedup_of(fresh, args.bench)
    want = speedup_of(base, args.baseline)
    floor = want * (1.0 - args.tolerance)

    throughput = fresh.get("totals", {}).get("batched_cycles_per_sec")
    extra = (f", batched {throughput / 1e6:.2f}M cycles/sec"
             if isinstance(throughput, (int, float)) else "")
    if got < floor:
        print(f"FAIL: speedup_vs_reference {got:.3f}x is below the floor "
              f"{floor:.3f}x (baseline {want:.3f}x minus "
              f"{args.tolerance:.0%} tolerance){extra}")
        return 4
    print(f"OK: speedup_vs_reference {got:.3f}x vs baseline {want:.3f}x "
          f"(floor {floor:.3f}x){extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
