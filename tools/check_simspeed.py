#!/usr/bin/env python3
"""Gate the engine-speed benchmark against its committed baseline.

Reads a fresh ``BENCH_simspeed.json`` (schema ``stackscope-simspeed-v2``,
written by ``bench/simspeed``) and the committed baseline
``bench/simspeed_baseline.json``, then fails when the batched engine's
advantage over the per-cycle reference engine has regressed by more than
the tolerance (default 10%).

Two gates run, both on *ratios* of timings taken back-to-back in the same
process (shared-runner noise largely cancels where raw cycles/sec would
not):

  aggregate  ``totals.speedup_vs_reference`` must stay within
             ``--tolerance`` of the committed baseline value.
  per-point  every entry of ``points[]`` must keep ``speedup`` at or
             above ``--point-floor`` (default 1.0 minus the per-point
             tolerance): the batched engine is never allowed to be
             slower than the reference engine anywhere on the grid, not
             just on average. Low-idle points have no skip-ahead runway,
             so this is the gate that catches per-record overhead creep.

Absolute throughput is still printed for the log, but never gated.
Profiled runs (``profiled: true``) are rejected: the per-stage clock
reads perturb the timings, so a ``--profile`` JSON must not feed a gate.

Exit codes follow docs/exit_codes.md:
  0  both gates pass
  1  internal error
  2  usage error, unreadable input, schema mismatch, or a profiled input
  4  regression — aggregate speedup fell more than --tolerance below the
     baseline, any grid point fell below the per-point floor, or the
     benchmark recorded an engine mismatch (engines_identical false),
     which makes its timings meaningless

Stdlib only:
  python3 tools/check_simspeed.py BENCH_simspeed.json [baseline.json]
"""

import argparse
import json
import os
import sys

SCHEMA = "stackscope-simspeed-v2"
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "bench", "simspeed_baseline.json")


def load(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {what} {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != SCHEMA:
        print(f"FAIL: {what} {path}: schema {doc.get('schema')!r}, "
              f"expected {SCHEMA!r}", file=sys.stderr)
        raise SystemExit(2)
    return doc


def speedup_of(doc, path):
    try:
        s = doc["totals"]["speedup_vs_reference"]
    except (KeyError, TypeError):
        print(f"FAIL: {path}: missing totals.speedup_vs_reference",
              file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(s, (int, float)) or s <= 0:
        print(f"FAIL: {path}: bad speedup value {s!r}", file=sys.stderr)
        raise SystemExit(2)
    return float(s)


def point_speedups(doc, path):
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        print(f"FAIL: {path}: missing or empty points array",
              file=sys.stderr)
        raise SystemExit(2)
    out = []
    for i, pt in enumerate(points):
        s = pt.get("speedup") if isinstance(pt, dict) else None
        if not isinstance(s, (int, float)) or s <= 0:
            print(f"FAIL: {path}: points[{i}] has bad speedup {s!r}",
                  file=sys.stderr)
            raise SystemExit(2)
        label = "{}@{}".format(pt.get("workload", "?"), pt.get("machine", "?"))
        out.append((label, float(s)))
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench", help="fresh BENCH_simspeed.json to check")
    ap.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                    help="committed baseline (default: "
                         "bench/simspeed_baseline.json)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional aggregate regression "
                         "(default 0.10)")
    ap.add_argument("--point-floor", type=float, default=0.90,
                    help="minimum per-point speedup; any grid point below "
                         "this fails the gate (default 0.90 — the "
                         "structural requirement is 1.0, never slower "
                         "than the reference; the 0.10 allowance is "
                         "purely per-point timing noise, which measured "
                         "dips to ~0.92 on points whose median is >1.0)")
    args = ap.parse_args()
    if not 0 <= args.tolerance < 1:
        ap.error("--tolerance must be in [0, 1)")
    if args.point_floor <= 0:
        ap.error("--point-floor must be positive")

    fresh = load(args.bench, "benchmark")
    base = load(args.baseline, "baseline")

    if fresh.get("profiled") is True:
        print(f"FAIL: {args.bench}: recorded with --profile; per-stage "
              f"clock reads perturb timings, rerun without it",
              file=sys.stderr)
        return 2

    if fresh.get("engines_identical") is not True:
        print(f"FAIL: {args.bench}: engines_identical is "
              f"{fresh.get('engines_identical')!r} — the batched engine "
              f"diverged from the reference, timings are meaningless")
        return 4

    got = speedup_of(fresh, args.bench)
    want = speedup_of(base, args.baseline)
    floor = want * (1.0 - args.tolerance)

    slow = [(label, s) for label, s in point_speedups(fresh, args.bench)
            if s < args.point_floor]
    if slow:
        for label, s in slow:
            print(f"FAIL: point {label}: speedup {s:.3f}x is below the "
                  f"per-point floor {args.point_floor:.3f}x")
        return 4

    throughput = fresh.get("totals", {}).get("batched_cycles_per_sec")
    extra = (f", batched {throughput / 1e6:.2f}M cycles/sec"
             if isinstance(throughput, (int, float)) else "")
    if got < floor:
        print(f"FAIL: speedup_vs_reference {got:.3f}x is below the floor "
              f"{floor:.3f}x (baseline {want:.3f}x minus "
              f"{args.tolerance:.0%} tolerance){extra}")
        return 4
    print(f"OK: speedup_vs_reference {got:.3f}x vs baseline {want:.3f}x "
          f"(floor {floor:.3f}x), all {len(point_speedups(fresh, args.bench))} "
          f"points at or above {args.point_floor:.2f}x{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
