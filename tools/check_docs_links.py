#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans every tracked *.md file for inline links and validates that
relative targets exist on disk (anchors are checked against the target
file's headings). External http(s) links are not fetched. Exits non-zero
listing every broken link, so CI fails when docs drift from the tree.

Stdlib only; run from the repository root:  python3 tools/check_docs_links.py
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def heading_anchor(text):
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"[`*_]", "", text.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", "third_party"}
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            content = f.read()
        cache[path] = {heading_anchor(h) for h in HEADING_RE.findall(content)}
    return cache[path]


def check_file(md_path, root):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    for target in LINK_RE.findall(content):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part))
        else:
            resolved = md_path  # pure in-page anchor
        if not os.path.exists(resolved):
            errors.append(f"{os.path.relpath(md_path, root)}: "
                          f"broken link target '{target}'")
            continue
        if anchor and resolved.endswith(".md"):
            if heading_anchor(anchor) not in anchors_of(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}: "
                              f"missing anchor '#{anchor}' in '{path_part}'")
    return errors


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = []
    checked = 0
    for md in sorted(markdown_files(root)):
        errors.extend(check_file(md, root))
        checked += 1
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
