#!/usr/bin/env python3
"""Thin client for the `stackscope serve` daemon.

Speaks the newline-delimited JSON protocol documented in docs/serving.md
over a Unix-domain socket (--socket) or loopback TCP (--host/--port;
note the TCP listener itself speaks HTTP — this client uses the NDJSON
protocol and therefore requires --socket for full functionality; over
TCP it issues single HTTP requests).

The report is extracted from the result frame *byte-for-byte* (the
"report" member is documented to be the frame's last member for exactly
this purpose), so a file written by --out is byte-identical to a cold
`stackscope run --no-host-metrics --report-out` of the same spec and
can be fed straight to tools/validate_report.py or diff-report.

Examples:
    stackscope_client.py --socket /tmp/ss.sock \
        --workload mcf --machine bdw --instrs 20000 --out report.json
    stackscope_client.py --socket /tmp/ss.sock --statusz
    stackscope_client.py --host 127.0.0.1 --port 8080 --statusz
    stackscope_client.py --port 8080 --metricsz
    stackscope_client.py --port 8080 --tracez r-42 --trace-format chrome

Exit codes mirror the daemon's error categories (docs/exit_codes.md):
0 success, 1 internal/transport error, 2 usage/config, 3
validation/watchdog.
"""

import argparse
import json
import socket
import sys
import time

CATEGORY_EXIT = {
    "usage": 2,
    "config": 2,
    "validation": 3,
    "watchdog": 3,
    "internal": 1,
}


def build_spec(args):
    spec = {"workload": args.workload, "machine": args.machine}
    if args.cores != 1:
        spec["cores"] = args.cores
    if args.instrs is not None:
        spec["instrs"] = args.instrs
    if args.warmup is not None:
        spec["warmup"] = args.warmup
    options = {}
    if args.spec_mode:
        options["spec_mode"] = args.spec_mode
    if args.engine:
        options["engine"] = args.engine
    if args.validate:
        options["validate"] = args.validate
    if options:
        spec["options"] = options
    return spec


def extract_report_bytes(frame_line):
    """Slice the verbatim report bytes out of a result frame.

    The result frame is `{...,"report":<report>}` with "report" last
    (docs/serving.md), so the report is everything between the marker
    and the frame's final closing brace.
    """
    marker = b'"report":'
    start = frame_line.index(marker) + len(marker)
    end = frame_line.rstrip(b"\n").rindex(b"}")
    return frame_line[start:end]


def connect_unix(path, timeout, retries, retry_delay):
    """Connect with a bounded retry loop.

    A daemon started moments ago may not have bound its socket yet;
    rather than racing with `sleep` in scripts, retry the connect a few
    times with a fixed delay. Everything after the connect uses the
    ordinary --timeout deadline.
    """
    last_error = None
    for attempt in range(retries + 1):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(path)
            return sock
        except OSError as exc:
            sock.close()
            last_error = exc
            if attempt < retries:
                time.sleep(retry_delay)
    raise last_error


def run_ndjson(sock, args):
    rfile = sock.makefile("rb")
    hello = json.loads(rfile.readline())
    if hello.get("schema") != "stackscope-serve":
        print("error: not a stackscope-serve endpoint", file=sys.stderr)
        return 1

    if args.ping:
        request = {"type": "ping", "id": "0"}
    elif args.statusz:
        request = {"type": "statusz", "id": "0"}
    else:
        request = {"type": "analyze", "id": "0", "spec": build_spec(args)}
    sock.sendall(json.dumps(request).encode() + b"\n")

    while True:
        line = rfile.readline()
        if not line:
            print("error: connection closed by daemon", file=sys.stderr)
            return 1
        frame = json.loads(line)
        ftype = frame.get("type")
        if ftype == "progress":
            print(
                "progress: request=%s key=%s elapsed=%dms"
                % (
                    frame.get("request"),
                    frame.get("key"),
                    frame.get("elapsed_ms", 0),
                ),
                file=sys.stderr,
            )
            continue
        if ftype == "error":
            print(
                "%s error: %s"
                % (frame.get("category"), frame.get("message")),
                file=sys.stderr,
            )
            return CATEGORY_EXIT.get(frame.get("category"), 1)
        if ftype == "pong":
            print("pong")
            return 0
        if ftype == "status":
            json.dump(frame, sys.stdout, indent=2)
            print()
            return 0
        if ftype == "result":
            report = extract_report_bytes(line)
            print(
                "result: request=%s key=%s cache=%s (%d report bytes)"
                % (
                    frame.get("request"),
                    frame.get("key"),
                    frame.get("cache"),
                    len(report),
                ),
                file=sys.stderr,
            )
            if args.out:
                with open(args.out, "wb") as out:
                    out.write(report)
            else:
                sys.stdout.buffer.write(report + b"\n")
            return 0
        print("error: unexpected frame type %r" % ftype, file=sys.stderr)
        return 1


def run_http(args):
    import http.client

    conn = http.client.HTTPConnection(
        args.host, args.port, timeout=args.timeout
    )
    if args.statusz:
        conn.request("GET", "/statusz")
    elif args.ping:
        conn.request("GET", "/healthz")
    elif args.metricsz:
        conn.request("GET", "/metricsz")
    elif args.tracez is not None:
        target = "/tracez"
        if args.tracez:
            target += "?id=" + args.tracez
            if args.trace_format:
                target += "&format=" + args.trace_format
        conn.request("GET", target)
    else:
        conn.request(
            "POST",
            "/analyze",
            body=json.dumps(build_spec(args)),
            headers={"Content-Type": "application/json"},
        )
    response = conn.getresponse()
    body = response.read()
    if response.status != 200:
        frame = json.loads(body)
        print(
            "%s error: %s" % (frame.get("category"), frame.get("message")),
            file=sys.stderr,
        )
        return CATEGORY_EXIT.get(frame.get("category"), 1)
    if args.statusz or args.ping or args.metricsz or args.tracez is not None:
        sys.stdout.buffer.write(body)
        return 0
    report = extract_report_bytes(body)
    if args.out:
        with open(args.out, "wb") as out:
            out.write(report)
    else:
        sys.stdout.buffer.write(report + b"\n")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="client for the stackscope serve daemon"
    )
    target = parser.add_argument_group("endpoint")
    target.add_argument("--socket", help="Unix-domain socket path")
    target.add_argument("--host", default="127.0.0.1", help="TCP host")
    target.add_argument("--port", type=int, help="TCP (HTTP) port")
    target.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="socket timeout in seconds (default 60; covers connect, "
        "each protocol read, and HTTP requests)",
    )
    target.add_argument(
        "--connect-retries",
        type=int,
        default=5,
        help="retry a refused/absent --socket connect this many times "
        "(default 5, 0 disables)",
    )
    target.add_argument(
        "--connect-retry-delay",
        type=float,
        default=0.2,
        help="delay between connect retries in seconds (default 0.2)",
    )
    spec = parser.add_argument_group("job spec")
    spec.add_argument("--workload", default="mcf")
    spec.add_argument("--machine", default="bdw")
    spec.add_argument("--cores", type=int, default=1)
    spec.add_argument("--instrs", type=int)
    spec.add_argument("--warmup", type=int)
    spec.add_argument("--spec-mode", choices=["oracle", "simple",
                                              "spec-counters"])
    spec.add_argument("--engine", choices=["batched", "reference"])
    spec.add_argument("--validate", choices=["off", "warn", "strict"])
    parser.add_argument("--out", help="write the report to this file")
    parser.add_argument("--statusz", action="store_true",
                        help="fetch the daemon status instead of analyzing")
    parser.add_argument("--ping", action="store_true",
                        help="liveness check only")
    parser.add_argument(
        "--metricsz",
        action="store_true",
        help="fetch the Prometheus text exposition (HTTP only)",
    )
    parser.add_argument(
        "--tracez",
        nargs="?",
        const="",
        metavar="REQUEST_ID",
        help="fetch a request trace by server-minted id, or the trace "
        "index when no id is given (HTTP only)",
    )
    parser.add_argument(
        "--trace-format",
        choices=["chrome"],
        help="with --tracez ID: request the Chrome trace-event rendering",
    )
    args = parser.parse_args()

    if not args.socket and args.port is None:
        parser.error("need --socket PATH or --port PORT")
    if (args.metricsz or args.tracez is not None) and args.port is None:
        parser.error("--metricsz and --tracez need --port (HTTP endpoints)")

    try:
        if args.socket and not (args.metricsz or args.tracez is not None):
            sock = connect_unix(
                args.socket,
                args.timeout,
                max(args.connect_retries, 0),
                max(args.connect_retry_delay, 0.0),
            )
            try:
                return run_ndjson(sock, args)
            finally:
                sock.close()
        return run_http(args)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
