/**
 * @file
 * The stackscope command-line tool: run any workload on any machine and
 * print (or export) multi-stage CPI stacks, FLOPS stacks, idealization
 * bounds and speculation-mode comparisons without writing C++.
 *
 * Subcommands:
 *   list                     enumerate workloads, machines and HPC kernels
 *   run     [options]        single- or multi-core run with all stacks
 *   bounds  [options]        multi-stage bounds vs measured idealizations
 *   hpc     [options]        FLOPS stack analysis of a DeepBench kernel
 *   compare-spec [options]   oracle / simple / spec-counter stacks
 *   sweep   [options]        workload x machine x cores grid, CSV output
 *   phases  [options]        interval stack time-series heatmaps
 *   diff-report A B          compare two run reports as a regression gate
 *   serve   [options]        resident analysis daemon with a result cache
 *                            (wire protocol in docs/serving.md)
 *
 * Common options:
 *   --workload NAME     workload preset (default mcf)
 *   --kernel NAME       HPC kernel (hpc subcommand; default conv_fwd_0)
 *   --machine NAME      bdw | knl | skx (default bdw)
 *   --instrs N          measured instructions (default 250000, must be > 0)
 *   --warmup N          warmup instructions (default instrs/2)
 *   --cores N[,N...]    cores sharing an uncore (default 1, must be > 0;
 *                       a comma list spans the grid's cores axis in sweep)
 *   --threads N         batch-simulation worker threads (0 = all hardware
 *                       threads; bounds, compare-spec and sweep)
 *   --workloads A,B,..  sweep workload axis (default mcf,gcc,bwaves)
 *   --machines A,B,..   sweep machine axis (default bdw,knl,skx)
 *   --csv               machine-readable output
 *   --engine E          batched (default) | reference accounting engine
 *                       (docs/performance.md)
 *   --validate MODE     off | warn | strict runtime invariant checking
 *   --inject-fault F    deterministic fault KIND[:SEED] (see usage)
 *   --watchdog-cycles N abort after N cycles without a commit (0 = off)
 *   --job-cycles N      per-job simulated-cycle budget (0 = off); a job
 *                       exceeding it fails with a watchdog error
 *   --job-timeout SECS  per-job wall-clock deadline (0 = off)
 *   --intervals N       snapshot stacks every N measured cycles
 *                       (phases defaults to 1000; 0 disables)
 *   --trace-out FILE    write a Chrome trace-event JSON pipeline trace
 *                       (run, hpc and phases)
 *   --report-out FILE   write the machine-readable JSON run report
 *                       (schema in docs/formats.md)
 *   --no-host-metrics   omit the host_metrics section from the report
 *                       (host_metrics: null), making the report fully
 *                       deterministic — what the serve cache's
 *                       byte-identity guarantee compares against
 *   --perfect-icache --perfect-dcache --perfect-bpred --ideal-alu
 *
 * serve options (docs/serving.md):
 *   --socket PATH       Unix-domain socket to listen on
 *   --tcp PORT          loopback HTTP/1.1 port (0 = ephemeral)
 *   --cache-mb N        result-cache byte budget in MiB (default 64)
 *   --heartbeat-ms N    progress-frame period (default 500)
 *   --drain-timeout SECS  shutdown grace period (default 30)
 *   --slow-ms MS        warn-log the full span breakdown for requests
 *                       slower than MS wall milliseconds (0 = off)
 *   --slo-ms MS         rolling-window latency objective surfaced in
 *                       /statusz "slo" (default 50)
 *   --trace-capacity N  finished traces kept for GET /tracez
 *                       (default 256)
 *
 * sweep resilience options (docs/formats.md, docs/exit_codes.md):
 *   --max-retries N     retry a retryably-failing job up to N times
 *   --retry-backoff-ms N  first-retry backoff delay (doubles per retry)
 *   --keep-going        quarantine failed jobs, finish the rest, exit 5
 *   --fault-job SUBSTR  inject the fault only into grid points whose
 *                       label contains SUBSTR
 *   --journal FILE      record completed points to a crash-safe journal
 *   --resume FILE       resume a sweep: replay journaled points
 *                       byte-for-byte, simulate only what is missing
 *
 * diff-report options:
 *   --tol-abs X         absolute stack-delta tolerance (default 1e-6)
 *   --tol-rel X         relative stack-delta tolerance (default 0.01)
 *   --watch M[:ABS[:REL]]  gate on host metric M too (repeatable)
 *
 * Environment: STACKSCOPE_LOG=trace|debug|info|warn|error|off (default
 * warn), STACKSCOPE_LOG_JSON=1 for JSON-lines records, and
 * STACKSCOPE_PROGRESS=0|1 to override the isatty(stderr) heartbeat
 * default (docs/observability.md).
 *
 * Exit codes (full contract in docs/exit_codes.md): 0 success,
 * 1 runtime/internal failure, 2 usage or configuration error,
 * 3 validation or watchdog failure, 4 diff-report regression,
 * 5 partial batch success (--keep-going), 6 total batch failure,
 * 7 serve bind failure (port/socket in use), 8 serve drain timeout.
 */

#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/csv.hpp"
#include "analysis/render.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/report_diff.hpp"
#include "obs/trace_events.hpp"
#include "runner/batch_runner.hpp"
#include "runner/heartbeat.hpp"
#include "runner/job_spec.hpp"
#include "runner/journal.hpp"
#include "serve/server.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/hpc_kernels.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

struct CliOptions
{
    std::string command = "help";
    std::string workload = "mcf";
    std::string kernel = "conv_fwd_0";
    std::string machine = "bdw";
    std::uint64_t instrs = 250'000;
    /** Unset means the documented default of instrs / 2. */
    std::optional<std::uint64_t> warmup{};
    unsigned cores = 1;
    /** The sweep grid's cores axis; non-sweep commands require size 1. */
    std::vector<unsigned> cores_list = {1};
    /** Batch-runner worker threads; 0 = all hardware threads. */
    unsigned threads = 0;
    /** Sweep axes. */
    std::vector<std::string> workloads = {"mcf", "gcc", "bwaves"};
    std::vector<std::string> machines = {"bdw", "knl", "skx"};
    bool csv = false;
    /** Accounting engine: per-cycle reference instead of batched. */
    bool reference_engine = false;
    sim::Idealization ideal{};
    validate::ValidationPolicy validation = validate::ValidationPolicy::kOff;
    std::optional<validate::FaultSpec> fault{};
    std::optional<Cycle> watchdog_cycles{};
    /** Per-job simulated-cycle budget; 0 = off. */
    Cycle job_cycles = 0;
    /** Per-job wall-clock deadline in seconds; 0 = off. */
    double job_timeout = 0.0;
    /** Sweep resilience: bounded retries, quarantine, journaling. */
    unsigned max_retries = 0;
    std::optional<std::uint64_t> retry_backoff_ms{};
    bool keep_going = false;
    /** Restrict --inject-fault to labels containing this substring. */
    std::string fault_job;
    std::string journal_path;
    std::string resume_path;
    /** Unset means command default: 1000 for phases, off elsewhere. */
    std::optional<Cycle> intervals{};
    std::string trace_out;
    std::string report_out;
    /** Omit host_metrics from reports, keeping them byte-deterministic. */
    bool no_host_metrics = false;
    /** serve: Unix-domain socket path (empty = no UDS listener). */
    std::string serve_socket;
    /** serve: loopback HTTP port (-1 = no TCP, 0 = ephemeral). */
    int serve_tcp = -1;
    /** serve: result-cache budget in MiB. */
    std::uint64_t cache_mb = 64;
    /** serve: progress-frame period. */
    std::uint64_t heartbeat_ms = 500;
    /** serve: shutdown grace period in seconds. */
    double drain_timeout = 30.0;
    /** serve: warn-log span breakdown above this wall time (0 = off). */
    double slow_ms = 0.0;
    /** serve: rolling-window latency objective for /statusz "slo". */
    double slo_ms = 50.0;
    /** serve: finished traces retained for GET /tracez. */
    std::uint64_t trace_capacity = 256;
    /** diff-report: the two report paths. */
    std::vector<std::string> positionals;
    obs::DiffTolerance diff_tol{};
    std::vector<obs::WatchSpec> watches;

    std::uint64_t warmupInstrs() const { return warmup.value_or(instrs / 2); }
    std::uint64_t totalInstrs() const { return instrs + warmupInstrs(); }
};

constexpr const char *kCommands =
    "list|run|bounds|hpc|compare-spec|sweep|phases|diff-report|serve|help";

/** Split "a,b,c" into its non-empty elements. */
std::vector<std::string>
splitList(const std::string &flag, const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "value for " + flag +
                                  " must be a non-empty comma list, got '" +
                                  text + "'");
    }
    return out;
}

int
usage(std::FILE *to, const char *argv0)
{
    std::string faults;
    for (std::string_view f : validate::allFaultNames()) {
        if (!faults.empty())
            faults += "|";
        faults += f;
    }
    std::fprintf(
        to,
        "usage: %s <%s> [options]\n"
        "  --workload NAME  --kernel NAME  --machine bdw|knl|skx\n"
        "  --instrs N  --warmup N  --cores N[,N...]  --csv\n"
        "  --threads N (batch workers; 0 = all hardware threads)\n"
        "  --workloads A,B,...  --machines A,B,...  (sweep grid axes)\n"
        "  --engine batched|reference (accounting engine)\n"
        "  --validate off|warn|strict  --watchdog-cycles N\n"
        "  --job-cycles N (per-job cycle budget)  --job-timeout SECS\n"
        "  --intervals N  --trace-out FILE  --report-out FILE\n"
        "  --inject-fault KIND[:SEED] with KIND one of\n"
        "      %s\n"
        "  --perfect-icache --perfect-dcache --perfect-bpred --ideal-alu\n"
        "  sweep resilience: --max-retries N  --retry-backoff-ms N\n"
        "      --keep-going (exit 5 on partial success, 6 on total\n"
        "      failure)  --fault-job SUBSTR  --journal FILE\n"
        "      --resume FILE  (see docs/exit_codes.md)\n"
        "  diff-report A B [--tol-abs X] [--tol-rel X]\n"
        "      [--watch METRIC[:ABS[:REL]]]   (exit 4 on regression)\n"
        "  --no-host-metrics (deterministic reports: host_metrics null)\n"
        "  serve --socket PATH and/or --tcp PORT [--cache-mb N]\n"
        "      [--heartbeat-ms N] [--drain-timeout SECS] [--slow-ms MS]\n"
        "      [--slo-ms MS] [--trace-capacity N]\n"
        "      (protocol in docs/serving.md; exit 7 bind failure,\n"
        "      8 drain timeout)\n",
        argv0, kCommands, faults.c_str());
    return to == stdout ? 0 : 2;
}

/** Parse a non-negative integer option value strictly. */
std::uint64_t
parseCount(const std::string &flag, const std::string &text,
           std::uint64_t min_value)
{
    std::uint64_t out = 0;
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    if (ec != std::errc{} || end != text.data() + text.size()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "value for " + flag +
                                  " must be a non-negative integer, got '" +
                                  text + "'");
    }
    if (out < min_value) {
        throw StackscopeError(ErrorCategory::kUsage,
                              flag + " must be >= " +
                                  std::to_string(min_value) + ", got " +
                                  text);
    }
    return out;
}

/** Parse a non-negative real option value strictly. */
double
parseReal(const std::string &flag, const std::string &text)
{
    try {
        std::size_t end = 0;
        const double out = std::stod(text, &end);
        if (end == text.size() && out >= 0.0)
            return out;
    } catch (const std::exception &) {
        // fall through to the uniform error below
    }
    throw StackscopeError(ErrorCategory::kUsage,
                          "value for " + flag +
                              " must be a non-negative number, got '" +
                              text + "'");
}

/** Parse --watch METRIC[:ABS[:REL]] with @p defaults for omitted parts. */
obs::WatchSpec
parseWatch(const std::string &text, const obs::DiffTolerance &defaults)
{
    obs::WatchSpec spec;
    spec.tol = defaults;
    const std::size_t c1 = text.find(':');
    spec.metric = text.substr(0, c1);
    if (spec.metric.empty()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "--watch needs METRIC[:ABS[:REL]], got '" +
                                  text + "'");
    }
    if (c1 == std::string::npos)
        return spec;
    const std::size_t c2 = text.find(':', c1 + 1);
    spec.tol.abs = parseReal(
        "--watch", text.substr(c1 + 1, c2 == std::string::npos
                                           ? std::string::npos
                                           : c2 - c1 - 1));
    if (c2 != std::string::npos)
        spec.tol.rel = parseReal("--watch", text.substr(c2 + 1));
    return spec;
}

/**
 * Parse the command line into @p opt; throws StackscopeError (category
 * kUsage) on unknown commands or options, missing values, and malformed
 * numbers. Both "--opt value" and "--opt=value" are accepted.
 */
void
parseArgs(int argc, char **argv, CliOptions &opt)
{
    if (argc < 2) {
        throw StackscopeError(ErrorCategory::kUsage,
                              std::string("missing command (expected ") +
                                  kCommands + ")");
    }
    opt.command = argv[1];
    const bool known_command =
        opt.command == "list" || opt.command == "run" ||
        opt.command == "bounds" || opt.command == "hpc" ||
        opt.command == "compare-spec" || opt.command == "sweep" ||
        opt.command == "phases" || opt.command == "diff-report" ||
        opt.command == "serve" || opt.command == "help";
    if (!known_command) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "unknown command '" + opt.command +
                                  "' (expected " + kCommands + ")");
    }

    std::vector<std::string> watch_raw;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (opt.command == "diff-report") {
                opt.positionals.push_back(std::move(arg));
                continue;
            }
            throw StackscopeError(ErrorCategory::kUsage,
                                  "unexpected argument '" + arg + "'");
        }
        std::optional<std::string> inline_value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        }
        auto value = [&]() -> std::string {
            if (inline_value)
                return *inline_value;
            if (i + 1 >= argc) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "missing value for " + arg);
            }
            return argv[++i];
        };
        auto flagOnly = [&]() {
            if (inline_value) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      arg + " takes no value");
            }
        };
        if (arg == "--workload") {
            opt.workload = value();
        } else if (arg == "--kernel") {
            opt.kernel = value();
        } else if (arg == "--machine") {
            opt.machine = value();
        } else if (arg == "--instrs") {
            opt.instrs = parseCount(arg, value(), 1);
        } else if (arg == "--warmup") {
            opt.warmup = parseCount(arg, value(), 0);
        } else if (arg == "--cores") {
            // A comma list spans the sweep grid's cores axis; every other
            // command takes exactly one value.
            opt.cores_list.clear();
            for (const std::string &c : splitList(arg, value())) {
                opt.cores_list.push_back(
                    static_cast<unsigned>(parseCount(arg, c, 1)));
            }
            if (opt.command != "sweep" && opt.cores_list.size() != 1) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "--cores accepts a comma list only "
                                      "with the sweep command");
            }
            opt.cores = opt.cores_list.front();
        } else if (arg == "--threads") {
            opt.threads =
                static_cast<unsigned>(parseCount(arg, value(), 0));
        } else if (arg == "--workloads") {
            opt.workloads = splitList(arg, value());
        } else if (arg == "--machines") {
            opt.machines = splitList(arg, value());
        } else if (arg == "--engine") {
            const std::string engine = value();
            if (engine == "reference") {
                opt.reference_engine = true;
            } else if (engine == "batched") {
                opt.reference_engine = false;
            } else {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "bad --engine '" + engine +
                                          "' (expected batched or "
                                          "reference)");
            }
        } else if (arg == "--validate") {
            const std::string mode = value();
            const auto policy = validate::parsePolicy(mode);
            if (!policy) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "bad --validate mode '" + mode +
                                          "' (expected off, warn or "
                                          "strict)");
            }
            opt.validation = *policy;
        } else if (arg == "--inject-fault") {
            opt.fault = validate::parseFaultSpec(value()).value();
        } else if (arg == "--watchdog-cycles") {
            opt.watchdog_cycles = parseCount(arg, value(), 0);
        } else if (arg == "--job-cycles") {
            opt.job_cycles = parseCount(arg, value(), 0);
        } else if (arg == "--job-timeout") {
            opt.job_timeout = parseReal(arg, value());
        } else if (arg == "--max-retries") {
            opt.max_retries =
                static_cast<unsigned>(parseCount(arg, value(), 0));
        } else if (arg == "--retry-backoff-ms") {
            opt.retry_backoff_ms = parseCount(arg, value(), 0);
        } else if (arg == "--keep-going") {
            flagOnly();
            opt.keep_going = true;
        } else if (arg == "--fault-job") {
            opt.fault_job = value();
        } else if (arg == "--journal") {
            opt.journal_path = value();
        } else if (arg == "--resume") {
            opt.resume_path = value();
        } else if (arg == "--intervals") {
            opt.intervals = parseCount(arg, value(), 0);
        } else if (arg == "--trace-out") {
            opt.trace_out = value();
        } else if (arg == "--report-out") {
            opt.report_out = value();
        } else if (arg == "--no-host-metrics") {
            flagOnly();
            opt.no_host_metrics = true;
        } else if (arg == "--socket") {
            opt.serve_socket = value();
        } else if (arg == "--tcp") {
            opt.serve_tcp =
                static_cast<int>(parseCount(arg, value(), 0));
            if (opt.serve_tcp > 65535) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "--tcp port must be <= 65535");
            }
        } else if (arg == "--cache-mb") {
            opt.cache_mb = parseCount(arg, value(), 1);
        } else if (arg == "--heartbeat-ms") {
            opt.heartbeat_ms = parseCount(arg, value(), 1);
        } else if (arg == "--drain-timeout") {
            opt.drain_timeout = parseReal(arg, value());
        } else if (arg == "--slow-ms") {
            opt.slow_ms = parseReal(arg, value());
        } else if (arg == "--slo-ms") {
            opt.slo_ms = parseReal(arg, value());
            if (opt.slo_ms <= 0.0) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "--slo-ms must be positive");
            }
        } else if (arg == "--trace-capacity") {
            opt.trace_capacity = parseCount(arg, value(), 1);
        } else if (arg == "--tol-abs") {
            opt.diff_tol.abs = parseReal(arg, value());
        } else if (arg == "--tol-rel") {
            opt.diff_tol.rel = parseReal(arg, value());
        } else if (arg == "--watch") {
            watch_raw.push_back(value());
        } else if (arg == "--csv") {
            flagOnly();
            opt.csv = true;
        } else if (arg == "--perfect-icache") {
            flagOnly();
            opt.ideal.perfect_icache = true;
        } else if (arg == "--perfect-dcache") {
            flagOnly();
            opt.ideal.perfect_dcache = true;
        } else if (arg == "--perfect-bpred") {
            flagOnly();
            opt.ideal.perfect_bpred = true;
        } else if (arg == "--ideal-alu") {
            flagOnly();
            opt.ideal.single_cycle_alu = true;
        } else {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "unknown option '" + arg +
                                      "' (see `stackscope help`)");
        }
    }

    // Batch commands run many jobs; a single trace file would be
    // ambiguous, so pipeline tracing is limited to one-run commands.
    if (!opt.trace_out.empty() && opt.command != "run" &&
        opt.command != "hpc" && opt.command != "phases") {
        throw StackscopeError(ErrorCategory::kUsage,
                              "--trace-out is only supported by the run, "
                              "hpc and phases commands");
    }
    // Retry/quarantine/journaling semantics are defined per batch; only
    // the sweep command runs a grid where they make sense.
    if (opt.command != "sweep") {
        if (opt.max_retries != 0 || opt.retry_backoff_ms ||
            opt.keep_going || !opt.fault_job.empty() ||
            !opt.journal_path.empty() || !opt.resume_path.empty()) {
            throw StackscopeError(
                ErrorCategory::kUsage,
                "--max-retries, --retry-backoff-ms, --keep-going, "
                "--fault-job, --journal and --resume are only supported "
                "by the sweep command");
        }
    }
    if (!opt.journal_path.empty() && !opt.resume_path.empty()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "--journal starts a fresh journal and "
                              "--resume continues one; pass exactly one");
    }
    if (!opt.fault_job.empty() && !opt.fault) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "--fault-job needs --inject-fault");
    }
    if (opt.command != "serve" &&
        (!opt.serve_socket.empty() || opt.serve_tcp >= 0 ||
         opt.slow_ms != 0.0 || opt.slo_ms != 50.0 ||
         opt.trace_capacity != 256)) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "--socket, --tcp, --slow-ms, --slo-ms and "
                              "--trace-capacity are only supported by "
                              "the serve command");
    }
    // Watch specs resolve after the loop so --tol-abs/--tol-rel defaults
    // apply regardless of option order.
    for (const std::string &raw : watch_raw)
        opt.watches.push_back(parseWatch(raw, opt.diff_tol));
    if (opt.command == "diff-report" && opt.positionals.size() != 2) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "diff-report needs exactly two report paths");
    }
}

/**
 * Surface a run's validation outcome: violations are logged at warn level
 * in warn mode (strict throws inside the sim layer before we get here).
 */
void
reportValidation(const validate::ValidationReport &report)
{
    if (!report.passed()) {
        log::warn("validate", report.summary(),
                  {{"violations", report.violations.size()},
                   {"checks_run", report.checks_run}});
    }
}

std::unique_ptr<trace::TraceSource>
makeWorkloadTrace(const CliOptions &opt)
{
    trace::SyntheticParams params =
        trace::findWorkload(opt.workload).params;
    params.num_instrs = opt.totalInstrs();
    return std::make_unique<trace::SyntheticGenerator>(params);
}

sim::SimOptions
simOptions(const CliOptions &opt)
{
    sim::SimOptions so;
    so.warmup_instrs = opt.warmupInstrs();
    so.validation = opt.validation;
    so.fault = opt.fault;
    // Fault injection without an explicit watchdog still gets deadlock
    // protection: a hung-trace fault would otherwise spin forever.
    so.watchdog_cycles =
        opt.watchdog_cycles.value_or(opt.fault ? 200'000 : 0);
    so.deadline_cycles = opt.job_cycles;
    so.job_timeout_seconds = opt.job_timeout;
    // Observability: phases snapshots stacks every 1000 cycles unless
    // overridden; everywhere else intervals are opt-in.
    so.obs.interval_cycles =
        opt.intervals.value_or(opt.command == "phases" ? 1000 : 0);
    so.obs.trace_events = !opt.trace_out.empty();
    so.reference_engine = opt.reference_engine;
    return so;
}

void
maybeWriteReport(const CliOptions &opt, obs::ReportBuilder &report)
{
    if (opt.report_out.empty())
        return;
    // CLI reports carry the process-wide telemetry of the run that
    // produced them (schema v2 "host_metrics") unless the caller asked
    // for a deterministic report — the form the serve cache's
    // byte-identity guarantee is defined against (docs/serving.md).
    if (!opt.no_host_metrics)
        report.setHostMetrics(obs::MetricsRegistry::global().snapshot());
    obs::writeTextFile(opt.report_out, report.json());
    log::info("cli", "wrote run report",
              {{"path", opt.report_out}, {"jobs", report.jobCount()}});
}

void
maybeWriteTrace(const CliOptions &opt, std::vector<obs::EventLog> logs)
{
    if (!opt.trace_out.empty())
        obs::writeTextFile(opt.trace_out, obs::chromeTraceJson(logs));
}

std::vector<obs::EventLog>
eventLogs(const sim::MulticoreResult &r)
{
    std::vector<obs::EventLog> logs;
    logs.reserve(r.per_core.size());
    for (const sim::SimResult &c : r.per_core)
        logs.push_back(c.events);
    return logs;
}

int
cmdList()
{
    std::printf("machines:\n");
    for (const std::string &m : sim::allMachineNames()) {
        const sim::MachineConfig cfg = sim::machineByName(m);
        std::printf("  %-4s %-4s  %u-wide OoO, %u-core socket, %.1f GHz, "
                    "peak %s/socket\n",
                    m.c_str(), cfg.name.c_str(), cfg.core.dispatch_width,
                    cfg.socket_cores, cfg.freq_ghz,
                    analysis::formatFlops(cfg.socketPeakFlops()).c_str());
    }
    std::printf("\nworkloads (SPEC-CPU-2017-inspired):\n");
    for (const trace::Workload &w : trace::allSpecWorkloads())
        std::printf("  %-11s %s\n", w.name.c_str(), w.description.c_str());
    std::printf("\nhpc kernels (DeepBench-inspired):\n");
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite())
        std::printf("  %-15s (%s)\n", bm.name.c_str(), bm.group.c_str());
    return 0;
}

int
cmdRun(const CliOptions &opt)
{
    const sim::MachineConfig machine =
        sim::applyIdealization(sim::machineByName(opt.machine), opt.ideal);
    auto trace = makeWorkloadTrace(opt);
    const sim::SimOptions so = simOptions(opt);
    obs::ReportBuilder report("run");

    if (opt.cores > 1) {
        const sim::MulticoreResult r =
            sim::simulateMulticore(machine, *trace, opt.cores, so);
        reportValidation(r.validation);
        report.add(opt.workload + "/" + machine.name + "/x" +
                       std::to_string(opt.cores),
                   so, r);
        maybeWriteReport(opt, report);
        maybeWriteTrace(opt, eventLogs(r));
        if (opt.csv) {
            std::printf("%s\n", analysis::cpiStackCsvHeader("stage").c_str());
            for (Stage s :
                 {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
                std::printf("%s\n",
                            analysis::toCsvRow(std::string(toString(s)),
                                               r.cpiStack(s))
                                .c_str());
            }
            return 0;
        }
        std::printf("%s on %s x%u: avg CPI %.3f (IPC %.2f)\n",
                    opt.workload.c_str(), machine.name.c_str(), opt.cores,
                    r.avg_cpi, r.avg_ipc);
        std::printf("%s",
                    analysis::renderCpiStacks(
                        {r.cpiStack(Stage::kDispatch),
                         r.cpiStack(Stage::kIssue),
                         r.cpiStack(Stage::kCommit)},
                        {"dispatch", "issue", "commit"},
                        "  averaged CPI stacks:")
                        .c_str());
        return 0;
    }

    const sim::SimResult r = sim::simulate(machine, *trace, so);
    reportValidation(r.validation);
    report.add(opt.workload + "/" + machine.name, so, r);
    maybeWriteReport(opt, report);
    maybeWriteTrace(opt, {r.events});
    if (opt.csv) {
        std::printf("%s\n", analysis::cpiStackCsvHeader("stage").c_str());
        for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
            std::printf("%s\n",
                        analysis::toCsvRow(std::string(toString(s)),
                                           r.cpiStack(s))
                            .c_str());
        }
        std::printf("%s\n", analysis::flopsStackCsvHeader("stack").c_str());
        std::printf("%s\n",
                    analysis::toCsvRow("flops_cycles", r.flops_cycles)
                        .c_str());
        return 0;
    }
    std::printf("%s",
                analysis::renderMultiStage(r, opt.workload).c_str());
    std::printf("\nbranches %llu (%.2f%% mispredicted), loads %llu "
                "(%.2f%% L1D misses)\n",
                static_cast<unsigned long long>(r.stats.branches),
                r.stats.branches == 0 ? 0.0
                                      : 100.0 * r.stats.branch_mispredicts /
                                            r.stats.branches,
                static_cast<unsigned long long>(r.stats.loads),
                r.stats.loads == 0 ? 0.0
                                   : 100.0 * r.stats.l1d_load_misses /
                                         r.stats.loads);
    return 0;
}

int
cmdBounds(const CliOptions &opt)
{
    const sim::MachineConfig machine = sim::machineByName(opt.machine);
    auto trace = makeWorkloadTrace(opt);
    const sim::SimOptions so = simOptions(opt);

    // The real run and all four idealization pairs execute as one batch.
    runner::BatchRunner batch(opt.threads);
    const std::vector<analysis::IdealizationKnob> knobs =
        analysis::standardKnobs();
    runner::Heartbeat heartbeat("bounds");
    const analysis::IdealizationStudy study = analysis::runIdealizationStudy(
        machine, *trace, knobs, so, batch, &heartbeat);
    heartbeat.finish();
    reportValidation(study.validation);

    obs::ReportBuilder report("bounds");
    report.add(opt.workload + "/" + machine.name + "/real", so, study.real);
    for (const analysis::IdealizationStudy::Entry &e : study.entries)
        report.add(opt.workload + "/" + machine.name + "/" + e.knob.label,
                   so, e.idealized);
    maybeWriteReport(opt, report);

    if (opt.csv) {
        std::printf("component,lo,hi,actual,error\n");
    } else {
        std::printf("%s on %s: CPI %.3f\n  %-8s %9s %9s %9s %9s\n",
                    opt.workload.c_str(), machine.name.c_str(),
                    study.real.cpi, "comp", "lo", "hi", "actual", "error");
    }
    for (const analysis::IdealizationStudy::Entry &e : study.entries) {
        if (opt.csv) {
            std::printf("%s,%.6g,%.6g,%.6g,%.6g\n", e.knob.label.c_str(),
                        e.bounds.lo, e.bounds.hi, e.actual_reduction,
                        e.multi_error);
        } else {
            std::printf("  %-8s %9.3f %9.3f %9.3f %9.3f%s\n",
                        e.knob.label.c_str(), e.bounds.lo, e.bounds.hi,
                        e.actual_reduction, e.multi_error,
                        e.multi_error == 0.0 ? "  (within bounds)" : "");
        }
    }
    return 0;
}

/** One sweep grid point plus its resolved identity. */
struct SweepPoint
{
    std::string workload;
    std::string machine;
    unsigned cores;
    /** Per-point options (--fault-job may strip the fault). */
    sim::SimOptions options;
    std::string label;
    /** Canonical spec hash (runner/job_spec.hpp). */
    std::string hash;
};

/**
 * CSV rows (one per stage, newline-separated, no trailing newline) for
 * one sweep point. Completed points report the component-wise average
 * stacks and the cycle/instr counts of core 0 (threads are homogeneous);
 * failed or skipped points emit all-zero stage rows so the grid shape is
 * preserved. The trailing `status` column is the schema's append-only
 * extension point.
 */
std::string
sweepCsvRows(const SweepPoint &p, const runner::JobOutcome &o)
{
    std::string rows;
    char head[160];
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        const sim::SimResult *rep =
            o.completed()
                ? (o.multi ? &o.multi->per_core.front() : &o.single)
                : nullptr;
        const double cpi =
            o.completed() ? (o.multi ? o.multi->avg_cpi : o.single.cpi)
                          : 0.0;
        const stacks::CpiStack stack =
            o.completed() ? (o.multi ? o.multi->cpiStack(s)
                                     : o.single.cpiStack(s))
                          : stacks::CpiStack{};
        // RFC 4180: name-like fields go through csvField so a workload or
        // machine containing a comma or quote cannot shear the row.
        std::snprintf(head, sizeof(head), ",%u,%llu,%llu,%.6g,", p.cores,
                      static_cast<unsigned long long>(rep ? rep->instrs
                                                          : 0),
                      static_cast<unsigned long long>(rep ? rep->cycles
                                                          : 0),
                      cpi);
        if (!rows.empty())
            rows += '\n';
        rows += analysis::csvField(p.workload);
        rows += ',';
        rows += analysis::csvField(p.machine);
        rows += head;
        rows += analysis::toCsvRow(std::string(toString(s)), stack);
        rows += ',';
        rows += analysis::csvField(runner::toString(o.status));
    }
    return rows;
}

int
cmdSweep(const CliOptions &opt)
{
    const sim::SimOptions base = simOptions(opt);

    // Cartesian workload x machine x cores grid. Each point gets its own
    // options so --fault-job can confine the injected fault to matching
    // labels, and its canonical spec hash — the journal key.
    std::vector<SweepPoint> points;
    for (const std::string &w : opt.workloads) {
        trace::findWorkload(w);  // fail fast on unknown names
        for (const std::string &m : opt.machines) {
            sim::machineByName(m);
            for (unsigned c : opt.cores_list) {
                SweepPoint p;
                p.workload = w;
                p.machine = m;
                p.cores = c;
                p.label = w + "/" + m + "/x" + std::to_string(c);
                p.options = base;
                if (opt.fault && !opt.fault_job.empty() &&
                    p.label.find(opt.fault_job) == std::string::npos)
                    p.options.fault.reset();
                runner::JobSpec spec;
                spec.workload = w;
                spec.machine = m;
                spec.cores = c;
                spec.instrs = opt.totalInstrs();
                spec.options = p.options;
                p.hash = runner::specHash(spec);
                points.push_back(std::move(p));
            }
        }
    }

    // The sweep identity is the hash over its points' hashes, in grid
    // order: a journal binds to one exact grid and option set.
    std::string hashes;
    for (const SweepPoint &p : points)
        hashes += p.hash;
    char sweep_hash[17];
    std::snprintf(sweep_hash, sizeof(sweep_hash), "%016llx",
                  static_cast<unsigned long long>(
                      runner::fnv1a64(hashes)));

    std::optional<runner::SweepJournal> journal;
    if (!opt.resume_path.empty())
        journal.emplace(
            runner::SweepJournal::resume(opt.resume_path, sweep_hash));
    else if (!opt.journal_path.empty())
        journal.emplace(
            runner::SweepJournal::create(opt.journal_path, sweep_hash));
    if (journal && !journal->records().empty()) {
        log::info("cli", "resuming sweep from journal",
                  {{"path", journal->path()},
                   {"completed", journal->records().size()},
                   {"points", points.size()}});
    }

    // Simulate only the points the journal does not already cover.
    std::vector<runner::SimJob> jobs;
    std::vector<std::size_t> job_point;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        if (journal && journal->find(p.hash) != nullptr)
            continue;
        trace::SyntheticParams params =
            trace::findWorkload(p.workload).params;
        params.num_instrs = opt.totalInstrs();
        const trace::SyntheticGenerator gen(params);
        jobs.push_back(runner::makeJob(p.label,
                                       sim::machineByName(p.machine), gen,
                                       p.options, p.cores));
        job_point.push_back(i);
    }

    runner::BatchOptions bopts;
    bopts.keep_going = opt.keep_going;
    bopts.retry.max_retries = opt.max_retries;
    if (opt.retry_backoff_ms)
        bopts.retry.backoff = std::chrono::milliseconds(*opt.retry_backoff_ms);
    if (journal) {
        // Persist each completed point from the worker thread that
        // finished it: after a crash, everything already journaled
        // replays verbatim. Failed points are not journaled — their
        // (deterministic) faults must re-fail, or succeed under new
        // limits, on resume.
        bopts.on_outcome = [&](std::size_t job_index,
                               const runner::JobOutcome &o) {
            if (!o.completed())
                return;
            const SweepPoint &p = points[job_point[job_index]];
            runner::JournalRecord rec;
            rec.spec_hash = p.hash;
            rec.label = o.label;
            rec.status = runner::toString(o.status);
            rec.attempts = o.attempts;
            rec.job_json =
                obs::ReportBuilder::jobJson(o, p.options, p.cores);
            rec.csv = sweepCsvRows(p, o);
            journal->append(rec);
        };
    }

    runner::BatchRunner batch(opt.threads);
    runner::Heartbeat heartbeat("sweep");
    const runner::BatchResult results =
        batch.run(std::move(jobs), &heartbeat, bopts);
    heartbeat.finish();
    reportValidation(results.validation);

    // Merge journaled and fresh outcomes back into grid order. Journaled
    // points splice their stored report fragment and CSV bytes verbatim,
    // so a resumed sweep's outputs are byte-identical to a cold run's.
    std::vector<const runner::JobOutcome *> fresh(points.size(), nullptr);
    for (std::size_t j = 0; j < results.outcomes.size(); ++j)
        fresh[job_point[j]] = &results.outcomes[j];

    obs::ReportBuilder report("sweep");
    std::string csv;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const runner::JournalRecord *rec =
            journal ? journal->find(points[i].hash) : nullptr;
        if (rec != nullptr) {
            report.addRaw(rec->job_json);
            csv += rec->csv;
        } else {
            report.add(*fresh[i], points[i].options, points[i].cores);
            csv += sweepCsvRows(points[i], *fresh[i]);
        }
        csv += '\n';
    }
    maybeWriteReport(opt, report);

    std::printf("workload,machine,cores,instrs,cycles,cpi,%s,status\n",
                analysis::cpiStackCsvHeader("stage").c_str());
    std::fputs(csv.c_str(), stdout);

    // Journaled points completed in a previous run; count them towards
    // the batch verdict (BatchResult::exitCode() only sees this run's).
    const runner::StatusTally tally = results.tally();
    const std::size_t replayed = points.size() - results.outcomes.size();
    const std::size_t completed = tally.completed() + replayed;
    if (tally.failed() + tally.skipped > 0) {
        log::warn("cli", "sweep finished with failures",
                  {{"completed", completed},
                   {"timeout", tally.timeout},
                   {"quarantined", tally.quarantined},
                   {"skipped", tally.skipped}});
    }
    if (completed == points.size())
        return 0;
    return completed == 0 ? kExitTotalFailure : kExitPartialSuccess;
}

int
cmdHpc(const CliOptions &opt)
{
    const sim::MachineConfig machine =
        sim::applyIdealization(sim::machineByName(opt.machine), opt.ideal);
    const trace::HpcBenchmark *bench = nullptr;
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite()) {
        if (bm.name == opt.kernel)
            bench = &bm;
    }
    if (bench == nullptr) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "unknown kernel '" + opt.kernel +
                                  "' (see `stackscope list`)");
    }
    const trace::HpcTarget target{
        machine.core.flops_vec_lanes,
        opt.machine == "knl" ? trace::SgemmCodegen::kKnlJit
                             : trace::SgemmCodegen::kSkxBroadcast};
    auto trace = bench->make(target, opt.totalInstrs());
    const sim::SimOptions so = simOptions(opt);

    const sim::MulticoreResult r = sim::simulateMulticore(
        machine, *trace, std::max(1u, opt.cores), so);
    reportValidation(r.validation);

    obs::ReportBuilder report("hpc");
    report.add(bench->name + "/" + machine.name + "/x" +
                   std::to_string(std::max(1u, opt.cores)),
               so, r);
    maybeWriteReport(opt, report);
    maybeWriteTrace(opt, eventLogs(r));

    if (opt.csv) {
        std::printf("%s\n", analysis::flopsStackCsvHeader("stack").c_str());
        std::printf("%s\n",
                    analysis::toCsvRow("socket_flops", r.socketFlopsStack())
                        .c_str());
        return 0;
    }
    std::printf("%s on %s: avg IPC %.2f of %u\n", bench->name.c_str(),
                machine.name.c_str(), r.avg_ipc,
                machine.core.effectiveWidth());
    std::printf("%s",
                analysis::renderFlopsStack(r.socketFlopsStack(),
                                           "socket FLOPS stack", "flops/s")
                    .c_str());
    std::printf("achieved %s of %s peak (%.0f%%)\n",
                analysis::formatFlops(r.socket_flops).c_str(),
                analysis::formatFlops(r.socket_peak_flops).c_str(),
                100.0 * r.socket_flops / r.socket_peak_flops);
    return 0;
}

int
cmdCompareSpec(const CliOptions &opt)
{
    const sim::MachineConfig machine = sim::machineByName(opt.machine);
    auto trace = makeWorkloadTrace(opt);

    const struct
    {
        const char *label;
        stacks::SpeculationMode mode;
    } modes[] = {
        {"oracle", stacks::SpeculationMode::kOracle},
        {"simple", stacks::SpeculationMode::kSimple},
        {"spec-counters", stacks::SpeculationMode::kSpecCounters},
    };

    // One job per wrong-path handling strategy, run as a single batch.
    std::vector<runner::SimJob> jobs;
    std::vector<std::string> labels;
    for (const auto &m : modes) {
        sim::SimOptions so = simOptions(opt);
        so.spec_mode = m.mode;
        jobs.push_back(runner::makeJob(m.label, machine, *trace, so));
        labels.push_back(m.label);
    }
    runner::BatchRunner batch(opt.threads);
    runner::Heartbeat heartbeat("compare-spec");
    const runner::BatchResult results =
        batch.run(std::move(jobs), &heartbeat);
    heartbeat.finish();

    obs::ReportBuilder report("compare-spec");
    std::vector<stacks::CpiStack> dispatch_stacks;
    for (std::size_t i = 0; i < results.outcomes.size(); ++i) {
        const runner::JobOutcome &o = results.outcomes[i];
        reportValidation(o.single.validation);
        dispatch_stacks.push_back(o.single.cpiStack(Stage::kDispatch));
        sim::SimOptions so = simOptions(opt);
        so.spec_mode = modes[i].mode;
        report.add(o, so, 1);
    }
    maybeWriteReport(opt, report);
    std::printf("%s on %s: dispatch CPI stack per wrong-path handling "
                "strategy (§III-B)\n",
                opt.workload.c_str(), machine.name.c_str());
    std::printf("%s",
                analysis::renderCpiStacks(dispatch_stacks, labels, "")
                    .c_str());
    return 0;
}

/**
 * Resolve the phases workload name: a workload-library preset first,
 * then an HPC kernel by exact name, then by name/group prefix (so
 * `--workload conv` picks the first conv_* DeepBench kernel).
 */
std::unique_ptr<trace::TraceSource>
makePhasesTrace(const CliOptions &opt, const sim::MachineConfig &machine,
                std::string &label)
{
    try {
        trace::SyntheticParams params =
            trace::findWorkload(opt.workload).params;
        params.num_instrs = opt.totalInstrs();
        label = opt.workload;
        return std::make_unique<trace::SyntheticGenerator>(params);
    } catch (const std::out_of_range &) {
        // Not a workload preset; fall through to the HPC kernel suite.
    }
    const trace::HpcBenchmark *pick = nullptr;
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite()) {
        if (bm.name == opt.workload) {
            pick = &bm;
            break;
        }
        if (pick == nullptr && (bm.name.rfind(opt.workload, 0) == 0 ||
                                bm.group.rfind(opt.workload, 0) == 0))
            pick = &bm;
    }
    if (pick == nullptr) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "unknown workload or kernel '" + opt.workload +
                                  "' (see `stackscope list`)");
    }
    label = pick->name;
    const trace::HpcTarget target{
        machine.core.flops_vec_lanes,
        opt.machine == "knl" ? trace::SgemmCodegen::kKnlJit
                             : trace::SgemmCodegen::kSkxBroadcast};
    return pick->make(target, opt.totalInstrs());
}

int
cmdPhases(const CliOptions &opt)
{
    const sim::MachineConfig machine =
        sim::applyIdealization(sim::machineByName(opt.machine), opt.ideal);
    std::string label;
    auto trace = makePhasesTrace(opt, machine, label);
    const sim::SimOptions so = simOptions(opt);
    if (so.obs.interval_cycles == 0) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "phases needs --intervals >= 1");
    }

    const sim::SimResult r = sim::simulate(machine, *trace, so);
    reportValidation(r.validation);

    std::printf("%s on %s: %llu instrs, %llu cycles, CPI %.3f (IPC %.2f), "
                "%zu windows of %llu cycles\n",
                label.c_str(), machine.name.c_str(),
                static_cast<unsigned long long>(r.instrs),
                static_cast<unsigned long long>(r.cycles), r.cpi, r.ipc(),
                r.intervals.samples.size(),
                static_cast<unsigned long long>(r.intervals.window));
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        std::printf("\n%s",
                    analysis::renderIntervalHeatmap(
                        r.intervals, s,
                        std::string(toString(s)) + " CPI stack over time:")
                        .c_str());
    }
    std::printf("\n%s",
                analysis::renderFlopsIntervalHeatmap(
                    r.intervals, "FLOPS stack over time:")
                    .c_str());

    obs::ReportBuilder report("phases");
    report.add(label + "/" + machine.name, so, r);
    maybeWriteReport(opt, report);
    maybeWriteTrace(opt, {r.events});
    return 0;
}

/** Slurp a report file; kUsage when unreadable. */
std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "cannot open report file")
            .withContext("path", path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "failed reading report file")
            .withContext("path", path);
    }
    return buf.str();
}

/**
 * The daemon's stop hook. A plain pointer written before the signal
 * handlers are installed and cleared after they are restored;
 * requestStop() is async-signal-safe (one pipe write).
 */
serve::Server *g_serve_instance = nullptr;

extern "C" void
handleServeSignal(int)
{
    if (g_serve_instance != nullptr)
        g_serve_instance->requestStop();
}

int
cmdServe(const CliOptions &opt)
{
    serve::ServeOptions so;
    so.socket_path = opt.serve_socket;
    so.tcp_port = opt.serve_tcp;
    so.threads = opt.threads;
    so.cache_bytes = static_cast<std::size_t>(opt.cache_mb) << 20;
    so.heartbeat = std::chrono::milliseconds(opt.heartbeat_ms);
    so.drain_timeout = std::chrono::milliseconds(
        static_cast<std::uint64_t>(opt.drain_timeout * 1000.0));
    so.slow_ms = opt.slow_ms;
    so.slo_ms = opt.slo_ms;
    so.trace_capacity = static_cast<std::size_t>(opt.trace_capacity);
    try {
        serve::Server server(so);
        // A client vanishing mid-response must surface as EPIPE on the
        // write, never as a process-killing SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);
        g_serve_instance = &server;
        std::signal(SIGTERM, handleServeSignal);
        std::signal(SIGINT, handleServeSignal);
        const bool drained = server.run();
        std::signal(SIGTERM, SIG_DFL);
        std::signal(SIGINT, SIG_DFL);
        g_serve_instance = nullptr;
        return drained ? 0 : kExitDrainTimeout;
    } catch (const serve::BindError &e) {
        std::fprintf(stderr, "%s\n", e.describe().c_str());
        return kExitBindFailure;
    }
}

int
cmdDiffReport(const CliOptions &opt)
{
    const obs::JsonValue baseline =
        obs::parseJson(readTextFile(opt.positionals[0]));
    const obs::JsonValue candidate =
        obs::parseJson(readTextFile(opt.positionals[1]));
    const obs::ReportDiff diff = obs::diffReports(
        baseline, candidate, opt.diff_tol, opt.watches);
    std::fputs(obs::renderDiff(diff).c_str(), stdout);
    return diff.regression() ? 4 : 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    log::configureFromEnv();
    CliOptions opt;
    try {
        parseArgs(argc, argv, opt);
        if (opt.command == "help")
            return usage(stdout, argv[0]);
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "bounds")
            return cmdBounds(opt);
        if (opt.command == "hpc")
            return cmdHpc(opt);
        if (opt.command == "sweep")
            return cmdSweep(opt);
        if (opt.command == "phases")
            return cmdPhases(opt);
        if (opt.command == "diff-report")
            return cmdDiffReport(opt);
        if (opt.command == "serve")
            return cmdServe(opt);
        return cmdCompareSpec(opt);
    } catch (const StackscopeError &e) {
        std::fprintf(stderr, "%s\n", e.describe().c_str());
        if (e.category() == ErrorCategory::kUsage)
            usage(stderr, argv[0]);
        return e.exitCode();
    } catch (const std::out_of_range &e) {
        // Unknown workload / machine names from the registries.
        std::fprintf(stderr, "usage error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
