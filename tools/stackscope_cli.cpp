/**
 * @file
 * The stackscope command-line tool: run any workload on any machine and
 * print (or export) multi-stage CPI stacks, FLOPS stacks, idealization
 * bounds and speculation-mode comparisons without writing C++.
 *
 * Subcommands:
 *   list                     enumerate workloads, machines and HPC kernels
 *   run     [options]        single- or multi-core run with all stacks
 *   bounds  [options]        multi-stage bounds vs measured idealizations
 *   hpc     [options]        FLOPS stack analysis of a DeepBench kernel
 *   compare-spec [options]   oracle / simple / spec-counter stacks
 *
 * Common options:
 *   --workload NAME   workload preset (default mcf)
 *   --kernel NAME     HPC kernel (hpc subcommand; default conv_fwd_0)
 *   --machine NAME    bdw | knl | skx (default bdw)
 *   --instrs N        measured instructions (default 250000)
 *   --warmup N        warmup instructions (default instrs/2)
 *   --cores N         cores sharing an uncore (default 1)
 *   --csv             machine-readable output
 *   --perfect-icache --perfect-dcache --perfect-bpred --ideal-alu
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/csv.hpp"
#include "analysis/render.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/hpc_kernels.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace {

using namespace stackscope;
using stacks::CpiComponent;
using stacks::Stage;

struct CliOptions
{
    std::string command = "help";
    std::string workload = "mcf";
    std::string kernel = "conv_fwd_0";
    std::string machine = "bdw";
    std::uint64_t instrs = 250'000;
    std::uint64_t warmup = ~std::uint64_t{0};  // default: instrs / 2
    unsigned cores = 1;
    bool csv = false;
    sim::Idealization ideal{};

    std::uint64_t
    warmupInstrs() const
    {
        return warmup == ~std::uint64_t{0} ? instrs / 2 : warmup;
    }
    std::uint64_t totalInstrs() const { return instrs + warmupInstrs(); }
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <list|run|bounds|hpc|compare-spec> [options]\n"
        "  --workload NAME  --kernel NAME  --machine bdw|knl|skx\n"
        "  --instrs N  --warmup N  --cores N  --csv\n"
        "  --perfect-icache --perfect-dcache --perfect-bpred --ideal-alu\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, CliOptions &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = value();
        } else if (arg == "--kernel") {
            opt.kernel = value();
        } else if (arg == "--machine") {
            opt.machine = value();
        } else if (arg == "--instrs") {
            opt.instrs = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--warmup") {
            opt.warmup = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--cores") {
            opt.cores = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--perfect-icache") {
            opt.ideal.perfect_icache = true;
        } else if (arg == "--perfect-dcache") {
            opt.ideal.perfect_dcache = true;
        } else if (arg == "--perfect-bpred") {
            opt.ideal.perfect_bpred = true;
        } else if (arg == "--ideal-alu") {
            opt.ideal.single_cycle_alu = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

std::unique_ptr<trace::TraceSource>
makeWorkloadTrace(const CliOptions &opt)
{
    trace::SyntheticParams params =
        trace::findWorkload(opt.workload).params;
    params.num_instrs = opt.totalInstrs();
    return std::make_unique<trace::SyntheticGenerator>(params);
}

sim::SimOptions
simOptions(const CliOptions &opt)
{
    sim::SimOptions so;
    so.warmup_instrs = opt.warmupInstrs();
    return so;
}

int
cmdList()
{
    std::printf("machines:\n");
    for (const std::string &m : sim::allMachineNames()) {
        const sim::MachineConfig cfg = sim::machineByName(m);
        std::printf("  %-4s %-4s  %u-wide OoO, %u-core socket, %.1f GHz, "
                    "peak %s/socket\n",
                    m.c_str(), cfg.name.c_str(), cfg.core.dispatch_width,
                    cfg.socket_cores, cfg.freq_ghz,
                    analysis::formatFlops(cfg.socketPeakFlops()).c_str());
    }
    std::printf("\nworkloads (SPEC-CPU-2017-inspired):\n");
    for (const trace::Workload &w : trace::allSpecWorkloads())
        std::printf("  %-11s %s\n", w.name.c_str(), w.description.c_str());
    std::printf("\nhpc kernels (DeepBench-inspired):\n");
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite())
        std::printf("  %-15s (%s)\n", bm.name.c_str(), bm.group.c_str());
    return 0;
}

int
cmdRun(const CliOptions &opt)
{
    const sim::MachineConfig machine =
        sim::applyIdealization(sim::machineByName(opt.machine), opt.ideal);
    auto trace = makeWorkloadTrace(opt);

    if (opt.cores > 1) {
        const sim::MulticoreResult r = sim::simulateMulticore(
            machine, *trace, opt.cores, simOptions(opt));
        if (opt.csv) {
            std::printf("%s\n", analysis::cpiStackCsvHeader("stage").c_str());
            for (Stage s :
                 {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
                std::printf("%s\n",
                            analysis::toCsvRow(std::string(toString(s)),
                                               r.cpiStack(s))
                                .c_str());
            }
            return 0;
        }
        std::printf("%s on %s x%u: avg CPI %.3f (IPC %.2f)\n",
                    opt.workload.c_str(), machine.name.c_str(), opt.cores,
                    r.avg_cpi, r.avg_ipc);
        std::printf("%s",
                    analysis::renderCpiStacks(
                        {r.cpiStack(Stage::kDispatch),
                         r.cpiStack(Stage::kIssue),
                         r.cpiStack(Stage::kCommit)},
                        {"dispatch", "issue", "commit"},
                        "  averaged CPI stacks:")
                        .c_str());
        return 0;
    }

    const sim::SimResult r = sim::simulate(machine, *trace, simOptions(opt));
    if (opt.csv) {
        std::printf("%s\n", analysis::cpiStackCsvHeader("stage").c_str());
        for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
            std::printf("%s\n",
                        analysis::toCsvRow(std::string(toString(s)),
                                           r.cpiStack(s))
                            .c_str());
        }
        std::printf("%s\n", analysis::flopsStackCsvHeader("stack").c_str());
        std::printf("%s\n",
                    analysis::toCsvRow("flops_cycles", r.flops_cycles)
                        .c_str());
        return 0;
    }
    std::printf("%s",
                analysis::renderMultiStage(r, opt.workload).c_str());
    std::printf("\nbranches %llu (%.2f%% mispredicted), loads %llu "
                "(%.2f%% L1D misses)\n",
                static_cast<unsigned long long>(r.stats.branches),
                r.stats.branches == 0 ? 0.0
                                      : 100.0 * r.stats.branch_mispredicts /
                                            r.stats.branches,
                static_cast<unsigned long long>(r.stats.loads),
                r.stats.loads == 0 ? 0.0
                                   : 100.0 * r.stats.l1d_load_misses /
                                         r.stats.loads);
    return 0;
}

int
cmdBounds(const CliOptions &opt)
{
    const sim::MachineConfig machine = sim::machineByName(opt.machine);
    auto trace = makeWorkloadTrace(opt);
    const sim::SimOptions so = simOptions(opt);

    const sim::SimResult real = sim::simulate(machine, *trace, so);
    const analysis::MultiStageStacks ms{real.cpiStack(Stage::kDispatch),
                                        real.cpiStack(Stage::kIssue),
                                        real.cpiStack(Stage::kCommit)};

    struct Knob
    {
        const char *label;
        CpiComponent comp;
        sim::Idealization ideal;
    };
    const Knob knobs[] = {
        {"Icache", CpiComponent::kIcache, {.perfect_icache = true}},
        {"Dcache", CpiComponent::kDcache, {.perfect_dcache = true}},
        {"bpred", CpiComponent::kBpred, {.perfect_bpred = true}},
        {"ALU", CpiComponent::kAluLat, {.single_cycle_alu = true}},
    };

    if (opt.csv) {
        std::printf("component,lo,hi,actual,error\n");
    } else {
        std::printf("%s on %s: CPI %.3f\n  %-8s %9s %9s %9s %9s\n",
                    opt.workload.c_str(), machine.name.c_str(), real.cpi,
                    "comp", "lo", "hi", "actual", "error");
    }
    for (const Knob &k : knobs) {
        const double actual =
            sim::cpiReduction(machine, *trace, k.ideal, so);
        const analysis::ComponentBounds b =
            analysis::componentBounds(ms, k.comp);
        const double err = analysis::multiStageError(ms, k.comp, actual);
        if (opt.csv) {
            std::printf("%s,%.6g,%.6g,%.6g,%.6g\n", k.label, b.lo, b.hi,
                        actual, err);
        } else {
            std::printf("  %-8s %9.3f %9.3f %9.3f %9.3f%s\n", k.label, b.lo,
                        b.hi, actual, err,
                        err == 0.0 ? "  (within bounds)" : "");
        }
    }
    return 0;
}

int
cmdHpc(const CliOptions &opt)
{
    const sim::MachineConfig machine =
        sim::applyIdealization(sim::machineByName(opt.machine), opt.ideal);
    const trace::HpcBenchmark *bench = nullptr;
    for (const trace::HpcBenchmark &bm : trace::deepBenchSuite()) {
        if (bm.name == opt.kernel)
            bench = &bm;
    }
    if (bench == nullptr) {
        std::fprintf(stderr, "unknown kernel '%s' (see `stackscope list`)\n",
                     opt.kernel.c_str());
        return 1;
    }
    const trace::HpcTarget target{
        machine.core.flops_vec_lanes,
        opt.machine == "knl" ? trace::SgemmCodegen::kKnlJit
                             : trace::SgemmCodegen::kSkxBroadcast};
    auto trace = bench->make(target, opt.totalInstrs());

    const sim::MulticoreResult r = sim::simulateMulticore(
        machine, *trace, std::max(1u, opt.cores), simOptions(opt));

    if (opt.csv) {
        std::printf("%s\n", analysis::flopsStackCsvHeader("stack").c_str());
        std::printf("%s\n",
                    analysis::toCsvRow("socket_flops", r.socketFlopsStack())
                        .c_str());
        return 0;
    }
    std::printf("%s on %s: avg IPC %.2f of %u\n", bench->name.c_str(),
                machine.name.c_str(), r.avg_ipc,
                machine.core.effectiveWidth());
    std::printf("%s",
                analysis::renderFlopsStack(r.socketFlopsStack(),
                                           "socket FLOPS stack", "flops/s")
                    .c_str());
    std::printf("achieved %s of %s peak (%.0f%%)\n",
                analysis::formatFlops(r.socket_flops).c_str(),
                analysis::formatFlops(r.socket_peak_flops).c_str(),
                100.0 * r.socket_flops / r.socket_peak_flops);
    return 0;
}

int
cmdCompareSpec(const CliOptions &opt)
{
    const sim::MachineConfig machine = sim::machineByName(opt.machine);
    auto trace = makeWorkloadTrace(opt);

    const struct
    {
        const char *label;
        stacks::SpeculationMode mode;
    } modes[] = {
        {"oracle", stacks::SpeculationMode::kOracle},
        {"simple", stacks::SpeculationMode::kSimple},
        {"spec-counters", stacks::SpeculationMode::kSpecCounters},
    };

    std::vector<stacks::CpiStack> dispatch_stacks;
    std::vector<std::string> labels;
    for (const auto &m : modes) {
        sim::SimOptions so = simOptions(opt);
        so.spec_mode = m.mode;
        const sim::SimResult r = sim::simulate(machine, *trace, so);
        dispatch_stacks.push_back(r.cpiStack(Stage::kDispatch));
        labels.push_back(m.label);
    }
    std::printf("%s on %s: dispatch CPI stack per wrong-path handling "
                "strategy (§III-B)\n",
                opt.workload.c_str(), machine.name.c_str());
    std::printf("%s",
                analysis::renderCpiStacks(dispatch_stacks, labels, "")
                    .c_str());
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    CliOptions opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);
    try {
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "run")
            return cmdRun(opt);
        if (opt.command == "bounds")
            return cmdBounds(opt);
        if (opt.command == "hpc")
            return cmdHpc(opt);
        if (opt.command == "compare-spec")
            return cmdCompareSpec(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
