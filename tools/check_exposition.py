#!/usr/bin/env python3
"""Lint a Prometheus text-format exposition (as served by /metricsz).

Validates the structural invariants the stackscope exposition promises
(docs/observability.md "Exposition"):

  - every sample belongs to a metric announced by a `# TYPE` line, and
    each metric has exactly one TYPE line, before its first sample;
  - counter and gauge metrics have exactly one unlabelled sample;
  - histograms expose `_bucket{le=...}` series with strictly increasing
    finite `le` edges, cumulative (non-decreasing) counts, a final
    `le="+Inf"` bucket, plus `_sum` and `_count`;
  - the `+Inf` bucket equals `_count` (the total == sum-of-counts
    invariant of obs::MetricsRegistry histograms);
  - every value parses as a float and counters are non-negative.

Usage:
    check_exposition.py dump.prom        # lint a saved scrape
    curl -s localhost:8080/metricsz | check_exposition.py -

Exit code 0 when clean, 1 with one line per violation on stderr.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def base_name(sample_name, types):
    """Map a sample name to its announced metric name."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            candidate = sample_name[: -len(suffix)]
            if candidate in types:
                return candidate
    return None


def le_of(labels):
    if not labels:
        return None
    for part in labels.split(","):
        if part.startswith('le="') and part.endswith('"'):
            return part[4:-1]
    return None


def check(text):
    errors = []
    types = {}
    # metric -> list of (le_value, count) in document order
    buckets = {}
    sums = {}
    counts = {}
    scalar_samples = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    errors.append("line %d: malformed TYPE line" % lineno)
                    continue
                name = m.group("name")
                if name in types:
                    errors.append(
                        "line %d: duplicate TYPE for %s" % (lineno, name)
                    )
                types[name] = m.group("kind")
            continue  # other comments (HELP) are fine
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append("line %d: unparseable sample: %r" % (lineno, line))
            continue
        name = m.group("name")
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(
                "line %d: bad value %r" % (lineno, m.group("value"))
            )
            continue
        metric = base_name(name, types)
        if metric is None:
            errors.append(
                "line %d: sample %s has no preceding TYPE line"
                % (lineno, name)
            )
            continue
        kind = types[metric]
        if kind == "histogram":
            if name == metric + "_bucket":
                le = le_of(m.group("labels"))
                if le is None:
                    errors.append(
                        "line %d: histogram bucket without le label"
                        % lineno
                    )
                    continue
                buckets.setdefault(metric, []).append((le, value))
            elif name == metric + "_sum":
                sums[metric] = value
            elif name == metric + "_count":
                counts[metric] = value
            else:
                errors.append(
                    "line %d: unexpected histogram sample %s"
                    % (lineno, name)
                )
        else:
            if name != metric:
                errors.append(
                    "line %d: sample %s does not match TYPE %s"
                    % (lineno, name, metric)
                )
                continue
            scalar_samples.setdefault(metric, []).append(value)
            if kind == "counter" and value < 0:
                errors.append(
                    "line %d: counter %s is negative" % (lineno, name)
                )

    for metric, kind in types.items():
        if kind == "histogram":
            series = buckets.get(metric, [])
            if not series:
                errors.append("histogram %s: no buckets" % metric)
                continue
            if series[-1][0] != "+Inf":
                errors.append(
                    "histogram %s: last bucket must be le=\"+Inf\"" % metric
                )
            edges = []
            for le, _ in series[:-1]:
                try:
                    edges.append(float(le))
                except ValueError:
                    errors.append(
                        "histogram %s: non-numeric le %r" % (metric, le)
                    )
            if any(b >= a for a, b in zip(edges[1:], edges)):
                errors.append(
                    "histogram %s: le edges not strictly increasing"
                    % metric
                )
            cumulative = [count for _, count in series]
            if any(b < a for a, b in zip(cumulative, cumulative[1:])):
                errors.append(
                    "histogram %s: bucket counts not cumulative" % metric
                )
            if metric not in sums:
                errors.append("histogram %s: missing _sum" % metric)
            if metric not in counts:
                errors.append("histogram %s: missing _count" % metric)
            elif series[-1][0] == "+Inf" and series[-1][1] != counts[metric]:
                errors.append(
                    "histogram %s: +Inf bucket %g != _count %g"
                    % (metric, series[-1][1], counts[metric])
                )
        else:
            n = len(scalar_samples.get(metric, []))
            if n != 1:
                errors.append(
                    "%s %s: expected exactly 1 sample, found %d"
                    % (kind, metric, n)
                )
    return errors


def main():
    if len(sys.argv) != 2:
        print("usage: check_exposition.py FILE|-", file=sys.stderr)
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    errors = check(text)
    for error in errors:
        print("check_exposition: %s" % error, file=sys.stderr)
    if not errors:
        print(
            "check_exposition: ok (%d TYPE lines)"
            % len(re.findall(r"^# TYPE ", text, flags=re.M))
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
