/**
 * @file
 * Request-trace tests: the span tree is a time stack and obeys the same
 * conservation law as the paper's CPI stacks — span durations partition
 * request wall time (tolerance RequestTrace::kToleranceUs). The three
 * cache outcomes each have a distinct documented span shape
 * (docs/formats.md "Request traces"), pinned here.
 */

#include "serve/request_trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/json_parse.hpp"

namespace stackscope::serve {
namespace {

using Clock = RequestTrace::Clock;

std::int64_t
sumSpans(const TraceSummary &t)
{
    std::int64_t sum = 0;
    for (const TraceSummary::SpanValue &s : t.spans)
        sum += s.dur_us;
    return sum;
}

void
spinFor(std::chrono::microseconds d)
{
    const Clock::time_point until = Clock::now() + d;
    while (Clock::now() < until) {
    }
}

// ---------------------------------------------------------------------
// Conservation.

TEST(RequestTraceTest, PhasesPartitionWallTime)
{
    RequestTrace trace("r-1", "ndjson", Clock::now());
    spinFor(std::chrono::microseconds(200));
    trace.begin(Span::kParse);
    spinFor(std::chrono::microseconds(200));
    trace.begin(Span::kCacheLookup);
    spinFor(std::chrono::microseconds(200));
    trace.begin(Span::kWrite);
    spinFor(std::chrono::microseconds(200));
    const auto summary = trace.finish();

    EXPECT_TRUE(summary->conservation_ok)
        << "error " << summary->conservation_error_us << " us";
    // Phases close each other at one shared timestamp, so the partition
    // is exact — not merely within tolerance.
    EXPECT_EQ(sumSpans(*summary), summary->wall_us);
    EXPECT_EQ(summary->conservation_error_us, 0);
}

TEST(RequestTraceTest, LeaderJobSpansAreCarvedOutOfWaitPhase)
{
    RequestTrace trace("r-2", "ndjson", Clock::now());
    trace.begin(Span::kCacheLookup);
    trace.begin(Span::kSingleflightWait);
    const Clock::time_point submit = Clock::now();
    spinFor(std::chrono::microseconds(300));  // queue wait
    const Clock::time_point started = Clock::now();
    spinFor(std::chrono::microseconds(600));  // simulate
    const Clock::time_point sim_done = Clock::now();
    spinFor(std::chrono::microseconds(150));  // serialize
    trace.addJobSpan(Span::kQueueWait, submit, started);
    trace.addJobSpan(Span::kSimulate, started, sim_done);
    trace.addJobSpan(Span::kSerialize, sim_done, Clock::now());
    trace.begin(Span::kWrite);
    const auto summary = trace.finish();

    EXPECT_TRUE(summary->conservation_ok)
        << "error " << summary->conservation_error_us << " us";
    EXPECT_TRUE(summary->hasSpan(Span::kQueueWait));
    EXPECT_TRUE(summary->hasSpan(Span::kSimulate));
    EXPECT_TRUE(summary->hasSpan(Span::kSerialize));
    EXPECT_GE(summary->spanUs(Span::kQueueWait), 300);
    EXPECT_GE(summary->spanUs(Span::kSimulate), 600);
    // The singleflight remainder is what the job spans did not cover —
    // small here, and never negative.
    EXPECT_GE(summary->spanUs(Span::kSingleflightWait), 0);
    EXPECT_LE(sumSpans(*summary),
              summary->wall_us + RequestTrace::kToleranceUs);
}

// ---------------------------------------------------------------------
// Outcome shapes.

TEST(RequestTraceTest, HitShapeHasNoWaitOrSimulateSpans)
{
    RequestTrace trace("r-3", "ndjson", Clock::now());
    trace.begin(Span::kParse);
    trace.begin(Span::kCacheLookup);
    trace.setOutcome("hit");
    trace.begin(Span::kWrite);
    const auto summary = trace.finish();

    EXPECT_FALSE(summary->hasSpan(Span::kQueueWait));
    EXPECT_FALSE(summary->hasSpan(Span::kSimulate));
    EXPECT_FALSE(summary->hasSpan(Span::kSingleflightWait));
    EXPECT_TRUE(summary->hasSpan(Span::kCacheLookup));
    EXPECT_TRUE(summary->conservation_ok);
}

TEST(RequestTraceTest, CoalescedShapeIsAllSingleflightWait)
{
    RequestTrace trace("r-4", "ndjson", Clock::now());
    trace.begin(Span::kCacheLookup);
    trace.begin(Span::kSingleflightWait);
    spinFor(std::chrono::microseconds(400));
    trace.begin(Span::kWrite);
    const auto summary = trace.finish();

    // No job spans: the whole wait phase is genuine singleflight_wait.
    EXPECT_FALSE(summary->hasSpan(Span::kQueueWait));
    EXPECT_FALSE(summary->hasSpan(Span::kSimulate));
    EXPECT_GE(summary->spanUs(Span::kSingleflightWait), 400);
    EXPECT_TRUE(summary->conservation_ok);
}

TEST(RequestTraceTest, MetadataFlowsThrough)
{
    RequestTrace trace("r-5", "ndjson", Clock::now());
    trace.setClientId("client-7");
    trace.setEndpoint("analyze");
    trace.setOutcome("miss");
    trace.setStatus("ok");
    const auto summary = trace.finish();
    EXPECT_EQ(summary->id, "r-5");
    EXPECT_EQ(summary->client_id, "client-7");
    EXPECT_EQ(summary->endpoint, "analyze");
    EXPECT_EQ(summary->outcome, "miss");
    EXPECT_EQ(summary->status, "ok");
}

// ---------------------------------------------------------------------
// Store.

TEST(TraceStoreTest, FindsNewestFirstAndEvictsOldest)
{
    TraceStore store(2);
    for (const char *id : {"r-1", "r-2", "r-3"}) {
        RequestTrace trace(id, "ndjson", Clock::now());
        store.add(trace.finish());
    }
    EXPECT_EQ(store.find("r-1"), nullptr) << "evicted by capacity 2";
    ASSERT_NE(store.find("r-3"), nullptr);

    const auto recent = store.recent(10);
    ASSERT_EQ(recent.size(), 2u);
    EXPECT_EQ(recent[0]->id, "r-3") << "newest first";
    EXPECT_EQ(recent[1]->id, "r-2");

    EXPECT_EQ(store.recent(1).size(), 1u);
}

// ---------------------------------------------------------------------
// Renderers.

TEST(TraceRenderTest, TraceJsonIsParseableWithDocumentedSchema)
{
    RequestTrace trace("r-9", "http:/analyze", Clock::now());
    trace.begin(Span::kParse);
    trace.setOutcome("miss");
    trace.setStatus("ok");
    const auto summary = trace.finish();

    const obs::JsonValue doc = obs::parseJson(traceJson(*summary));
    EXPECT_EQ(doc.find("schema")->string, "stackscope-request-trace");
    EXPECT_EQ(doc.find("version")->number, 1);
    EXPECT_EQ(doc.find("request")->string, "r-9");
    EXPECT_EQ(doc.find("endpoint")->string, "http:/analyze");
    ASSERT_NE(doc.find("spans"), nullptr);
    for (const obs::JsonValue &s : doc.find("spans")->array) {
        EXPECT_NE(s.find("span"), nullptr);
        EXPECT_NE(s.find("start_us"), nullptr);
        EXPECT_NE(s.find("dur_us"), nullptr);
    }
    EXPECT_NE(doc.find("conservation_ok"), nullptr);
    EXPECT_NE(doc.find("conservation_error_us"), nullptr);
}

TEST(TraceRenderTest, ChromeJsonSplitsConnectionAndJobLanes)
{
    RequestTrace trace("r-10", "ndjson", Clock::now());
    trace.begin(Span::kCacheLookup);
    trace.begin(Span::kSingleflightWait);
    const Clock::time_point t0 = Clock::now();
    spinFor(std::chrono::microseconds(100));
    trace.addJobSpan(Span::kSimulate, t0, Clock::now());
    trace.begin(Span::kWrite);
    const auto summary = trace.finish();

    const obs::JsonValue doc = obs::parseJson(traceChromeJson(*summary));
    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_connection_lane = false;
    bool saw_job_lane = false;
    for (const obs::JsonValue &e : events->array) {
        const obs::JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->string != "X")
            continue;
        const double tid = e.find("tid")->number;
        const std::string name = e.find("name")->string;
        if (name == "simulate") {
            EXPECT_EQ(tid, 1) << "job spans live on the job lane";
            saw_job_lane = true;
        }
        if (name == "cache_lookup" || name == "write" ||
            name == "singleflight_wait") {
            EXPECT_EQ(tid, 0) << name << " lives on the connection lane";
            saw_connection_lane = true;
        }
    }
    EXPECT_TRUE(saw_connection_lane);
    EXPECT_TRUE(saw_job_lane);
}

TEST(TraceRenderTest, IndexListsRequestSummaries)
{
    TraceStore store(4);
    RequestTrace trace("r-11", "ndjson", Clock::now());
    trace.setOutcome("hit");
    trace.setStatus("ok");
    store.add(trace.finish());

    const obs::JsonValue doc =
        obs::parseJson(traceIndexJson(store.recent(4)));
    const obs::JsonValue *traces = doc.find("traces");
    ASSERT_NE(traces, nullptr);
    ASSERT_EQ(traces->array.size(), 1u);
    EXPECT_EQ(traces->array[0].find("request")->string, "r-11");
    EXPECT_EQ(traces->array[0].find("outcome")->string, "hit");
}

}  // namespace
}  // namespace stackscope::serve
