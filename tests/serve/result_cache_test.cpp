/**
 * @file
 * Tests of the serve result cache against the documented semantics
 * (docs/serving.md "Result cache"): single-flight coalescing, LRU
 * eviction under the byte budget, hit byte-identity and
 * failure-is-not-cached retry behaviour.
 */

#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace stackscope::serve {
namespace {

std::string
payload(std::size_t size, char fill)
{
    return std::string(size, fill);
}

TEST(ResultCacheTest, MissThenHitReturnsIdenticalBytes)
{
    ResultCache cache(1 << 20);
    ResultCache::Handle first = cache.lookup("k1");
    EXPECT_EQ(first.outcome, CacheOutcome::kMiss);
    EXPECT_TRUE(first.leader());
    cache.complete("k1", "REPORT-BYTES");

    ResultCache::Handle second = cache.lookup("k1");
    EXPECT_EQ(second.outcome, CacheOutcome::kHit);
    EXPECT_FALSE(second.leader());
    // The hit must observe the exact bytes the leader published — the
    // byte-identity guarantee reduced to its cache-layer core.
    EXPECT_EQ(*second.future.get(), "REPORT-BYTES");
    EXPECT_EQ(second.future.get(), first.future.get())
        << "hit and original share one immutable buffer";

    const ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.pending, 0u);
}

TEST(ResultCacheTest, ConcurrentSameKeyCoalescesToOneLeader)
{
    ResultCache cache(1 << 20);
    constexpr unsigned kThreads = 16;
    std::atomic<unsigned> leaders{0};
    std::atomic<unsigned> ready{0};
    std::vector<std::thread> threads;
    std::vector<std::string> results(kThreads);

    threads.reserve(kThreads);
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            }
            ResultCache::Handle handle = cache.lookup("hot-key");
            if (handle.leader()) {
                leaders.fetch_add(1);
                // Only the leader "simulates"; everyone else must wait
                // on the shared future instead of recomputing.
                cache.complete("hot-key", "ONE-SIMULATION");
            }
            results[i] = *handle.future.get();
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(leaders.load(), 1u) << "thundering herd: >1 simulation ran";
    for (const std::string &r : results)
        EXPECT_EQ(r, "ONE-SIMULATION");
    const ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsedUnderByteBound)
{
    // Budget fits roughly two 4 KiB entries (plus per-entry overhead).
    ResultCache cache(10'000);
    for (const char *key : {"a", "b"}) {
        ResultCache::Handle h = cache.lookup(key);
        ASSERT_TRUE(h.leader());
        cache.complete(key, payload(4096, key[0]));
    }
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch "a" so "b" is the LRU victim when "c" lands.
    EXPECT_EQ(cache.lookup("a").outcome, CacheOutcome::kHit);
    ResultCache::Handle h = cache.lookup("c");
    ASSERT_TRUE(h.leader());
    cache.complete("c", payload(4096, 'c'));

    const ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, 10'000u);
    EXPECT_EQ(cache.lookup("a").outcome, CacheOutcome::kHit);
    EXPECT_EQ(cache.lookup("c").outcome, CacheOutcome::kHit);
    // "b" was evicted: looking it up re-registers a miss (new leader).
    ResultCache::Handle evicted = cache.lookup("b");
    EXPECT_EQ(evicted.outcome, CacheOutcome::kMiss);
    cache.complete("b", payload(16, 'b'));
}

TEST(ResultCacheTest, OversizedEntryIsPublishedButNotRetained)
{
    ResultCache cache(1024);
    ResultCache::Handle h = cache.lookup("big");
    ASSERT_TRUE(h.leader());
    cache.complete("big", payload(8192, 'X'));
    // Waiters still get the bytes...
    EXPECT_EQ(h.future.get()->size(), 8192u);
    // ...but the entry cannot stay resident within the budget.
    EXPECT_LE(cache.stats().bytes, 1024u);
    EXPECT_EQ(cache.lookup("big").outcome, CacheOutcome::kMiss);
    cache.complete("big", payload(16, 'X'));
}

TEST(ResultCacheTest, PendingEntriesAreNeverEvicted)
{
    ResultCache cache(2048);
    ResultCache::Handle pending = cache.lookup("slow");
    ASSERT_TRUE(pending.leader());

    // Fill well past the budget while "slow" is still computing.
    for (int i = 0; i < 4; ++i) {
        const std::string key = "filler-" + std::to_string(i);
        ResultCache::Handle h = cache.lookup(key);
        ASSERT_TRUE(h.leader());
        cache.complete(key, payload(1024, 'f'));
    }
    EXPECT_GE(cache.stats().evictions, 1u);

    // The pending entry survived: a second lookup coalesces instead of
    // becoming a new leader, and completing it still works.
    EXPECT_EQ(cache.lookup("slow").outcome, CacheOutcome::kCoalesced);
    cache.complete("slow", "slow-result");
    EXPECT_EQ(*pending.future.get(), "slow-result");
}

TEST(ResultCacheTest, FailurePropagatesAndIsNotCached)
{
    ResultCache cache(1 << 20);
    ResultCache::Handle first = cache.lookup("flaky");
    ResultCache::Handle waiter = cache.lookup("flaky");
    ASSERT_TRUE(first.leader());
    EXPECT_EQ(waiter.outcome, CacheOutcome::kCoalesced);

    cache.fail("flaky",
               std::make_exception_ptr(StackscopeError(
                   ErrorCategory::kValidation, "injected failure")));
    EXPECT_THROW(first.future.get(), StackscopeError);
    EXPECT_THROW(waiter.future.get(), StackscopeError);

    // Failures are not memoized: the next lookup retries from scratch.
    ResultCache::Handle retry = cache.lookup("flaky");
    EXPECT_EQ(retry.outcome, CacheOutcome::kMiss);
    cache.complete("flaky", "recovered");
    EXPECT_EQ(*retry.future.get(), "recovered");
    EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ResultCacheTest, CompleteWithoutPendingEntryIsAnInternalError)
{
    ResultCache cache(1 << 20);
    EXPECT_THROW(cache.complete("never-looked-up", "x"), StackscopeError);
    EXPECT_THROW(cache.fail("never-looked-up",
                            std::make_exception_ptr(std::runtime_error(""))),
                 StackscopeError);
}

}  // namespace
}  // namespace stackscope::serve
