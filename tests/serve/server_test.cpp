/**
 * @file
 * In-process integration tests for the serve daemon: a real Server
 * bound to a temp Unix socket (and an ephemeral loopback TCP port),
 * spoken to over real sockets exactly as docs/serving.md documents the
 * wire exchanges. Covers the session shape (hello first, pong, analyze
 * miss→hit byte-identity, statusz counters), error isolation (a bad
 * request answers with an error frame and the connection survives),
 * bind-conflict reporting and the clean requestStop() drain.
 */

#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/json_parse.hpp"
#include "serve/protocol.hpp"
#include "serve/request_trace.hpp"

namespace stackscope::serve {
namespace {

std::string
tempSocketPath(const char *tag)
{
    // Keep it short: sun_path is ~108 bytes.
    return "/tmp/ss-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock";
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, std::string_view bytes)
{
    while (!bytes.empty()) {
        const ssize_t n =
            ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

/** Read one '\n'-terminated frame using @p pending as carry-over. */
bool
readFrame(int fd, std::string &pending, std::string &frame)
{
    char buf[65536];
    for (;;) {
        const std::size_t pos = pending.find('\n');
        if (pos != std::string::npos) {
            frame = pending.substr(0, pos + 1);
            pending.erase(0, pos + 1);
            return true;
        }
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        pending.append(buf, static_cast<std::size_t>(n));
    }
}

obs::JsonValue
parseFrame(const std::string &frame)
{
    return obs::parseJson(
        std::string_view(frame.data(), frame.size() - 1));
}

/** Skip progress frames; return the first non-progress frame. */
bool
readResponse(int fd, std::string &pending, std::string &frame)
{
    for (;;) {
        if (!readFrame(fd, pending, frame))
            return false;
        if (parseFrame(frame).at("type").string != "progress")
            return true;
    }
}

/** A Server running on its own thread, torn down on scope exit. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServeOptions options)
        : server_(options), thread_([this] { drained_ = server_.run(); })
    {
    }

    ~ServerFixture()
    {
        if (thread_.joinable())
            stop();
    }

    bool stop()
    {
        server_.requestStop();
        thread_.join();
        return drained_;
    }

    Server &server() { return server_; }

  private:
    Server server_;
    bool drained_ = false;
    std::thread thread_;
};

ServeOptions
smallOptions(const std::string &socket_path)
{
    ServeOptions opt;
    opt.socket_path = socket_path;
    opt.threads = 2;
    opt.heartbeat = std::chrono::milliseconds(50);
    opt.drain_timeout = std::chrono::milliseconds(10'000);
    return opt;
}

std::string_view
reportBytes(const std::string &frame)
{
    const std::size_t start = frame.find("\"report\":");
    const std::size_t end = frame.rfind('}');
    if (start == std::string::npos || end == std::string::npos)
        return {};
    return std::string_view(frame).substr(start + 9, end - start - 9);
}

constexpr const char *kSmallSpec =
    "{\"workload\":\"mcf\",\"machine\":\"bdw\",\"instrs\":2000}";

TEST(ServerTest, NdjsonSessionFollowsDocumentedShape)
{
    const std::string path = tempSocketPath("session");
    ServerFixture fixture(smallOptions(path));

    const int fd = connectUnix(path);
    ASSERT_GE(fd, 0) << "daemon not accepting on " << path;
    std::string pending;
    std::string frame;

    // The server speaks first: a hello frame identifying the protocol.
    ASSERT_TRUE(readFrame(fd, pending, frame));
    EXPECT_EQ(frame, helloFrame());

    ASSERT_TRUE(
        sendAll(fd, "{\"type\":\"ping\",\"id\":\"p1\"}\n"));
    ASSERT_TRUE(readFrame(fd, pending, frame));
    EXPECT_EQ(frame, pongFrame("p1"));

    // Cold analyze: a miss that computes; warm repeat: a hit with
    // byte-identical report bytes.
    const std::string analyze =
        std::string("{\"type\":\"analyze\",\"id\":\"a1\",\"spec\":") +
        kSmallSpec + "}\n";
    ASSERT_TRUE(sendAll(fd, analyze));
    ASSERT_TRUE(readResponse(fd, pending, frame));
    obs::JsonValue result = parseFrame(frame);
    ASSERT_EQ(result.at("type").string, "result");
    EXPECT_EQ(result.at("id").string, "a1");
    EXPECT_EQ(result.at("cache").string, "miss");
    const std::string key = result.at("key").string;
    EXPECT_EQ(key.size(), 16u);
    const std::string cold(reportBytes(frame));
    ASSERT_FALSE(cold.empty());

    ASSERT_TRUE(sendAll(fd, analyze));
    ASSERT_TRUE(readResponse(fd, pending, frame));
    result = parseFrame(frame);
    ASSERT_EQ(result.at("type").string, "result");
    EXPECT_EQ(result.at("cache").string, "hit");
    EXPECT_EQ(result.at("key").string, key);
    EXPECT_EQ(std::string(reportBytes(frame)), cold)
        << "hit must serve the cold bytes verbatim";

    // statusz reflects the exchange we just had.
    ASSERT_TRUE(sendAll(fd, "{\"type\":\"statusz\",\"id\":\"s1\"}\n"));
    ASSERT_TRUE(readFrame(fd, pending, frame));
    const obs::JsonValue status = parseFrame(frame);
    ASSERT_EQ(status.at("type").string, "status");
    const obs::JsonValue &cache = status.at("cache");
    EXPECT_EQ(cache.at("hits").number, 1.0);
    EXPECT_EQ(cache.at("misses").number, 1.0);
    EXPECT_EQ(cache.at("entries").number, 1.0);

    ::close(fd);
    EXPECT_TRUE(fixture.stop()) << "drain timed out";
}

TEST(ServerTest, BadRequestsGetErrorFramesAndTheConnectionSurvives)
{
    const std::string path = tempSocketPath("errors");
    ServerFixture fixture(smallOptions(path));

    const int fd = connectUnix(path);
    ASSERT_GE(fd, 0);
    std::string pending;
    std::string frame;
    ASSERT_TRUE(readFrame(fd, pending, frame));  // hello

    // Unparseable line → usage error with empty id.
    ASSERT_TRUE(sendAll(fd, "this is not json\n"));
    ASSERT_TRUE(readFrame(fd, pending, frame));
    obs::JsonValue err = parseFrame(frame);
    EXPECT_EQ(err.at("type").string, "error");
    EXPECT_EQ(err.at("category").string, "usage");

    // Unknown workload → usage error carrying the request id.
    ASSERT_TRUE(sendAll(fd,
                        "{\"type\":\"analyze\",\"id\":\"bad\",\"spec\":"
                        "{\"workload\":\"nope\",\"machine\":\"bdw\"}}\n"));
    ASSERT_TRUE(readResponse(fd, pending, frame));
    err = parseFrame(frame);
    EXPECT_EQ(err.at("type").string, "error");
    EXPECT_EQ(err.at("id").string, "bad");
    EXPECT_EQ(err.at("category").string, "usage");

    // The same connection still serves good requests afterwards.
    ASSERT_TRUE(sendAll(fd, "{\"type\":\"ping\",\"id\":\"still-up\"}\n"));
    ASSERT_TRUE(readFrame(fd, pending, frame));
    EXPECT_EQ(frame, pongFrame("still-up"));

    ::close(fd);
    EXPECT_TRUE(fixture.stop());
}

TEST(ServerTest, ConcurrentClientsShareOneSimulation)
{
    const std::string path = tempSocketPath("herd");
    ServerFixture fixture(smallOptions(path));

    constexpr unsigned kClients = 6;
    const std::string analyze =
        std::string("{\"type\":\"analyze\",\"id\":\"h\",\"spec\":") +
        kSmallSpec + "}\n";
    std::vector<std::thread> clients;
    std::vector<std::string> reports(kClients);
    clients.reserve(kClients);
    for (unsigned i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            const int fd = connectUnix(path);
            ASSERT_GE(fd, 0);
            std::string pending;
            std::string frame;
            ASSERT_TRUE(readFrame(fd, pending, frame));  // hello
            ASSERT_TRUE(sendAll(fd, analyze));
            ASSERT_TRUE(readResponse(fd, pending, frame));
            ASSERT_EQ(parseFrame(frame).at("type").string, "result");
            reports[i] = std::string(reportBytes(frame));
            ::close(fd);
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (unsigned i = 1; i < kClients; ++i)
        EXPECT_EQ(reports[i], reports[0]);
    // Single-flight: the herd produced exactly one simulation.
    const ResultCache::Stats stats = fixture.server().cache().stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalesced, kClients - 1);
    EXPECT_TRUE(fixture.stop());
}

TEST(ServerTest, HttpEndpointsAnswerOnEphemeralPort)
{
    ServeOptions opt = smallOptions(tempSocketPath("http"));
    opt.tcp_port = 0;  // ephemeral
    ServerFixture fixture(opt);
    const int port = fixture.server().tcpPort();
    ASSERT_GT(port, 0);

    auto httpRequest = [&](const std::string &request) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<const sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        EXPECT_TRUE(sendAll(fd, request));
        // Connection: close — read to EOF.
        std::string response;
        char buf[65536];
        for (;;) {
            const ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            response.append(buf, static_cast<std::size_t>(n));
        }
        ::close(fd);
        return response;
    };

    const std::string health =
        httpRequest("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(health.substr(0, 15), "HTTP/1.1 200 OK");

    const std::string body = kSmallSpec;
    const std::string analyzed = httpRequest(
        "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body);
    EXPECT_EQ(analyzed.substr(0, 15), "HTTP/1.1 200 OK");
    EXPECT_NE(analyzed.find("\"report\":"), std::string::npos);

    const std::string status =
        httpRequest("GET /statusz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(status.substr(0, 15), "HTTP/1.1 200 OK");
    EXPECT_NE(status.find("\"cache\":"), std::string::npos);

    // Bad spec → 400, unknown path → 404; the daemon shrugs both off.
    const std::string bad = httpRequest(
        "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n"
        "\r\n{}");
    EXPECT_EQ(bad.substr(0, 12), "HTTP/1.1 400");
    const std::string lost =
        httpRequest("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(lost.substr(0, 12), "HTTP/1.1 404");

    EXPECT_TRUE(fixture.stop());
}

std::string
httpBody(const std::string &response)
{
    const std::size_t pos = response.find("\r\n\r\n");
    return pos == std::string::npos ? std::string()
                                    : response.substr(pos + 4);
}

/** One-shot loopback HTTP exchange: send @p request, read to EOF. */
std::string
httpExchange(int port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_TRUE(sendAll(fd, request));
    std::string response;
    char buf[65536];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(ServerTest, TracezShowsColdVersusHitSpanShapes)
{
    ServeOptions opt = smallOptions(tempSocketPath("tracez"));
    opt.tcp_port = 0;
    ServerFixture fixture(opt);
    const int port = fixture.server().tcpPort();
    ASSERT_GT(port, 0);

    const std::string body = kSmallSpec;
    const std::string analyze_req =
        "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;

    // Cold request: the leader runs the simulation, so its trace must
    // attribute time to queue_wait and simulate.
    const std::string cold = httpExchange(port, analyze_req);
    ASSERT_EQ(cold.substr(0, 15), "HTTP/1.1 200 OK");
    const obs::JsonValue cold_result = obs::parseJson(httpBody(cold));
    const std::string cold_id = cold_result.at("request").string;
    ASSERT_FALSE(cold_id.empty());

    const std::string cold_trace_rsp = httpExchange(
        port, "GET /tracez?id=" + cold_id + " HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_EQ(cold_trace_rsp.substr(0, 15), "HTTP/1.1 200 OK");
    const obs::JsonValue cold_trace =
        obs::parseJson(httpBody(cold_trace_rsp));
    EXPECT_EQ(cold_trace.at("request").string, cold_id);
    EXPECT_EQ(cold_trace.at("outcome").string, "miss");
    EXPECT_TRUE(cold_trace.at("conservation_ok").boolean);
    std::int64_t queue_wait = -1;
    std::int64_t simulate = -1;
    std::int64_t span_sum = 0;
    for (const obs::JsonValue &s : cold_trace.at("spans").array) {
        span_sum += static_cast<std::int64_t>(s.at("dur_us").number);
        if (s.at("span").string == "queue_wait")
            queue_wait = static_cast<std::int64_t>(s.at("dur_us").number);
        if (s.at("span").string == "simulate")
            simulate = static_cast<std::int64_t>(s.at("dur_us").number);
    }
    EXPECT_GE(queue_wait, 0) << "cold trace must carry queue_wait";
    EXPECT_GT(simulate, 0) << "cold trace must carry a nonzero simulate";
    // Spans are additive: they sum to wall time within the tolerance.
    const auto wall =
        static_cast<std::int64_t>(cold_trace.at("wall_us").number);
    EXPECT_LE(std::abs(span_sum - wall), RequestTrace::kToleranceUs);

    // Warm repeat: a pure cache hit never opens the wait phase.
    const std::string hit = httpExchange(port, analyze_req);
    const obs::JsonValue hit_result = obs::parseJson(httpBody(hit));
    ASSERT_EQ(hit_result.at("cache").string, "hit");
    const std::string hit_id = hit_result.at("request").string;
    const obs::JsonValue hit_trace = obs::parseJson(httpBody(httpExchange(
        port, "GET /tracez?id=" + hit_id + " HTTP/1.1\r\nHost: x\r\n\r\n")));
    EXPECT_EQ(hit_trace.at("outcome").string, "hit");
    EXPECT_TRUE(hit_trace.at("conservation_ok").boolean);
    for (const obs::JsonValue &s : hit_trace.at("spans").array) {
        EXPECT_NE(s.at("span").string, "queue_wait");
        EXPECT_NE(s.at("span").string, "simulate");
        EXPECT_NE(s.at("span").string, "singleflight_wait");
    }

    // The index lists both requests, newest first.
    const obs::JsonValue index = obs::parseJson(httpBody(
        httpExchange(port, "GET /tracez HTTP/1.1\r\nHost: x\r\n\r\n")));
    ASSERT_GE(index.at("traces").array.size(), 2u);

    // Chrome rendering and unknown-id 404.
    const std::string chrome_rsp = httpExchange(
        port, "GET /tracez?id=" + cold_id +
                  "&format=chrome HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_EQ(chrome_rsp.substr(0, 15), "HTTP/1.1 200 OK");
    EXPECT_NE(httpBody(chrome_rsp).find("\"traceEvents\""),
              std::string::npos);
    EXPECT_EQ(httpExchange(port,
                           "GET /tracez?id=r-999999 HTTP/1.1\r\nHost: "
                           "x\r\n\r\n")
                  .substr(0, 12),
              "HTTP/1.1 404");

    EXPECT_TRUE(fixture.stop());
}

TEST(ServerTest, MetricszServesValidPrometheusText)
{
    ServeOptions opt = smallOptions(tempSocketPath("metricsz"));
    opt.tcp_port = 0;
    ServerFixture fixture(opt);
    const int port = fixture.server().tcpPort();
    ASSERT_GT(port, 0);

    const std::string body = kSmallSpec;
    httpExchange(port,
                 "POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body);

    const std::string rsp =
        httpExchange(port, "GET /metricsz HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_EQ(rsp.substr(0, 15), "HTTP/1.1 200 OK");
    EXPECT_NE(rsp.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    const std::string text = httpBody(rsp);
    EXPECT_NE(text.find("# TYPE serve_requests_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_analyze_seconds histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_analyze_seconds_bucket{le=\"+Inf\"} "),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_inflight_requests gauge\n"),
              std::string::npos);
    // No request in this test may violate span conservation.
    EXPECT_NE(text.find("serve_trace_conservation_failures_total 0\n"),
              std::string::npos);

    EXPECT_TRUE(fixture.stop());
}

TEST(ServerTest, AccessLogEmitsOneStructuredLinePerRequest)
{
    std::mutex log_mutex;
    std::vector<std::string> records;
    log::setWriterForTest([&](const std::string &line) {
        std::lock_guard<std::mutex> lock(log_mutex);
        records.push_back(line);
    });
    const log::Level saved = log::threshold();
    log::setThreshold(log::Level::kInfo);
    const bool saved_json = log::jsonOutput();
    log::setJsonOutput(true);

    {
        const std::string path = tempSocketPath("accesslog");
        ServerFixture fixture(smallOptions(path));
        const int fd = connectUnix(path);
        ASSERT_GE(fd, 0);
        std::string pending;
        std::string frame;
        ASSERT_TRUE(readFrame(fd, pending, frame));  // hello
        ASSERT_TRUE(sendAll(fd, "{\"type\":\"ping\",\"id\":\"p9\"}\n"));
        ASSERT_TRUE(readFrame(fd, pending, frame));
        ::close(fd);
        EXPECT_TRUE(fixture.stop());
    }

    log::setWriterForTest(nullptr);
    log::setThreshold(saved);
    log::setJsonOutput(saved_json);

    std::lock_guard<std::mutex> lock(log_mutex);
    bool found = false;
    for (const std::string &line : records) {
        if (line.find("\"msg\":\"access\"") == std::string::npos)
            continue;
        found = true;
        const obs::JsonValue record = obs::parseJson(line);
        EXPECT_EQ(record.at("module").string, "serve");
        EXPECT_EQ(record.at("endpoint").string, "ping");
        EXPECT_EQ(record.at("id").string, "p9");
        EXPECT_EQ(record.at("status").string, "ok");
        EXPECT_FALSE(record.at("request").string.empty());
        EXPECT_NE(record.find("wall_us"), nullptr);
    }
    EXPECT_TRUE(found) << "no access record for the ping request";
}

TEST(ServerTest, BindConflictsThrowBindError)
{
    const std::string path = tempSocketPath("conflict");
    ServeOptions opt = smallOptions(path);
    opt.tcp_port = 0;
    ServerFixture fixture(opt);

    // Same UDS path, live daemon behind it → BindError, and the
    // original socket is left untouched (still connectable).
    EXPECT_THROW(Server(smallOptions(path)), BindError);
    const int fd = connectUnix(path);
    EXPECT_GE(fd, 0) << "conflict handling clobbered the live socket";
    if (fd >= 0)
        ::close(fd);

    // Same TCP port → BindError too.
    ServeOptions tcp_clash = smallOptions(tempSocketPath("conflict2"));
    tcp_clash.tcp_port = fixture.server().tcpPort();
    EXPECT_THROW(Server{tcp_clash}, BindError);

    // No listener at all is a plain config error, not a bind failure.
    ServeOptions none;
    none.threads = 1;
    EXPECT_THROW(Server{none}, StackscopeError);

    EXPECT_TRUE(fixture.stop());
}

TEST(ServerTest, StaleSocketFileIsReclaimed)
{
    const std::string path = tempSocketPath("stale");
    // Fabricate a stale socket file: bind and close without unlinking,
    // as a crashed daemon would leave behind.
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd);
    }

    ServerFixture fixture(smallOptions(path));
    const int fd = connectUnix(path);
    EXPECT_GE(fd, 0) << "stale socket file was not reclaimed";
    if (fd >= 0) {
        std::string pending;
        std::string frame;
        EXPECT_TRUE(readFrame(fd, pending, frame));
        EXPECT_EQ(frame, helloFrame());
        ::close(fd);
    }
    EXPECT_TRUE(fixture.stop());
    // Clean shutdown removes the socket file.
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace stackscope::serve
