/**
 * @file
 * Protocol-contract tests: every assertion here mirrors a normative
 * statement in docs/serving.md. When a test in this file fails, either
 * the implementation or the document is wrong — fix whichever it is,
 * in the same commit (the frames are a versioned wire contract).
 */

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/json_parse.hpp"
#include "obs/report.hpp"
#include "runner/job_spec.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::serve {
namespace {

obs::JsonValue
parseSpecJson(const std::string &text)
{
    return obs::parseJson(text);
}

// ---------------------------------------------------------------------
// Frame bytes: docs/serving.md "Frame reference" shows these documents
// verbatim; the daemon must emit exactly these bytes.

TEST(ProtocolFrameTest, HelloFrameMatchesDocumentedBytes)
{
    EXPECT_EQ(helloFrame(),
              "{\"type\":\"hello\",\"schema\":\"stackscope-serve\","
              "\"version\":1}\n");
}

TEST(ProtocolFrameTest, PongFrameMatchesDocumentedBytes)
{
    EXPECT_EQ(pongFrame("42"), "{\"type\":\"pong\",\"id\":\"42\"}\n");
}

TEST(ProtocolFrameTest, ProgressFrameMatchesDocumentedBytes)
{
    // Heartbeats carry the server-minted request id so a client can
    // fetch /tracez?id=... for a request that is still in flight.
    EXPECT_EQ(progressFrame("1", "r-7", "00112233aabbccdd", 500),
              "{\"type\":\"progress\",\"id\":\"1\",\"request\":\"r-7\","
              "\"key\":\"00112233aabbccdd\",\"elapsed_ms\":500}\n");
}

TEST(ProtocolFrameTest, ErrorFrameMatchesDocumentedBytes)
{
    EXPECT_EQ(errorFrame("1", ErrorCategory::kUsage, "unknown key 'x'"),
              "{\"type\":\"error\",\"id\":\"1\",\"category\":\"usage\","
              "\"message\":\"unknown key 'x'\"}\n");
}

TEST(ProtocolFrameTest, ResultFrameSplicesReportVerbatimAsLastMember)
{
    const std::string report = "{\"schema\":\"stackscope-report\"}";
    const std::string frame = resultFrame("7", "r-9", "deadbeefdeadbeef",
                                          CacheOutcome::kHit, report);
    EXPECT_EQ(frame,
              "{\"type\":\"result\",\"id\":\"7\",\"request\":\"r-9\","
              "\"key\":\"deadbeefdeadbeef\",\"cache\":\"hit\","
              "\"report\":" + report + "}\n");
    // The documented client recipe: report bytes = everything between
    // `"report":` and the final `}` of the frame. It must reproduce the
    // spliced report exactly.
    const std::size_t start = frame.find("\"report\":") + 9;
    const std::size_t end = frame.rfind('}');
    EXPECT_EQ(frame.substr(start, end - start), report);
}

TEST(ProtocolFrameTest, StatusFrameCarriesCacheSloAndHostMetrics)
{
    const ResultCache::Stats stats{};
    const SloTracker::Summary slo{};
    const obs::MetricsSnapshot snap{};
    const std::string frame = statusFrame("s", stats, slo, snap);
    const obs::JsonValue doc = obs::parseJson(
        std::string_view(frame.data(), frame.size() - 1));
    ASSERT_NE(doc.find("cache"), nullptr);
    EXPECT_NE(doc.find("cache")->find("waiting"), nullptr)
        << "coalesced-waiter count is part of the cache block";
    const obs::JsonValue *s = doc.find("slo");
    ASSERT_NE(s, nullptr);
    for (const char *key :
         {"window_s", "objective_ms", "target", "requests", "errors",
          "error_rate", "within_objective", "attainment", "p50_ms",
          "p99_ms", "ok"}) {
        EXPECT_NE(s->find(key), nullptr) << "slo." << key;
    }
    EXPECT_NE(doc.find("host_metrics"), nullptr);
}

TEST(ProtocolFrameTest, EveryFrameIsOneParseableLine)
{
    const ResultCache::Stats stats{};
    const SloTracker::Summary slo{};
    const obs::MetricsSnapshot snap{};
    for (const std::string &frame :
         {helloFrame(), pongFrame("i"), progressFrame("i", "r", "k", 1),
          errorFrame("i", ErrorCategory::kInternal, "m"),
          resultFrame("i", "r", "k", CacheOutcome::kMiss, "{}"),
          statusFrame("i", stats, slo, snap)}) {
        ASSERT_FALSE(frame.empty());
        EXPECT_EQ(frame.back(), '\n');
        EXPECT_EQ(frame.find('\n'), frame.size() - 1)
            << "frames must not contain embedded newlines";
        EXPECT_NO_THROW(obs::parseJson(
            std::string_view(frame.data(), frame.size() - 1)));
    }
}

// ---------------------------------------------------------------------
// Request parsing.

TEST(ProtocolRequestTest, ParsesPingStatuszAnalyze)
{
    EXPECT_EQ(parseRequest("{\"type\":\"ping\",\"id\":\"a\"}").kind,
              Request::Kind::kPing);
    EXPECT_EQ(parseRequest("{\"type\":\"statusz\"}").kind,
              Request::Kind::kStatusz);
    const Request analyze = parseRequest(
        "{\"type\":\"analyze\",\"id\":\"9\","
        "\"spec\":{\"workload\":\"mcf\",\"machine\":\"bdw\"}}");
    EXPECT_EQ(analyze.kind, Request::Kind::kAnalyze);
    EXPECT_EQ(analyze.id, "9");
    EXPECT_TRUE(analyze.spec.isObject());
}

TEST(ProtocolRequestTest, RejectsMalformedRequests)
{
    EXPECT_THROW(parseRequest("not json"), StackscopeError);
    EXPECT_THROW(parseRequest("[1,2]"), StackscopeError);
    EXPECT_THROW(parseRequest("{\"type\":\"nope\"}"), StackscopeError);
    EXPECT_THROW(parseRequest("{\"id\":\"1\"}"), StackscopeError);
    EXPECT_THROW(parseRequest("{\"type\":\"ping\",\"id\":7}"),
                 StackscopeError);
    EXPECT_THROW(parseRequest("{\"type\":\"analyze\",\"id\":\"1\"}"),
                 StackscopeError)
        << "analyze without spec";
    EXPECT_THROW(
        parseRequest("{\"type\":\"ping\",\"unexpected\":true}"),
        StackscopeError)
        << "unknown frame keys are usage errors";
}

// ---------------------------------------------------------------------
// Spec parsing: defaults mirror the CLI so wire specs hash identically
// to equivalent CLI invocations (the cache-key contract).

TEST(ProtocolSpecTest, DefaultsMatchCliRunConventions)
{
    const runner::JobSpec job = parseSpec(parseSpecJson(
        "{\"workload\":\"mcf\",\"machine\":\"bdw\",\"instrs\":20000}"));
    EXPECT_EQ(job.workload, "mcf");
    EXPECT_EQ(job.machine, "bdw");
    EXPECT_EQ(job.cores, 1u);
    // JobSpec::instrs is measured + warmup, warmup defaulting to half
    // the measured count — the sweep/CLI convention.
    EXPECT_EQ(job.instrs, 30'000u);
    ASSERT_TRUE(job.options.warmup_instrs.has_value());
    EXPECT_EQ(*job.options.warmup_instrs, 10'000u);
    EXPECT_FALSE(job.options.reference_engine);
    EXPECT_EQ(job.options.validation, validate::ValidationPolicy::kOff);
}

TEST(ProtocolSpecTest, HashMatchesEquivalentCliJobSpec)
{
    const runner::JobSpec wire = parseSpec(parseSpecJson(
        "{\"workload\":\"gcc\",\"machine\":\"knl\",\"cores\":2,"
        "\"instrs\":10000}"));

    // The JobSpec the CLI's sweep/run path would build for
    // `--workload gcc --machine knl --cores 2 --instrs 10000`.
    runner::JobSpec cli;
    cli.workload = "gcc";
    cli.machine = "knl";
    cli.cores = 2;
    cli.instrs = 15'000;  // totalInstrs(): measured + warmup
    cli.options.warmup_instrs = 5'000;
    EXPECT_EQ(runner::specHash(wire), runner::specHash(cli))
        << "wire spec and CLI spec must share one cache identity";
}

TEST(ProtocolSpecTest, OptionsRoundTrip)
{
    const runner::JobSpec job = parseSpec(parseSpecJson(
        "{\"workload\":\"mcf\",\"machine\":\"bdw\",\"instrs\":1000,"
        "\"warmup\":0,\"options\":{\"spec_mode\":\"simple\","
        "\"engine\":\"reference\",\"validate\":\"strict\","
        "\"max_cycles\":5000,\"watchdog_cycles\":100000,"
        "\"deadline_cycles\":200000,\"job_timeout_seconds\":1.5,"
        "\"interval_cycles\":250}}"));
    EXPECT_EQ(job.instrs, 1000u);
    EXPECT_EQ(*job.options.warmup_instrs, 0u);
    EXPECT_EQ(job.options.spec_mode, stacks::SpeculationMode::kSimple);
    EXPECT_TRUE(job.options.reference_engine);
    EXPECT_EQ(job.options.validation, validate::ValidationPolicy::kStrict);
    EXPECT_EQ(job.options.max_cycles, 5000u);
    EXPECT_EQ(job.options.watchdog_cycles, 100'000u);
    EXPECT_EQ(job.options.deadline_cycles, 200'000u);
    EXPECT_DOUBLE_EQ(job.options.job_timeout_seconds, 1.5);
    EXPECT_EQ(job.options.obs.interval_cycles, 250u);
}

TEST(ProtocolSpecTest, RejectsUnknownKeysEverywhere)
{
    // Unknown keys would silently alias distinct intents onto one cache
    // key, so they are hard usage errors (docs/serving.md "Strictness").
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"typo_instrs\":5}")),
                 StackscopeError);
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"options\":{\"engine\":\"batched\","
                     "\"fault\":\"wrong-latency\"}}")),
                 StackscopeError)
        << "fault injection is not servable (not in serve schema v1)";
}

TEST(ProtocolSpecTest, RejectsBadValues)
{
    EXPECT_THROW(parseSpec(parseSpecJson("{\"machine\":\"bdw\"}")),
                 StackscopeError)
        << "workload is required";
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"nope\",\"machine\":\"bdw\"}")),
                 StackscopeError);
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"nope\"}")),
                 StackscopeError);
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"instrs\":0}")),
                 StackscopeError);
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"instrs\":2.5}")),
                 StackscopeError)
        << "non-integral counts are rejected";
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"cores\":0}")),
                 StackscopeError);
    EXPECT_THROW(parseSpec(parseSpecJson(
                     "{\"workload\":\"mcf\",\"machine\":\"bdw\","
                     "\"options\":{\"engine\":\"turbo\"}}")),
                 StackscopeError);
}

// ---------------------------------------------------------------------
// simulateSpec: the serve-side run must be byte-identical to what the
// CLI's report path produces for the same spec.

TEST(ProtocolSimulateTest, ReportMatchesDirectRunByteForByte)
{
    const runner::JobSpec spec = parseSpec(parseSpecJson(
        "{\"workload\":\"mcf\",\"machine\":\"bdw\",\"instrs\":2000}"));
    const std::string served = simulateSpec(spec);

    // The equivalent of `stackscope run --workload mcf --machine bdw
    // --instrs 2000 --no-host-metrics --report-out` built by hand.
    const sim::MachineConfig machine = sim::machineByName("bdw");
    trace::SyntheticParams params = trace::findWorkload("mcf").params;
    params.num_instrs = spec.instrs;
    const trace::SyntheticGenerator gen(params);
    const sim::SimResult r = sim::simulate(machine, gen, spec.options);
    obs::ReportBuilder report("run");
    report.add("mcf/" + machine.name, spec.options, r);

    EXPECT_EQ(served, report.json());
}

TEST(ProtocolSimulateTest, RepeatRunsAreByteIdentical)
{
    const runner::JobSpec spec = parseSpec(parseSpecJson(
        "{\"workload\":\"gcc\",\"machine\":\"bdw\",\"cores\":2,"
        "\"instrs\":2000}"));
    EXPECT_EQ(simulateSpec(spec), simulateSpec(spec))
        << "reports must be deterministic or the cache guarantee dies";
}

}  // namespace
}  // namespace stackscope::serve
