/** The validators must accept every clean run and reject every crafted
 *  violation of the paper's stack laws (Table II, Eq. 1, §III). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "core/ooo_core.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/workload_library.hpp"
#include "validate/invariants.hpp"
#include "validate/watchdog.hpp"

namespace stackscope {
namespace {

using sim::SimOptions;
using sim::SimResult;
using stacks::CpiComponent;
using stacks::FlopsComponent;
using stacks::Stage;
using validate::Invariant;
using validate::ValidationPolicy;
using validate::ValidationReport;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 20'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

/** One clean reference run, shared by all corruption tests. */
const SimResult &
cleanResult()
{
    static const SimResult r = [] {
        auto gen = shortWorkload("mcf");
        SimOptions opt;
        opt.warmup_instrs = 10'000;
        return sim::simulate(sim::bdwConfig(), gen, opt);
    }();
    return r;
}

stacks::CpiStack &
cycleStack(SimResult &r, Stage s)
{
    return r.cycle_stacks[static_cast<std::size_t>(s)];
}

// ---------------------------------------------------------------- errors

TEST(ErrorLayer, ExitCodesByCategory)
{
    EXPECT_EQ(exitCodeFor(ErrorCategory::kUsage), 2);
    EXPECT_EQ(exitCodeFor(ErrorCategory::kConfig), 2);
    EXPECT_EQ(exitCodeFor(ErrorCategory::kValidation), 3);
    EXPECT_EQ(exitCodeFor(ErrorCategory::kWatchdog), 3);
    EXPECT_EQ(exitCodeFor(ErrorCategory::kInternal), 1);
}

TEST(ErrorLayer, DescribeCarriesCategoryMessageAndContext)
{
    const auto err = StackscopeError(
                         ErrorCategory::kConfig, "bad widths")
                         .withContext("machine", "bdw")
                         .withContext("stage", "issue");
    const std::string d = err.describe();
    EXPECT_NE(d.find("config error: bad widths"), std::string::npos) << d;
    EXPECT_NE(d.find("machine=bdw"), std::string::npos) << d;
    EXPECT_NE(d.find("stage=issue"), std::string::npos) << d;
    EXPECT_EQ(err.exitCode(), 2);
}

TEST(ErrorLayer, ResultValueRethrowsStoredError)
{
    Result<int> ok(7);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 7);

    Result<int> bad(StackscopeError(
        ErrorCategory::kUsage, "nope"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.valueOr(3), 3);
    EXPECT_THROW(bad.value(), StackscopeError);
}

// ---------------------------------------------------------------- policy

TEST(Policy, ParseRoundTrips)
{
    EXPECT_EQ(validate::parsePolicy("off"), ValidationPolicy::kOff);
    EXPECT_EQ(validate::parsePolicy("warn"), ValidationPolicy::kWarn);
    EXPECT_EQ(validate::parsePolicy("strict"), ValidationPolicy::kStrict);
    EXPECT_FALSE(validate::parsePolicy("paranoid").has_value());
    EXPECT_FALSE(validate::parsePolicy("").has_value());
}

// --------------------------------------------------- clean runs validate

TEST(Invariants, CleanReferenceRunPasses)
{
    const ValidationReport report = validate::validateResult(cleanResult());
    EXPECT_TRUE(report.passed()) << report.summary();
    EXPECT_GT(report.checks_run, 0u);
}

TEST(Invariants, AllWorkloadsOnAllMachinesPassStrict)
{
    // The full seed population x every machine preset: strict validation
    // (end-of-run + periodic interval checks) must never fire.
    for (const std::string &machine : sim::allMachineNames()) {
        for (const std::string &w : trace::allSpecWorkloadNames()) {
            auto gen = shortWorkload(w.c_str(), 15'000);
            SimOptions opt;
            opt.warmup_instrs = 7'500;
            opt.validation = ValidationPolicy::kStrict;
            SimResult r;
            EXPECT_NO_THROW(
                r = sim::simulate(sim::machineByName(machine), gen, opt))
                << machine << "/" << w;
            EXPECT_TRUE(r.validation.passed())
                << machine << "/" << w << "\n"
                << r.validation.summary();
            EXPECT_GT(r.validation.checks_run, 0u);
        }
    }
}

// ------------------------------------------- each invariant must fire

TEST(Invariants, StackSumViolationDetected)
{
    SimResult r = cleanResult();
    cycleStack(r, Stage::kIssue)[CpiComponent::kOther] +=
        0.1 * static_cast<double>(r.cycles);
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kStackSum)) << report.summary();
}

TEST(Invariants, NegativeComponentDetected)
{
    SimResult r = cleanResult();
    cycleStack(r, Stage::kCommit)[CpiComponent::kDcache] = -5.0;
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kNonNegative))
        << report.summary();
}

TEST(Invariants, NanComponentDetectedWithoutCrashing)
{
    SimResult r = cleanResult();
    cycleStack(r, Stage::kDispatch)[CpiComponent::kBpred] =
        std::numeric_limits<double>::quiet_NaN();
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kFinite)) << report.summary();
}

TEST(Invariants, FrontendOrderingViolationDetected)
{
    // Teleport frontend mass down to commit while conserving both sums:
    // only the SIII ordering law can notice.
    SimResult r = cleanResult();
    const double delta = 0.3 * static_cast<double>(r.cycles);
    cycleStack(r, Stage::kCommit)[CpiComponent::kIcache] += delta;
    cycleStack(r, Stage::kCommit)[CpiComponent::kDepend] -= delta;
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kFrontendOrdering))
        << report.summary();
}

TEST(Invariants, BackendOrderingViolationDetected)
{
    SimResult r = cleanResult();
    cycleStack(r, Stage::kDispatch)[CpiComponent::kDcache] +=
        2.0 * static_cast<double>(r.cycles);
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kBackendOrdering))
        << report.summary();
}

TEST(Invariants, BaseInequalityDetected)
{
    SimResult r = cleanResult();
    cycleStack(r, Stage::kDispatch)[CpiComponent::kBase] +=
        0.2 * static_cast<double>(r.cycles);
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kBaseEquality))
        << report.summary();
}

TEST(Invariants, FlopsSumViolationDetected)
{
    SimResult r = cleanResult();
    r.flops_cycles[FlopsComponent::kFrontend] +=
        0.2 * static_cast<double>(r.cycles);
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kFlopsSum)) << report.summary();
}

TEST(Invariants, CpiInconsistencyDetected)
{
    SimResult r = cleanResult();
    for (auto &cpi : r.cpi_stacks)
        cpi = cpi.scaled(1.5);
    const ValidationReport report = validate::validateResult(r);
    EXPECT_TRUE(report.contains(Invariant::kCpiConsistency))
        << report.summary();
}

// ------------------------------------------------------------- reports

TEST(Report, ToErrorUsesValidationCategory)
{
    ValidationReport report;
    report.add(Invariant::kStackSum, "issue stack leaks");
    const auto err = report.toError();
    EXPECT_EQ(err.exitCode(), 3);
    EXPECT_NE(err.describe().find("stack-sum-conservation"),
              std::string::npos)
        << err.describe();
}

TEST(Report, ToErrorUsesWatchdogCategoryForProgress)
{
    ValidationReport report;
    report.add(Invariant::kProgress, "no commit for 1000 cycles", 4242);
    const auto err = report.toError();
    EXPECT_EQ(err.exitCode(), 3);
    EXPECT_NE(err.describe().find("run-progress"), std::string::npos)
        << err.describe();
}

TEST(Report, MergePrefixesNothingButAccumulates)
{
    ValidationReport a;
    a.checks_run = 3;
    a.add(Invariant::kStackSum, "one");
    ValidationReport b;
    b.checks_run = 2;
    b.add(Invariant::kFinite, "two");
    a.merge(b);
    EXPECT_EQ(a.checks_run, 5u);
    EXPECT_EQ(a.violations.size(), 2u);
    EXPECT_TRUE(a.contains(Invariant::kFinite));
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, MaxCyclesTripIsNotADeadlock)
{
    validate::Watchdog dog({/*max_cycles=*/100, /*no_retire_cycles=*/0});
    std::uint64_t instrs = 0;
    Cycle now = 0;
    while (dog.poll(now, ++instrs))
        ++now;
    EXPECT_TRUE(dog.tripped());
    EXPECT_FALSE(dog.deadlocked());
    EXPECT_EQ(dog.snapshot().reason, "max-cycles");
    EXPECT_EQ(dog.snapshot().cycle, 100u);
}

TEST(Watchdog, NoRetireWindowDetectsDeadlock)
{
    validate::Watchdog dog({/*max_cycles=*/0, /*no_retire_cycles=*/50});
    // Commit something for a while, then wedge.
    Cycle now = 0;
    for (; now < 30; ++now)
        ASSERT_TRUE(dog.poll(now, now + 1));
    for (; dog.poll(now, 30); ++now)
        ASSERT_LT(now, 200u) << "watchdog never fired";
    EXPECT_TRUE(dog.deadlocked());
    EXPECT_EQ(dog.snapshot().reason, "no-retire");
    EXPECT_EQ(dog.snapshot().instrs_committed, 30u);
    EXPECT_GE(dog.snapshot().stalled_for, 50u);
    EXPECT_NE(dog.snapshot().describe().find("no-retire"),
              std::string::npos);
}

TEST(Watchdog, SimulationMaxCyclesStaysSilent)
{
    // The historical safety valve truncates without a violation.
    auto gen = shortWorkload("mcf");
    SimOptions opt;
    opt.max_cycles = 5'000;
    opt.validation = ValidationPolicy::kWarn;
    const SimResult r = sim::simulate(sim::bdwConfig(), gen, opt);
    EXPECT_LE(r.cycles, 5'000u);
    EXPECT_FALSE(r.validation.contains(Invariant::kProgress))
        << r.validation.summary();
}

// ------------------------------------------------- store-queue ordering

TEST(StoreOrder, StrictValidationChecksTheQueueInFlight)
{
    // Store-heavy workloads with real branch prediction exercise every
    // pending-store mutation (program-order append, commit pop-front,
    // squash pop-back); a tight interval makes the in-flight check run
    // hundreds of times.
    for (const char *w : {"mcf", "omnetpp", "xalancbmk"}) {
        auto gen = shortWorkload(w, 15'000);
        SimOptions opt;
        opt.validation = ValidationPolicy::kStrict;
        opt.validation_interval = 256;
        SimResult r;
        EXPECT_NO_THROW(r = sim::simulate(sim::bdwConfig(), gen, opt))
            << w;
        EXPECT_FALSE(r.validation.contains(Invariant::kStoreOrder))
            << w << "\n"
            << r.validation.summary();
    }
}

TEST(StoreOrder, QueueStaysSortedThroughEveryCycle)
{
    // Stronger than the periodic check: step a core cycle by cycle and
    // assert the invariant at every single point, across mispredict
    // squashes and commit drains.
    trace::SyntheticParams p = trace::findWorkload("mcf").params;
    p.num_instrs = 5'000;
    const sim::MachineConfig machine = sim::bdwConfig();
    core::OooCore core(machine.core,
                       std::make_unique<trace::SyntheticGenerator>(p));
    std::uint64_t checked = 0;
    while (!core.done() && core.absoluteCycles() < 200'000) {
        core.cycle();
        ASSERT_TRUE(core.storeQueueSorted())
            << "at cycle " << core.absoluteCycles();
        ++checked;
    }
    EXPECT_TRUE(core.done());
    EXPECT_GT(checked, 1'000u);
    EXPECT_GT(core.stats().branch_mispredicts, 0u);
}

TEST(StoreOrder, ViolationIsNamedInTheSummary)
{
    ValidationReport report;
    report.add(Invariant::kStoreOrder, "crafted", 42);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(report.contains(Invariant::kStoreOrder));
    EXPECT_NE(report.summary().find(
                  std::string(validate::toString(Invariant::kStoreOrder))),
              std::string::npos);
}

}  // namespace
}  // namespace stackscope
