/** Fault injection validates the validators: every fault kind must be
 *  deterministic, detected, and mapped to the invariant it violates. */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/workload_library.hpp"
#include "validate/fault_injection.hpp"
#include "validate/invariants.hpp"

namespace stackscope {
namespace {

using sim::SimOptions;
using sim::SimResult;
using validate::FaultKind;
using validate::FaultSpec;
using validate::Invariant;
using validate::ValidationPolicy;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 20'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

SimOptions
faultyOptions(FaultKind kind, std::uint64_t seed,
              ValidationPolicy policy = ValidationPolicy::kWarn)
{
    SimOptions opt;
    opt.warmup_instrs = 10'000;
    opt.validation = policy;
    opt.fault = FaultSpec{kind, seed};
    // Generous deadlock window; only the trace-hang fault ever trips it.
    opt.watchdog_cycles = 50'000;
    return opt;
}

// ---------------------------------------------------------------- parsing

TEST(FaultSpecParsing, KindAloneDefaultsSeed)
{
    const auto spec = validate::parseFaultSpec("stack-leak");
    ASSERT_TRUE(spec.ok()) << spec.error().describe();
    EXPECT_EQ(spec.value().kind, FaultKind::kStackLeak);
    EXPECT_EQ(spec.value().seed, 1u);
}

TEST(FaultSpecParsing, ExplicitSeed)
{
    const auto spec = validate::parseFaultSpec("cpi-skew:42");
    ASSERT_TRUE(spec.ok()) << spec.error().describe();
    EXPECT_EQ(spec.value().kind, FaultKind::kCpiSkew);
    EXPECT_EQ(spec.value().seed, 42u);
}

TEST(FaultSpecParsing, UnknownKindListsValidNames)
{
    const auto spec = validate::parseFaultSpec("bit-rot");
    ASSERT_FALSE(spec.ok());
    EXPECT_EQ(spec.error().exitCode(), 2);
    EXPECT_NE(spec.error().describe().find("trace-hang"), std::string::npos)
        << spec.error().describe();
}

TEST(FaultSpecParsing, BadSeedRejected)
{
    EXPECT_FALSE(validate::parseFaultSpec("stack-leak:banana").ok());
    EXPECT_FALSE(validate::parseFaultSpec("stack-leak:").ok());
}

// --------------------------------------------------------------- coverage

TEST(FaultInjection, EveryKindViolatesItsInvariant)
{
    // The contract behind `--inject-fault`: each fault kind is detected
    // and the report names the invariant violatedBy() promises.
    for (unsigned k = 0; k < static_cast<unsigned>(FaultKind::kCount);
         ++k) {
        const FaultKind kind = static_cast<FaultKind>(k);
        auto gen = shortWorkload("mcf");
        const SimResult r = sim::simulate(sim::bdwConfig(), gen,
                                          faultyOptions(kind, 7));
        EXPECT_FALSE(r.validation.passed()) << toString(kind);
        EXPECT_TRUE(r.validation.contains(validate::violatedBy(kind)))
            << toString(kind) << " should violate "
            << toString(validate::violatedBy(kind)) << "\n"
            << r.validation.summary();
    }
}

TEST(FaultInjection, WarnPolicyRecordsButDoesNotThrow)
{
    auto gen = shortWorkload("mcf");
    SimResult r;
    EXPECT_NO_THROW(r = sim::simulate(sim::bdwConfig(), gen,
                                      faultyOptions(FaultKind::kStackNan,
                                                    3)));
    EXPECT_TRUE(r.validation.contains(Invariant::kFinite))
        << r.validation.summary();
}

TEST(FaultInjection, StrictPolicyThrowsWithExitCode3)
{
    auto gen = shortWorkload("mcf");
    try {
        sim::simulate(sim::bdwConfig(), gen,
                      faultyOptions(FaultKind::kStackNan, 3,
                                    ValidationPolicy::kStrict));
        FAIL() << "strict validation did not throw";
    } catch (const StackscopeError &err) {
        EXPECT_EQ(err.exitCode(), 3);
        EXPECT_NE(err.describe().find("component-finite"),
                  std::string::npos)
            << err.describe();
    }
}

TEST(FaultInjection, TraceHangTripsDeadlockWatchdog)
{
    auto gen = shortWorkload("mcf");
    const SimResult r = sim::simulate(
        sim::bdwConfig(), gen, faultyOptions(FaultKind::kTraceHang, 5));
    ASSERT_TRUE(r.validation.contains(Invariant::kProgress))
        << r.validation.summary();
    EXPECT_NE(r.validation.summary().find("no-retire"), std::string::npos)
        << r.validation.summary();
}

// ------------------------------------------------------------ determinism

TEST(FaultInjection, SameSeedSameViolations)
{
    auto run = [](std::uint64_t seed) {
        auto gen = shortWorkload("mcf");
        return sim::simulate(sim::bdwConfig(), gen,
                             faultyOptions(FaultKind::kStackLeak, seed));
    };
    const SimResult a = run(9);
    const SimResult b = run(9);
    ASSERT_EQ(a.validation.violations.size(),
              b.validation.violations.size());
    for (std::size_t i = 0; i < a.validation.violations.size(); ++i) {
        EXPECT_EQ(a.validation.violations[i].detail,
                  b.validation.violations[i].detail);
        EXPECT_EQ(a.validation.violations[i].invariant,
                  b.validation.violations[i].invariant);
    }
    EXPECT_EQ(a.cycles, b.cycles);
}

// -------------------------------------------------------------- multicore

TEST(FaultInjection, MulticoreReportPrefixesCoreIndex)
{
    auto gen = shortWorkload("mcf", 10'000);
    SimOptions opt = faultyOptions(FaultKind::kStackLeak, 11);
    opt.warmup_instrs = 5'000;
    const sim::MulticoreResult out =
        sim::simulateMulticore(sim::bdwConfig(), gen, 2, opt);
    ASSERT_FALSE(out.validation.passed());
    EXPECT_TRUE(out.validation.contains(Invariant::kStackSum))
        << out.validation.summary();
    EXPECT_EQ(out.validation.violations[0].detail.rfind("core ", 0), 0u)
        << out.validation.violations[0].detail;
    // Per-core reports survive unprefixed.
    EXPECT_FALSE(out.per_core[0].validation.passed());
}

// ---------------------------------------------------------- transient

TEST(FaultInjection, TransientLeakOnlyCorruptsFirstAttempt)
{
    // The transient-leak fault models a flaky failure: attempt 0 leaks
    // cycles (stack-sum violation), every later attempt is clean — the
    // hook the retry machinery's tests and the CI chaos job key on.
    auto gen = shortWorkload("mcf");
    SimOptions first = faultyOptions(FaultKind::kTransientLeak, 5);
    const SimResult r0 = sim::simulate(sim::bdwConfig(), gen, first);
    EXPECT_FALSE(r0.validation.passed());
    EXPECT_TRUE(r0.validation.contains(Invariant::kStackSum))
        << r0.validation.summary();

    SimOptions retry = first;
    retry.attempt = 1;
    const SimResult r1 = sim::simulate(sim::bdwConfig(), gen, retry);
    EXPECT_TRUE(r1.validation.passed()) << r1.validation.summary();

    // The healed result is identical to a run that never faulted.
    SimOptions clean = first;
    clean.fault.reset();
    clean.attempt = 0;
    const SimResult rc = sim::simulate(sim::bdwConfig(), gen, clean);
    EXPECT_EQ(r1.cycles, rc.cycles);
    EXPECT_DOUBLE_EQ(r1.cpi, rc.cpi);
}

TEST(FaultInjection, TransientLeakMatchesStackLeakOnFirstAttempt)
{
    // Same seed, same perturbation: transient-leak on attempt 0 is
    // exactly stack-leak, so its detection coverage is already proven.
    auto gen = shortWorkload("mcf");
    const SimResult transient = sim::simulate(
        sim::bdwConfig(), gen, faultyOptions(FaultKind::kTransientLeak, 9));
    const SimResult persistent = sim::simulate(
        sim::bdwConfig(), gen, faultyOptions(FaultKind::kStackLeak, 9));
    ASSERT_EQ(transient.validation.violations.size(),
              persistent.validation.violations.size());
    for (std::size_t i = 0; i < transient.validation.violations.size();
         ++i) {
        EXPECT_EQ(transient.validation.violations[i].detail,
                  persistent.validation.violations[i].detail);
    }
}

TEST(FaultInjection, MulticoreRejectsZeroCores)
{
    auto gen = shortWorkload("mcf", 5'000);
    try {
        sim::simulateMulticore(sim::bdwConfig(), gen, 0, {});
        FAIL() << "zero cores accepted";
    } catch (const StackscopeError &err) {
        EXPECT_EQ(err.category(), ErrorCategory::kConfig);
        EXPECT_EQ(err.exitCode(), 2);
    }
}

}  // namespace
}  // namespace stackscope
