/**
 * Tests for the structured logger: threshold filtering, record format,
 * JSON-lines validity and level parsing. The logger is process-global
 * state, so every test restores threshold/format/sink on the way out.
 */

#include "common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../obs/json_checker.hpp"

namespace stackscope::log {
namespace {

/** Captures records and restores global logger state on destruction. */
class LogCapture
{
  public:
    LogCapture()
        : saved_threshold_(threshold()), saved_json_(jsonOutput())
    {
        setWriterForTest(
            [this](const std::string &line) { lines_.push_back(line); });
    }

    ~LogCapture()
    {
        setWriterForTest(nullptr);
        setThreshold(saved_threshold_);
        setJsonOutput(saved_json_);
    }

    const std::vector<std::string> &lines() const { return lines_; }

  private:
    std::vector<std::string> lines_;
    Level saved_threshold_;
    bool saved_json_;
};

TEST(Log, ThresholdFiltersRecords)
{
    LogCapture cap;
    setThreshold(Level::kWarn);
    EXPECT_FALSE(enabled(Level::kDebug));
    EXPECT_TRUE(enabled(Level::kWarn));
    EXPECT_TRUE(enabled(Level::kError));

    debug("test", "dropped");
    info("test", "dropped too");
    warn("test", "kept");
    error("test", "kept too");
    ASSERT_EQ(cap.lines().size(), 2u);
    EXPECT_NE(cap.lines()[0].find("kept"), std::string::npos);
    EXPECT_NE(cap.lines()[1].find("kept too"), std::string::npos);

    setThreshold(Level::kOff);
    error("test", "suppressed");
    EXPECT_EQ(cap.lines().size(), 2u);
}

TEST(Log, HumanFormatCarriesLevelModuleAndFields)
{
    LogCapture cap;
    setThreshold(Level::kInfo);
    setJsonOutput(false);
    info("runner", "batch finished", {{"jobs", 12}, {"threads", 4u}});
    ASSERT_EQ(cap.lines().size(), 1u);
    const std::string &line = cap.lines()[0];
    EXPECT_NE(line.find("stackscope[info]"), std::string::npos);
    EXPECT_NE(line.find("runner"), std::string::npos);
    EXPECT_NE(line.find("batch finished"), std::string::npos);
    EXPECT_NE(line.find("jobs=12"), std::string::npos);
    EXPECT_NE(line.find("threads=4"), std::string::npos);
}

TEST(Log, JsonLinesRecordsAreValidJson)
{
    LogCapture cap;
    setThreshold(Level::kInfo);
    setJsonOutput(true);
    info("sim", "run \"done\"",
         {{"cycles", std::uint64_t{123456}},
          {"path", "a\\b\nc"},
          {"cpi", 1.25}});
    ASSERT_EQ(cap.lines().size(), 1u);
    const std::string &line = cap.lines()[0];
    testutil::JsonChecker checker(line);
    EXPECT_TRUE(checker.valid()) << line;
    EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
    EXPECT_NE(line.find("\"module\":\"sim\""), std::string::npos);
    EXPECT_NE(line.find("\"cycles\":\"123456\""), std::string::npos);
    // The quote, backslash and newline must arrive escaped.
    EXPECT_NE(line.find("run \\\"done\\\""), std::string::npos);
    EXPECT_NE(line.find("a\\\\b\\nc"), std::string::npos);
}

TEST(Log, JsonLinesEscapeControlCharacters)
{
    // Regression pin: a raw control byte inside a JSON string makes the
    // whole record unparseable, which silently breaks every log shipper
    // downstream. Every byte < 0x20 without a short escape must arrive
    // as \u00XX — in the message, in field keys and in field values.
    LogCapture cap;
    setThreshold(Level::kInfo);
    setJsonOutput(true);
    info("serve", std::string("bell\x01here"),
         {{std::string_view("k\x1fy", 3), std::string("v\x02l")},
          {"tabs", "a\tb"},
          {"crlf", "a\r\nb"}});
    ASSERT_EQ(cap.lines().size(), 1u);
    const std::string &line = cap.lines()[0];
    testutil::JsonChecker checker(line);
    EXPECT_TRUE(checker.valid()) << line;
    EXPECT_NE(line.find("bell\\u0001here"), std::string::npos);
    EXPECT_NE(line.find("k\\u001fy"), std::string::npos);
    EXPECT_NE(line.find("v\\u0002l"), std::string::npos);
    EXPECT_NE(line.find("a\\tb"), std::string::npos);
    EXPECT_NE(line.find("a\\r\\nb"), std::string::npos);
    for (const char c : line)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control byte leaked into the record";
}

TEST(Log, VectorFieldOverloadMatchesInitializerList)
{
    // The serve access log builds its field set at run time; the vector
    // overload must format identically to the initializer-list one.
    LogCapture cap;
    setThreshold(Level::kInfo);
    setJsonOutput(true);
    info("serve", "access", {{"request", "r-1"}, {"wall_us", 42}});
    std::vector<Field> fields;
    fields.emplace_back("request", "r-1");
    fields.emplace_back("wall_us", 42);
    message(Level::kInfo, "serve", "access", fields);
    ASSERT_EQ(cap.lines().size(), 2u);
    // Strip the varying t_ms prefix before comparing.
    const auto tail = [](const std::string &line) {
        return line.substr(line.find("\"level\""));
    };
    EXPECT_EQ(tail(cap.lines()[0]), tail(cap.lines()[1]));
}

TEST(Log, ParseLevelRoundTrips)
{
    for (Level lvl : {Level::kTrace, Level::kDebug, Level::kInfo,
                      Level::kWarn, Level::kError, Level::kOff}) {
        const auto parsed = parseLevel(toString(lvl));
        ASSERT_TRUE(parsed.has_value()) << toString(lvl);
        EXPECT_EQ(*parsed, lvl);
    }
    EXPECT_FALSE(parseLevel("verbose").has_value());
    EXPECT_FALSE(parseLevel("").has_value());
    EXPECT_FALSE(parseLevel("WARN").has_value());  // case-sensitive
}

TEST(Log, DisabledCallsDoNotTouchTheSink)
{
    LogCapture cap;
    setThreshold(Level::kError);
    for (int i = 0; i < 1000; ++i)
        debug("test", "hot-path record", {{"i", i}});
    EXPECT_TRUE(cap.lines().empty());
}

}  // namespace
}  // namespace stackscope::log
