/** Unit tests for the deterministic PRNG. */

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace stackscope {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values reached
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(5);
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, BurstLengthBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t len = r.burstLength(0.9, 8);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 8u);
    }
    // p = 0 always gives length 1.
    EXPECT_EQ(r.burstLength(0.0, 100), 1u);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng r(13);
    const std::array<double, 3> w = {0.0, 1.0, 3.0};
    std::array<int, 3> counts{};
    for (int i = 0; i < 40000; ++i)
        ++counts[r.weighted(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Rng, WeightedAllZeroReturnsLast)
{
    Rng r(1);
    const std::array<double, 4> w = {0.0, 0.0, 0.0, 0.0};
    EXPECT_EQ(r.weighted(w), 3u);
}

TEST(Rng, ForkIsDeterministicButDecorrelated)
{
    Rng a(21);
    Rng b(21);
    Rng fa = a.fork();
    Rng fb = b.fork();
    // Same parent seed -> same child stream.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
    // Child differs from parent continuation.
    Rng c(21);
    Rng fc = c.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += fc.next() == c.next();
    EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace stackscope
