/** Unit tests for the statistics helpers. */

#include "common/stats_math.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace stackscope {
namespace {

TEST(StatsMath, MeanBasics)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.0}), 7.0);
}

TEST(StatsMath, StddevBasics)
{
    // Sum of squared deviations is 32 over 8 samples; the sample
    // (Bessel-corrected) standard deviation divides by n-1 = 7.
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(StatsMath, StddevTwoSamples)
{
    // n = 2: sample stddev is |a-b| / sqrt(2).
    const std::vector<double> xs = {1.0, 3.0};
    EXPECT_NEAR(stddev(xs), 2.0 / std::sqrt(2.0), 1e-12);
}

TEST(StatsMath, PercentileInterpolates)
{
    const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};  // unsorted
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 1.75);
}

TEST(StatsMath, PercentileClampsQ)
{
    const std::vector<double> xs = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(xs, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 2.0), 2.0);
}

TEST(StatsMath, PercentileEmpty)
{
    EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted(std::vector<double>{}, 0.5), 0.0);
}

TEST(StatsMath, PercentileSortedMatchesPercentile)
{
    std::vector<double> xs;
    unsigned state = 99;
    for (int i = 0; i < 64; ++i) {
        state = state * 1664525u + 1013904223u;
        xs.push_back(static_cast<double>(state % 997) / 7.0);
    }
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(percentileSorted(sorted, q), percentile(xs, q));
}

TEST(StatsMath, FiveNumberSummary)
{
    const std::vector<double> xs = {5.0, 1.0, 4.0, 2.0, 3.0};
    const FiveNumberSummary s = fiveNumberSummary(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.q1, 2.0);
    EXPECT_DOUBLE_EQ(s.q3, 4.0);
}

TEST(StatsMath, FiveNumberSummaryEmpty)
{
    const FiveNumberSummary s = fiveNumberSummary(std::vector<double>{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(StatsMath, SummaryOrderingInvariant)
{
    // Property: min <= q1 <= median <= q3 <= max on random data.
    std::vector<double> xs;
    unsigned state = 12345;
    for (int i = 0; i < 200; ++i) {
        state = state * 1664525u + 1013904223u;
        xs.push_back(static_cast<double>(state % 1000) / 10.0);
    }
    const FiveNumberSummary s = fiveNumberSummary(xs);
    EXPECT_LE(s.min, s.q1);
    EXPECT_LE(s.q1, s.median);
    EXPECT_LE(s.median, s.q3);
    EXPECT_LE(s.q3, s.max);
}

}  // namespace
}  // namespace stackscope
