/** Bit-equivalence suite for the ready-scan SIMD backends.
 *
 *  Whatever backend this build compiled (sse2, neon or the forced
 *  scalar fallback) must match dueMask8Scalar — the oracle that defines
 *  the scan semantics — on adversarial and random inputs. The scan
 *  result feeds accounting-visible blame selection, so equivalence is a
 *  correctness requirement; the CI matrix re-runs this suite with
 *  -DSTACKSCOPE_NO_SIMD=ON to keep the fallback honest. */

#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace stackscope::simd {
namespace {

struct ScalarResult
{
    std::uint32_t mask;
    std::uint32_t wake_min;
};

ScalarResult
oracle(const std::uint32_t *keys, std::uint32_t now_key)
{
    ScalarResult r{0, kNeverKey};
    r.mask = dueMask8Scalar(keys, now_key, r.wake_min);
    return r;
}

void
expectBlockMatchesOracle(const std::array<std::uint32_t, kScanBlock> &keys,
                         std::uint32_t now_key)
{
    const ScalarResult want = oracle(keys.data(), now_key);
    EXPECT_EQ(dueMask8(keys.data(), now_key), want.mask)
        << kImplName << " now_key=" << now_key;
    ReadyScanner scanner(now_key);
    EXPECT_EQ(scanner.block(keys.data()), want.mask) << kImplName;
    EXPECT_EQ(scanner.wakeKey(), want.wake_min) << kImplName;
}

TEST(Simd, OracleSemantics)
{
    // keys <= now_key are due; parked lanes lower the wake minimum;
    // kNeverKey sentinels never do.
    const std::array<std::uint32_t, kScanBlock> keys = {
        0, 5, 6, 7, kNeverKey, kNeverKey - 1, 100, 5};
    std::uint32_t wake = kNeverKey;
    const std::uint32_t mask = dueMask8Scalar(keys.data(), 5, wake);
    EXPECT_EQ(mask, 0b10000011u);
    EXPECT_EQ(wake, 6u);  // min over {6, 7, kNeverKey-1, 100}
}

TEST(Simd, AdversarialBoundaryBlocks)
{
    const std::vector<std::uint32_t> now_keys = {
        0, 1, 2, 1000, kNeverKey - 2, kNeverKey - 1, kNeverKey};
    const std::vector<std::array<std::uint32_t, kScanBlock>> blocks = {
        {0, 0, 0, 0, 0, 0, 0, 0},
        {kNeverKey, kNeverKey, kNeverKey, kNeverKey, kNeverKey, kNeverKey,
         kNeverKey, kNeverKey},
        {kNeverKey - 1, kNeverKey - 1, kNeverKey - 1, kNeverKey - 1,
         kNeverKey - 1, kNeverKey - 1, kNeverKey - 1, kNeverKey - 1},
        // Exact equality with now_key in every lane position.
        {1000, 1001, 999, 1000, 1000, 0, kNeverKey, 1002},
        // Alternating due / parked.
        {0, kNeverKey, 1, kNeverKey - 1, 2, 5000, 3, 123456},
        // Single parked lane in each position exercises the lane->bit map.
        {0, 0, 0, 7777, 0, 0, 0, 0},
        {7777, 0, 0, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 0, 0, 0, 7777},
    };
    for (std::uint32_t now_key : now_keys)
        for (const auto &b : blocks)
            expectBlockMatchesOracle(b, now_key);
}

TEST(Simd, RandomBlocksMatchOracle)
{
    Rng rng(0x51dd);
    for (unsigned iter = 0; iter < 50'000; ++iter) {
        std::array<std::uint32_t, kScanBlock> keys;
        for (auto &k : keys) {
            switch (rng.below(4)) {
              case 0: k = kNeverKey; break;
              case 1: k = static_cast<std::uint32_t>(rng.below(16)); break;
              case 2:
                k = kNeverKey - static_cast<std::uint32_t>(rng.below(16));
                break;
              default:
                k = static_cast<std::uint32_t>(
                    rng.below(std::uint64_t{kNeverKey} + 1));
                break;
            }
        }
        std::uint32_t now_key;
        switch (rng.below(3)) {
          case 0: now_key = static_cast<std::uint32_t>(rng.below(16)); break;
          case 1:
            now_key = keys[rng.below(kScanBlock)];  // force equalities
            break;
          default:
            now_key = static_cast<std::uint32_t>(
                rng.below(std::uint64_t{kNeverKey} + 1));
            break;
        }
        expectBlockMatchesOracle(keys, now_key);
    }
}

/** The scanner's wake minimum accumulates across blocks of one walk. */
TEST(Simd, ScannerAccumulatesAcrossBlocks)
{
    const std::array<std::uint32_t, 3 * kScanBlock> keys = {
        // Block 0: all due.
        0, 1, 2, 3, 0, 1, 2, 3,
        // Block 1: parked lanes 50 and 90.
        0, 50, 0, 0, 90, 0, 0, 0,
        // Block 2: parked lane 40 plus sentinels.
        kNeverKey, 40, kNeverKey, 0, 0, 0, 0, kNeverKey};
    ReadyScanner scanner(10);
    EXPECT_EQ(scanner.block(keys.data()), 0xffu);
    EXPECT_EQ(scanner.wakeKey(), kNeverKey);  // nothing parked yet
    EXPECT_EQ(scanner.block(keys.data() + kScanBlock), 0xffu & ~0x12u);
    EXPECT_EQ(scanner.wakeKey(), 50u);
    EXPECT_EQ(scanner.block(keys.data() + 2 * kScanBlock),
              0xffu & ~(0x1u | 0x2u | 0x4u | 0x80u));
    EXPECT_EQ(scanner.wakeKey(), 40u);
}

TEST(Simd, ImplNameIsKnown)
{
    const std::string name = kImplName;
    EXPECT_TRUE(name == "sse2" || name == "neon" || name == "scalar");
}

}  // namespace
}  // namespace stackscope::simd
