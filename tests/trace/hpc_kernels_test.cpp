/** Tests for the DeepBench-style HPC kernel generators. */

#include "trace/hpc_kernels.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace stackscope::trace {
namespace {

std::vector<DynInstr>
drain(TraceSource &src)
{
    std::vector<DynInstr> out;
    DynInstr i;
    while (src.next(i))
        out.push_back(i);
    return out;
}

HpcTarget
knlTarget()
{
    return {16, SgemmCodegen::kKnlJit};
}

HpcTarget
skxTarget()
{
    return {16, SgemmCodegen::kSkxBroadcast};
}

TEST(HpcKernels, KnlJitPairsEveryFmaWithALoad)
{
    // The KNL MKL JIT idiom: FMA with memory operand -> load + FMA pair,
    // with the FMA depending on its load (paper §V-B).
    auto src = makeSgemmTrace({512, 64, 512}, knlTarget(), 20000);
    const auto instrs = drain(*src);
    int fmas = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].cls != InstrClass::kVecFma)
            continue;
        ++fmas;
        ASSERT_GE(instrs[i].num_srcs, 1u);
        // First source is the immediately preceding load.
        EXPECT_EQ(instrs[instrs[i].src[0]].cls, InstrClass::kLoad);
        EXPECT_EQ(instrs[i].src[0], i - 1);
    }
    EXPECT_GT(fmas, 1000);
}

TEST(HpcKernels, SkxStyleUsesBroadcasts)
{
    auto src = makeSgemmTrace({512, 64, 512}, skxTarget(), 20000);
    const auto instrs = drain(*src);
    int broadcasts = 0;
    int fmas_on_broadcast = 0;
    int fmas = 0;
    for (const DynInstr &i : instrs) {
        if (i.cls == InstrClass::kVecBroadcast)
            ++broadcasts;
        if (i.cls == InstrClass::kVecFma) {
            ++fmas;
            for (unsigned s = 0; s < i.num_srcs; ++s) {
                if (instrs[i.src[s]].cls == InstrClass::kVecBroadcast)
                    ++fmas_on_broadcast;
            }
        }
    }
    EXPECT_GT(broadcasts, 0);
    // Every FMA consumes a broadcast value (register-register FMA).
    EXPECT_EQ(fmas_on_broadcast, fmas);
}

TEST(HpcKernels, KnlStyleHasNoBroadcasts)
{
    auto src = makeSgemmTrace({512, 64, 512}, knlTarget(), 10000);
    for (const DynInstr &i : drain(*src))
        EXPECT_NE(i.cls, InstrClass::kVecBroadcast);
}

TEST(HpcKernels, InferenceShapesHaveFewerAccumulators)
{
    // n=1 -> a single accumulator chain: every FMA depends on the previous
    // FMA (maximum dependence pressure, the Fig. 4 inference story).
    auto src = makeSgemmTrace({1760, 1, 1760}, skxTarget(), 10000);
    const auto instrs = drain(*src);
    std::uint64_t prev_fma = kNoSeq;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].cls != InstrClass::kVecFma)
            continue;
        if (prev_fma != kNoSeq) {
            bool chains = false;
            for (unsigned s = 0; s < instrs[i].num_srcs; ++s)
                chains |= instrs[i].src[s] == prev_fma;
            EXPECT_TRUE(chains) << "FMA at " << i;
        }
        prev_fma = i;
    }
}

TEST(HpcKernels, MTailProducesMaskedBlocks)
{
    // m % lanes != 0 -> some FMAs run with the tail mask.
    auto src = makeSgemmTrace({1000, 64, 1000}, skxTarget(), 30000);
    int full = 0;
    int tail = 0;
    for (const DynInstr &i : drain(*src)) {
        if (i.cls != InstrClass::kVecFma)
            continue;
        if (i.active_lanes == 16)
            ++full;
        else if (i.active_lanes == 1000 % 16)
            ++tail;
        else
            FAIL() << "unexpected lane count "
                   << static_cast<int>(i.active_lanes);
    }
    EXPECT_GT(full, 0);
    EXPECT_GT(tail, 0);
}

TEST(HpcKernels, ConvMixMatchesPaperStory)
{
    // Fig. 5: ~35% of uops are vector FMAs, each with a memory operand.
    auto src = makeConvTrace({112, 112, 64, 128, 3}, ConvPhase::kFwd,
                             skxTarget(), 50000);
    const auto instrs = drain(*src);
    std::map<InstrClass, int> counts;
    for (const DynInstr &i : instrs)
        ++counts[i.cls];
    const double fma_frac =
        static_cast<double>(counts[InstrClass::kVecFma]) / instrs.size();
    // The paper's 35% counts x86 macro-instructions; at uop level
    // (memory-operand FMAs split in two) that is ~26%, diluted further
    // by the im2col/copy sections.
    EXPECT_NEAR(fma_frac, 0.27, 0.07);
    // Every FMA reads from its own load.
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].cls != InstrClass::kVecFma)
            continue;
        ASSERT_GE(instrs[i].num_srcs, 1u);
        EXPECT_EQ(instrs[instrs[i].src[0]].cls, InstrClass::kLoad);
    }
}

TEST(HpcKernels, ConvEmitsYields)
{
    auto src = makeConvTrace({56, 56, 128, 256, 3}, ConvPhase::kFwd,
                             skxTarget(), 100000);
    int yields = 0;
    for (const DynInstr &i : drain(*src))
        yields += i.cls == InstrClass::kYield;
    EXPECT_GE(yields, 2);
}

TEST(HpcKernels, BackwardPhasesHaveMoreStores)
{
    auto count_stores = [](ConvPhase phase) {
        auto src = makeConvTrace({28, 28, 256, 512, 3}, phase, skxTarget(),
                                 20000);
        int stores = 0;
        DynInstr i;
        while (src->next(i))
            stores += i.cls == InstrClass::kStore;
        return stores;
    };
    // Forward only stores in its copy sections; the backward phases also
    // write gradients in the main loop.
    const int fwd = count_stores(ConvPhase::kFwd);
    const int bwd_f = count_stores(ConvPhase::kBwdFilter);
    const int bwd_d = count_stores(ConvPhase::kBwdData);
    EXPECT_GT(fwd, 0);
    EXPECT_GT(bwd_f, fwd * 3 / 2);
    EXPECT_GT(bwd_d, bwd_f);
}

TEST(HpcKernels, SuiteCoversAllGroups)
{
    std::map<std::string, int> groups;
    for (const HpcBenchmark &bm : deepBenchSuite())
        ++groups[bm.group];
    EXPECT_GE(groups["sgemm_train"], 5);
    EXPECT_GE(groups["sgemm_inf"], 5);
    EXPECT_GE(groups["conv_fwd"], 5);
    EXPECT_GE(groups["conv_bwd_f"], 5);
    EXPECT_GE(groups["conv_bwd_d"], 5);
}

TEST(HpcKernels, BenchmarkFactoryProducesTraces)
{
    const HpcBenchmark &bm = deepBenchSuite().front();
    auto src = bm.make(knlTarget(), 5000);
    ASSERT_TRUE(src);
    // Generators finish the current loop block, so they may overshoot by
    // up to one block.
    const std::size_t n = drain(*src).size();
    EXPECT_GE(n, 5000u);
    EXPECT_LE(n, 5200u);
}

TEST(HpcKernels, DeterministicAcrossCalls)
{
    auto a = makeSgemmTrace({2048, 32, 2048}, knlTarget(), 8000);
    auto b = makeSgemmTrace({2048, 32, 2048}, knlTarget(), 8000);
    const auto va = drain(*a);
    const auto vb = drain(*b);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(va[i].cls, vb[i].cls);
        EXPECT_EQ(va[i].mem_addr, vb[i].mem_addr);
    }
}

}  // namespace
}  // namespace stackscope::trace
