/** Unit tests for TraceBuilder and VectorTraceSource. */

#include "trace/trace_builder.hpp"

#include <gtest/gtest.h>

namespace stackscope::trace {
namespace {

TEST(VectorTraceSource, NextAndReset)
{
    TraceBuilder b;
    b.alu();
    b.load(0x1000);
    b.branch(true);
    auto src = b.build();
    ASSERT_EQ(src->size(), 3u);

    DynInstr i;
    ASSERT_TRUE(src->next(i));
    EXPECT_EQ(i.cls, InstrClass::kAlu);
    ASSERT_TRUE(src->next(i));
    EXPECT_EQ(i.cls, InstrClass::kLoad);
    EXPECT_EQ(i.mem_addr, 0x1000u);
    ASSERT_TRUE(src->next(i));
    EXPECT_EQ(i.cls, InstrClass::kBranch);
    EXPECT_TRUE(i.branch_taken);
    EXPECT_FALSE(src->next(i));

    src->reset();
    ASSERT_TRUE(src->next(i));
    EXPECT_EQ(i.cls, InstrClass::kAlu);
}

TEST(VectorTraceSource, CloneIsIndependent)
{
    TraceBuilder b;
    b.alu();
    b.alu();
    auto src = b.build();
    DynInstr i;
    ASSERT_TRUE(src->next(i));

    auto copy = src->clone();
    // Clone starts from the beginning regardless of the original position.
    DynInstr j;
    ASSERT_TRUE(copy->next(j));
    EXPECT_EQ(j.cls, InstrClass::kAlu);
    ASSERT_TRUE(copy->next(j));
    EXPECT_FALSE(copy->next(j));
    // Original still has one left.
    ASSERT_TRUE(src->next(i));
    EXPECT_FALSE(src->next(i));
}

TEST(TraceBuilder, DependenceHandles)
{
    TraceBuilder b;
    auto ld = b.load(0x2000);
    auto mu = b.mul({ld});
    auto br = b.branch(false, {mu});
    auto src = b.build();
    const auto &v = src->instructions();
    EXPECT_EQ(v[mu.index].num_srcs, 1u);
    EXPECT_EQ(v[mu.index].src[0], ld.index);
    EXPECT_EQ(v[br.index].num_srcs, 1u);
    EXPECT_EQ(v[br.index].src[0], mu.index);
}

TEST(TraceBuilder, PcAutoAdvancesAndAt)
{
    TraceBuilder b;
    b.at(0x500000);
    auto a = b.alu();
    auto c = b.alu();
    auto src = b.build();
    const auto &v = src->instructions();
    EXPECT_EQ(v[a.index].pc, 0x500000u);
    EXPECT_EQ(v[c.index].pc, 0x500004u);
}

TEST(TraceBuilder, VectorOpsCarryLanes)
{
    TraceBuilder b;
    auto f = b.vfma(16);
    auto a = b.vadd(7);
    auto src = b.build();
    const auto &v = src->instructions();
    EXPECT_EQ(v[f.index].active_lanes, 16u);
    EXPECT_EQ(v[a.index].active_lanes, 7u);
    EXPECT_EQ(v[f.index].cls, InstrClass::kVecFma);
}

TEST(TraceBuilder, MicrocodedDecodeCycles)
{
    TraceBuilder b;
    auto m = b.microcoded(5);
    auto src = b.build();
    EXPECT_EQ(src->instructions()[m.index].decode_cycles, 5u);
}

TEST(TraceBuilder, YieldCarriesCycles)
{
    TraceBuilder b;
    auto y = b.yield(1234);
    auto src = b.build();
    const auto &i = src->instructions()[y.index];
    EXPECT_EQ(i.cls, InstrClass::kYield);
    EXPECT_EQ(i.yield_cycles, 1234u);
}

TEST(TraceBuilder, RepeatLastPreservesDependenceDistance)
{
    TraceBuilder b;
    auto ld = b.load(0x100);
    b.mul({ld});  // distance 1
    b.repeatLast(2, 3);
    auto src = b.build();
    const auto &v = src->instructions();
    ASSERT_EQ(v.size(), 8u);
    // Every odd instruction is a mul depending on the load right before it.
    for (std::size_t i = 1; i < v.size(); i += 2) {
        EXPECT_EQ(v[i].cls, InstrClass::kAluMul);
        ASSERT_EQ(v[i].num_srcs, 1u);
        EXPECT_EQ(v[i].src[0], i - 1);
    }
}

TEST(TraceBuilder, RepeatLastLoopCarriedAccumulator)
{
    TraceBuilder b;
    auto acc0 = b.vadd(8);
    b.vfma(8, {acc0});  // accumulator: distance 1
    b.repeatLast(1, 4);  // four more FMAs, each chaining to the previous
    auto src = b.build();
    const auto &v = src->instructions();
    ASSERT_EQ(v.size(), 6u);
    for (std::size_t i = 1; i < v.size(); ++i) {
        ASSERT_EQ(v[i].num_srcs, 1u);
        EXPECT_EQ(v[i].src[0], i - 1);
    }
}

}  // namespace
}  // namespace stackscope::trace
