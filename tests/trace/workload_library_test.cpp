/** Tests for the SPEC-inspired workload registry. */

#include "trace/workload_library.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stackscope::trace {
namespace {

TEST(WorkloadLibrary, HasExpectedPopulation)
{
    // Figure 2 needs a reasonably sized population of applications.
    EXPECT_GE(allSpecWorkloads().size(), 15u);
}

TEST(WorkloadLibrary, NamesAreUnique)
{
    std::set<std::string> names;
    for (const Workload &w : allSpecWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(WorkloadLibrary, PaperCaseStudyWorkloadsExist)
{
    // The Fig. 1/3 case studies and Table I all reference these by name.
    for (const char *name :
         {"mcf", "cactus", "bwaves", "povray", "imagick", "gcc"}) {
        EXPECT_NO_THROW((void)findWorkload(name)) << name;
    }
}

TEST(WorkloadLibrary, UnknownNameThrows)
{
    EXPECT_THROW((void)findWorkload("no_such_benchmark"), std::out_of_range);
}

TEST(WorkloadLibrary, AllParamsAreSane)
{
    for (const Workload &w : allSpecWorkloads()) {
        const SyntheticParams &p = w.params;
        EXPECT_GT(p.num_instrs, 0u) << w.name;
        EXPECT_GE(p.code_footprint, 4096u) << w.name;
        EXPECT_GE(p.data_footprint, p.hot_bytes) << w.name;
        EXPECT_LE(p.dep_window, kMaxDepDistance) << w.name;
        EXPECT_GE(p.branch_bias, 0.5) << w.name;
        EXPECT_LE(p.branch_bias, 1.0) << w.name;
        const double mix = p.w_alu + p.w_mul + p.w_div + p.w_load +
                           p.w_store + p.w_branch + p.w_fp_add + p.w_fp_mul +
                           p.w_fp_div + p.w_vec_fma + p.w_vec_add +
                           p.w_vec_int;
        EXPECT_NEAR(mix, 1.0, 0.05) << w.name;
        EXPECT_GT(p.w_branch, 0.0) << w.name;
    }
}

TEST(WorkloadLibrary, BehaviouralDiversity)
{
    // The population must cover the regimes the paper's Figure 2 needs:
    // at least one pointer chaser, one streamer, one microcode-heavy and
    // one hard-to-predict workload.
    bool chaser = false;
    bool streamer = false;
    bool microcode = false;
    bool branchy = false;
    for (const Workload &w : allSpecWorkloads()) {
        chaser |= w.params.pointer_chase_frac > 0.0;
        streamer |= w.params.stream_frac > 0.5;
        microcode |= w.params.microcoded_frac > 0.0;
        branchy |= w.params.branch_random_frac >= 0.15;
    }
    EXPECT_TRUE(chaser);
    EXPECT_TRUE(streamer);
    EXPECT_TRUE(microcode);
    EXPECT_TRUE(branchy);
}

TEST(WorkloadLibrary, NamesAccessorMatchesRegistry)
{
    const auto names = allSpecWorkloadNames();
    ASSERT_EQ(names.size(), allSpecWorkloads().size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], allSpecWorkloads()[i].name);
}

}  // namespace
}  // namespace stackscope::trace
