/** Unit and property tests for the synthetic trace generator. */

#include "trace/synthetic_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace stackscope::trace {
namespace {

std::vector<DynInstr>
drain(TraceSource &src)
{
    std::vector<DynInstr> out;
    DynInstr i;
    while (src.next(i))
        out.push_back(i);
    return out;
}

SyntheticParams
smallParams()
{
    SyntheticParams p;
    p.num_instrs = 20000;
    p.seed = 99;
    return p;
}

TEST(SyntheticGenerator, ProducesExactCount)
{
    SyntheticGenerator gen(smallParams());
    EXPECT_EQ(drain(gen).size(), 20000u);
}

TEST(SyntheticGenerator, ResetReproducesStream)
{
    SyntheticGenerator gen(smallParams());
    const auto first = drain(gen);
    gen.reset();
    const auto second = drain(gen);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].pc, second[i].pc);
        EXPECT_EQ(first[i].cls, second[i].cls);
        EXPECT_EQ(first[i].mem_addr, second[i].mem_addr);
        EXPECT_EQ(first[i].branch_taken, second[i].branch_taken);
        EXPECT_EQ(first[i].num_srcs, second[i].num_srcs);
        for (unsigned s = 0; s < first[i].num_srcs; ++s)
            EXPECT_EQ(first[i].src[s], second[i].src[s]);
    }
}

TEST(SyntheticGenerator, CloneReproducesStream)
{
    SyntheticGenerator gen(smallParams());
    auto copy = gen.clone();
    const auto a = drain(gen);
    const auto b = drain(*copy);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 97)
        EXPECT_EQ(a[i].pc, b[i].pc);
}

TEST(SyntheticGenerator, DependencesPointBackwardWithinWindow)
{
    SyntheticParams p = smallParams();
    p.dep_window = 32;
    SyntheticGenerator gen(p);
    const auto instrs = drain(gen);
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        for (unsigned s = 0; s < instrs[i].num_srcs; ++s) {
            ASSERT_LT(instrs[i].src[s], i);
            ASSERT_LE(i - instrs[i].src[s], kMaxDepDistance);
        }
    }
}

TEST(SyntheticGenerator, MixApproximatesWeights)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 100000;
    p.w_alu = 0.5;
    p.w_load = 0.3;
    p.w_store = 0.0;
    p.w_branch = 0.2;
    p.w_mul = 0.0;
    SyntheticGenerator gen(p);
    std::map<InstrClass, int> counts;
    for (const DynInstr &i : drain(gen))
        ++counts[i.cls];
    EXPECT_NEAR(counts[InstrClass::kAlu] / 100000.0, 0.5, 0.05);
    EXPECT_NEAR(counts[InstrClass::kLoad] / 100000.0, 0.3, 0.05);
    EXPECT_NEAR(counts[InstrClass::kBranch] / 100000.0, 0.2, 0.05);
    EXPECT_EQ(counts[InstrClass::kStore], 0);
}

TEST(SyntheticGenerator, CodeIsStatic)
{
    // The class at a PC never changes: real code does not rewrite itself.
    SyntheticParams p = smallParams();
    p.num_instrs = 50000;
    p.code_footprint = 4 << 10;  // small, so PCs repeat a lot
    SyntheticGenerator gen(p);
    std::map<Addr, InstrClass> seen;
    for (const DynInstr &i : drain(gen)) {
        auto [it, inserted] = seen.emplace(i.pc, i.cls);
        if (!inserted) {
            ASSERT_EQ(it->second, i.cls) << "PC " << std::hex << i.pc;
        }
    }
}

TEST(SyntheticGenerator, PcStaysInFootprint)
{
    SyntheticParams p = smallParams();
    p.code_footprint = 8 << 10;
    SyntheticGenerator gen(p);
    for (const DynInstr &i : drain(gen)) {
        EXPECT_GE(i.pc, 0x00400000u);
        EXPECT_LT(i.pc, 0x00400000u + p.code_footprint);
    }
}

TEST(SyntheticGenerator, YieldsEmittedPeriodically)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 10000;
    p.yield_every = 1000;
    p.yield_cycles = 77;
    SyntheticGenerator gen(p);
    int yields = 0;
    for (const DynInstr &i : drain(gen)) {
        if (i.cls == InstrClass::kYield) {
            ++yields;
            EXPECT_EQ(i.yield_cycles, 77u) << "yield cycles";
        }
    }
    EXPECT_EQ(yields, 10);
}

TEST(SyntheticGenerator, MicrocodedFractionRoughlyRespected)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 100000;
    p.microcoded_frac = 0.10;
    p.microcode_decode_cycles = 4;
    SyntheticGenerator gen(p);
    std::uint64_t micro = 0;
    std::uint64_t eligible = 0;
    for (const DynInstr &i : drain(gen)) {
        if (i.cls == InstrClass::kAlu || i.cls == InstrClass::kAluMul) {
            ++eligible;
            micro += i.decode_cycles > 1;
        }
    }
    ASSERT_GT(eligible, 0u);
    EXPECT_NEAR(static_cast<double>(micro) / eligible, 0.10, 0.04);
}

TEST(SyntheticGenerator, MaskedVectorLanes)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 50000;
    p.w_vec_fma = 0.5;
    p.vec_lanes = 16;
    p.vec_mask_frac = 0.25;
    SyntheticGenerator gen(p);
    int full = 0;
    int masked = 0;
    for (const DynInstr &i : drain(gen)) {
        if (i.cls != InstrClass::kVecFma)
            continue;
        ASSERT_GE(i.active_lanes, 1u);
        ASSERT_LE(i.active_lanes, 16u);
        (i.active_lanes == 16 ? full : masked) += 1;
    }
    EXPECT_GT(full, 0);
    EXPECT_GT(masked, 0);
    EXPECT_NEAR(static_cast<double>(masked) / (full + masked), 0.25, 0.05);
}

TEST(SyntheticGenerator, PointerChaseLoadsDependOnPreviousChase)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 50000;
    p.pointer_chase_frac = 1.0;  // every load chases
    p.w_load = 1.0;
    p.w_alu = 0.0;
    p.w_mul = 0.0;
    p.w_store = 0.0;
    p.w_branch = 0.0;
    p.chain_frac = 0.0;
    p.far_dep_frac = 0.0;
    p.second_src_frac = 0.0;
    SyntheticGenerator gen(p);
    const auto instrs = drain(gen);
    // Every load after the first depends on the previous load.
    for (std::size_t i = 1; i < instrs.size(); ++i) {
        ASSERT_EQ(instrs[i].cls, InstrClass::kLoad);
        ASSERT_EQ(instrs[i].num_srcs, 1u);
        EXPECT_EQ(instrs[i].src[0], i - 1);
    }
}

TEST(SyntheticGenerator, StreamingAddressesAreStrided)
{
    SyntheticParams p = smallParams();
    p.num_instrs = 1000;
    p.stream_frac = 1.0;
    p.stream_stride = 64;
    p.w_load = 1.0;
    p.w_alu = 0.0;
    p.w_mul = 0.0;
    p.w_store = 0.0;
    p.w_branch = 0.0;
    SyntheticGenerator gen(p);
    const auto instrs = drain(gen);
    for (std::size_t i = 1; i < instrs.size(); ++i)
        EXPECT_EQ(instrs[i].mem_addr, instrs[i - 1].mem_addr + 64);
}

}  // namespace
}  // namespace stackscope::trace
