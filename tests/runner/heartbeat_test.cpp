/**
 * Unit tests for the heartbeat's line renderer: the rate must read "--"
 * until a cycle has actually been observed, the ETA must only appear
 * once defined and never exceed its 24h clamp, and failure/retry counts
 * must show up exactly when nonzero.
 */

#include "runner/heartbeat.hpp"

#include <gtest/gtest.h>

#include <string>

namespace stackscope::runner {
namespace {

TEST(HeartbeatLine, NoCyclesMeansNoRate)
{
    // First callback often lands before any simulated cycle is counted;
    // "0 cycles/s" would be a lie, "--" is an honest "not yet measured".
    const std::string line =
        formatHeartbeatLine("sweep", 1, 10, 0, 0, 0, 0.5, false);
    EXPECT_NE(line.find("-- cycles/s"), std::string::npos) << line;
    EXPECT_EQ(line.find("0 cycles/s"), std::string::npos) << line;
}

TEST(HeartbeatLine, ZeroElapsedMeansNoRate)
{
    const std::string line =
        formatHeartbeatLine("sweep", 1, 10, 0, 0, 50'000, 0.0, false);
    EXPECT_NE(line.find("-- cycles/s"), std::string::npos) << line;
}

TEST(HeartbeatLine, RateAndEtaOnceMeasured)
{
    const std::string line =
        formatHeartbeatLine("sweep", 5, 10, 0, 0, 1'000'000, 2.0, false);
    EXPECT_NE(line.find("5e+05 cycles/s"), std::string::npos) << line;
    // 5 of 10 jobs in 2s -> 2s to go.
    EXPECT_NE(line.find("ETA"), std::string::npos) << line;
    EXPECT_NE(line.find("[sweep] 5/10 jobs"), std::string::npos) << line;
}

TEST(HeartbeatLine, NoJobsDoneMeansNoEta)
{
    const std::string line =
        formatHeartbeatLine("sweep", 0, 10, 0, 0, 1'000, 1.0, false);
    EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

TEST(HeartbeatLine, EtaClampsAtTwentyFourHours)
{
    // 1 of 1e9 jobs after an hour extrapolates to decades; the clamp
    // keeps the horizon sane.
    const std::string line = formatHeartbeatLine(
        "sweep", 1, 1'000'000'000, 0, 0, 1'000, 3600.0, false);
    EXPECT_NE(line.find("ETA >"), std::string::npos) << line;
}

TEST(HeartbeatLine, FailureAndRetryCountsAppearOnlyWhenNonzero)
{
    const std::string clean =
        formatHeartbeatLine("sweep", 2, 4, 0, 0, 1'000, 1.0, false);
    EXPECT_EQ(clean.find("failed"), std::string::npos) << clean;
    EXPECT_EQ(clean.find("retried"), std::string::npos) << clean;

    const std::string messy =
        formatHeartbeatLine("sweep", 2, 4, 1, 2, 1'000, 1.0, false);
    EXPECT_NE(messy.find("1 failed"), std::string::npos) << messy;
    EXPECT_NE(messy.find("2 retried"), std::string::npos) << messy;
}

TEST(HeartbeatLine, FinalLineSaysDone)
{
    const std::string line =
        formatHeartbeatLine("sweep", 4, 4, 0, 0, 1'000'000, 2.0, true);
    EXPECT_NE(line.find("done in"), std::string::npos) << line;
    EXPECT_EQ(line.find("ETA"), std::string::npos) << line;
}

}  // namespace
}  // namespace stackscope::runner
