/** Tests for the work-stealing thread pool under the batch runner. */

#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stackscope::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleThreadPoolStillDrains)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), ThreadPool::hardwareThreads());
    EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 20; ++i)
            pool.submit(
                [&] { count.fetch_add(1, std::memory_order_relaxed); });
        pool.waitIdle();
        EXPECT_EQ(count.load(), (round + 1) * 20);
    }
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();  // must not hang
}

TEST(ThreadPool, NestedSubmitFromWorkerIsExecuted)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            // A job spawning follow-up work from inside the pool must not
            // deadlock and must be covered by the same waitIdle().
            pool.submit(
                [&] { count.fetch_add(1, std::memory_order_relaxed); });
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit(
                [&] { count.fetch_add(1, std::memory_order_relaxed); });
        // No waitIdle(): the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, StatsAccountForEveryTaskExactly)
{
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 2000;
    std::atomic<std::size_t> ran{0};
    for (std::size_t i = 0; i < kTasks; ++i)
        pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.waitIdle();

    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, kTasks);
    EXPECT_EQ(stats.completed, kTasks);
    EXPECT_EQ(ran.load(), kTasks);
    // Every completed task was popped exactly once: either by its owning
    // worker or stolen. The two must account for the full count.
    EXPECT_EQ(stats.own_pops + stats.steals, stats.completed);
}

TEST(ThreadPool, StatsAreCumulativeAcrossRounds)
{
    ThreadPool pool(2);
    for (int round = 1; round <= 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([] {});
        pool.waitIdle();
        const ThreadPool::Stats stats = pool.stats();
        EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(round) * 50);
        EXPECT_EQ(stats.completed, stats.submitted);
        EXPECT_EQ(stats.own_pops + stats.steals, stats.completed);
    }
}

TEST(ThreadPool, StressManySmallTasks)
{
    ThreadPool pool(ThreadPool::hardwareThreads());
    std::atomic<std::size_t> sum{0};
    constexpr std::size_t kTasks = 5000;
    for (std::size_t i = 0; i < kTasks; ++i)
        pool.submit([&sum, i] {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
    pool.waitIdle();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace stackscope::runner
