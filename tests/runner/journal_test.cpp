/**
 * Crash-safety tests for the sweep journal: round-trip, corrupt-tail and
 * truncated-tail recovery, header verification, and the stability of the
 * canonical spec hash the journal keys on.
 */

#include "runner/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "runner/job_spec.hpp"

namespace stackscope::runner {
namespace {

/** Unique-per-test temp path, removed on destruction. */
class TempPath
{
  public:
    TempPath()
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "stackscope_journal_" +
                info->test_suite_name() + "_" + info->name();
    }
    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

JournalRecord
record(const std::string &hash, const std::string &label)
{
    JournalRecord rec;
    rec.spec_hash = hash;
    rec.label = label;
    rec.status = "ok";
    rec.attempts = 1;
    rec.job_json = "{\"label\":\"" + label + "\"}";
    rec.csv = label + ",dispatch,1\n" + label + ",issue,2";
    return rec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(SweepJournal, RoundTripsRecords)
{
    const TempPath path;
    {
        SweepJournal journal =
            SweepJournal::create(path.str(), "00000000deadbeef");
        journal.append(record("1111111111111111", "mcf/bdw/x1"));
        journal.append(record("2222222222222222", "gcc/knl/x2"));
    }
    SweepJournal resumed =
        SweepJournal::resume(path.str(), "00000000deadbeef");
    ASSERT_EQ(resumed.records().size(), 2u);
    const JournalRecord *rec = resumed.find("2222222222222222");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->label, "gcc/knl/x2");
    EXPECT_EQ(rec->status, "ok");
    EXPECT_EQ(rec->attempts, 1u);
    EXPECT_EQ(rec->job_json, "{\"label\":\"gcc/knl/x2\"}");
    EXPECT_NE(rec->csv.find("issue,2"), std::string::npos);
    EXPECT_EQ(resumed.find("3333333333333333"), nullptr);
}

TEST(SweepJournal, DropsTruncatedTail)
{
    const TempPath path;
    {
        SweepJournal journal = SweepJournal::create(path.str(), "feed");
        journal.append(record("1111111111111111", "a"));
        journal.append(record("2222222222222222", "b"));
    }
    // Simulate a crash mid-append: cut the last record's line short.
    std::string bytes = slurp(path.str());
    const std::size_t cut = bytes.find("2222222222222222");
    ASSERT_NE(cut, std::string::npos);
    {
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(cut + 4));
    }
    SweepJournal resumed = SweepJournal::resume(path.str(), "feed");
    ASSERT_EQ(resumed.records().size(), 1u);
    EXPECT_NE(resumed.find("1111111111111111"), nullptr);

    // The corrupt tail must be gone from disk: a fresh append and a
    // second resume must see exactly the intact record plus the new one.
    resumed.append(record("3333333333333333", "c"));
    SweepJournal again = SweepJournal::resume(path.str(), "feed");
    EXPECT_EQ(again.records().size(), 2u);
    EXPECT_NE(again.find("3333333333333333"), nullptr);
    EXPECT_EQ(again.find("2222222222222222"), nullptr);
}

TEST(SweepJournal, RejectsCorruptChecksum)
{
    const TempPath path;
    {
        SweepJournal journal = SweepJournal::create(path.str(), "feed");
        journal.append(record("1111111111111111", "a"));
        journal.append(record("2222222222222222", "b"));
    }
    // Flip one payload byte of the *first* record: it and everything
    // after it (the crash tail, conservatively) must be dropped.
    std::string bytes = slurp(path.str());
    const std::size_t at = bytes.find("\"a\"");
    ASSERT_NE(at, std::string::npos);
    bytes[at + 1] = 'z';
    {
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    SweepJournal resumed = SweepJournal::resume(path.str(), "feed");
    EXPECT_TRUE(resumed.records().empty());
}

TEST(SweepJournal, RejectsWrongSweepHash)
{
    const TempPath path;
    {
        SweepJournal journal = SweepJournal::create(path.str(), "aaaa");
        journal.append(record("1111111111111111", "a"));
    }
    EXPECT_THROW((void)SweepJournal::resume(path.str(), "bbbb"),
                 StackscopeError);
}

TEST(SweepJournal, RejectsNonJournalFile)
{
    const TempPath path;
    {
        std::ofstream out(path.str(), std::ios::binary);
        out << "{\"schema\":\"stackscope-report\"}\n";
    }
    EXPECT_THROW((void)SweepJournal::resume(path.str(), "aaaa"),
                 StackscopeError);
}

TEST(SweepJournal, ResumeOfMissingFileFails)
{
    EXPECT_THROW((void)SweepJournal::resume(
                     ::testing::TempDir() + "stackscope_journal_missing",
                     "aaaa"),
                 StackscopeError);
}

TEST(Crc32, MatchesKnownVectors)
{
    // IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32(""), 0u);
}

TEST(JobSpec, HashIsStableAndAttemptInvariant)
{
    JobSpec spec;
    spec.workload = "mcf";
    spec.machine = "bdw";
    spec.cores = 2;
    spec.instrs = 30'000;

    const std::string base = specHash(spec);
    EXPECT_EQ(base.size(), 16u);

    // The retry attempt is runtime state, not identity.
    JobSpec retried = spec;
    retried.options.attempt = 3;
    EXPECT_EQ(specHash(retried), base);

    // Everything that changes the simulation changes the hash.
    JobSpec other = spec;
    other.cores = 4;
    EXPECT_NE(specHash(other), base);
    other = spec;
    other.options.deadline_cycles = 1'000;
    EXPECT_NE(specHash(other), base);
    other = spec;
    other.options.fault =
        validate::FaultSpec{validate::FaultKind::kStackLeak, 7};
    EXPECT_NE(specHash(other), base);
}

TEST(JobSpec, CanonicalJsonExcludesAttempt)
{
    JobSpec spec;
    spec.workload = "mcf";
    spec.machine = "bdw";
    spec.options.attempt = 9;
    const std::string json = canonicalJson(spec);
    EXPECT_EQ(json.find("attempt"), std::string::npos) << json;
    EXPECT_NE(json.find("\"workload\":\"mcf\""), std::string::npos)
        << json;
}

}  // namespace
}  // namespace stackscope::runner
