/**
 * Batch-cancellation race coverage, written to run under ThreadSanitizer
 * (the tsan CI preset includes test_runner): a fail-fast cancellation
 * races worker threads finishing, skipping and journaling jobs, and the
 * outcome bookkeeping, on_outcome hook and progress observer must stay
 * data-race-free while in-flight jobs drain.
 */

#include "runner/batch_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"
#include "validate/fault_injection.hpp"

namespace stackscope::runner {
namespace {

trace::SyntheticGenerator
tinyWorkload(const char *name, std::uint64_t n)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

/** Thread-safe observer that only counts; TSan watches the callbacks. */
class CountingObserver : public ProgressObserver
{
  public:
    void
    onJobDone(std::size_t, std::size_t, std::uint64_t cycles,
              std::uint64_t, JobStatus status) override
    {
        calls_.fetch_add(1, std::memory_order_relaxed);
        cycles_.fetch_add(cycles, std::memory_order_relaxed);
        if (status == JobStatus::kQuarantined)
            failures_.fetch_add(1, std::memory_order_relaxed);
    }

    std::size_t calls() const { return calls_.load(); }
    std::size_t failures() const { return failures_.load(); }

  private:
    std::atomic<std::size_t> calls_{0};
    std::atomic<std::uint64_t> cycles_{0};
    std::atomic<std::size_t> failures_{0};
};

TEST(CancelRace, FailFastCancellationDrainsCleanly)
{
    // One early poisoned job among many: the cancellation signal races
    // workers picking up, finishing and skipping jobs. Repeat to give
    // the scheduler chances to interleave differently.
    sim::SimOptions good;
    sim::SimOptions bad = good;
    bad.validation = validate::ValidationPolicy::kStrict;
    bad.fault = validate::FaultSpec{validate::FaultKind::kStackLeak, 3};

    for (int round = 0; round < 3; ++round) {
        std::vector<SimJob> jobs;
        for (int i = 0; i < 12; ++i) {
            const bool faulty = i == 1;
            jobs.push_back(makeJob("j" + std::to_string(i),
                                   sim::bdwConfig(),
                                   tinyWorkload("gcc", 5'000),
                                   faulty ? bad : good));
        }
        CountingObserver observer;
        std::atomic<std::size_t> outcomes_seen{0};
        BatchOptions options;
        options.on_outcome = [&](std::size_t, const JobOutcome &) {
            outcomes_seen.fetch_add(1, std::memory_order_relaxed);
        };
        BatchRunner runner(4);
        EXPECT_THROW(
            (void)runner.run(std::move(jobs), &observer, options),
            StackscopeError);
        // Every job that ran reported exactly once to both channels.
        EXPECT_EQ(observer.calls(), outcomes_seen.load());
        EXPECT_GE(observer.failures(), 1u);
    }
}

TEST(CancelRace, KeepGoingResultsAreThreadCountInvariant)
{
    // Retries, quarantine bookkeeping and the on_outcome hook must not
    // perturb results: every thread count yields the same statuses and
    // the same simulated cycles for completed jobs.
    sim::SimOptions good;
    sim::SimOptions bad = good;
    bad.validation = validate::ValidationPolicy::kStrict;
    bad.fault = validate::FaultSpec{validate::FaultKind::kStackLeak, 3};

    auto makeJobs = [&] {
        std::vector<SimJob> jobs;
        for (int i = 0; i < 8; ++i) {
            const bool faulty = i % 4 == 2;
            jobs.push_back(makeJob("j" + std::to_string(i),
                                   sim::bdwConfig(),
                                   tinyWorkload("mcf", 5'000),
                                   faulty ? bad : good));
        }
        return jobs;
    };
    BatchOptions options;
    options.keep_going = true;
    options.retry.max_retries = 1;
    options.retry.backoff = std::chrono::milliseconds(1);

    BatchRunner reference_runner(1);
    const BatchResult reference =
        reference_runner.run(makeJobs(), nullptr, options);
    ASSERT_EQ(reference.tally().quarantined, 2u);

    for (unsigned threads : {2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        CountingObserver observer;
        BatchRunner runner(threads);
        const BatchResult batch =
            runner.run(makeJobs(), &observer, options);
        ASSERT_EQ(batch.outcomes.size(), reference.outcomes.size());
        for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
            EXPECT_EQ(batch.outcomes[i].status,
                      reference.outcomes[i].status);
            EXPECT_EQ(batch.outcomes[i].attempts,
                      reference.outcomes[i].attempts);
            if (batch.outcomes[i].completed()) {
                EXPECT_EQ(batch.outcomes[i].single.cycles,
                          reference.outcomes[i].single.cycles);
            }
        }
        EXPECT_EQ(observer.calls(), batch.outcomes.size());
    }
}

}  // namespace
}  // namespace stackscope::runner
