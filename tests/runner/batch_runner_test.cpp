/**
 * Determinism and failure-semantics tests for the batch-simulation
 * engine: BatchRunner results must be bit-identical to serial
 * sim::simulate() / sim::simulateMulticore() calls, for every thread
 * count, and strict-policy failures must cancel the batch and rethrow
 * with job context.
 */

#include "runner/batch_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"
#include "validate/fault_injection.hpp"

namespace stackscope::runner {
namespace {

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 50'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

/** Every double of two single-core results, compared exactly. */
void
expectBitIdentical(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
        a.cpi_stacks[s].forEach([&](stacks::CpiComponent c, double v) {
            EXPECT_DOUBLE_EQ(v, b.cpi_stacks[s][c]);
        });
        a.cycle_stacks[s].forEach([&](stacks::CpiComponent c, double v) {
            EXPECT_DOUBLE_EQ(v, b.cycle_stacks[s][c]);
        });
    }
    a.flops_cycles.forEach([&](stacks::FlopsComponent c, double v) {
        EXPECT_DOUBLE_EQ(v, b.flops_cycles[c]);
    });
    // Validation reports: same policy, same checks, same violations.
    EXPECT_EQ(a.validation.policy, b.validation.policy);
    EXPECT_EQ(a.validation.checks_run, b.validation.checks_run);
    ASSERT_EQ(a.validation.violations.size(), b.validation.violations.size());
    for (std::size_t i = 0; i < a.validation.violations.size(); ++i) {
        EXPECT_EQ(a.validation.violations[i].invariant,
                  b.validation.violations[i].invariant);
        EXPECT_EQ(a.validation.violations[i].detail,
                  b.validation.violations[i].detail);
        EXPECT_EQ(a.validation.violations[i].cycle,
                  b.validation.violations[i].cycle);
    }
}

std::vector<SimJob>
mixedBatch(const sim::SimOptions &options)
{
    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("mcf/bdw", sim::bdwConfig(),
                           shortWorkload("mcf"), options));
    jobs.push_back(makeJob("gcc/knl", sim::knlConfig(),
                           shortWorkload("gcc"), options));
    jobs.push_back(makeJob("bwaves/skx", sim::skxConfig(),
                           shortWorkload("bwaves"), options));
    jobs.push_back(makeJob("exchange2/bdw", sim::bdwConfig(),
                           shortWorkload("exchange2"), options));
    return jobs;
}

TEST(BatchRunner, MatchesSerialSimulateForEveryThreadCount)
{
    sim::SimOptions options;
    options.warmup_instrs = 10'000;
    options.validation = validate::ValidationPolicy::kWarn;

    // The serial reference: plain simulate() calls, no pool involved.
    std::vector<sim::SimResult> reference;
    for (const SimJob &job : mixedBatch(options))
        reference.push_back(sim::simulate(job.machine, *job.trace,
                                          job.options));

    for (unsigned threads :
         {1u, 2u, ThreadPool::hardwareThreads()}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        BatchRunner runner(threads);
        const BatchResult batch = runner.run(mixedBatch(options));
        ASSERT_EQ(batch.outcomes.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            SCOPED_TRACE("job=" + batch.outcomes[i].label);
            expectBitIdentical(batch.outcomes[i].single, reference[i]);
        }
    }
}

TEST(BatchRunner, MatchesSerialMulticore)
{
    sim::SimOptions options;
    options.validation = validate::ValidationPolicy::kWarn;
    const auto gen = shortWorkload("mcf", 20'000);
    const sim::MulticoreResult reference =
        sim::simulateMulticore(sim::bdwConfig(), gen, 2, options);

    for (unsigned threads : {1u, 2u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        BatchRunner runner(threads);
        std::vector<SimJob> jobs;
        jobs.push_back(
            makeJob("mcf/bdw/x2", sim::bdwConfig(), gen, options, 2));
        const BatchResult batch = runner.run(std::move(jobs));
        ASSERT_EQ(batch.outcomes.size(), 1u);
        ASSERT_TRUE(batch.outcomes[0].multi.has_value());
        const sim::MulticoreResult &m = *batch.outcomes[0].multi;
        ASSERT_EQ(m.per_core.size(), reference.per_core.size());
        EXPECT_DOUBLE_EQ(m.avg_cpi, reference.avg_cpi);
        for (std::size_t c = 0; c < reference.per_core.size(); ++c)
            expectBitIdentical(m.per_core[c], reference.per_core[c]);
    }
}

TEST(BatchRunner, MergedReportCarriesJobLabels)
{
    // A watchdog truncation during warmup in one job must surface,
    // labelled, in the batch-level merged report while the other job
    // stays clean.
    sim::SimOptions clean;
    clean.validation = validate::ValidationPolicy::kWarn;
    sim::SimOptions truncated = clean;
    truncated.warmup_instrs = 40'000;
    truncated.max_cycles = 2'000;

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("clean", sim::bdwConfig(),
                           shortWorkload("gcc"), clean));
    jobs.push_back(makeJob("cut", sim::bdwConfig(),
                           shortWorkload("mcf"), truncated));
    BatchRunner runner(2);
    const BatchResult batch = runner.run(std::move(jobs));

    EXPECT_TRUE(batch.outcomes[0].validation().passed());
    EXPECT_FALSE(batch.outcomes[1].validation().passed());
    EXPECT_FALSE(batch.validation.passed());
    bool labelled = false;
    for (const validate::Violation &v : batch.validation.violations)
        if (v.detail.find("job cut:") != std::string::npos)
            labelled = true;
    EXPECT_TRUE(labelled);
}

TEST(BatchRunner, StrictFailureCancelsAndCarriesJobContext)
{
    // Inject a deterministic fault into one strict-policy job; the batch
    // must rethrow that job's error with its label attached.
    sim::SimOptions good;
    good.validation = validate::ValidationPolicy::kStrict;
    sim::SimOptions bad = good;
    bad.fault = validate::FaultSpec{validate::FaultKind::kStackLeak, 7};

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("healthy", sim::bdwConfig(),
                           shortWorkload("gcc"), good));
    jobs.push_back(makeJob("faulty", sim::bdwConfig(),
                           shortWorkload("mcf"), bad));

    BatchRunner runner(2);
    try {
        (void)runner.run(std::move(jobs));
        FAIL() << "strict-policy fault did not propagate";
    } catch (const StackscopeError &e) {
        bool has_label = false;
        for (const auto &[k, v] : e.context())
            if (k == "job" && v == "faulty")
                has_label = true;
        EXPECT_TRUE(has_label) << e.describe();
    }
}

TEST(BatchRunner, EmptyBatchIsFine)
{
    BatchRunner runner(2);
    const BatchResult batch = runner.run({});
    EXPECT_TRUE(batch.outcomes.empty());
    EXPECT_TRUE(batch.validation.passed());
}

TEST(BatchRunner, KeepGoingIsolatesFailure)
{
    // 20 jobs, one with a deterministic stack-leak fault: under
    // keep_going the other 19 must complete and only the faulty one end
    // quarantined, with the host counters recording exactly that.
    sim::SimOptions good;
    good.validation = validate::ValidationPolicy::kStrict;
    sim::SimOptions bad = good;
    bad.fault = validate::FaultSpec{validate::FaultKind::kStackLeak, 7};

    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();

    std::vector<SimJob> jobs;
    for (int i = 0; i < 20; ++i) {
        const bool faulty = i == 13;
        jobs.push_back(makeJob("job" + std::to_string(i),
                               sim::bdwConfig(),
                               shortWorkload("gcc", 20'000),
                               faulty ? bad : good));
    }
    BatchOptions options;
    options.keep_going = true;
    options.retry.max_retries = 1;
    options.retry.backoff = std::chrono::milliseconds(1);
    BatchRunner runner(4);
    const BatchResult batch = runner.run(std::move(jobs), nullptr, options);

    const StatusTally tally = batch.tally();
    EXPECT_EQ(tally.ok, 19u);
    EXPECT_EQ(tally.quarantined, 1u);
    EXPECT_EQ(tally.timeout, 0u);
    EXPECT_EQ(tally.skipped, 0u);
    EXPECT_EQ(batch.exitCode(), kExitPartialSuccess);
    EXPECT_EQ(batch.outcomes[13].status, JobStatus::kQuarantined);
    // The persistent fault survives its one retry: 2 attempts.
    EXPECT_EQ(batch.outcomes[13].attempts, 2u);
    EXPECT_EQ(batch.outcomes[13].error_category,
              ErrorCategory::kValidation);
    EXPECT_FALSE(batch.outcomes[13].error.empty());
    // Merged validation only covers completed jobs, so it stays clean.
    EXPECT_TRUE(batch.validation.passed());

    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::global().snapshot();
    auto delta = [&](std::string_view name) {
        return after.counterOr(name) - before.counterOr(name);
    };
    EXPECT_EQ(delta("runner.jobs_ok_total"), 19u);
    EXPECT_EQ(delta("runner.job_retries_total"), 1u);
    EXPECT_EQ(delta("runner.jobs_quarantined_total"), 1u);
    EXPECT_EQ(delta("runner.jobs_timeout_total"), 0u);
}

TEST(BatchRunner, RetryHealsTransientFault)
{
    // A transient-leak fault only corrupts attempt 0; with one retry the
    // job must complete as kRetried and its result must be bit-identical
    // to a clean run of the same point.
    sim::SimOptions clean;
    clean.validation = validate::ValidationPolicy::kStrict;
    sim::SimOptions flaky = clean;
    flaky.fault =
        validate::FaultSpec{validate::FaultKind::kTransientLeak, 11};

    const sim::SimResult reference = sim::simulate(
        sim::bdwConfig(), shortWorkload("mcf", 20'000), clean);

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("flaky", sim::bdwConfig(),
                           shortWorkload("mcf", 20'000), flaky));
    BatchOptions options;
    options.retry.max_retries = 1;
    options.retry.backoff = std::chrono::milliseconds(1);
    BatchRunner runner(2);
    const BatchResult batch = runner.run(std::move(jobs), nullptr, options);

    ASSERT_EQ(batch.outcomes.size(), 1u);
    EXPECT_EQ(batch.outcomes[0].status, JobStatus::kRetried);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_TRUE(batch.outcomes[0].completed());
    expectBitIdentical(batch.outcomes[0].single, reference);
    EXPECT_EQ(batch.exitCode(), 0);
}

TEST(BatchRunner, TransientFaultWithoutRetriesFailsFast)
{
    sim::SimOptions flaky;
    flaky.validation = validate::ValidationPolicy::kStrict;
    flaky.fault =
        validate::FaultSpec{validate::FaultKind::kTransientLeak, 11};
    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("flaky", sim::bdwConfig(),
                           shortWorkload("mcf", 20'000), flaky));
    BatchRunner runner(1);
    EXPECT_THROW((void)runner.run(std::move(jobs)), StackscopeError);
}

TEST(BatchRunner, CycleDeadlineFailsFastWithWatchdogCategory)
{
    sim::SimOptions slow;
    slow.deadline_cycles = 1'000;
    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("budgeted", sim::bdwConfig(),
                           shortWorkload("mcf", 100'000), slow));
    BatchRunner runner(1);
    try {
        (void)runner.run(std::move(jobs));
        FAIL() << "cycle budget did not propagate";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kWatchdog);
        EXPECT_NE(e.describe().find("cycle-budget"), std::string::npos)
            << e.describe();
    }
}

TEST(BatchRunner, CycleDeadlineUnderKeepGoingBecomesTimeout)
{
    // A deadline failure is retryable (limits may be transient host
    // pressure), but a cycle budget is deterministic: every retry trips
    // again and the job lands on kTimeout.
    sim::SimOptions slow;
    slow.deadline_cycles = 1'000;
    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("budgeted", sim::bdwConfig(),
                           shortWorkload("mcf", 100'000), slow));
    jobs.push_back(makeJob("fine", sim::bdwConfig(),
                           shortWorkload("gcc", 20'000), sim::SimOptions{}));
    BatchOptions options;
    options.keep_going = true;
    options.retry.max_retries = 1;
    options.retry.backoff = std::chrono::milliseconds(1);
    BatchRunner runner(2);
    const BatchResult batch = runner.run(std::move(jobs), nullptr, options);

    EXPECT_EQ(batch.outcomes[0].status, JobStatus::kTimeout);
    EXPECT_EQ(batch.outcomes[0].attempts, 2u);
    EXPECT_EQ(batch.outcomes[0].error_category, ErrorCategory::kWatchdog);
    EXPECT_EQ(batch.outcomes[1].status, JobStatus::kOk);
    EXPECT_EQ(batch.exitCode(), kExitPartialSuccess);
}

TEST(BatchRunner, AllJobsFailingIsTotalFailure)
{
    sim::SimOptions slow;
    slow.deadline_cycles = 500;
    std::vector<SimJob> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back(makeJob("j" + std::to_string(i), sim::bdwConfig(),
                               shortWorkload("mcf", 100'000), slow));
    BatchOptions options;
    options.keep_going = true;
    BatchRunner runner(2);
    const BatchResult batch = runner.run(std::move(jobs), nullptr, options);
    EXPECT_EQ(batch.tally().timeout, 3u);
    EXPECT_EQ(batch.exitCode(), kExitTotalFailure);
}

TEST(BatchRunner, OnOutcomeSeesEveryRanJob)
{
    sim::SimOptions good;
    sim::SimOptions bad = good;
    bad.deadline_cycles = 500;

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("ok", sim::bdwConfig(),
                           shortWorkload("gcc", 20'000), good));
    jobs.push_back(makeJob("late", sim::bdwConfig(),
                           shortWorkload("mcf", 100'000), bad));

    std::mutex mutex;
    std::vector<std::pair<std::size_t, JobStatus>> seen;
    BatchOptions options;
    options.keep_going = true;
    options.on_outcome = [&](std::size_t index, const JobOutcome &o) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.emplace_back(index, o.status);
    };
    BatchRunner runner(2);
    (void)runner.run(std::move(jobs), nullptr, options);

    ASSERT_EQ(seen.size(), 2u);
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen[0], (std::pair<std::size_t, JobStatus>{
                           0, JobStatus::kOk}));
    EXPECT_EQ(seen[1], (std::pair<std::size_t, JobStatus>{
                           1, JobStatus::kTimeout}));
}

TEST(RetryPolicy, BackoffDoublesAndCaps)
{
    RetryPolicy policy;
    policy.backoff = std::chrono::milliseconds(50);
    policy.backoff_cap = std::chrono::milliseconds(300);
    EXPECT_EQ(policy.delayFor(1).count(), 50);
    EXPECT_EQ(policy.delayFor(2).count(), 100);
    EXPECT_EQ(policy.delayFor(3).count(), 200);
    EXPECT_EQ(policy.delayFor(4).count(), 300);
    EXPECT_EQ(policy.delayFor(10).count(), 300);
}

TEST(BatchRunner, JobsAreReusableAfterMakeJob)
{
    // makeJob clones the trace; running the same job list twice must give
    // identical results (the run clones again internally).
    sim::SimOptions options;
    BatchRunner runner(2);
    const BatchResult a = runner.run(mixedBatch(options));
    const BatchResult b = runner.run(mixedBatch(options));
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i)
        expectBitIdentical(a.outcomes[i].single, b.outcomes[i].single);
}

}  // namespace
}  // namespace stackscope::runner
