/**
 * Determinism and failure-semantics tests for the batch-simulation
 * engine: BatchRunner results must be bit-identical to serial
 * sim::simulate() / sim::simulateMulticore() calls, for every thread
 * count, and strict-policy failures must cancel the batch and rethrow
 * with job context.
 */

#include "runner/batch_runner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"
#include "validate/fault_injection.hpp"

namespace stackscope::runner {
namespace {

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 50'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

/** Every double of two single-core results, compared exactly. */
void
expectBitIdentical(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
        a.cpi_stacks[s].forEach([&](stacks::CpiComponent c, double v) {
            EXPECT_DOUBLE_EQ(v, b.cpi_stacks[s][c]);
        });
        a.cycle_stacks[s].forEach([&](stacks::CpiComponent c, double v) {
            EXPECT_DOUBLE_EQ(v, b.cycle_stacks[s][c]);
        });
    }
    a.flops_cycles.forEach([&](stacks::FlopsComponent c, double v) {
        EXPECT_DOUBLE_EQ(v, b.flops_cycles[c]);
    });
    // Validation reports: same policy, same checks, same violations.
    EXPECT_EQ(a.validation.policy, b.validation.policy);
    EXPECT_EQ(a.validation.checks_run, b.validation.checks_run);
    ASSERT_EQ(a.validation.violations.size(), b.validation.violations.size());
    for (std::size_t i = 0; i < a.validation.violations.size(); ++i) {
        EXPECT_EQ(a.validation.violations[i].invariant,
                  b.validation.violations[i].invariant);
        EXPECT_EQ(a.validation.violations[i].detail,
                  b.validation.violations[i].detail);
        EXPECT_EQ(a.validation.violations[i].cycle,
                  b.validation.violations[i].cycle);
    }
}

std::vector<SimJob>
mixedBatch(const sim::SimOptions &options)
{
    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("mcf/bdw", sim::bdwConfig(),
                           shortWorkload("mcf"), options));
    jobs.push_back(makeJob("gcc/knl", sim::knlConfig(),
                           shortWorkload("gcc"), options));
    jobs.push_back(makeJob("bwaves/skx", sim::skxConfig(),
                           shortWorkload("bwaves"), options));
    jobs.push_back(makeJob("exchange2/bdw", sim::bdwConfig(),
                           shortWorkload("exchange2"), options));
    return jobs;
}

TEST(BatchRunner, MatchesSerialSimulateForEveryThreadCount)
{
    sim::SimOptions options;
    options.warmup_instrs = 10'000;
    options.validation = validate::ValidationPolicy::kWarn;

    // The serial reference: plain simulate() calls, no pool involved.
    std::vector<sim::SimResult> reference;
    for (const SimJob &job : mixedBatch(options))
        reference.push_back(sim::simulate(job.machine, *job.trace,
                                          job.options));

    for (unsigned threads :
         {1u, 2u, ThreadPool::hardwareThreads()}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        BatchRunner runner(threads);
        const BatchResult batch = runner.run(mixedBatch(options));
        ASSERT_EQ(batch.outcomes.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            SCOPED_TRACE("job=" + batch.outcomes[i].label);
            expectBitIdentical(batch.outcomes[i].single, reference[i]);
        }
    }
}

TEST(BatchRunner, MatchesSerialMulticore)
{
    sim::SimOptions options;
    options.validation = validate::ValidationPolicy::kWarn;
    const auto gen = shortWorkload("mcf", 20'000);
    const sim::MulticoreResult reference =
        sim::simulateMulticore(sim::bdwConfig(), gen, 2, options);

    for (unsigned threads : {1u, 2u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        BatchRunner runner(threads);
        std::vector<SimJob> jobs;
        jobs.push_back(
            makeJob("mcf/bdw/x2", sim::bdwConfig(), gen, options, 2));
        const BatchResult batch = runner.run(std::move(jobs));
        ASSERT_EQ(batch.outcomes.size(), 1u);
        ASSERT_TRUE(batch.outcomes[0].multi.has_value());
        const sim::MulticoreResult &m = *batch.outcomes[0].multi;
        ASSERT_EQ(m.per_core.size(), reference.per_core.size());
        EXPECT_DOUBLE_EQ(m.avg_cpi, reference.avg_cpi);
        for (std::size_t c = 0; c < reference.per_core.size(); ++c)
            expectBitIdentical(m.per_core[c], reference.per_core[c]);
    }
}

TEST(BatchRunner, MergedReportCarriesJobLabels)
{
    // A watchdog truncation during warmup in one job must surface,
    // labelled, in the batch-level merged report while the other job
    // stays clean.
    sim::SimOptions clean;
    clean.validation = validate::ValidationPolicy::kWarn;
    sim::SimOptions truncated = clean;
    truncated.warmup_instrs = 40'000;
    truncated.max_cycles = 2'000;

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("clean", sim::bdwConfig(),
                           shortWorkload("gcc"), clean));
    jobs.push_back(makeJob("cut", sim::bdwConfig(),
                           shortWorkload("mcf"), truncated));
    BatchRunner runner(2);
    const BatchResult batch = runner.run(std::move(jobs));

    EXPECT_TRUE(batch.outcomes[0].validation().passed());
    EXPECT_FALSE(batch.outcomes[1].validation().passed());
    EXPECT_FALSE(batch.validation.passed());
    bool labelled = false;
    for (const validate::Violation &v : batch.validation.violations)
        if (v.detail.find("job cut:") != std::string::npos)
            labelled = true;
    EXPECT_TRUE(labelled);
}

TEST(BatchRunner, StrictFailureCancelsAndCarriesJobContext)
{
    // Inject a deterministic fault into one strict-policy job; the batch
    // must rethrow that job's error with its label attached.
    sim::SimOptions good;
    good.validation = validate::ValidationPolicy::kStrict;
    sim::SimOptions bad = good;
    bad.fault = validate::FaultSpec{validate::FaultKind::kStackLeak, 7};

    std::vector<SimJob> jobs;
    jobs.push_back(makeJob("healthy", sim::bdwConfig(),
                           shortWorkload("gcc"), good));
    jobs.push_back(makeJob("faulty", sim::bdwConfig(),
                           shortWorkload("mcf"), bad));

    BatchRunner runner(2);
    try {
        (void)runner.run(std::move(jobs));
        FAIL() << "strict-policy fault did not propagate";
    } catch (const StackscopeError &e) {
        bool has_label = false;
        for (const auto &[k, v] : e.context())
            if (k == "job" && v == "faulty")
                has_label = true;
        EXPECT_TRUE(has_label) << e.describe();
    }
}

TEST(BatchRunner, EmptyBatchIsFine)
{
    BatchRunner runner(2);
    const BatchResult batch = runner.run({});
    EXPECT_TRUE(batch.outcomes.empty());
    EXPECT_TRUE(batch.validation.passed());
}

TEST(BatchRunner, JobsAreReusableAfterMakeJob)
{
    // makeJob clones the trace; running the same job list twice must give
    // identical results (the run clones again internally).
    sim::SimOptions options;
    BatchRunner runner(2);
    const BatchResult a = runner.run(mixedBatch(options));
    const BatchResult b = runner.run(mixedBatch(options));
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i)
        expectBitIdentical(a.outcomes[i].single, b.outcomes[i].single);
}

}  // namespace
}  // namespace stackscope::runner
