/** Tests for the reorder buffer and reservation stations. */

#include "uarch/rob.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "uarch/reservation_station.hpp"

namespace stackscope::uarch {
namespace {

InflightInstr
instr(SeqNum seq)
{
    InflightInstr e;
    e.seq = seq;
    return e;
}

TEST(Rob, PushPopFifoOrder)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_EQ(rob.head().seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head().seq, 2u);
    rob.popHead();
    rob.popHead();
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, FullAndWraparound)
{
    Rob rob(3);
    rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    EXPECT_TRUE(rob.full());
    rob.popHead();
    EXPECT_FALSE(rob.full());
    const unsigned slot = rob.push(instr(4));  // reuses slot 0
    EXPECT_EQ(slot, 0u);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 2u);
}

TEST(Rob, HoldsValidatesSeqAndLiveness)
{
    Rob rob(3);
    const unsigned s1 = rob.push(instr(10));
    EXPECT_TRUE(rob.holds(s1, 10));
    EXPECT_FALSE(rob.holds(s1, 11));
    rob.popHead();
    EXPECT_FALSE(rob.holds(s1, 10));
    // Slot reuse: new entry, new seq.
    const unsigned s2 = rob.push(instr(20));
    EXPECT_EQ(s2, (s1 + 1) % 3);
    rob.push(instr(30));
    rob.push(instr(40));  // this lands in the recycled slot s1
    EXPECT_TRUE(rob.holds(s1, 40));
    EXPECT_FALSE(rob.holds(s1, 10));
}

TEST(Rob, SquashYoungerTruncatesTail)
{
    Rob rob(8);
    std::vector<unsigned> slots;
    for (SeqNum s = 1; s <= 6; ++s)
        slots.push_back(rob.push(instr(s)));
    std::vector<SeqNum> squashed;
    rob.squashYounger(slots[2],
                      [&](InflightInstr &e) { squashed.push_back(e.seq); });
    ASSERT_EQ(squashed.size(), 3u);
    EXPECT_EQ(squashed[0], 4u);
    EXPECT_EQ(squashed[1], 5u);
    EXPECT_EQ(squashed[2], 6u);
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_TRUE(rob.isLiveSlot(slots[2]));
    EXPECT_FALSE(rob.isLiveSlot(slots[3]));
}

TEST(Rob, SquashThenRefill)
{
    Rob rob(4);
    const unsigned s0 = rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    rob.squashYounger(s0, [](InflightInstr &) {});
    EXPECT_EQ(rob.size(), 1u);
    rob.push(instr(10));
    rob.push(instr(11));
    rob.push(instr(12));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 1u);
}

TEST(Rob, ForEachVisitsAgeOrder)
{
    Rob rob(4);
    rob.push(instr(5));
    rob.push(instr(6));
    rob.popHead();
    rob.push(instr(7));
    rob.push(instr(8));  // wraps
    std::vector<SeqNum> seen;
    rob.forEach([&](const InflightInstr &e) { seen.push_back(e.seq); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 6u);
    EXPECT_EQ(seen[1], 7u);
    EXPECT_EQ(seen[2], 8u);
}

TEST(ReservationStations, CapacityAndOrder)
{
    ReservationStations rs(3);
    EXPECT_TRUE(rs.empty());
    rs.insert(7);
    rs.insert(3);
    rs.insert(9);
    EXPECT_TRUE(rs.full());
    // Age order is insertion order.
    EXPECT_EQ(rs.entries()[0], 7u);
    EXPECT_EQ(rs.entries()[1], 3u);
    EXPECT_EQ(rs.entries()[2], 9u);
}

TEST(ReservationStations, RemovePreservesOrder)
{
    ReservationStations rs(4);
    rs.insert(1);
    rs.insert(2);
    rs.insert(3);
    rs.remove(2);
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_EQ(rs.entries()[0], 1u);
    EXPECT_EQ(rs.entries()[1], 3u);
}

TEST(ReservationStations, RemoveIf)
{
    ReservationStations rs(8);
    for (unsigned i = 0; i < 8; ++i)
        rs.insert(i);
    rs.removeIf([](unsigned slot) { return slot % 2 == 0; });
    ASSERT_EQ(rs.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(rs.entries()[i], 2 * i + 1);
}

}  // namespace
}  // namespace stackscope::uarch
