/** Tests for the reorder buffer and reservation stations. */

#include "uarch/rob.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "uarch/reservation_station.hpp"

namespace stackscope::uarch {
namespace {

InflightInstr
instr(SeqNum seq)
{
    InflightInstr e;
    e.seq = seq;
    return e;
}

TEST(Rob, PushPopFifoOrder)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_EQ(rob.head().seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head().seq, 2u);
    rob.popHead();
    rob.popHead();
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, FullAndWraparound)
{
    Rob rob(3);
    rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    EXPECT_TRUE(rob.full());
    rob.popHead();
    EXPECT_FALSE(rob.full());
    const unsigned slot = rob.push(instr(4));  // reuses slot 0
    EXPECT_EQ(slot, 0u);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 2u);
}

TEST(Rob, HoldsValidatesSeqAndLiveness)
{
    Rob rob(3);
    const unsigned s1 = rob.push(instr(10));
    EXPECT_TRUE(rob.holds(s1, 10));
    EXPECT_FALSE(rob.holds(s1, 11));
    rob.popHead();
    EXPECT_FALSE(rob.holds(s1, 10));
    // Slot reuse: new entry, new seq.
    const unsigned s2 = rob.push(instr(20));
    EXPECT_EQ(s2, (s1 + 1) % 3);
    rob.push(instr(30));
    rob.push(instr(40));  // this lands in the recycled slot s1
    EXPECT_TRUE(rob.holds(s1, 40));
    EXPECT_FALSE(rob.holds(s1, 10));
}

TEST(Rob, SquashYoungerTruncatesTail)
{
    Rob rob(8);
    std::vector<unsigned> slots;
    for (SeqNum s = 1; s <= 6; ++s)
        slots.push_back(rob.push(instr(s)));
    std::vector<SeqNum> squashed;
    rob.squashYounger(slots[2],
                      [&](InflightInstr &e) { squashed.push_back(e.seq); });
    ASSERT_EQ(squashed.size(), 3u);
    EXPECT_EQ(squashed[0], 4u);
    EXPECT_EQ(squashed[1], 5u);
    EXPECT_EQ(squashed[2], 6u);
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_TRUE(rob.isLiveSlot(slots[2]));
    EXPECT_FALSE(rob.isLiveSlot(slots[3]));
}

TEST(Rob, SquashThenRefill)
{
    Rob rob(4);
    const unsigned s0 = rob.push(instr(1));
    rob.push(instr(2));
    rob.push(instr(3));
    rob.squashYounger(s0, [](InflightInstr &) {});
    EXPECT_EQ(rob.size(), 1u);
    rob.push(instr(10));
    rob.push(instr(11));
    rob.push(instr(12));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().seq, 1u);
}

TEST(Rob, ForEachVisitsAgeOrder)
{
    Rob rob(4);
    rob.push(instr(5));
    rob.push(instr(6));
    rob.popHead();
    rob.push(instr(7));
    rob.push(instr(8));  // wraps
    std::vector<SeqNum> seen;
    rob.forEach([&](const InflightInstr &e) { seen.push_back(e.seq); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 6u);
    EXPECT_EQ(seen[1], 7u);
    EXPECT_EQ(seen[2], 8u);
}

TEST(ReservationStations, CapacityAndOrder)
{
    ReservationStations rs(3);
    EXPECT_TRUE(rs.empty());
    rs.insert(7);
    rs.insert(3);
    rs.insert(9);
    EXPECT_TRUE(rs.full());
    // Age order is insertion order.
    EXPECT_EQ(rs.entries()[0], 7u);
    EXPECT_EQ(rs.entries()[1], 3u);
    EXPECT_EQ(rs.entries()[2], 9u);
}

TEST(ReservationStations, RemovePreservesOrder)
{
    ReservationStations rs(4);
    rs.insert(1);
    rs.insert(2);
    rs.insert(3);
    rs.remove(2);
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_EQ(rs.entries()[0], 1u);
    EXPECT_EQ(rs.entries()[1], 3u);
}

TEST(ReservationStations, RemoveIf)
{
    ReservationStations rs(8);
    for (unsigned i = 0; i < 8; ++i)
        rs.insert(i);
    rs.removeIf([](unsigned slot) { return slot % 2 == 0; });
    ASSERT_EQ(rs.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(rs.entries()[i], 2 * i + 1);
}

TEST(Rob, PopHeadsRetiresSpanAtOnce)
{
    Rob rob(4);
    for (SeqNum s = 1; s <= 4; ++s)
        rob.push(instr(s));
    rob.popHeads(3);
    ASSERT_EQ(rob.size(), 1u);
    EXPECT_EQ(rob.head().seq, 4u);
    // Wraparound: refill past the physical end, then pop across it.
    rob.push(instr(5));
    rob.push(instr(6));
    rob.popHeads(0);  // no-op
    EXPECT_EQ(rob.size(), 3u);
    rob.popHeads(2);
    EXPECT_EQ(rob.head().seq, 6u);
    rob.popHeads(1);
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, PopHeadsMatchesRepeatedPopHead)
{
    Rob a(8);
    Rob b(8);
    for (SeqNum s = 0; s < 8; ++s) {
        a.push(instr(s));
        b.push(instr(s));
    }
    a.popHeads(5);
    for (unsigned i = 0; i < 5; ++i)
        b.popHead();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.headSlot(), b.headSlot());
    EXPECT_EQ(a.head().seq, b.head().seq);
}

TEST(ReservationStations, RemoveAtPositionsCompactsLikeRemoveIf)
{
    // removeAtPositions (the issue sweep) must leave the same state as
    // the generic predicate removal: same survivors in the same order,
    // with position-parallel state moved along and the pos map intact.
    ReservationStations rs(8);
    for (unsigned i = 0; i < 8; ++i)
        rs.insert(i);
    const std::uint32_t now_key = rs.nowKey(100);
    for (unsigned pos = 0; pos < 8; ++pos)
        rs.park(pos, 200 + pos, static_cast<std::uint8_t>(pos));

    rs.removeAtPositions({1, 4, 5, 7});
    ASSERT_EQ(rs.size(), 4u);
    const unsigned kept[] = {0, 2, 3, 6};
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(rs.entries()[i], kept[i]);
        EXPECT_EQ(rs.boundAt(i), Cycle{200} + kept[i]);
        EXPECT_EQ(rs.blameAt(i), kept[i]);
        EXPECT_EQ(rs.keys()[i], 200u + kept[i] - 0u);
    }
    // Tail keys behind the new size are restored to the padding sentinel
    // so the SIMD scan never sees a stale due lane.
    for (unsigned i = 4; i < 8; ++i)
        EXPECT_EQ(rs.keys()[i], simd::kNeverKey);
    // The pos map: removed slots are gone (rearm is a no-op), survivors
    // re-point at their compacted positions.
    EXPECT_FALSE(rs.rearmSlot(4));
    EXPECT_TRUE(rs.rearmSlot(6));
    EXPECT_EQ(rs.keys()[3], 0u);
    EXPECT_EQ(rs.boundAt(3), 0u);
    (void)now_key;
}

TEST(ReservationStations, TagsFollowCompaction)
{
    ReservationStations rs(6);
    for (unsigned i = 0; i < 6; ++i)
        rs.insert(i, i == 2 || i == 5 ? 1 : 0);
    EXPECT_EQ(rs.tags()[2], 1u);
    rs.removeAtPositions({0, 3});
    // Survivors 1, 2, 4, 5: tags move with their entries.
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs.tags()[0], 0u);  // slot 1
    EXPECT_EQ(rs.tags()[1], 1u);  // slot 2
    EXPECT_EQ(rs.tags()[2], 0u);  // slot 4
    EXPECT_EQ(rs.tags()[3], 1u);  // slot 5
    rs.removeIf([](unsigned slot) { return slot == 2; });
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_EQ(rs.tags()[0], 0u);  // slot 1
    EXPECT_EQ(rs.tags()[1], 0u);  // slot 4
    EXPECT_EQ(rs.tags()[2], 1u);  // slot 5
}

TEST(ReservationStations, KeySaturatesDownwardAndRebases)
{
    ReservationStations rs(2);
    rs.insert(0);
    rs.insert(1);
    EXPECT_EQ(rs.nowKey(0), 0u);

    // A parked-forever entry maps to the sentinel and round-trips to
    // kNeverCycle (excluded from the wake minimum by construction).
    rs.park(0, kNeverCycle, 0);
    EXPECT_EQ(rs.keys()[0], simd::kNeverKey);
    EXPECT_EQ(rs.keyToCycle(rs.keys()[0]), kNeverCycle);

    // A finite bound beyond the key range saturates one *below* the
    // sentinel: the stored key is earlier than the truth, so the walk
    // re-evaluates early rather than sleeping past the bound.
    const Cycle far = Cycle{1} << 31;
    rs.park(1, far, 0);
    EXPECT_EQ(rs.keys()[1], simd::kNeverKey - 1);
    EXPECT_LT(rs.keyToCycle(rs.keys()[1]), far);

    // Once `now` drifts past the rebase threshold, the epoch moves and
    // every key is rewritten relative to it.
    const Cycle drift = Cycle{1} << 30;
    EXPECT_EQ(rs.nowKey(drift), 0u);  // rebased: epoch == now
    EXPECT_EQ(rs.keys()[0], simd::kNeverKey);       // still never
    EXPECT_EQ(rs.keys()[1], static_cast<std::uint32_t>(far - drift));
    EXPECT_EQ(rs.keyToCycle(rs.keys()[1]), far);

    // A bound at or before the new epoch clamps to key 0 ("due now").
    rs.park(0, drift - 5, 0);
    EXPECT_EQ(rs.keys()[0], 0u);
}

}  // namespace
}  // namespace stackscope::uarch
