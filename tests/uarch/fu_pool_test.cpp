/** Tests for the functional-unit / issue-port pool. */

#include "uarch/fu_pool.hpp"

#include <gtest/gtest.h>

namespace stackscope::uarch {
namespace {

using trace::InstrClass;

FuPoolParams
params()
{
    FuPoolParams p;
    p.alu_units = 2;
    p.mul_units = 1;
    p.div_units = 1;
    p.load_ports = 2;
    p.store_ports = 1;
    p.branch_units = 1;
    p.fp_units = 1;
    p.vpu_units = 2;
    p.lat_mul = 3;
    p.lat_div = 20;
    return p;
}

TEST(FuPool, PerCyclePortLimits)
{
    FuPool fu(params());
    fu.beginCycle(0);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAlu));
    fu.issue(InstrClass::kAlu, 0);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAlu));
    fu.issue(InstrClass::kAlu, 0);
    EXPECT_FALSE(fu.canIssue(InstrClass::kAlu));  // 2 ALU units used
    // Other groups unaffected.
    EXPECT_TRUE(fu.canIssue(InstrClass::kLoad));
    fu.beginCycle(1);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAlu));  // new cycle resets ports
}

TEST(FuPool, UnpipelinedDividerBlocksAcrossCycles)
{
    FuPool fu(params());
    fu.beginCycle(0);
    ASSERT_TRUE(fu.canIssue(InstrClass::kAluDiv));
    fu.issue(InstrClass::kAluDiv, 0);
    // Divider busy for lat_div cycles.
    fu.beginCycle(5);
    EXPECT_FALSE(fu.canIssue(InstrClass::kAluDiv));
    fu.beginCycle(20);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAluDiv));
}

TEST(FuPool, MultiplierIsPipelined)
{
    FuPool fu(params());
    fu.beginCycle(0);
    fu.issue(InstrClass::kAluMul, 0);
    fu.beginCycle(1);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAluMul));  // pipelined
}

TEST(FuPool, Latencies)
{
    FuPool fu(params());
    EXPECT_EQ(fu.latency(InstrClass::kAlu), 1u);
    EXPECT_EQ(fu.latency(InstrClass::kAluMul), 3u);
    EXPECT_EQ(fu.latency(InstrClass::kAluDiv), 20u);
    EXPECT_EQ(fu.latency(InstrClass::kVecFma), params().lat_vec_fma);
}

TEST(FuPool, IdealSingleCycleAlu)
{
    FuPoolParams p = params();
    p.ideal_single_cycle_alu = true;
    FuPool fu(p);
    EXPECT_EQ(fu.latency(InstrClass::kAluMul), 1u);
    EXPECT_EQ(fu.latency(InstrClass::kAluDiv), 1u);
    EXPECT_EQ(fu.latency(InstrClass::kFpMul), 1u);
    EXPECT_EQ(fu.latency(InstrClass::kVecFma), 1u);
    // Divider behaves as pipelined.
    fu.beginCycle(0);
    fu.issue(InstrClass::kAluDiv, 0);
    fu.beginCycle(1);
    EXPECT_TRUE(fu.canIssue(InstrClass::kAluDiv));
}

TEST(FuPool, VpuUsageSplit)
{
    FuPool fu(params());
    fu.beginCycle(0);
    fu.issue(InstrClass::kVecFma, 0);
    fu.issue(InstrClass::kVecInt, 0);
    EXPECT_EQ(fu.vfpIssuedThisCycle(), 1u);
    EXPECT_EQ(fu.nonVfpOnVpuThisCycle(), 1u);
    EXPECT_FALSE(fu.canIssue(InstrClass::kVecAdd));  // both VPUs used
    fu.beginCycle(1);
    EXPECT_EQ(fu.vfpIssuedThisCycle(), 0u);
    EXPECT_EQ(fu.nonVfpOnVpuThisCycle(), 0u);
}

TEST(FuPool, BroadcastRunsOnLoadPorts)
{
    // MKL-style broadcasts have a memory operand: they occupy a load port
    // and leave the vector FP units to the FMAs.
    FuPool fu(params());
    fu.beginCycle(0);
    fu.issue(InstrClass::kVecBroadcast, 0);
    EXPECT_EQ(fu.vfpIssuedThisCycle(), 0u);
    EXPECT_EQ(fu.nonVfpOnVpuThisCycle(), 0u);
    fu.issue(InstrClass::kVecBroadcast, 0);
    EXPECT_FALSE(fu.canIssue(InstrClass::kLoad));  // 2 load ports used
    EXPECT_TRUE(fu.canIssue(InstrClass::kVecFma));
}

TEST(FuPool, VecIntCountsAsNonVfpOnVpu)
{
    FuPool fu(params());
    fu.beginCycle(0);
    fu.issue(InstrClass::kVecInt, 0);
    EXPECT_EQ(fu.vfpIssuedThisCycle(), 0u);
    EXPECT_EQ(fu.nonVfpOnVpuThisCycle(), 1u);
}

TEST(FuPool, DivAndFpDivShareDividers)
{
    FuPool fu(params());
    fu.beginCycle(0);
    fu.issue(InstrClass::kAluDiv, 0);
    EXPECT_FALSE(fu.canIssue(InstrClass::kFpDiv));
}

}  // namespace
}  // namespace stackscope::uarch
