/** Tests for the TLB model and its integration with the hierarchy. */

#include "uarch/tlb.hpp"

#include <gtest/gtest.h>

#include "uarch/cache_hierarchy.hpp"

namespace stackscope::uarch {
namespace {

TlbParams
smallTlb()
{
    TlbParams p;
    p.enable = true;
    p.entries = 16;  // 2 sets x 8 ways
    p.page_bytes = 4096;
    p.miss_latency = 9;
    return p;
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb(smallTlb());
    EXPECT_EQ(tlb.access(0x1000), 9u);  // cold miss
    EXPECT_EQ(tlb.access(0x1000), 0u);  // same page hits
    EXPECT_EQ(tlb.access(0x1fff), 0u);  // same page, different offset
    EXPECT_EQ(tlb.access(0x2000), 9u);  // next page misses
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.accesses(), 4u);
}

TEST(Tlb, DisabledIsFree)
{
    TlbParams p = smallTlb();
    p.enable = false;
    Tlb tlb(p);
    for (Addr a = 0; a < 100; ++a)
        EXPECT_EQ(tlb.access(a * 1'000'000), 0u);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(smallTlb());  // 2 sets, pages alternate sets by parity
    // Fill set 0 (even pages) beyond its 8 ways.
    for (Addr page = 0; page < 9; ++page)
        (void)tlb.access(page * 2 * 4096);
    // Page 0 (the LRU) was evicted; page 2..8 still resident.
    EXPECT_EQ(tlb.access(0), 9u);
    EXPECT_EQ(tlb.access(2 * 2 * 4096), 0u);
}

TEST(Tlb, CoverageMatchesEntries)
{
    // A working set within entries * page size never misses after warmup.
    Tlb tlb(smallTlb());
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr page = 0; page < 16; ++page)
            (void)tlb.access(page * 4096);
    }
    EXPECT_EQ(tlb.misses(), 16u);  // only the cold pass
}

TEST(Tlb, FlushForgetsEverything)
{
    Tlb tlb(smallTlb());
    (void)tlb.access(0x5000);
    tlb.flush();
    EXPECT_EQ(tlb.access(0x5000), 9u);
}

TEST(TlbIntegration, WalkDelaysLoad)
{
    HierarchyParams p;
    p.prefetch.enable = false;
    p.dtlb = smallTlb();
    p.perfect_icache = true;
    CacheHierarchy h(p);
    // Warm the cache line but flush... simplest: first access pays TLB +
    // memory; second access same page+line pays nothing; a new page in a
    // warmed line region pays the walk only.
    (void)h.load(0x10000, 0);
    const AccessResult hit = h.load(0x10000, 1000);
    EXPECT_TRUE(hit.l1_hit);
    (void)h.load(0x20000, 2000);             // warm line + page
    const AccessResult walk_hit = h.load(0x20020, 3000);  // same line
    EXPECT_TRUE(walk_hit.l1_hit);            // page cached now
    EXPECT_EQ(walk_hit.done, 3004u);
}

TEST(TlbIntegration, PerfectDcacheBypassesDtlb)
{
    HierarchyParams p;
    p.dtlb = smallTlb();
    p.perfect_dcache = true;
    CacheHierarchy h(p);
    for (Addr a = 0; a < 100; ++a) {
        const AccessResult r = h.load(a * (1 << 20), 10);
        EXPECT_EQ(r.done, 10u + p.l1_lat);
    }
    EXPECT_EQ(h.dtlbMisses(), 0u);
}

TEST(TlbIntegration, WalkDelayedL1HitReportsAsMiss)
{
    // The pipeline must know the access is slow so the wait is blamed on
    // the Dcache(+TLB) component.
    HierarchyParams p;
    p.prefetch.enable = false;
    p.dtlb = smallTlb();
    CacheHierarchy h(p);
    (void)h.load(0x40000, 0);  // line + page cold
    // Evict the page by thrashing its TLB set (even pages, 8 ways) with
    // addresses that land in *different* L1 sets, so the cache line stays
    // resident while the translation is lost.
    for (Addr page = 1; page <= 8; ++page)
        (void)h.load(0x40000 + page * 2 * 4096 + page * 64, 100);
    const AccessResult r = h.load(0x40000, 1000);
    EXPECT_FALSE(r.l1_hit);  // reported slow
    EXPECT_EQ(r.done, 1000u + 9 + p.l1_lat);
}

}  // namespace
}  // namespace stackscope::uarch
