/** Tests for the hybrid branch predictor. */

#include "uarch/branch_predictor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace stackscope::uarch {
namespace {

TEST(BranchPredictor, PerfectModeNeverMisses)
{
    BranchPredictorParams p;
    p.perfect = true;
    BranchPredictor bp(p);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_TRUE(bp.predictAndUpdate(0x1000 + rng.below(64) * 4,
                                        rng.chance(0.5)));
    EXPECT_EQ(bp.mispredictions(), 0u);
    EXPECT_EQ(bp.predictions(), 10000u);
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp({});
    for (int i = 0; i < 1000; ++i)
        (void)bp.predictAndUpdate(0x4000, true);
    EXPECT_LT(bp.missRate(), 0.01);
}

TEST(BranchPredictor, LearnsPerPcBiases)
{
    BranchPredictor bp({});
    // Two branches with opposite fixed behaviour.
    for (int i = 0; i < 2000; ++i) {
        (void)bp.predictAndUpdate(0x4000, true);
        (void)bp.predictAndUpdate(0x5000, false);
    }
    EXPECT_LT(bp.missRate(), 0.01);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... is perfectly predictable from global history.
    BranchPredictor bp({});
    bool taken = false;
    std::uint64_t warm_misses = 0;
    for (int i = 0; i < 4000; ++i) {
        taken = !taken;
        if (!bp.predictAndUpdate(0x6000, taken) && i >= 2000)
            ++warm_misses;
    }
    EXPECT_LT(warm_misses, 50u);
}

TEST(BranchPredictor, RandomBranchesNear50Percent)
{
    BranchPredictor bp({});
    Rng rng(5);
    for (int i = 0; i < 50000; ++i)
        (void)bp.predictAndUpdate(0x7000, rng.chance(0.5));
    EXPECT_GT(bp.missRate(), 0.4);
    EXPECT_LT(bp.missRate(), 0.6);
}

TEST(BranchPredictor, MixedPopulationIntermediateAccuracy)
{
    BranchPredictor bp({});
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const Addr pc = 0x1000 + rng.below(500) * 8;
        const bool random_branch = pc % 40 == 0;  // ~1 in 5 PCs
        const bool bias = (pc >> 3) & 1;
        const bool taken = random_branch ? rng.chance(0.5)
                                         : rng.chance(bias ? 0.95 : 0.05);
        (void)bp.predictAndUpdate(pc, taken);
    }
    EXPECT_GT(bp.missRate(), 0.03);
    EXPECT_LT(bp.missRate(), 0.25);
}

TEST(BranchPredictor, StatsAreConsistent)
{
    BranchPredictor bp({});
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        (void)bp.predictAndUpdate(0x1000, rng.chance(0.7));
    EXPECT_EQ(bp.predictions(), 1000u);
    EXPECT_LE(bp.mispredictions(), bp.predictions());
    EXPECT_NEAR(bp.missRate(),
                static_cast<double>(bp.mispredictions()) / 1000.0, 1e-12);
}

}  // namespace
}  // namespace stackscope::uarch
