/** Tests for the timed cache hierarchy: latencies, MSHRs, bandwidth,
 *  unified-L2 coupling and idealization knobs. */

#include "uarch/cache_hierarchy.hpp"

#include <gtest/gtest.h>

namespace stackscope::uarch {
namespace {

HierarchyParams
smallParams()
{
    HierarchyParams p;
    p.l1i = {4 << 10, 4, 64};
    p.l1d = {4 << 10, 4, 64};
    p.l2 = {16 << 10, 8, 64};
    p.l1_lat = 4;
    p.l2_lat = 12;
    p.l2_mshrs = 2;
    p.prefetch.enable = false;
    // TLBs off: these tests isolate the cache/MSHR/bandwidth arithmetic
    // (tlb_test.cpp covers the TLBs).
    p.itlb.enable = false;
    p.dtlb.enable = false;
    p.uncore.l3 = {64 << 10, 8, 64};
    p.uncore.l3_lat = 30;
    p.uncore.mem_lat = 100;
    p.uncore.mem_queue_slots = 2;
    p.uncore.mem_service = 10;
    return p;
}

TEST(CacheHierarchy, L1HitLatency)
{
    CacheHierarchy h(smallParams());
    (void)h.load(0x1000, 0);           // cold miss fills L1
    const AccessResult r = h.load(0x1000, 500);
    EXPECT_TRUE(r.l1_hit);
    EXPECT_EQ(r.done, 504u);
    EXPECT_EQ(r.level, 1u);
}

TEST(CacheHierarchy, ColdMissGoesToMemory)
{
    CacheHierarchy h(smallParams());
    const AccessResult r = h.load(0x1000, 0);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_EQ(r.level, 4u);
    // l2_lat (12) + l3_lat (30) + mem_lat (100) = 142.
    EXPECT_EQ(r.done, 142u);
}

TEST(CacheHierarchy, L2HitLatency)
{
    HierarchyParams p = smallParams();
    CacheHierarchy h(p);
    (void)h.load(0x1000, 0);
    // Evict from tiny L1 (4 KB, 4-way, 16 sets): fill 4 more lines in the
    // same set (stride = 16 sets * 64 B = 1 KB).
    for (int i = 1; i <= 4; ++i)
        (void)h.load(0x1000 + i * 1024, 1000 + i);
    const AccessResult r = h.load(0x1000, 5000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_EQ(r.level, 2u);
    EXPECT_EQ(r.done, 5012u);
}

TEST(CacheHierarchy, L3HitAfterL2Eviction)
{
    HierarchyParams p = smallParams();
    CacheHierarchy h(p);
    (void)h.load(0x1000, 0);
    // Thrash L2 set: L2 has 32 sets (16KB/64/8); same-set stride = 2 KB.
    for (int i = 1; i <= 8; ++i)
        (void)h.load(0x1000 + i * 2048, 1000 + i * 200);
    const AccessResult r = h.load(0x1000, 50000);
    EXPECT_EQ(r.level, 3u);
    EXPECT_EQ(r.done, 50000u + 12 + 30);
}

TEST(CacheHierarchy, MshrContentionDelaysMisses)
{
    HierarchyParams p = smallParams();
    p.uncore.mem_queue_slots = 8;  // isolate the MSHR effect
    p.uncore.mem_service = 1;
    CacheHierarchy h(p);
    // Two MSHRs: the first two concurrent L2 misses proceed, the third
    // waits for an MSHR to free up.
    const AccessResult a = h.load(0x10000, 0);
    const AccessResult b = h.load(0x20000, 0);
    const AccessResult c = h.load(0x30000, 0);
    EXPECT_EQ(a.done, 142u);
    EXPECT_EQ(b.done, 142u);
    EXPECT_GT(c.done, 142u);  // queued behind a or b
    EXPECT_GT(h.mshrWaitCycles(), 0u);
}

TEST(CacheHierarchy, MemoryBandwidthSerializes)
{
    HierarchyParams p = smallParams();
    p.l2_mshrs = 16;  // isolate the memory-queue effect
    p.uncore.mem_queue_slots = 1;
    p.uncore.mem_service = 50;
    CacheHierarchy h(p);
    const AccessResult a = h.load(0x10000, 0);
    const AccessResult b = h.load(0x20000, 0);
    EXPECT_EQ(a.done, 142u);
    EXPECT_EQ(b.done, a.done + 50);  // one slot, 50-cycle service
}

TEST(CacheHierarchy, PerfectDcacheAlwaysL1)
{
    HierarchyParams p = smallParams();
    p.perfect_dcache = true;
    CacheHierarchy h(p);
    for (Addr a = 0; a < 100 * 4096; a += 4096) {
        const AccessResult r = h.load(a, 10);
        EXPECT_TRUE(r.l1_hit);
        EXPECT_EQ(r.done, 14u);
    }
}

TEST(CacheHierarchy, PerfectIcacheAlwaysL1)
{
    HierarchyParams p = smallParams();
    p.perfect_icache = true;
    CacheHierarchy h(p);
    const AccessResult r = h.ifetch(0x77777740, 3);
    EXPECT_TRUE(r.l1_hit);
    EXPECT_EQ(r.done, 7u);
}

TEST(CacheHierarchy, UnifiedL2CouplesInstructionsAndData)
{
    // The cactus effect (Fig. 3(b)): instruction lines occupy the unified
    // L2 and evict data. With a perfect Icache, the same data stays in L2.
    auto run = [](bool perfect_icache) {
        HierarchyParams p = smallParams();
        p.perfect_icache = perfect_icache;
        CacheHierarchy h(p);
        // Load a data working set that exactly fits L2.
        for (Addr a = 0; a < 16 << 10; a += 64)
            (void)h.load(0x100000 + a, 0);
        // Stream a large code footprint through L2.
        for (Addr a = 0; a < 64 << 10; a += 64)
            (void)h.ifetch(0x400000 + a, 1000);
        // Re-touch the data: count how many still hit L2 or closer.
        std::uint64_t mem_level = 0;
        for (Addr a = 0; a < 16 << 10; a += 64) {
            if (h.load(0x100000 + a, 100000).level >= 3)
                ++mem_level;
        }
        return mem_level;
    };
    const std::uint64_t evicted_with_code = run(false);
    const std::uint64_t evicted_without_code = run(true);
    EXPECT_GT(evicted_with_code, evicted_without_code + 50);
}

TEST(CacheHierarchy, PrefetcherFillsAhead)
{
    HierarchyParams p = smallParams();
    p.prefetch.enable = true;
    p.prefetch.degree = 4;
    p.prefetch.confidence_threshold = 2;
    p.l2_mshrs = 16;
    CacheHierarchy h(p);
    // Stride-64 stream: after a few misses the prefetcher runs ahead and
    // later lines hit L2 instead of memory.
    Cycle t = 0;
    unsigned mem_hits = 0;
    for (int i = 0; i < 64; ++i) {
        const AccessResult r = h.load(0x200000 + i * 64, t);
        t += 200;
        mem_hits += r.level == 4;
    }
    EXPECT_LT(mem_hits, 20u);
    EXPECT_GT(h.prefetchesIssued(), 0u);
}

TEST(CacheHierarchy, SharedUncoreContention)
{
    // Two hierarchies sharing one uncore contend for memory slots.
    HierarchyParams p = smallParams();
    p.uncore.mem_queue_slots = 1;
    p.uncore.mem_service = 40;
    Uncore shared(p.uncore);
    CacheHierarchy h1(p, &shared);
    CacheHierarchy h2(p, &shared);
    const AccessResult a = h1.load(0x10000, 0);
    const AccessResult b = h2.load(0x90000, 0);
    EXPECT_EQ(a.done, 142u);
    EXPECT_EQ(b.done, a.done + 40);
}

TEST(CacheHierarchy, StoreFillsTags)
{
    CacheHierarchy h(smallParams());
    h.store(0x3000, 0);
    const AccessResult r = h.load(0x3000, 1000);
    EXPECT_TRUE(r.l1_hit);
}

}  // namespace
}  // namespace stackscope::uarch
