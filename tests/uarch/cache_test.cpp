/** Unit tests for the set-associative tag cache. */

#include "uarch/cache.hpp"

#include <gtest/gtest.h>

namespace stackscope::uarch {
namespace {

TEST(Cache, MissThenHit)
{
    Cache c({1024, 2, 64});
    EXPECT_FALSE(c.lookup(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    // Same line, different offset.
    EXPECT_TRUE(c.lookup(0x103f));
    // Next line misses.
    EXPECT_FALSE(c.lookup(0x1040));
}

TEST(Cache, GeometryDerivation)
{
    Cache c({32 << 10, 8, 64});
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.assoc(), 8u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(Cache, LruEviction)
{
    // 2-way, line 64, 2 sets (256 bytes).
    Cache c({256, 2, 64});
    // Three lines mapping to set 0: line addresses 0, 2, 4 (even lines).
    c.insert(0 * 64);
    c.insert(2 * 64);
    EXPECT_TRUE(c.lookup(0 * 64));   // touch 0 -> MRU
    c.insert(4 * 64);                // evicts line 2 (LRU)
    EXPECT_TRUE(c.lookup(0 * 64));
    EXPECT_FALSE(c.lookup(2 * 64));
    EXPECT_TRUE(c.lookup(4 * 64));
}

TEST(Cache, LookupWithoutLruUpdate)
{
    Cache c({256, 2, 64});
    c.insert(0 * 64);
    c.insert(2 * 64);
    // Peek at line 0 without promoting it.
    EXPECT_TRUE(c.lookup(0 * 64, /*update_lru=*/false));
    c.insert(4 * 64);  // line 0 is still LRU -> evicted
    EXPECT_FALSE(c.lookup(0 * 64));
    EXPECT_TRUE(c.lookup(2 * 64));
}

TEST(Cache, InsertExistingTouches)
{
    Cache c({256, 2, 64});
    c.insert(0 * 64);
    c.insert(2 * 64);
    c.insert(0 * 64);  // already present: becomes MRU
    c.insert(4 * 64);  // evicts 2
    EXPECT_TRUE(c.lookup(0 * 64));
    EXPECT_FALSE(c.lookup(2 * 64));
}

TEST(Cache, Invalidate)
{
    Cache c({1024, 2, 64});
    c.insert(0x2000);
    EXPECT_TRUE(c.lookup(0x2000));
    c.invalidate(0x2000);
    EXPECT_FALSE(c.lookup(0x2000));
    // Invalidating a missing line is a no-op.
    c.invalidate(0xdead00);
}

TEST(Cache, InvalidateAll)
{
    Cache c({1024, 2, 64});
    c.insert(0x0);
    c.insert(0x40);
    c.invalidateAll();
    EXPECT_FALSE(c.lookup(0x0));
    EXPECT_FALSE(c.lookup(0x40));
}

TEST(Cache, StatsCountLookupsAndMisses)
{
    Cache c({1024, 2, 64});
    (void)c.lookup(0x0);  // miss
    c.insert(0x0);
    (void)c.lookup(0x0);  // hit
    (void)c.lookup(0x40);  // miss
    EXPECT_EQ(c.lookups(), 3u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, SetsAreIndependent)
{
    // 2 sets, 1 way: lines alternate sets.
    Cache c({128, 1, 64});
    c.insert(0 * 64);  // set 0
    c.insert(1 * 64);  // set 1
    EXPECT_TRUE(c.lookup(0 * 64));
    EXPECT_TRUE(c.lookup(1 * 64));
    c.insert(2 * 64);  // set 0 again: evicts line 0 only
    EXPECT_FALSE(c.lookup(0 * 64));
    EXPECT_TRUE(c.lookup(1 * 64));
}

}  // namespace
}  // namespace stackscope::uarch
