/** Tests for the stride prefetcher. */

#include "uarch/prefetcher.hpp"

#include <gtest/gtest.h>

namespace stackscope::uarch {
namespace {

PrefetcherParams
params(unsigned degree = 4, unsigned conf = 2)
{
    PrefetcherParams p;
    p.enable = true;
    p.degree = degree;
    p.confidence_threshold = conf;
    return p;
}

TEST(StridePrefetcher, NoPrefetchBeforeConfidence)
{
    StridePrefetcher pf(params());
    EXPECT_TRUE(pf.onMiss(0x1000).empty());
    EXPECT_TRUE(pf.onMiss(0x1040).empty());  // first stride observation
    // Second confirmation reaches the threshold.
    EXPECT_FALSE(pf.onMiss(0x1080).empty());
}

TEST(StridePrefetcher, PrefetchesDegreeLinesAhead)
{
    StridePrefetcher pf(params(3));
    (void)pf.onMiss(0x1000);
    (void)pf.onMiss(0x1040);
    const auto targets = pf.onMiss(0x1080);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0], 0x10c0u);
    EXPECT_EQ(targets[1], 0x1100u);
    EXPECT_EQ(targets[2], 0x1140u);
}

TEST(StridePrefetcher, DetectsNegativeStride)
{
    StridePrefetcher pf(params(2));
    (void)pf.onMiss(0x5000);
    (void)pf.onMiss(0x4f80);
    const auto targets = pf.onMiss(0x4f00);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0], 0x4e80u);
    EXPECT_EQ(targets[1], 0x4e00u);
}

TEST(StridePrefetcher, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(params());
    (void)pf.onMiss(0x1000);
    (void)pf.onMiss(0x1040);
    (void)pf.onMiss(0x1080);          // confident now
    EXPECT_TRUE(pf.onMiss(0x9000).empty());   // stride broken
    EXPECT_TRUE(pf.onMiss(0x9040).empty());   // rebuilding
    EXPECT_FALSE(pf.onMiss(0x9080).empty());  // confident again
}

TEST(StridePrefetcher, DisabledIssuesNothing)
{
    PrefetcherParams p = params();
    p.enable = false;
    StridePrefetcher pf(p);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(pf.onMiss(0x1000 + i * 64).empty());
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(StridePrefetcher, IssuedCounterAccumulates)
{
    StridePrefetcher pf(params(4));
    (void)pf.onMiss(0x1000);
    (void)pf.onMiss(0x1040);
    (void)pf.onMiss(0x1080);
    (void)pf.onMiss(0x10c0);
    EXPECT_EQ(pf.issued(), 8u);
}

TEST(StridePrefetcher, ResetClearsState)
{
    StridePrefetcher pf(params());
    (void)pf.onMiss(0x1000);
    (void)pf.onMiss(0x1040);
    (void)pf.onMiss(0x1080);
    pf.reset();
    EXPECT_EQ(pf.issued(), 0u);
    EXPECT_TRUE(pf.onMiss(0x2000).empty());
    EXPECT_TRUE(pf.onMiss(0x2040).empty());
}

}  // namespace
}  // namespace stackscope::uarch
