/**
 * Tests for the report-diff regression gate: detection in both
 * directions, tolerance handling, watched host metrics and structural
 * mismatch errors.
 */

#include "obs/report_diff.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "runner/batch_runner.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::obs {
namespace {

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 10'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

/** One real single-core run, reused by every test in this file. */
const sim::SimResult &
baselineRun()
{
    static const sim::SimResult r = [] {
        return sim::simulate(sim::bdwConfig(), shortWorkload("gcc"), {});
    }();
    return r;
}

JsonValue
reportOf(const sim::SimResult &r, const char *label = "gcc/BDW")
{
    ReportBuilder report("test");
    report.add(label, {}, r);
    return parseJson(report.json());
}

TEST(DiffTolerance, ExceededUsesMaxOfAbsAndRel)
{
    const DiffTolerance tol{.abs = 0.01, .rel = 0.1};
    EXPECT_FALSE(tol.exceeded(1.0, 1.05));  // within 10% relative
    EXPECT_TRUE(tol.exceeded(1.0, 1.2));
    EXPECT_FALSE(tol.exceeded(0.0, 0.005));  // absolute floor near zero
    EXPECT_TRUE(tol.exceeded(0.0, 0.02));
    EXPECT_TRUE(tol.exceeded(1.2, 1.0));  // symmetric
}

TEST(DiffReports, IdenticalReportsAreOk)
{
    const JsonValue doc = reportOf(baselineRun());
    const ReportDiff diff = diffReports(doc, doc, DiffTolerance{});
    EXPECT_FALSE(diff.regression());
    EXPECT_TRUE(diff.regressions.empty());
    EXPECT_EQ(diff.jobs_compared, 1u);
    EXPECT_GT(diff.values_compared, 10u);  // cpi + 3 stacks + flops
    EXPECT_NE(renderDiff(diff).find("result: OK"), std::string::npos);
}

TEST(DiffReports, CpiRegressionDetectedInBothDirections)
{
    sim::SimResult worse = baselineRun();
    worse.cpi += 0.5;
    const JsonValue a = reportOf(baselineRun());
    const JsonValue b = reportOf(worse);

    const ReportDiff forward = diffReports(a, b, DiffTolerance{});
    ASSERT_TRUE(forward.regression());
    ASSERT_FALSE(forward.regressions.empty());
    EXPECT_EQ(forward.regressions[0].path, "cpi");
    EXPECT_GT(forward.regressions[0].delta, 0.0);
    EXPECT_NE(renderDiff(forward).find("result: REGRESSION"),
              std::string::npos);

    // An improvement beyond tolerance is still a difference — the gate
    // flags drift in either direction.
    const ReportDiff backward = diffReports(b, a, DiffTolerance{});
    ASSERT_TRUE(backward.regression());
    EXPECT_LT(backward.regressions[0].delta, 0.0);
}

TEST(DiffReports, StackComponentRegressionCarriesDottedPath)
{
    sim::SimResult worse = baselineRun();
    worse.cpi_stacks[static_cast<std::size_t>(stacks::Stage::kCommit)]
                    [stacks::CpiComponent::kDcache] += 0.25;
    const ReportDiff diff =
        diffReports(reportOf(baselineRun()), reportOf(worse),
                    DiffTolerance{});
    ASSERT_TRUE(diff.regression());
    ASSERT_EQ(diff.regressions.size(), 1u);
    EXPECT_EQ(diff.regressions[0].job, "gcc/BDW");
    EXPECT_EQ(diff.regressions[0].path.find("cpi_stacks."), 0u);
}

TEST(DiffReports, DeltaWithinToleranceIsOk)
{
    sim::SimResult nudged = baselineRun();
    nudged.cpi += 0.001;
    // 0.001 on a CPI of ~1 is inside the default 1% relative arm.
    const ReportDiff diff = diffReports(
        reportOf(baselineRun()), reportOf(nudged), DiffTolerance{});
    EXPECT_FALSE(diff.regression());
    // A tight tolerance turns the same delta into a regression.
    const ReportDiff tight =
        diffReports(reportOf(baselineRun()), reportOf(nudged),
                    DiffTolerance{.abs = 1e-9, .rel = 1e-9});
    EXPECT_TRUE(tight.regression());
}

JsonValue
reportWithMetrics(std::uint64_t runs)
{
    MetricsRegistry reg;
    Counter c = reg.counter("sim.runs_total");
    c.inc(runs);
    ReportBuilder report("test");
    report.add("gcc/BDW", {}, baselineRun());
    report.setHostMetrics(reg.snapshot());
    return parseJson(report.json());
}

TEST(DiffReports, HostMetricsAreInformationalUnlessWatched)
{
    const JsonValue a = reportWithMetrics(5);
    const JsonValue b = reportWithMetrics(500);
    const ReportDiff unwatched = diffReports(a, b, DiffTolerance{});
    EXPECT_FALSE(unwatched.regression());
    ASSERT_EQ(unwatched.host_metrics.size(), 1u);
    EXPECT_FALSE(unwatched.host_metrics[0].watched);
    EXPECT_DOUBLE_EQ(unwatched.host_metrics[0].delta, 495.0);

    const ReportDiff watched = diffReports(
        a, b, DiffTolerance{}, {{"sim.runs_total", DiffTolerance{}}});
    EXPECT_TRUE(watched.regression());
    EXPECT_TRUE(watched.host_metrics[0].watched);
    EXPECT_TRUE(watched.host_metrics[0].regression);
    EXPECT_NE(renderDiff(watched).find("watched host metrics:"),
              std::string::npos);

    // A generous per-watch tolerance lets the same delta pass.
    const ReportDiff loose = diffReports(
        a, b, DiffTolerance{},
        {{"sim.runs_total", DiffTolerance{.abs = 1000.0, .rel = 0.0}}});
    EXPECT_FALSE(loose.regression());
}

TEST(DiffReports, WatchingAbsentMetricIsUsageError)
{
    const JsonValue doc = reportOf(baselineRun());
    try {
        diffReports(doc, doc, DiffTolerance{},
                    {{"no.such_metric", DiffTolerance{}}});
        FAIL() << "expected kUsage";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    }
}

TEST(DiffReports, MismatchedJobLabelsAreUsageError)
{
    try {
        diffReports(reportOf(baselineRun(), "gcc/BDW"),
                    reportOf(baselineRun(), "mcf/BDW"), DiffTolerance{});
        FAIL() << "expected kUsage";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    }
}

TEST(DiffReports, SingleVersusMulticoreJobIsUsageError)
{
    const sim::MulticoreResult mc = sim::simulateMulticore(
        sim::bdwConfig(), shortWorkload("gcc"), 2, {});
    ReportBuilder multi("test");
    multi.add("gcc/BDW", {}, mc);
    try {
        diffReports(reportOf(baselineRun()), parseJson(multi.json()),
                    DiffTolerance{});
        FAIL() << "expected kUsage";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    }
}

/** A report with one completed and (optionally) one failed job. */
JsonValue
partialReport(runner::JobStatus second_status, const char *error = "boom")
{
    ReportBuilder report("test");
    report.add("good/BDW", {}, baselineRun());
    runner::JobOutcome failed;
    failed.label = "bad/BDW";
    failed.status = second_status;
    failed.attempts = 1;
    if (second_status == runner::JobStatus::kOk ||
        second_status == runner::JobStatus::kRetried)
        failed.single = baselineRun();
    else
        failed.error = error;
    report.add(failed, {}, 1);
    return parseJson(report.json());
}

TEST(DiffReports, CompletedVersusFailedJobIsStatusMismatch)
{
    // The candidate times out a job the baseline completed: that is lost
    // coverage and must gate, even though every surviving stack matches.
    const JsonValue a = partialReport(runner::JobStatus::kOk);
    const JsonValue b = partialReport(runner::JobStatus::kTimeout);
    const ReportDiff diff = diffReports(a, b, DiffTolerance{});
    EXPECT_TRUE(diff.regression());
    ASSERT_EQ(diff.status_mismatches.size(), 1u);
    EXPECT_EQ(diff.status_mismatches[0].job, "bad/BDW");
    EXPECT_EQ(diff.status_mismatches[0].a, "ok");
    EXPECT_EQ(diff.status_mismatches[0].b, "timeout");
    EXPECT_NE(renderDiff(diff).find("status mismatch"),
              std::string::npos);
}

TEST(DiffReports, OkVersusRetriedIsNotAMismatch)
{
    // ok and retried both mean "completed, usable stacks"; flakiness in
    // how many attempts it took must not fail a determinism gate.
    const JsonValue a = partialReport(runner::JobStatus::kOk);
    const JsonValue b = partialReport(runner::JobStatus::kRetried);
    const ReportDiff diff = diffReports(a, b, DiffTolerance{});
    EXPECT_FALSE(diff.regression());
    EXPECT_EQ(diff.jobs_compared, 2u);
}

TEST(DiffReports, IdenticallyFailedJobsCompareClean)
{
    const JsonValue a = partialReport(runner::JobStatus::kQuarantined);
    const JsonValue b = partialReport(runner::JobStatus::kQuarantined);
    const ReportDiff diff = diffReports(a, b, DiffTolerance{});
    EXPECT_FALSE(diff.regression());
    EXPECT_EQ(diff.jobs_failed_both, 1u);
    // Only the completed job contributed stack values.
    EXPECT_EQ(diff.jobs_compared, 2u);
    EXPECT_NE(renderDiff(diff).find("failed identically"),
              std::string::npos);
}

TEST(DiffReports, DifferentFailureStatusesAreAMismatch)
{
    const JsonValue a = partialReport(runner::JobStatus::kTimeout);
    const JsonValue b = partialReport(runner::JobStatus::kQuarantined);
    const ReportDiff diff = diffReports(a, b, DiffTolerance{});
    EXPECT_TRUE(diff.regression());
    ASSERT_EQ(diff.status_mismatches.size(), 1u);
    EXPECT_EQ(diff.status_mismatches[0].a, "timeout");
    EXPECT_EQ(diff.status_mismatches[0].b, "quarantined");
}

TEST(DiffReports, NonReportDocumentIsUsageError)
{
    const JsonValue good = reportOf(baselineRun());
    for (const char *bad :
         {"{}", "{\"schema\":\"something-else\",\"version\":2}",
          "{\"schema\":\"stackscope-report\",\"version\":99}"}) {
        try {
            diffReports(parseJson(bad), good, DiffTolerance{});
            FAIL() << "expected kUsage for " << bad;
        } catch (const StackscopeError &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kUsage) << bad;
        }
    }
}

}  // namespace
}  // namespace stackscope::obs
