/**
 * Adversarial-input tests for the JSON parser's nesting-depth guard: a
 * recursive-descent parser fed kilobytes of '[' must fail with a clean
 * usage error, not a stack-overflow crash. Depths at and below the bound
 * must keep parsing.
 */

#include "obs/json_parse.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace stackscope::obs {
namespace {

std::string
nestedArrays(std::size_t depth)
{
    std::string text;
    text.reserve(2 * depth + 1);
    text.append(depth, '[');
    text += '0';
    text.append(depth, ']');
    return text;
}

TEST(JsonParseDepth, AcceptsDepthAtTheLimit)
{
    const JsonValue v = parseJson(nestedArrays(kMaxJsonDepth));
    EXPECT_TRUE(v.isArray());
}

TEST(JsonParseDepth, RejectsDepthJustPastTheLimit)
{
    try {
        (void)parseJson(nestedArrays(kMaxJsonDepth + 1));
        FAIL() << "over-deep document accepted";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
        EXPECT_NE(e.describe().find("nesting depth"), std::string::npos)
            << e.describe();
    }
}

TEST(JsonParseDepth, SurvivesAdversarialBracketFlood)
{
    // 10k-deep '[' flood: without the guard this is a guaranteed
    // stack-exhaustion crash; with it, a structured error.
    EXPECT_THROW((void)parseJson(nestedArrays(10'000)), StackscopeError);
    // Unclosed flood (no values, no closers) must also fail cleanly.
    EXPECT_THROW((void)parseJson(std::string(10'000, '[')),
                 StackscopeError);
}

TEST(JsonParseDepth, ObjectNestingCountsTowardsTheLimit)
{
    std::string text;
    for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i)
        text += "{\"k\":";
    text += "null";
    for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i)
        text += '}';
    try {
        (void)parseJson(text);
        FAIL() << "over-deep object accepted";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    }
}

TEST(JsonParseDepth, MixedNestingWithinLimitParses)
{
    const JsonValue v =
        parseJson("{\"a\":[{\"b\":[[{\"c\":1}]]}]}");
    EXPECT_TRUE(v.isObject());
    EXPECT_NE(v.find("a"), nullptr);
}

}  // namespace
}  // namespace stackscope::obs
