/**
 * Tests for the host-side metrics registry: exact concurrent counting,
 * histogram bucket semantics, snapshot determinism and capacity limits.
 */

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace stackscope::obs {
namespace {

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.hits");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([c]() mutable {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (std::thread &w : workers)
        w.join();

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.counter("test.hits"), nullptr);
    EXPECT_EQ(snap.counter("test.hits")->value, kThreads * kPerThread);
    EXPECT_EQ(snap.counterOr("test.hits"), kThreads * kPerThread);
    EXPECT_EQ(snap.counterOr("test.absent", 7), 7u);
}

TEST(MetricsRegistry, RegistrationDeduplicatesByName)
{
    MetricsRegistry reg;
    Counter a = reg.counter("shared.count");
    Counter b = reg.counter("shared.count");
    a.inc(3);
    b.inc(4);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 7u);

    Gauge g1 = reg.gauge("shared.gauge");
    Gauge g2 = reg.gauge("shared.gauge");
    g1.set(1.5);
    EXPECT_DOUBLE_EQ(g2.get(), 1.5);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreNoOps)
{
    Counter c;
    Gauge g;
    Histogram h;
    c.inc();
    g.set(1.0);
    g.add(2.0);
    h.record(3.0);  // must not crash
    EXPECT_DOUBLE_EQ(g.get(), 0.0);
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreInclusive)
{
    MetricsRegistry reg;
    Histogram h = reg.histogram("test.lat", {1.0, 10.0});
    // Bucket i counts v <= bounds[i]; above the last edge -> overflow.
    h.record(0.5);
    h.record(1.0);   // exactly on the first edge: bucket 0
    h.record(5.0);
    h.record(10.0);  // exactly on the last edge: bucket 1
    h.record(11.0);  // overflow

    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *hv = snap.histogram("test.lat");
    ASSERT_NE(hv, nullptr);
    ASSERT_EQ(hv->bounds, (std::vector<double>{1.0, 10.0}));
    ASSERT_EQ(hv->counts.size(), 3u);
    EXPECT_EQ(hv->counts[0], 2u);
    EXPECT_EQ(hv->counts[1], 2u);
    EXPECT_EQ(hv->counts[2], 1u);
    EXPECT_EQ(hv->total, 5u);
    EXPECT_DOUBLE_EQ(hv->sum, 27.5);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameAndMergesShards)
{
    MetricsRegistry reg;
    // Register out of order; touch each counter from its own thread so
    // the merge genuinely crosses shards.
    Counter z = reg.counter("zz.last");
    Counter a = reg.counter("aa.first");
    Counter m = reg.counter("mm.middle");
    std::thread t1([a]() mutable { a.inc(10); });
    std::thread t2([m]() mutable { m.inc(20); });
    t1.join();
    t2.join();
    z.inc(30);

    const MetricsSnapshot s1 = reg.snapshot();
    ASSERT_EQ(s1.counters.size(), 3u);
    EXPECT_EQ(s1.counters[0].name, "aa.first");
    EXPECT_EQ(s1.counters[1].name, "mm.middle");
    EXPECT_EQ(s1.counters[2].name, "zz.last");
    EXPECT_EQ(s1.counters[0].value, 10u);
    EXPECT_EQ(s1.counters[1].value, 20u);
    EXPECT_EQ(s1.counters[2].value, 30u);

    // Snapshots are idempotent: same shape, same values.
    const MetricsSnapshot s2 = reg.snapshot();
    ASSERT_EQ(s2.counters.size(), s1.counters.size());
    for (std::size_t i = 0; i < s1.counters.size(); ++i) {
        EXPECT_EQ(s2.counters[i].name, s1.counters[i].name);
        EXPECT_EQ(s2.counters[i].value, s1.counters[i].value);
    }
}

TEST(MetricsRegistry, HistogramSnapshotIsConsistentWhileRecording)
{
    // The serve daemon snapshots its latency histograms for /statusz
    // while pool workers are still recording. docs/observability.md
    // documents the consistency model this test pins down: a snapshot
    // may cut between two concurrent record() calls, but each bucket
    // count is monotone and `total` is derived from the counts, so
    // total == sum(counts) holds in every snapshot.
    MetricsRegistry reg;
    Histogram h = reg.histogram("test.live", {0.25, 0.5, 0.75});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50'000;
    std::atomic<bool> go{false};

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([h, t, &go]() mutable {
            while (!go.load()) {
            }
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<double>((t + i) % 5) * 0.25);
        });
    }

    go.store(true);
    std::uint64_t last_total = 0;
    for (int probe = 0; probe < 200; ++probe) {
        const MetricsSnapshot snap = reg.snapshot();
        const HistogramValue *hv = snap.histogram("test.live");
        ASSERT_NE(hv, nullptr);
        std::uint64_t from_counts = 0;
        for (const std::uint64_t c : hv->counts)
            from_counts += c;
        ASSERT_EQ(hv->total, from_counts)
            << "snapshot total must equal the sum of its own buckets";
        ASSERT_GE(hv->total, last_total) << "totals must be monotone";
        last_total = hv->total;
    }
    for (std::thread &w : workers)
        w.join();

    const MetricsSnapshot final_snap = reg.snapshot();
    EXPECT_EQ(final_snap.histogram("test.live")->total,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles)
{
    MetricsRegistry reg;
    Counter c = reg.counter("test.count");
    Gauge g = reg.gauge("test.gauge");
    Histogram h = reg.histogram("test.hist", {1.0});
    c.inc(5);
    g.set(2.0);
    h.record(0.5);
    reg.reset();

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("test.count", 99), 0u);
    ASSERT_NE(snap.gauge("test.gauge"), nullptr);
    EXPECT_DOUBLE_EQ(snap.gauge("test.gauge")->value, 0.0);
    ASSERT_NE(snap.histogram("test.hist"), nullptr);
    EXPECT_EQ(snap.histogram("test.hist")->total, 0u);

    // Old handles still work after reset.
    c.inc();
    snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr("test.count"), 1u);
}

TEST(MetricsRegistry, ExceedingCapacityThrowsInternal)
{
    MetricsRegistry reg;
    for (std::size_t i = 0; i < MetricsRegistry::kMaxCounters; ++i)
        reg.counter(std::to_string(i) + ".counter");
    try {
        reg.counter("one-too-many");
        FAIL() << "expected kInternal";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kInternal);
    }
}

TEST(MetricsRegistry, GlobalRegistryCarriesSimulatorMetrics)
{
    // The process-wide registry is shared state; only check stable facts.
    MetricsRegistry &reg = MetricsRegistry::global();
    EXPECT_EQ(&reg, &MetricsRegistry::global());
    Counter c = reg.counter("test.global_probe");
    c.inc();
    EXPECT_GE(reg.snapshot().counterOr("test.global_probe"), 1u);
}

TEST(PeakRss, ReportsSomethingPlausible)
{
    const std::uint64_t rss = peakRssBytes();
    // On Linux this comes from getrusage; a running test binary has to
    // occupy at least a megabyte.
    EXPECT_GT(rss, 1u << 20);
}

}  // namespace
}  // namespace stackscope::obs
