/**
 * @file
 * Minimal recursive-descent JSON syntax checker for the observability
 * tests: validates that a produced document is well-formed JSON (the
 * exporters build documents by hand, so the tests must not trust them).
 * Accepts exactly the RFC 8259 grammar; no extensions.
 */

#ifndef STACKSCOPE_TESTS_OBS_JSON_CHECKER_HPP
#define STACKSCOPE_TESTS_OBS_JSON_CHECKER_HPP

#include <cctype>
#include <string_view>

namespace stackscope::testutil {

class JsonChecker
{
  public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    /** True when the whole input is exactly one valid JSON value. */
    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_;  // '"'
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;  // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (text_[pos_] == '0')
            ++pos_;
        else
            while (digit())
                ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    digit() const
    {
        return pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]));
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace stackscope::testutil

#endif  // STACKSCOPE_TESTS_OBS_JSON_CHECKER_HPP
