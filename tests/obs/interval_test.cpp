/**
 * Tests for the interval stack time-series: conservation against the
 * whole-run aggregates, window bookkeeping, and the configuration rules.
 */

#include "obs/interval.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::obs {
namespace {

using stacks::Stage;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 60'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

sim::SimOptions
intervalOptions(Cycle window)
{
    sim::SimOptions so;
    so.obs.interval_cycles = window;
    return so;
}

/** The acceptance criterion: cycle-weighted window sums equal the
 *  whole-run stack within 1e-9 (relative to the run's cycle count). */
void
expectConservation(const sim::SimResult &r)
{
    ASSERT_TRUE(r.intervals.enabled());
    ASSERT_FALSE(r.intervals.samples.empty());
    const double tol = 1e-9 * std::max<double>(1.0, r.cycles);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
        const auto stage = static_cast<Stage>(s);
        const stacks::CpiStack summed =
            r.intervals.summedCycleStack(stage);
        r.cycle_stacks[s].forEach([&](stacks::CpiComponent c, double v) {
            EXPECT_NEAR(summed[c], v, tol)
                << "stage " << toString(stage) << " component "
                << componentName(c);
        });
    }
    const stacks::FlopsStack fsummed = r.intervals.summedFlopsCycles();
    r.flops_cycles.forEach([&](stacks::FlopsComponent c, double v) {
        EXPECT_NEAR(fsummed[c], v, tol)
            << "flops component " << componentName(c);
    });
}

TEST(IntervalAccountant, RejectsZeroWindow)
{
    try {
        IntervalAccountant acct(0);
        FAIL() << "expected kConfig";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig);
    }
}

TEST(IntervalSeries, WindowsTileTheRun)
{
    const auto gen = shortWorkload("gcc");
    const sim::SimResult r =
        sim::simulate(sim::bdwConfig(), gen, intervalOptions(512));

    const IntervalSeries &iv = r.intervals;
    EXPECT_EQ(iv.window, 512u);
    ASSERT_FALSE(iv.samples.empty());
    EXPECT_EQ(iv.samples.front().start, 0u);
    EXPECT_EQ(iv.samples.back().end, r.cycles);
    std::uint64_t instrs = 0;
    for (std::size_t i = 0; i < iv.samples.size(); ++i) {
        const IntervalSample &s = iv.samples[i];
        EXPECT_LT(s.start, s.end);
        if (i > 0) {
            EXPECT_EQ(s.start, iv.samples[i - 1].end);
        }
        if (i + 1 < iv.samples.size()) {
            EXPECT_EQ(s.cycles(), 512u);
        }
        instrs += s.instrs;
    }
    EXPECT_EQ(instrs, r.instrs);
}

TEST(IntervalSeries, WindowStacksConserveCycles)
{
    const auto gen = shortWorkload("mcf");
    const sim::SimResult r =
        sim::simulate(sim::bdwConfig(), gen, intervalOptions(1000));
    // Each window's stage stacks must individually sum to the window's
    // cycle count (the stack law of Table II applied per window).
    for (const IntervalSample &s : r.intervals.samples) {
        for (std::size_t st = 0; st < stacks::kNumStages; ++st) {
            EXPECT_NEAR(s.cycle_stacks[st].sum(),
                        static_cast<double>(s.cycles()),
                        1e-6 * std::max<double>(1.0, s.cycles()));
        }
    }
}

TEST(IntervalSeries, SumsToAggregateOracle)
{
    const auto gen = shortWorkload("bwaves");
    expectConservation(
        sim::simulate(sim::bdwConfig(), gen, intervalOptions(700)));
}

TEST(IntervalSeries, SumsToAggregateSimpleMode)
{
    // kSimple redistributes base mass into bpred at finalize(); the
    // residual must be folded into the series, not lost.
    const auto gen = shortWorkload("gcc");
    sim::SimOptions so = intervalOptions(1000);
    so.spec_mode = stacks::SpeculationMode::kSimple;
    expectConservation(sim::simulate(sim::bdwConfig(), gen, so));
}

TEST(IntervalSeries, SumsToAggregateWithWarmup)
{
    const auto gen = shortWorkload("mcf", 90'000);
    sim::SimOptions so = intervalOptions(800);
    so.warmup_instrs = 30'000;
    expectConservation(sim::simulate(sim::bdwConfig(), gen, so));
}

TEST(IntervalSeries, SpecCountersModeIsRejected)
{
    const auto gen = shortWorkload("gcc", 10'000);
    sim::SimOptions so = intervalOptions(1000);
    so.spec_mode = stacks::SpeculationMode::kSpecCounters;
    try {
        (void)sim::simulate(sim::bdwConfig(), gen, so);
        FAIL() << "expected kConfig";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig);
    }
}

TEST(IntervalSeries, AccountingOffIsRejected)
{
    const auto gen = shortWorkload("gcc", 10'000);
    sim::SimOptions so = intervalOptions(1000);
    so.accounting = false;
    try {
        (void)sim::simulate(sim::bdwConfig(), gen, so);
        FAIL() << "expected kConfig";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig);
    }
}

TEST(IntervalSeries, DisabledByDefault)
{
    const auto gen = shortWorkload("gcc", 10'000);
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen);
    EXPECT_FALSE(r.intervals.enabled());
    EXPECT_TRUE(r.intervals.samples.empty());
}

TEST(IntervalSeries, MulticorePerCoreConservation)
{
    const auto gen = shortWorkload("bwaves", 40'000);
    const sim::MulticoreResult mc = sim::simulateMulticore(
        sim::bdwConfig(), gen, 2, intervalOptions(900));
    ASSERT_EQ(mc.per_core.size(), 2u);
    for (const sim::SimResult &r : mc.per_core)
        expectConservation(r);
}

}  // namespace
}  // namespace stackscope::obs
