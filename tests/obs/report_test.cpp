/**
 * Tests for the machine-readable run report: schema shape, JSON
 * well-formedness, and determinism across batch thread counts.
 */

#include "obs/report.hpp"

#include <cstdio>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "json_checker.hpp"
#include "runner/batch_runner.hpp"
#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::obs {
namespace {

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 20'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

TEST(ReportBuilder, SingleRunSchemaShape)
{
    const auto gen = shortWorkload("gcc");
    sim::SimOptions so;
    so.obs.interval_cycles = 1000;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, so);

    ReportBuilder report("test");
    report.add("gcc/BDW", so, r);
    const std::string json = report.json();

    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    // The documented contract of docs/formats.md, v2.
    EXPECT_NE(json.find("\"schema\":\"stackscope-report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"version\":2"), std::string::npos);
    // Library-built reports never carry host metrics (determinism).
    EXPECT_NE(json.find("\"host_metrics\":null"), std::string::npos);
    for (const char *key :
         {"\"command\"", "\"jobs\"", "\"label\"", "\"cores\"",
          "\"options\"", "\"results\"", "\"machine\"", "\"cycles\"",
          "\"instrs\"", "\"cpi\"", "\"ipc\"", "\"stats\"",
          "\"cpi_stacks\"", "\"cycle_stacks\"", "\"flops_cycles\"",
          "\"validation\"", "\"intervals\"", "\"trace\"", "\"aggregate\"",
          "\"dispatch\"", "\"issue\"", "\"commit\"", "\"window\"",
          "\"samples\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // Single-core job: no aggregate, no trace.
    EXPECT_NE(json.find("\"aggregate\":null"), std::string::npos);
    EXPECT_NE(json.find("\"trace\":null"), std::string::npos);
}

TEST(ReportBuilder, MulticoreJobCarriesAggregateAndPerCoreResults)
{
    const auto gen = shortWorkload("bwaves");
    sim::SimOptions so;
    const sim::MulticoreResult mc =
        sim::simulateMulticore(sim::bdwConfig(), gen, 2, so);

    ReportBuilder report("test");
    report.add("bwaves/BDW/x2", so, mc);
    const std::string json = report.json();

    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"cores\":2"), std::string::npos);
    EXPECT_NE(json.find("\"avg_cpi\""), std::string::npos);
    EXPECT_NE(json.find("\"socket_peak_flops\""), std::string::npos);
    EXPECT_NE(json.find("\"core\":0"), std::string::npos);
    EXPECT_NE(json.find("\"core\":1"), std::string::npos);
}

TEST(ReportBuilder, DeterministicAcrossBatchThreadCounts)
{
    // The report must be byte-identical no matter how many workers ran
    // the batch: no timestamps, no thread counts, no completion order.
    const auto gen_a = shortWorkload("gcc");
    const auto gen_b = shortWorkload("mcf");
    sim::SimOptions so;
    so.obs.interval_cycles = 500;

    auto runWith = [&](unsigned threads) {
        std::vector<runner::SimJob> jobs;
        jobs.push_back(
            runner::makeJob("gcc/BDW", sim::bdwConfig(), gen_a, so));
        jobs.push_back(
            runner::makeJob("mcf/BDW", sim::bdwConfig(), gen_b, so));
        jobs.push_back(
            runner::makeJob("gcc/BDW/x2", sim::bdwConfig(), gen_a, so, 2));
        runner::BatchRunner batch(threads);
        const runner::BatchResult results = batch.run(std::move(jobs));
        ReportBuilder report("determinism");
        report.add(results.outcomes[0], so, 1);
        report.add(results.outcomes[1], so, 1);
        report.add(results.outcomes[2], so, 2);
        return report.json();
    };

    const std::string serial = runWith(1);
    const std::string parallel = runWith(4);
    EXPECT_EQ(serial, parallel);
    testutil::JsonChecker checker(serial);
    EXPECT_TRUE(checker.valid());
}

TEST(ReportBuilder, ValidationViolationsAppearInReport)
{
    const auto gen = shortWorkload("gcc", 10'000);
    sim::SimOptions so;
    so.validation = validate::ValidationPolicy::kWarn;
    so.fault = validate::parseFaultSpec("stack-leak").value();
    so.watchdog_cycles = 200'000;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, so);
    ASSERT_FALSE(r.validation.passed());

    ReportBuilder report("test");
    report.add("faulty", so, r);
    const std::string json = report.json();
    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"passed\":false"), std::string::npos);
    EXPECT_NE(json.find("\"invariant\""), std::string::npos);
}

TEST(ReportBuilder, JobStatusSectionReflectsOutcome)
{
    const auto gen = shortWorkload("gcc");
    sim::SimOptions so;

    runner::JobOutcome ok;
    ok.label = "fine";
    ok.single = sim::simulate(sim::bdwConfig(), gen, so);
    ok.status = runner::JobStatus::kRetried;
    ok.attempts = 2;

    runner::JobOutcome failed;
    failed.label = "stuck";
    failed.status = runner::JobStatus::kTimeout;
    failed.attempts = 3;
    failed.error = "watchdog wall-clock: aborted";

    ReportBuilder report("test");
    report.add(ok, so, 1);
    report.add(failed, so, 1);
    const std::string json = report.json();

    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"job_status\":{\"status\":\"retried\","
                        "\"attempts\":2,\"error\":\"\"}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"job_status\":{\"status\":\"timeout\","
                        "\"attempts\":3,"
                        "\"error\":\"watchdog wall-clock: aborted\"}"),
              std::string::npos)
        << json;
    // The failed job serializes with empty results and a null aggregate,
    // so a partial batch still reports every job it attempted.
    EXPECT_NE(json.find("\"label\":\"stuck\",\"cores\":1,"
                        "\"job_status\":{\"status\":\"timeout\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"results\":[],\"aggregate\":null"),
              std::string::npos)
        << json;
}

TEST(ReportBuilder, AddRawSplicesByteIdenticalFragments)
{
    // The resume path: jobJson() fragments stored in the journal and
    // replayed via addRaw() must reproduce the exact bytes add() emits.
    const auto gen = shortWorkload("mcf");
    sim::SimOptions so;
    so.validation = validate::ValidationPolicy::kWarn;

    runner::JobOutcome a;
    a.label = "mcf/bdw/x1";
    a.single = sim::simulate(sim::bdwConfig(), gen, so);
    a.status = runner::JobStatus::kOk;
    a.attempts = 1;

    runner::JobOutcome b;
    b.label = "mcf/knl/x1";
    b.single = sim::simulate(sim::knlConfig(), gen, so);
    b.status = runner::JobStatus::kRetried;
    b.attempts = 2;

    ReportBuilder direct("sweep");
    direct.add(a, so, 1);
    direct.add(b, so, 1);

    ReportBuilder spliced("sweep");
    spliced.addRaw(ReportBuilder::jobJson(a, so, 1));
    spliced.add(b, so, 1);

    ReportBuilder all_raw("sweep");
    all_raw.addRaw(ReportBuilder::jobJson(a, so, 1));
    all_raw.addRaw(ReportBuilder::jobJson(b, so, 1));

    EXPECT_EQ(direct.json(), spliced.json());
    EXPECT_EQ(direct.json(), all_raw.json());
    const std::string json = all_raw.json();
    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
}

TEST(WriteTextFile, RoundTripsContent)
{
    const std::string path =
        testing::TempDir() + "stackscope_report_test.json";
    writeTextFile(path, "{\"ok\":true}");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), "{\"ok\":true}");
}

TEST(WriteTextFile, UnwritablePathIsUsageError)
{
    try {
        writeTextFile("/nonexistent-dir/sub/report.json", "x");
        FAIL() << "expected kUsage";
    } catch (const StackscopeError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    }
}

}  // namespace
}  // namespace stackscope::obs
