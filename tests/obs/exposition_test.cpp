/**
 * @file
 * Prometheus text-format exposition tests. The golden test pins exact
 * bytes — the exposition is a wire contract for scrapers, same as the
 * serve frames — and the round-trip test proves /metricsz and the
 * report's host_metrics block describe one consistent snapshot.
 */

#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace stackscope::obs {
namespace {

TEST(ExpositionNameTest, MapsDotsToUnderscores)
{
    EXPECT_EQ(promName("serve.requests_total"), "serve_requests_total");
    EXPECT_EQ(promName("pool.queue.depth"), "pool_queue_depth");
    EXPECT_EQ(promName("plain"), "plain");
}

TEST(ExpositionEscapeTest, EscapesBackslashQuoteNewline)
{
    EXPECT_EQ(promEscapeLabel("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    EXPECT_EQ(promEscapeLabel("plain"), "plain");
}

TEST(ExpositionDoubleTest, ShortestRoundTrip)
{
    EXPECT_EQ(promDouble(0.0), "0");
    EXPECT_EQ(promDouble(1.0), "1");
    EXPECT_EQ(promDouble(0.5), "0.5");
    EXPECT_EQ(promDouble(1e-6), "1e-06");
    EXPECT_EQ(promDouble(0.1), "0.1");
    EXPECT_EQ(promDouble(1.0 / 3.0), "0.3333333333333333");
}

TEST(ExpositionDoubleTest, SpecialValues)
{
    EXPECT_EQ(promDouble(std::numeric_limits<double>::infinity()), "+Inf");
    EXPECT_EQ(promDouble(-std::numeric_limits<double>::infinity()), "-Inf");
    EXPECT_EQ(promDouble(std::numeric_limits<double>::quiet_NaN()), "NaN");
}

// The golden test: exact bytes, cumulative buckets, +Inf == _count.
TEST(ExpositionTest, GoldenText)
{
    MetricsRegistry reg;
    Counter requests = reg.counter("serve.requests_total");
    Gauge depth = reg.gauge("pool.queue_depth");
    Histogram latency =
        reg.histogram("serve.analyze_seconds", {0.001, 0.01, 0.1});

    requests.inc(3);
    depth.set(2.5);
    latency.record(0.0005);  // bucket 0
    latency.record(0.05);    // bucket 2
    latency.record(0.05);    // bucket 2
    latency.record(5.0);     // overflow

    const std::string text = prometheusText(reg.snapshot());
    EXPECT_EQ(text,
              "# TYPE serve_requests_total counter\n"
              "serve_requests_total 3\n"
              "# TYPE pool_queue_depth gauge\n"
              "pool_queue_depth 2.5\n"
              "# TYPE serve_analyze_seconds histogram\n"
              "serve_analyze_seconds_bucket{le=\"0.001\"} 1\n"
              "serve_analyze_seconds_bucket{le=\"0.01\"} 1\n"
              "serve_analyze_seconds_bucket{le=\"0.1\"} 3\n"
              "serve_analyze_seconds_bucket{le=\"+Inf\"} 4\n"
              "serve_analyze_seconds_sum 5.1005\n"
              "serve_analyze_seconds_count 4\n");
}

TEST(ExpositionTest, EmptySnapshotRendersEmpty)
{
    EXPECT_EQ(prometheusText(MetricsSnapshot{}), "");
}

// The exposition and writeMetricsSnapshot() consume one MetricsSnapshot;
// the histogram totals they report must agree series for series.
TEST(ExpositionTest, HistogramTotalsMatchSnapshot)
{
    MetricsRegistry reg;
    Histogram h = reg.histogram("t.h", {1.0, 2.0});
    for (int i = 0; i < 7; ++i)
        h.record(0.5 + 0.4 * i);

    const MetricsSnapshot snap = reg.snapshot();
    const HistogramValue *hv = snap.histogram("t.h");
    ASSERT_NE(hv, nullptr);
    std::uint64_t count_sum = 0;
    for (const std::uint64_t c : hv->counts)
        count_sum += c;
    ASSERT_EQ(count_sum, hv->total) << "registry invariant";

    const std::string text = prometheusText(snap);
    EXPECT_NE(text.find("t_h_bucket{le=\"+Inf\"} " +
                        std::to_string(hv->total) + "\n"),
              std::string::npos);
    EXPECT_NE(text.find("t_h_count " + std::to_string(hv->total) + "\n"),
              std::string::npos);
}

/**
 * A scrape racing recording threads must still satisfy the structural
 * invariants: buckets cumulative (non-decreasing), +Inf == _count, and
 * the counter monotone across consecutive scrapes.
 */
TEST(ExpositionTest, ConcurrentScrapesStayConsistent)
{
    MetricsRegistry reg;
    Counter c = reg.counter("t.ops_total");
    Histogram h = reg.histogram("t.lat", {0.25, 0.5, 0.75});

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&, t] {
            double x = 0.1 * (t + 1);
            while (!stop.load(std::memory_order_relaxed)) {
                c.inc();
                h.record(x);
                x = x < 1.0 ? x + 0.13 : 0.05;
            }
        });
    }

    std::uint64_t last_count = 0;
    for (int scrape = 0; scrape < 50; ++scrape) {
        const MetricsSnapshot snap = reg.snapshot();
        const HistogramValue *hv = snap.histogram("t.lat");
        ASSERT_NE(hv, nullptr);
        std::uint64_t sum = 0;
        for (const std::uint64_t n : hv->counts)
            sum += n;
        EXPECT_EQ(sum, hv->total);
        const std::uint64_t ops = snap.counterOr("t.ops_total");
        EXPECT_GE(ops, last_count) << "counters are monotone";
        last_count = ops;

        // The rendered text must satisfy the same invariants the linter
        // (tools/check_exposition.py) enforces on a live scrape.
        const std::string text = prometheusText(snap);
        EXPECT_NE(text.find("# TYPE t_lat histogram\n"), std::string::npos);
        EXPECT_NE(text.find("t_lat_bucket{le=\"+Inf\"} " +
                            std::to_string(hv->total) + "\n"),
                  std::string::npos);
    }
    stop.store(true);
    for (std::thread &t : writers)
        t.join();
}

}  // namespace
}  // namespace stackscope::obs
