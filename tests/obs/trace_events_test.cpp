/**
 * Tests for the pipeline event tracer: span merging, stall attribution,
 * ring-buffer bounds, and the Chrome trace-event JSON exporter.
 */

#include "obs/trace_events.hpp"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "json_checker.hpp"
#include "obs/json.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::obs {
namespace {

using stacks::CycleState;
using stacks::Stage;

constexpr auto kDispatchLane =
    static_cast<std::uint8_t>(Stage::kDispatch);

CycleState
activeCycle(std::uint32_t uops = 2)
{
    CycleState s;
    s.n_dispatch = uops;
    s.n_issue = uops;
    s.n_commit = uops;
    return s;
}

CycleState
icacheStallCycle()
{
    CycleState s;  // all stage counts zero
    s.fe_reason = stacks::FrontendReason::kIcache;
    return s;
}

std::vector<TraceEvent>
laneEvents(const EventLog &log, std::uint8_t lane)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : log.events) {
        if ((e.kind == TraceEventKind::kStageActive ||
             e.kind == TraceEventKind::kStageStall) &&
            e.lane == lane)
            out.push_back(e);
    }
    return out;
}

TEST(PipelineTracer, MergesContiguousCyclesIntoSpans)
{
    PipelineTracer tracer;
    Cycle cycle = 0;
    for (int i = 0; i < 3; ++i)
        tracer.observe(cycle++, activeCycle(), 0);
    for (int i = 0; i < 2; ++i)
        tracer.observe(cycle++, icacheStallCycle(), 0);
    tracer.finish(cycle);
    const EventLog log = tracer.take();

    const std::vector<TraceEvent> lane = laneEvents(log, kDispatchLane);
    ASSERT_EQ(lane.size(), 2u);
    EXPECT_EQ(lane[0].kind, TraceEventKind::kStageActive);
    EXPECT_EQ(lane[0].start, 0u);
    EXPECT_EQ(lane[0].dur, 3u);
    EXPECT_EQ(lane[0].count, 6u);  // 3 cycles x 2 uops
    EXPECT_EQ(lane[1].kind, TraceEventKind::kStageStall);
    EXPECT_EQ(lane[1].cause, StallCause::kIcache);
    EXPECT_EQ(lane[1].start, 3u);
    EXPECT_EQ(lane[1].dur, 2u);
}

TEST(PipelineTracer, StallCauseFollowsAccountantAttribution)
{
    // Backend-full dispatch stall blames the ROB head, mirroring the
    // Table II dispatch accountant.
    CycleState s;
    s.backend_full = true;
    s.head_blame = stacks::BackendBlame::kDcache;

    PipelineTracer tracer;
    tracer.observe(0, s, 0);
    tracer.finish(1);
    const EventLog log = tracer.take();
    const std::vector<TraceEvent> lane = laneEvents(log, kDispatchLane);
    ASSERT_EQ(lane.size(), 1u);
    EXPECT_EQ(lane[0].kind, TraceEventKind::kStageStall);
    EXPECT_EQ(lane[0].cause, StallCause::kDcache);
}

TEST(PipelineTracer, FlushesBecomeInstantEvents)
{
    PipelineTracer tracer;
    tracer.observe(0, activeCycle(), 0);
    tracer.observe(1, activeCycle(), 7);  // 7 uops squashed this cycle
    tracer.observe(2, activeCycle(), 7);  // no further squashes
    tracer.finish(3);
    const EventLog log = tracer.take();

    std::vector<TraceEvent> flushes;
    for (const TraceEvent &e : log.events)
        if (e.kind == TraceEventKind::kFlush)
            flushes.push_back(e);
    ASSERT_EQ(flushes.size(), 1u);
    EXPECT_EQ(flushes[0].start, 1u);
    EXPECT_EQ(flushes[0].count, 7u);
}

TEST(PipelineTracer, RingBufferBoundsMemory)
{
    PipelineTracer tracer(4);
    // Alternate active/stall each cycle so every cycle closes a span on
    // all three lanes: far more events than capacity.
    for (Cycle c = 0; c < 40; ++c)
        tracer.observe(c, (c % 2 == 0) ? activeCycle() : icacheStallCycle(),
                       0);
    tracer.finish(40);
    const EventLog log = tracer.take();

    EXPECT_EQ(log.events.size(), 4u);
    EXPECT_GT(log.emitted, 4u);
    EXPECT_EQ(log.dropped, log.emitted - 4u);
    // Survivors are the newest events, still in chronological order.
    for (std::size_t i = 1; i < log.events.size(); ++i)
        EXPECT_GE(log.events[i].start + log.events[i].dur,
                  log.events[i - 1].start);
}

TEST(PipelineTracer, NoteRecordsInstantEvents)
{
    PipelineTracer tracer;
    tracer.note(TraceEventKind::kWatchdog, 123);
    tracer.note(TraceEventKind::kValidation, 456, 2);
    tracer.finish(500);
    const EventLog log = tracer.take();
    ASSERT_EQ(log.events.size(), 2u);
    EXPECT_EQ(log.events[0].kind, TraceEventKind::kWatchdog);
    EXPECT_EQ(log.events[0].start, 123u);
    EXPECT_EQ(log.events[1].kind, TraceEventKind::kValidation);
    EXPECT_EQ(log.events[1].count, 2u);
}

TEST(PipelineTracer, SimulationSpansTileEveryLane)
{
    trace::SyntheticParams p = trace::findWorkload("gcc").params;
    p.num_instrs = 20'000;
    const trace::SyntheticGenerator gen(p);
    sim::SimOptions so;
    so.obs.trace_events = true;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, so);

    ASSERT_TRUE(r.events.enabled);
    EXPECT_EQ(r.events.dropped, 0u);
    EXPECT_EQ(r.events.end_cycle, r.cycles);
    // Per lane, spans must cover [0, cycles) contiguously: the trace is
    // the complete time-resolved view of the measured window.
    for (std::uint8_t lane = 0; lane < stacks::kNumStages; ++lane) {
        const std::vector<TraceEvent> spans = laneEvents(r.events, lane);
        ASSERT_FALSE(spans.empty());
        Cycle expect_start = 0;
        for (const TraceEvent &e : spans) {
            EXPECT_EQ(e.start, expect_start) << "lane " << int(lane);
            expect_start = e.start + e.dur;
        }
        EXPECT_EQ(expect_start, r.cycles) << "lane " << int(lane);
    }
}

TEST(ChromeTraceJson, ProducesValidJsonWithMetadata)
{
    trace::SyntheticParams p = trace::findWorkload("mcf").params;
    p.num_instrs = 10'000;
    const trace::SyntheticGenerator gen(p);
    sim::SimOptions so;
    so.obs.trace_events = true;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, so);

    const std::string json = chromeTraceJson({r.events});
    testutil::JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    for (const char *name : {"\"dispatch\"", "\"issue\"", "\"commit\"",
                             "\"events\"", "\"process_name\""})
        EXPECT_NE(json.find(name), std::string::npos) << name;
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    JsonWriter w;
    w.beginObject().key("k\"ey").value("a\nb\tc\x01" "d\\").endObject();
    testutil::JsonChecker checker(w.str());
    EXPECT_TRUE(checker.valid());
    EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\nb\\tc\\u0001d\\\\\"}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .value(1.5)
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,1.5]");
}

}  // namespace
}  // namespace stackscope::obs
