/** Shared test fixture helpers: a small, fully idealizable core config. */

#ifndef STACKSCOPE_TESTS_CORE_TEST_CORE_CONFIG_HPP
#define STACKSCOPE_TESTS_CORE_TEST_CORE_CONFIG_HPP

#include "core/ooo_core.hpp"

namespace stackscope::core::testing {

/**
 * A 4-wide core with perfect caches and perfect branch prediction, so
 * individual mechanisms can be enabled one at a time.
 */
inline CoreParams
idealCoreParams()
{
    CoreParams p;
    p.fetch_width = 4;
    p.dispatch_width = 4;
    p.issue_width = 4;
    p.commit_width = 4;
    p.rob_size = 32;
    p.rs_size = 16;
    p.fetch_queue_size = 8;
    p.frontend_depth = 4;

    p.fu.alu_units = 4;
    p.fu.mul_units = 2;
    p.fu.div_units = 1;
    p.fu.load_ports = 2;
    p.fu.store_ports = 1;
    p.fu.branch_units = 2;
    p.fu.fp_units = 2;
    p.fu.vpu_units = 2;
    p.fu.lat_mul = 3;
    p.fu.lat_div = 20;

    p.mem.l1_lat = 4;
    p.mem.l2_lat = 12;
    p.mem.perfect_icache = true;
    p.mem.perfect_dcache = true;
    p.bpred.perfect = true;
    p.flops_vec_lanes = 16;
    return p;
}

}  // namespace stackscope::core::testing

#endif  // STACKSCOPE_TESTS_CORE_TEST_CORE_CONFIG_HPP
