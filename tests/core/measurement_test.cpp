/** Tests for measurement windows (warmup / resetMeasurement) and the
 *  width-normalization ablation knob. */

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "test_core_config.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/trace_builder.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::core {
namespace {

using stacks::CpiComponent;
using stacks::Stage;
using testing::idealCoreParams;

TEST(Measurement, ResetZeroesCountersKeepsState)
{
    trace::TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.alu();
    OooCore core(idealCoreParams(), b.build());
    while (core.stats().instrs_committed < 1000)
        core.cycle();
    const Cycle before = core.absoluteCycles();
    core.resetMeasurement();
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.stats().instrs_committed, 0u);
    core.run(0);
    EXPECT_EQ(core.absoluteCycles() - before, core.cycles());
    // Roughly the second half of the trace commits in the window.
    EXPECT_NEAR(static_cast<double>(core.stats().instrs_committed), 1000.0,
                16.0);
}

TEST(Measurement, WarmupReducesColdStartCpi)
{
    // Cold caches inflate CPI; measuring after warmup gets closer to the
    // steady state of a longer run.
    trace::SyntheticParams p = trace::findWorkload("gcc").params;

    p.num_instrs = 150'000;
    trace::SyntheticGenerator gen(p);
    const sim::SimResult cold = sim::simulate(sim::bdwConfig(), gen);

    sim::SimOptions warm_opt;
    warm_opt.warmup_instrs = 75'000;
    p.num_instrs = 225'000;
    trace::SyntheticGenerator gen_w(p);
    const sim::SimResult warm =
        sim::simulate(sim::bdwConfig(), gen_w, warm_opt);
    EXPECT_NEAR(static_cast<double>(warm.instrs), 150'000.0, 8.0);
    EXPECT_LT(warm.cpi, cold.cpi);
}

TEST(Measurement, WarmupStacksStillSumToCpi)
{
    trace::SyntheticParams p = trace::findWorkload("mcf").params;
    p.num_instrs = 90'000;
    trace::SyntheticGenerator gen(p);
    sim::SimOptions opt;
    opt.warmup_instrs = 30'000;
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, opt);
    // The warmup boundary lands mid-commit-group, so the measured window
    // may be a few uops short.
    EXPECT_NEAR(static_cast<double>(r.instrs), 60'000.0, 8.0);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit})
        EXPECT_NEAR(r.cpiStack(s).sum(), r.cpi, r.cpi * 0.002 + 1e-6);
}

TEST(Measurement, WarmupLongerThanTraceIsHarmless)
{
    trace::SyntheticParams p = trace::findWorkload("exchange2").params;
    p.num_instrs = 5'000;
    trace::SyntheticGenerator gen(p);
    sim::SimOptions opt;
    opt.warmup_instrs = 50'000;  // exceeds the trace
    const sim::SimResult r = sim::simulate(sim::bdwConfig(), gen, opt);
    EXPECT_EQ(r.instrs, 0u);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(WidthNormalization, NormalizedBasesAreEqualNativeAreNot)
{
    // The §III-A ablation: the wider issue stage only reports the same
    // base component as the others under min-width accounting.
    trace::SyntheticParams p = trace::findWorkload("exchange2").params;
    p.num_instrs = 40'000;
    trace::SyntheticGenerator gen(p);

    CoreParams params = sim::bdwConfig().core;  // issue 6-wide, others 4
    ASSERT_GT(params.issue_width, params.dispatch_width);

    OooCore normalized(params, gen.clone());
    normalized.run(0);
    params.accounting_native_widths = true;
    OooCore native(params, gen.clone());
    native.run(0);

    const double n_disp = normalized.accountant(Stage::kDispatch)
                              .cycles()[CpiComponent::kBase];
    const double n_iss =
        normalized.accountant(Stage::kIssue).cycles()[CpiComponent::kBase];
    EXPECT_NEAR(n_disp, n_iss, n_disp * 0.005 + 1.0);

    const double v_disp =
        native.accountant(Stage::kDispatch).cycles()[CpiComponent::kBase];
    const double v_iss =
        native.accountant(Stage::kIssue).cycles()[CpiComponent::kBase];
    // Native issue base = instrs/6 instead of instrs/4: 1/3 smaller.
    EXPECT_NEAR(v_iss, v_disp * 4.0 / 6.0, v_disp * 0.02);

    // Timing itself is unaffected by the accounting width.
    EXPECT_EQ(normalized.cycles(), native.cycles());
}

TEST(WidthNormalization, NativeWidthsStillSumToCycles)
{
    trace::SyntheticParams p = trace::findWorkload("gcc").params;
    p.num_instrs = 40'000;
    trace::SyntheticGenerator gen(p);
    CoreParams params = sim::bdwConfig().core;
    params.accounting_native_widths = true;
    OooCore core(params, gen.clone());
    core.run(0);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        EXPECT_NEAR(core.accountant(s).cycles().sum(),
                    static_cast<double>(core.cycles()),
                    core.cycles() * 0.001 + 2.0)
            << toString(s);
    }
}

}  // namespace
}  // namespace stackscope::core
