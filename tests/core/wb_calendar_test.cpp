/** Adversarial drain-order suite for the writeback calendar queue.
 *
 *  The calendar replaces a std::priority_queue<WbEvent>; its drain order
 *  is accounting-visible (same-cycle squash walks and spec-counter
 *  branch-resolution order), so every test here drains the calendar
 *  against a reference heap using the normative WbEvent::operator>
 *  comparator and requires bit-identical order — including permuted
 *  same-cycle insertions and events sharing a bucket from different
 *  laps (> kNumBuckets cycles apart). */

#include "core/wb_calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace stackscope::core {
namespace {

using RefQueue =
    std::priority_queue<WbEvent, std::vector<WbEvent>, std::greater<WbEvent>>;

std::vector<WbEvent>
drainCalendar(WbCalendar &cal, Cycle up_to)
{
    std::vector<WbEvent> out;
    cal.drainUpTo(up_to, [&](const WbEvent &ev) { out.push_back(ev); });
    return out;
}

std::vector<WbEvent>
drainReference(RefQueue &q, Cycle up_to)
{
    std::vector<WbEvent> out;
    while (!q.empty() && q.top().done <= up_to) {
        out.push_back(q.top());
        q.pop();
    }
    return out;
}

void
expectSameOrder(const std::vector<WbEvent> &ref,
                const std::vector<WbEvent> &got)
{
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].done, got[i].done) << "event " << i;
        EXPECT_EQ(ref[i].seq, got[i].seq) << "event " << i;
        EXPECT_EQ(ref[i].slot, got[i].slot) << "event " << i;
    }
}

TEST(WbCalendar, EmptyQueueBasics)
{
    WbCalendar cal;
    EXPECT_TRUE(cal.empty());
    EXPECT_EQ(cal.size(), 0u);
    EXPECT_EQ(cal.earliest(), kNeverCycle);
    EXPECT_TRUE(drainCalendar(cal, 1000).empty());
}

/** Every permutation of a same-cycle group must drain in seq order. */
TEST(WbCalendar, SameCyclePermutationsDrainInSeqOrder)
{
    std::vector<WbEvent> events = {
        {10, 0, 7}, {10, 1, 3}, {10, 2, 11}, {10, 3, 5}, {10, 4, 9},
    };
    std::sort(events.begin(), events.end(),
              [](const WbEvent &a, const WbEvent &b) { return b > a; });
    do {
        WbCalendar cal;
        RefQueue ref;
        for (const WbEvent &ev : events) {
            cal.push(ev);
            ref.push(ev);
        }
        EXPECT_EQ(cal.earliest(), 10u);
        expectSameOrder(drainReference(ref, 10), drainCalendar(cal, 10));
        EXPECT_TRUE(cal.empty());
    } while (std::next_permutation(
        events.begin(), events.end(),
        [](const WbEvent &a, const WbEvent &b) { return b > a; }));
}

/** Same-cycle groups mixed with other cycles, permuted insertion. */
TEST(WbCalendar, MixedCyclePermutationsMatchReference)
{
    std::vector<WbEvent> events = {
        {12, 0, 4}, {10, 1, 9}, {12, 2, 2}, {11, 3, 6},
        {10, 4, 1}, {12, 5, 8},
    };
    std::sort(events.begin(), events.end(),
              [](const WbEvent &a, const WbEvent &b) { return b > a; });
    do {
        WbCalendar cal;
        RefQueue ref;
        for (const WbEvent &ev : events) {
            cal.push(ev);
            ref.push(ev);
        }
        expectSameOrder(drainReference(ref, 20), drainCalendar(cal, 20));
    } while (std::next_permutation(
        events.begin(), events.end(),
        [](const WbEvent &a, const WbEvent &b) { return b > a; }));
}

/**
 * Events more than one lap (kNumBuckets cycles) apart share a bucket;
 * the later lap must neither drain early nor disturb the earlier lap's
 * tie order. This bug class (bucket-local order vs global order) has
 * bitten before — keep the laps well separated and permute insertions.
 */
TEST(WbCalendar, MultiLapBucketSharingDrainsInGlobalOrder)
{
    const Cycle base = 5;
    // Three laps land in the same bucket: base, base + 64, base + 128,
    // plus same-cycle ties within each lap and a neighbouring bucket.
    std::vector<WbEvent> events = {
        {base, 0, 20},
        {base, 1, 10},
        {base + WbCalendar::kNumBuckets, 2, 2},
        {base + WbCalendar::kNumBuckets, 3, 30},
        {base + 2 * WbCalendar::kNumBuckets, 4, 1},
        {base + 1, 5, 15},
    };
    std::sort(events.begin(), events.end(),
              [](const WbEvent &a, const WbEvent &b) { return b > a; });
    do {
        WbCalendar cal;
        RefQueue ref;
        for (const WbEvent &ev : events) {
            cal.push(ev);
            ref.push(ev);
        }
        EXPECT_EQ(cal.earliest(), base);
        // Drain one cycle at a time across the laps, checking each span.
        for (Cycle c = base; c <= base + 2 * WbCalendar::kNumBuckets;
             c += 7) {
            expectSameOrder(drainReference(ref, c), drainCalendar(cal, c));
        }
        expectSameOrder(drainReference(ref, kNeverCycle - 1),
                        drainCalendar(cal, kNeverCycle - 1));
        EXPECT_TRUE(cal.empty());
    } while (std::next_permutation(
        events.begin(), events.end(),
        [](const WbEvent &a, const WbEvent &b) { return b > a; }));
}

/** earliest() stays exact through pushes and partial drains, including
 *  the all-events-beyond-one-lap fallback scan. */
TEST(WbCalendar, EarliestTracksMinimumAcrossLaps)
{
    WbCalendar cal;
    cal.push({500, 0, 1});  // several laps out
    EXPECT_EQ(cal.earliest(), 500u);
    cal.push({130, 1, 2});
    EXPECT_EQ(cal.earliest(), 130u);
    cal.push({130 + WbCalendar::kNumBuckets, 2, 3});  // same bucket, later
    EXPECT_EQ(cal.earliest(), 130u);
    cal.push({7, 3, 4});
    EXPECT_EQ(cal.earliest(), 7u);

    std::vector<WbEvent> got = drainCalendar(cal, 7);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].done, 7u);
    EXPECT_EQ(cal.earliest(), 130u);

    got = drainCalendar(cal, 130 + WbCalendar::kNumBuckets - 1);
    ASSERT_EQ(got.size(), 1u);
    // Only the far-future events remain: forces the full-wheel fallback.
    EXPECT_EQ(cal.earliest(), 130 + WbCalendar::kNumBuckets);
}

/** Randomized interleaving of pushes and drains against the heap. The
 *  spread covers same-cycle ties and multi-lap distances; pushes always
 *  respect the `done >= last drained cycle + 1` contract. */
TEST(WbCalendar, RandomStressMatchesReferenceQueue)
{
    Rng rng(0xca1e5eed);
    WbCalendar cal;
    RefQueue ref;
    Cycle now = 0;
    SeqNum seq = 0;
    for (unsigned step = 0; step < 20'000; ++step) {
        const unsigned pushes = static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < pushes; ++i) {
            // Mostly near-future (dense same-cycle ties), occasionally
            // several laps out (memory-miss distances).
            const Cycle dist = rng.chance(0.1)
                                   ? rng.range(1, 300)
                                   : rng.range(1, 12);
            const WbEvent ev{now + dist,
                             static_cast<unsigned>(rng.below(192)), seq++};
            cal.push(ev);
            ref.push(ev);
        }
        now += rng.below(3);
        expectSameOrder(drainReference(ref, now), drainCalendar(cal, now));
        EXPECT_EQ(cal.size(), ref.size());
        if (!ref.empty())
            EXPECT_EQ(cal.earliest(), ref.top().done);
        else
            EXPECT_EQ(cal.earliest(), kNeverCycle);
    }
}

}  // namespace
}  // namespace stackscope::core
