/** Golden bit-identity suite: the batched cycle-record engine (packed
 *  records, idle-run folding, skip-ahead) must reproduce the per-cycle
 *  reference engine exactly — same cycle count, same instruction count,
 *  and every stack component equal to within 1e-9 (the only permitted
 *  difference is the summation-order change when an idle run folds its
 *  attribution into one multiply). See docs/performance.md. */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/ooo_core.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "stacks/stack.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope {
namespace {

using sim::SimOptions;
using sim::SimResult;
using stacks::SpeculationMode;
using stacks::Stage;

constexpr double kTol = 1e-9;

template <typename StackT>
void
expectStacksClose(const StackT &ref, const StackT &bat, const char *what)
{
    std::vector<double> ref_v;
    ref.forEach([&](auto, double v) { ref_v.push_back(v); });
    std::size_t i = 0;
    bat.forEach([&](auto c, double v) {
        EXPECT_NEAR(ref_v[i], v, kTol)
            << what << " component " << static_cast<int>(c);
        ++i;
    });
}

void
expectIdentical(const SimResult &ref, const SimResult &bat,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(ref.cycles, bat.cycles);
    EXPECT_EQ(ref.instrs, bat.instrs);
    EXPECT_EQ(ref.stats.branch_mispredicts, bat.stats.branch_mispredicts);
    EXPECT_EQ(ref.stats.l1d_load_misses, bat.stats.l1d_load_misses);
    EXPECT_EQ(ref.stats.wrong_path_dispatched,
              bat.stats.wrong_path_dispatched);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s)
        expectStacksClose(ref.cycle_stacks[s], bat.cycle_stacks[s],
                          "cycle stack");
    expectStacksClose(ref.flops_cycles, bat.flops_cycles, "flops stack");
}

SimResult
runOne(const sim::MachineConfig &machine, const trace::Workload &w,
       SpeculationMode mode, bool reference, std::uint64_t instrs,
       validate::ValidationPolicy policy = validate::ValidationPolicy::kOff)
{
    trace::SyntheticParams p = w.params;
    p.num_instrs = instrs;
    trace::SyntheticGenerator gen(p);
    SimOptions opt;
    opt.spec_mode = mode;
    opt.reference_engine = reference;
    // Identity is the property under test; the invariant suite covers
    // validation separately (short kSimple/kSpecCounters runs sit outside
    // the base-equality tolerance window by design).
    opt.validation = policy;
    return sim::simulate(machine, gen, opt);
}

/** The full Fig. 2 grid, every speculation mode, both engines. */
TEST(BatchedReference, Fig2GridAllSpecModes)
{
    for (const trace::Workload &w : trace::allSpecWorkloads()) {
        for (const char *mname : {"bdw", "knl"}) {
            const sim::MachineConfig machine = sim::machineByName(mname);
            for (SpeculationMode mode :
                 {SpeculationMode::kOracle, SpeculationMode::kSimple,
                  SpeculationMode::kSpecCounters}) {
                const SimResult ref =
                    runOne(machine, w, mode, /*reference=*/true, 10'000);
                const SimResult bat =
                    runOne(machine, w, mode, /*reference=*/false, 10'000);
                expectIdentical(ref, bat,
                                w.name + "@" + mname + " mode " +
                                    std::to_string(static_cast<int>(mode)));
            }
        }
    }
}

/** Warmup (measurement reset mid-run) must not perturb identity. */
TEST(BatchedReference, WarmupWindowIdentity)
{
    const sim::MachineConfig machine = sim::machineByName("bdw");
    trace::SyntheticParams p = trace::findWorkload("mcf").params;
    p.num_instrs = 20'000;
    trace::SyntheticGenerator gen(p);

    SimOptions opt;
    opt.warmup_instrs = 8'000;
    opt.validation = validate::ValidationPolicy::kStrict;

    opt.reference_engine = true;
    const SimResult ref = sim::simulate(machine, gen, opt);
    opt.reference_engine = false;
    const SimResult bat = sim::simulate(machine, gen, opt);
    expectIdentical(ref, bat, "mcf@bdw warmup");
}

/** Multicore shares an uncore (skip-ahead illegal there, batching still
 *  on): per-core results and the averaged stacks must stay identical. */
TEST(BatchedReference, MulticoreIdentity)
{
    const sim::MachineConfig machine = sim::machineByName("bdw");
    for (const char *wname : {"mcf", "lbm"}) {
        trace::SyntheticParams p = trace::findWorkload(wname).params;
        p.num_instrs = 8'000;
        trace::SyntheticGenerator gen(p);

        SimOptions opt;
        opt.validation = validate::ValidationPolicy::kWarn;

        opt.reference_engine = true;
        const sim::MulticoreResult ref =
            sim::simulateMulticore(machine, gen, 2, opt);
        opt.reference_engine = false;
        const sim::MulticoreResult bat =
            sim::simulateMulticore(machine, gen, 2, opt);

        ASSERT_EQ(ref.per_core.size(), bat.per_core.size());
        for (std::size_t c = 0; c < ref.per_core.size(); ++c)
            expectIdentical(ref.per_core[c], bat.per_core[c],
                            std::string(wname) + " core " +
                                std::to_string(c));
        EXPECT_TRUE(ref.validation.passed()) << ref.validation.summary();
        EXPECT_TRUE(bat.validation.passed()) << bat.validation.summary();
    }
}

/**
 * Regression for the stale-scoreboard blame bug: once the uop sequence
 * crosses the scoreboard's ring capacity a few times, a recycled entry
 * must never be consulted for blame (liveIncompleteProducer guard). A
 * dependence-heavy run long enough to wrap several times must keep both
 * engines identical and every invariant green under strict validation.
 */
TEST(BatchedReference, ScoreboardWrapBlameStaysIdentical)
{
    const sim::MachineConfig machine = sim::machineByName("bdw");
    // 30k uops cross the 4096-entry scoreboard ring 7+ times.
    for (const char *wname : {"mcf", "omnetpp", "bwaves"}) {
        const trace::Workload &w = trace::findWorkload(wname);
        const SimResult ref = runOne(machine, w, SpeculationMode::kOracle,
                                     /*reference=*/true, 30'000,
                                     validate::ValidationPolicy::kStrict);
        const SimResult bat = runOne(machine, w, SpeculationMode::kOracle,
                                     /*reference=*/false, 30'000,
                                     validate::ValidationPolicy::kStrict);
        expectIdentical(ref, bat, std::string("wrap ") + wname);
        EXPECT_TRUE(ref.validation.passed()) << ref.validation.summary();
        EXPECT_TRUE(bat.validation.passed()) << bat.validation.summary();
    }
}

/**
 * Heavy same-cycle writeback pressure: a wide ALU-dominated stream keeps
 * the calendar queue draining near-full groups of same-cycle completions
 * every cycle, while sparse long-latency loads park events several wheel
 * laps out. The accounting-visible tie order (WbEvent (done, seq)) and
 * multi-lap bucket sharing are exactly what this grid point stresses;
 * both engines must stay identical. (Validation stays off: this custom
 * mix sits outside the base-equality tolerance window, like the other
 * short synthetic runs — identity is the property under test.)
 */
TEST(BatchedReference, SameCycleWritebackPressureIdentity)
{
    trace::Workload w;
    w.name = "wbpressure";
    w.params.num_instrs = 0;  // set by runOne
    w.params.w_alu = 0.80;    // bursts of single-cycle completions
    w.params.w_mul = 0.05;    // a second latency class for mixed buckets
    w.params.w_load = 0.10;
    w.params.w_store = 0.02;
    w.params.w_branch = 0.03;
    w.params.chain_frac = 0.05;   // keep ILP high: full-width issue
    w.params.far_dep_frac = 0.10;
    w.params.second_src_frac = 0.05;
    w.params.hot_frac = 0.3;      // frequent misses hundreds of cycles out
    w.params.data_footprint = 8 << 20;
    for (const char *mname : {"bdw", "knl"}) {
        const sim::MachineConfig machine = sim::machineByName(mname);
        for (SpeculationMode mode :
             {SpeculationMode::kOracle, SpeculationMode::kSpecCounters}) {
            const SimResult ref =
                runOne(machine, w, mode, /*reference=*/true, 25'000);
            const SimResult bat =
                runOne(machine, w, mode, /*reference=*/false, 25'000);
            expectIdentical(ref, bat,
                            std::string("wbpressure@") + mname + " mode " +
                                std::to_string(static_cast<int>(mode)));
        }
    }
}

}  // namespace
}  // namespace stackscope
