/** Stall-mechanism tests: icache, dcache, branches, microcode, yields and
 *  load-store conflicts, each observed through the matching component. */

#include <gtest/gtest.h>

#include "test_core_config.hpp"
#include "trace/trace_builder.hpp"

namespace stackscope::core {
namespace {

using stacks::CpiComponent;
using stacks::Stage;
using testing::idealCoreParams;
using trace::TraceBuilder;

TEST(PipelineStalls, IcacheMissesShowAtDispatchFirst)
{
    CoreParams p = idealCoreParams();
    p.mem.perfect_icache = false;
    p.mem.l1i = {1 << 10, 2, 64};  // tiny L1I
    TraceBuilder b;
    // Walk a large code footprint sequentially: misses every 16 uops.
    for (int i = 0; i < 20000; ++i) {
        b.at(0x400000 + i * 4);
        b.alu();
    }
    OooCore core(p, b.build());
    core.run(0);
    const auto &disp = core.accountant(Stage::kDispatch).cycles();
    const auto &iss = core.accountant(Stage::kIssue).cycles();
    const auto &com = core.accountant(Stage::kCommit).cycles();
    EXPECT_GT(disp[CpiComponent::kIcache], 0.0);
    // Frontend components shrink toward the commit stage (§III-A).
    EXPECT_GE(disp[CpiComponent::kIcache], iss[CpiComponent::kIcache]);
    EXPECT_GE(iss[CpiComponent::kIcache], com[CpiComponent::kIcache]);
}

TEST(PipelineStalls, DcacheMissesShowAtCommitFirst)
{
    CoreParams p = idealCoreParams();
    p.mem.perfect_dcache = false;
    p.mem.uncore.mem_lat = 150;
    TraceBuilder b;
    for (int i = 0; i < 3000; ++i) {
        auto ld = b.load(0x100000 + i * 4096);
        b.alu({ld});
        b.alu();
        b.alu();
    }
    OooCore core(p, b.build());
    core.run(0);
    const auto &disp = core.accountant(Stage::kDispatch).cycles();
    const auto &iss = core.accountant(Stage::kIssue).cycles();
    const auto &com = core.accountant(Stage::kCommit).cycles();
    EXPECT_GT(com[CpiComponent::kDcache], 0.0);
    // Backend accounting starts soonest at commit, latest at dispatch
    // (the paper guarantees commit >= dispatch; issue lies in between
    // when aggregated with the other backend components).
    EXPECT_GE(com[CpiComponent::kDcache], disp[CpiComponent::kDcache] - 1e-9);
    EXPECT_GE(iss[CpiComponent::kDcache], disp[CpiComponent::kDcache] - 1e-9);
    const double be_iss = iss[CpiComponent::kDcache] +
                          iss[CpiComponent::kAluLat] +
                          iss[CpiComponent::kDepend] +
                          iss[CpiComponent::kOther];
    const double be_com = com[CpiComponent::kDcache] +
                          com[CpiComponent::kAluLat] +
                          com[CpiComponent::kDepend] +
                          com[CpiComponent::kOther];
    EXPECT_GE(be_com, be_iss - be_iss * 0.2);
}

TEST(PipelineStalls, MispredictionsCostCyclesAndShowAsBpred)
{
    CoreParams p = idealCoreParams();
    p.bpred.perfect = false;
    // One branch whose outcome follows an unlearnable pseudo-random
    // sequence.
    TraceBuilder b;
    std::uint64_t lfsr = 0xace1u;
    for (int i = 0; i < 5000; ++i) {
        b.alu();
        b.alu();
        b.alu();
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xb400u);
        b.at(0x400000);  // same branch PC every time
        b.branch((lfsr & 1) != 0);
    }
    OooCore core(p, b.build());
    core.run(0);
    EXPECT_GT(core.stats().branch_mispredicts, 500u);
    EXPECT_GT(core.stats().wrong_path_dispatched, 0u);
    EXPECT_GT(core.stats().squashed_uops, 0u);
    const auto &disp = core.accountant(Stage::kDispatch).cycles();
    EXPECT_GT(disp[CpiComponent::kBpred], 0.0);
    // Perfect prediction removes the cost.
    CoreParams ideal = idealCoreParams();
    TraceBuilder b2;
    lfsr = 0xace1u;
    for (int i = 0; i < 5000; ++i) {
        b2.alu();
        b2.alu();
        b2.alu();
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xb400u);
        b2.at(0x400000);
        b2.branch((lfsr & 1) != 0);
    }
    OooCore perfect(ideal, b2.build());
    perfect.run(0);
    EXPECT_LT(perfect.cycles() * 2, core.cycles());
}

TEST(PipelineStalls, WellPredictedBranchesAreCheap)
{
    CoreParams p = idealCoreParams();
    p.bpred.perfect = false;
    TraceBuilder b;
    for (int i = 0; i < 5000; ++i) {
        b.alu();
        b.alu();
        b.alu();
        b.at(0x400000);
        b.branch(true);  // always taken: trivially learnable
    }
    OooCore core(p, b.build());
    core.run(0);
    EXPECT_LT(core.stats().branch_mispredicts, 10u);
    EXPECT_NEAR(core.cpi(), 0.25, 0.05);
}

TEST(PipelineStalls, MicrocodeOccupiesDecoder)
{
    CoreParams p = idealCoreParams();
    TraceBuilder b;
    for (int i = 0; i < 2000; ++i) {
        b.microcoded(5);
        b.alu();
        b.alu();
        b.alu();
    }
    OooCore core(p, b.build());
    core.run(0);
    const auto &disp = core.accountant(Stage::kDispatch).cycles();
    EXPECT_GT(disp[CpiComponent::kMicrocode], 0.0);
    // Each microcoded uop holds the decoder 4 extra cycles; with 4 uops
    // per iteration the CPI is dominated by decode: ~5 cycles / 4 uops.
    EXPECT_GT(core.cpi(), 1.0);
}

TEST(PipelineStalls, YieldsFreezeTheCoreAndCountAsUnsched)
{
    CoreParams p = idealCoreParams();
    TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.alu();
    b.yield(500);
    for (int i = 0; i < 100; ++i)
        b.alu();
    OooCore core(p, b.build());
    core.run(0);
    EXPECT_GT(core.cycles(), 500u);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        EXPECT_NEAR(core.accountant(s).cycles()[CpiComponent::kUnsched],
                    500.0, 1.0)
            << toString(s);
    }
    EXPECT_NEAR(
        core.flopsAccountant().cycles()[stacks::FlopsComponent::kUnsched],
        500.0, 1.0);
}

TEST(PipelineStalls, LoadStoreConflictDelaysLoadAsOther)
{
    CoreParams p = idealCoreParams();
    TraceBuilder b;
    for (int i = 0; i < 2000; ++i) {
        auto slow = b.mul();
        auto slow2 = b.mul({slow});
        auto slow3 = b.mul({slow2});
        auto st = b.store(0x1000, {slow3});  // store waits on mul chain
        b.load(0x1000);  // aliases the pending store
        (void)st;
    }
    OooCore core(p, b.build());
    core.run(0);
    const auto &iss = core.accountant(Stage::kIssue).cycles();
    EXPECT_GT(iss[CpiComponent::kOther], 0.0);
}

TEST(PipelineStalls, DisabledAccountingProducesNoStacks)
{
    CoreParams p = idealCoreParams();
    p.accounting_enabled = false;
    TraceBuilder b;
    for (int i = 0; i < 1000; ++i)
        b.alu();
    OooCore core(p, b.build());
    core.run(0);
    EXPECT_GT(core.cycles(), 0u);
    EXPECT_DOUBLE_EQ(core.accountant(Stage::kDispatch).cycles().sum(), 0.0);
}

}  // namespace
}  // namespace stackscope::core
