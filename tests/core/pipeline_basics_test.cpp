/** Pipeline timing sanity: throughput and latency of simple traces. */

#include <gtest/gtest.h>

#include "test_core_config.hpp"
#include "trace/trace_builder.hpp"

namespace stackscope::core {
namespace {

using testing::idealCoreParams;
using trace::TraceBuilder;

double
runCpi(const CoreParams &params, std::unique_ptr<trace::TraceSource> trace)
{
    OooCore core(params, std::move(trace));
    core.run(1'000'000);
    EXPECT_TRUE(core.done());
    return core.cpi();
}

TEST(PipelineBasics, IndependentAlusReachFullWidth)
{
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.alu();
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 0.25, 0.02);
}

TEST(PipelineBasics, DependentAluChainIsSerial)
{
    TraceBuilder b;
    auto prev = b.alu();
    for (int i = 0; i < 2000; ++i)
        prev = b.alu({prev});
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 1.0, 0.05);
}

TEST(PipelineBasics, MulChainExposesLatency)
{
    TraceBuilder b;
    auto prev = b.mul();
    for (int i = 0; i < 1000; ++i)
        prev = b.mul({prev});
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 3.0, 0.1);  // lat_mul = 3
}

TEST(PipelineBasics, LoadChainExposesL1Latency)
{
    TraceBuilder b;
    auto prev = b.load(0x1000);
    for (int i = 0; i < 1000; ++i)
        prev = b.load(0x1000 + (i % 8) * 8, {prev});
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 4.0, 0.1);  // l1_lat = 4
}

TEST(PipelineBasics, LoadPortsLimitThroughput)
{
    // Independent loads, 2 load ports, width 4: CPI -> 0.5.
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.load(0x1000 + (i % 64) * 8);
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 0.5, 0.03);
}

TEST(PipelineBasics, UnpipelinedDividerSerializes)
{
    TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.div();  // independent, but only one unpipelined divider
    const double cpi = runCpi(idealCoreParams(), b.build());
    EXPECT_NEAR(cpi, 20.0, 1.0);  // lat_div = 20
}

TEST(PipelineBasics, TwoMulUnitsDoubleThroughput)
{
    // Independent muls: pipelined, 2 units -> 2 per cycle -> CPI 0.5.
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.mul();
    CoreParams p = idealCoreParams();
    const double cpi = runCpi(p, b.build());
    EXPECT_NEAR(cpi, 0.5, 0.05);
}

TEST(PipelineBasics, RobLimitsMemoryParallelism)
{
    // A long-latency load followed by many dependents of a *later* load
    // cannot overlap beyond the ROB size.
    CoreParams p = idealCoreParams();
    p.mem.perfect_dcache = false;
    p.mem.prefetch.enable = false;  // isolate ROB-bound MLP
    p.mem.l2_mshrs = 64;
    p.mem.uncore.mem_lat = 200;
    p.mem.uncore.mem_queue_slots = 64;
    p.mem.uncore.mem_service = 1;
    p.rob_size = 16;

    TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.load(0x100000 + i * 4096);  // all miss, all independent
    const double cpi_small_rob = runCpi(p, b.build());

    p.rob_size = 128;
    p.rs_size = 64;
    TraceBuilder b2;
    for (int i = 0; i < 2000; ++i)
        b2.load(0x100000 + i * 4096);
    const double cpi_big_rob = runCpi(p, b2.build());

    // A bigger ROB exposes much more memory-level parallelism.
    EXPECT_GT(cpi_small_rob, cpi_big_rob * 3);
}

TEST(PipelineBasics, CommitWidthBoundsIpc)
{
    CoreParams p = idealCoreParams();
    p.commit_width = 2;  // narrowest stage
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.alu();
    const double cpi = runCpi(p, b.build());
    EXPECT_NEAR(cpi, 0.5, 0.03);
}

TEST(PipelineBasics, EmptyTraceFinishesImmediately)
{
    TraceBuilder b;
    OooCore core(idealCoreParams(), b.build());
    core.run(1000);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.stats().instrs_committed, 0u);
}

TEST(PipelineBasics, StatsCountCommitted)
{
    TraceBuilder b;
    for (int i = 0; i < 123; ++i)
        b.alu();
    OooCore core(idealCoreParams(), b.build());
    core.run(0);
    EXPECT_EQ(core.stats().instrs_committed, 123u);
    EXPECT_GT(core.cycles(), 0u);
}

TEST(PipelineBasics, DeterministicAcrossRuns)
{
    auto make = [] {
        TraceBuilder b;
        auto prev = b.load(0x40);
        for (int i = 0; i < 500; ++i) {
            prev = b.mul({prev});
            b.alu();
            b.store(0x80 + i * 8, {prev});
        }
        return b.build();
    };
    OooCore c1(idealCoreParams(), make());
    OooCore c2(idealCoreParams(), make());
    c1.run(0);
    c2.run(0);
    EXPECT_EQ(c1.cycles(), c2.cycles());
}

}  // namespace
}  // namespace stackscope::core
