/** Integration tests: the four accountants attached to the live core,
 *  checking the paper's structural invariants end to end. */

#include <gtest/gtest.h>

#include "test_core_config.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::core {
namespace {

using stacks::CpiComponent;
using stacks::SpeculationMode;
using stacks::Stage;
using testing::idealCoreParams;

CoreParams
realisticParams()
{
    CoreParams p = idealCoreParams();
    p.mem.perfect_icache = false;
    p.mem.perfect_dcache = false;
    p.bpred.perfect = false;
    p.rob_size = 64;
    p.rs_size = 32;
    return p;
}

std::unique_ptr<trace::TraceSource>
mixedTrace(std::uint64_t n = 200'000)
{
    trace::SyntheticParams sp = trace::findWorkload("gcc").params;
    sp.num_instrs = n;
    return std::make_unique<trace::SyntheticGenerator>(sp);
}

TEST(AccountingIntegration, StacksSumToTotalCycles)
{
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    const double cycles = static_cast<double>(core.cycles());
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        EXPECT_NEAR(core.accountant(s).cycles().sum(), cycles,
                    cycles * 1e-9 + 2.0)
            << toString(s);
    }
    EXPECT_NEAR(core.flopsAccountant().cycles().sum(), cycles, 2.0);
}

TEST(AccountingIntegration, BaseComponentEqualAcrossStages)
{
    // Oracle mode: wrong-path is excluded everywhere, so every correct
    // uop contributes 1/W at each stage (§III-A).
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    const double base_d =
        core.accountant(Stage::kDispatch).cycles()[CpiComponent::kBase];
    const double base_i =
        core.accountant(Stage::kIssue).cycles()[CpiComponent::kBase];
    const double base_c =
        core.accountant(Stage::kCommit).cycles()[CpiComponent::kBase];
    EXPECT_NEAR(base_d, base_c, base_c * 0.001 + 2.0);
    EXPECT_NEAR(base_i, base_c, base_c * 0.001 + 2.0);
}

TEST(AccountingIntegration, FrontendComponentsShrinkTowardCommit)
{
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    auto fe_sum = [&](Stage s) {
        const auto &c = core.accountant(s).cycles();
        return c[CpiComponent::kIcache] + c[CpiComponent::kBpred] +
               c[CpiComponent::kMicrocode];
    };
    const double d = fe_sum(Stage::kDispatch);
    const double i = fe_sum(Stage::kIssue);
    const double c = fe_sum(Stage::kCommit);
    const double slack = d * 0.02 + 5.0;
    EXPECT_GE(d, i - slack);
    EXPECT_GE(i, c - slack);
}

TEST(AccountingIntegration, BackendComponentsGrowTowardCommit)
{
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    auto be_sum = [&](Stage s) {
        const auto &c = core.accountant(s).cycles();
        return c[CpiComponent::kDcache] + c[CpiComponent::kAluLat] +
               c[CpiComponent::kDepend];
    };
    const double d = be_sum(Stage::kDispatch);
    const double i = be_sum(Stage::kIssue);
    const double c = be_sum(Stage::kCommit);
    const double slack = c * 0.05 + 5.0;
    EXPECT_LE(d, i + slack);
    EXPECT_LE(i, c + slack);
}

TEST(AccountingIntegration, AllComponentsNonNegative)
{
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        core.accountant(s).cycles().forEach(
            [&](CpiComponent, double v) { EXPECT_GE(v, 0.0); });
    }
    core.flopsAccountant().cycles().forEach(
        [&](stacks::FlopsComponent, double v) { EXPECT_GE(v, 0.0); });
}

TEST(AccountingIntegration, SpecCountersApproximateOracle)
{
    // §III-B: the speculative-counter architecture reproduces the oracle
    // attribution closely.
    CoreParams oracle_params = realisticParams();
    oracle_params.spec_mode = SpeculationMode::kOracle;
    OooCore oracle(oracle_params, mixedTrace());
    oracle.run(0);

    CoreParams sc_params = realisticParams();
    sc_params.spec_mode = SpeculationMode::kSpecCounters;
    OooCore sc(sc_params, mixedTrace());
    sc.run(0);

    ASSERT_EQ(oracle.cycles(), sc.cycles());  // timing is unaffected
    const auto &od = oracle.accountant(Stage::kDispatch).cycles();
    const auto &sd = sc.accountant(Stage::kDispatch).cycles();
    const double total = od.sum();
    EXPECT_NEAR(sd.sum(), total, total * 0.001 + 2.0);
    // The bpred component agrees within a few percent of total cycles.
    EXPECT_NEAR(sd[CpiComponent::kBpred], od[CpiComponent::kBpred],
                total * 0.05);
}

TEST(AccountingIntegration, SimpleModeBaseMatchesCommitAfterFixup)
{
    CoreParams p = realisticParams();
    p.spec_mode = SpeculationMode::kSimple;
    OooCore core(p, mixedTrace());
    core.run(0);
    const double base_d =
        core.accountant(Stage::kDispatch).cycles()[CpiComponent::kBase];
    const double base_c =
        core.accountant(Stage::kCommit).cycles()[CpiComponent::kBase];
    // After the fixup the dispatch base cannot exceed the commit base.
    EXPECT_LE(base_d, base_c + 1e-6);
    // And the stack still sums to the cycle count.
    EXPECT_NEAR(core.accountant(Stage::kDispatch).cycles().sum(),
                static_cast<double>(core.cycles()), 2.0);
}

TEST(AccountingIntegration, SimpleModeMovesWrongPathToBpred)
{
    // With mispredictions present, kSimple attributes at least as much to
    // bpred at dispatch as the base surplus implies.
    CoreParams p = realisticParams();
    p.spec_mode = SpeculationMode::kSimple;
    OooCore core(p, mixedTrace());
    core.run(0);
    ASSERT_GT(core.stats().branch_mispredicts, 100u);
    EXPECT_GT(core.accountant(Stage::kDispatch)
                  .cycles()[CpiComponent::kBpred],
              0.0);
}

TEST(AccountingIntegration, TimingIndependentOfAccounting)
{
    // Accounting must be a pure observer: cycles identical with it off.
    CoreParams on = realisticParams();
    CoreParams off = realisticParams();
    off.accounting_enabled = false;
    OooCore a(on, mixedTrace());
    OooCore b(off, mixedTrace());
    a.run(0);
    b.run(0);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.stats().instrs_committed, b.stats().instrs_committed);
}

TEST(AccountingIntegration, CpiMatchesCyclesOverInstructions)
{
    OooCore core(realisticParams(), mixedTrace());
    core.run(0);
    const auto cpi_stack =
        core.accountant(Stage::kCommit).cpi(core.stats().instrs_committed);
    EXPECT_NEAR(cpi_stack.sum(), core.cpi(), core.cpi() * 1e-6 + 1e-6);
}

}  // namespace
}  // namespace stackscope::core
