/** RFC 4180 CSV encoding: plain fields stay byte-identical, fields with
 *  commas/quotes/newlines get quoted with doubled quotes, and
 *  parseCsvLine() inverts csvField()-joined rows exactly. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "stacks/stack.hpp"

namespace stackscope::analysis {
namespace {

TEST(Csv, PlainFieldsPassThroughUnchanged)
{
    EXPECT_EQ(csvField("mcf"), "mcf");
    EXPECT_EQ(csvField(""), "");
    EXPECT_EQ(csvField("12.5"), "12.5");
    EXPECT_EQ(csvField("with space"), "with space");
    EXPECT_EQ(csvField("semi;colon"), "semi;colon");
}

TEST(Csv, SpecialFieldsAreQuoted)
{
    EXPECT_EQ(csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvField("cr\rhere"), "\"cr\rhere\"");
    EXPECT_EQ(csvField("\""), "\"\"\"\"");
    EXPECT_EQ(csvField(","), "\",\"");
}

TEST(Csv, ParseLineHandlesQuotedFields)
{
    const auto fields = parseCsvLine("a,\"b,c\",\"say \"\"hi\"\"\",,d");
    ASSERT_EQ(fields.size(), 5u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b,c");
    EXPECT_EQ(fields[2], "say \"hi\"");
    EXPECT_EQ(fields[3], "");
    EXPECT_EQ(fields[4], "d");
}

TEST(Csv, FieldParseRoundTrip)
{
    const std::vector<std::string> nasty = {
        "plain",       "",          "comma,inside", "\"quoted\"",
        "multi\nline", "trail,",    ",lead",        "both\"and,comma",
        "crlf\r\n",    "end quote\"",
    };
    std::string line;
    for (std::size_t i = 0; i < nasty.size(); ++i) {
        if (i > 0)
            line += ',';
        line += csvField(nasty[i]);
    }
    const auto parsed = parseCsvLine(line);
    ASSERT_EQ(parsed.size(), nasty.size());
    for (std::size_t i = 0; i < nasty.size(); ++i)
        EXPECT_EQ(parsed[i], nasty[i]) << "field " << i;
}

/** Stack rows: a label that needs quoting must parse back to the same
 *  label with the same number of value columns. */
TEST(Csv, StackRowWithQuotedLabelParsesBack)
{
    stacks::CpiStack stack;
    const std::string label = "mcf, 4-wide \"ideal\"";
    const std::string row = toCsvRow(label, stack);
    const auto fields = parseCsvLine(row);

    const auto header = parseCsvLine(cpiStackCsvHeader());
    ASSERT_EQ(fields.size(), header.size());
    EXPECT_EQ(fields[0], label);
    for (std::size_t i = 1; i < fields.size(); ++i)
        EXPECT_EQ(fields[i], "0") << "column " << i;
}

}  // namespace
}  // namespace stackscope::analysis
