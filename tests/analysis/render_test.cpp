/** Tests for stack rendering and CSV export. */

#include "analysis/render.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/csv.hpp"

namespace stackscope::analysis {
namespace {

using stacks::CpiComponent;
using stacks::CpiStack;
using stacks::FlopsComponent;
using stacks::FlopsStack;

CpiStack
sampleCpi()
{
    CpiStack s;
    s[CpiComponent::kBase] = 0.25;
    s[CpiComponent::kDcache] = 0.30;
    s[CpiComponent::kBpred] = 0.10;
    return s;
}

TEST(Render, CpiStackShowsComponentsAndTotal)
{
    const std::string out = renderCpiStack(sampleCpi(), "test");
    EXPECT_NE(out.find("Base"), std::string::npos);
    EXPECT_NE(out.find("Dcache"), std::string::npos);
    EXPECT_NE(out.find("TOTAL"), std::string::npos);
    EXPECT_NE(out.find("0.650"), std::string::npos);
    // Zero components are suppressed.
    EXPECT_EQ(out.find("Microcode"), std::string::npos);
}

TEST(Render, SideBySideStacks)
{
    CpiStack a = sampleCpi();
    CpiStack b = sampleCpi();
    b[CpiComponent::kIcache] = 0.5;
    const std::string out =
        renderCpiStacks({a, b}, {"dispatch", "commit"}, "head");
    EXPECT_NE(out.find("head"), std::string::npos);
    EXPECT_NE(out.find("dispatch"), std::string::npos);
    EXPECT_NE(out.find("commit"), std::string::npos);
    EXPECT_NE(out.find("Icache"), std::string::npos);
}

TEST(Render, FlopsStackWithUnits)
{
    FlopsStack f;
    f[FlopsComponent::kBase] = 1.7e12;
    f[FlopsComponent::kMem] = 0.9e12;
    const std::string out = renderFlopsStack(f, "conv", "flops/s");
    EXPECT_NE(out.find("conv"), std::string::npos);
    EXPECT_NE(out.find("flops/s"), std::string::npos);
    EXPECT_NE(out.find("Memory"), std::string::npos);
}

TEST(Render, FormatFlopsPicksUnit)
{
    EXPECT_EQ(formatFlops(1.73e12), "1.73 TFLOPS");
    EXPECT_EQ(formatFlops(5.5e9), "5.50 GFLOPS");
    EXPECT_EQ(formatFlops(2.0e6), "2.00 MFLOPS");
}

TEST(Csv, CpiHeaderAndRowAlign)
{
    const std::string header = cpiStackCsvHeader("workload");
    const std::string row = toCsvRow("mcf", sampleCpi());
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_NE(header.find("workload,Base,"), std::string::npos);
    EXPECT_NE(row.find("mcf,0.25,"), std::string::npos);
}

TEST(Csv, FlopsHeaderAndRowAlign)
{
    FlopsStack f;
    f[FlopsComponent::kBase] = 0.5;
    const std::string header = flopsStackCsvHeader();
    const std::string row = toCsvRow("sgemm", f);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
}

TEST(Csv, GenericRow)
{
    EXPECT_EQ(toCsvRow("x", std::vector<double>{1.0, 2.5}), "x,1,2.5");
}

}  // namespace
}  // namespace stackscope::analysis
