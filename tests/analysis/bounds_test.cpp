/** Tests for the multi-stage bounds and §V-A error metric. */

#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

namespace stackscope::analysis {
namespace {

using stacks::CpiComponent;
using stacks::CpiStack;

MultiStageStacks
sample()
{
    MultiStageStacks ms;
    ms.dispatch[CpiComponent::kBpred] = 0.39;
    ms.issue[CpiComponent::kBpred] = 0.20;
    ms.commit[CpiComponent::kBpred] = 0.11;
    ms.dispatch[CpiComponent::kDcache] = 0.06;
    ms.issue[CpiComponent::kDcache] = 0.25;
    ms.commit[CpiComponent::kDcache] = 0.30;
    return ms;
}

TEST(Bounds, MinMaxAcrossStages)
{
    const MultiStageStacks ms = sample();
    const ComponentBounds b = componentBounds(ms, CpiComponent::kBpred);
    EXPECT_DOUBLE_EQ(b.lo, 0.11);
    EXPECT_DOUBLE_EQ(b.hi, 0.39);
    EXPECT_TRUE(b.contains(0.33));
    EXPECT_FALSE(b.contains(0.40));
    EXPECT_FALSE(b.contains(0.10));
}

TEST(Bounds, AtAccessor)
{
    const MultiStageStacks ms = sample();
    EXPECT_DOUBLE_EQ(ms.at(stacks::Stage::kDispatch)[CpiComponent::kBpred],
                     0.39);
    EXPECT_DOUBLE_EQ(ms.at(stacks::Stage::kIssue)[CpiComponent::kBpred],
                     0.20);
    EXPECT_DOUBLE_EQ(ms.at(stacks::Stage::kCommit)[CpiComponent::kBpred],
                     0.11);
}

TEST(Bounds, SingleStackErrorIsSigned)
{
    const MultiStageStacks ms = sample();
    // Paper mcf/BDW: actual bpred reduction 0.33.
    EXPECT_NEAR(singleStackError(ms.dispatch, CpiComponent::kBpred, 0.33),
                0.06, 1e-12);
    EXPECT_NEAR(singleStackError(ms.commit, CpiComponent::kBpred, 0.33),
                -0.22, 1e-12);
}

TEST(Bounds, MultiStageErrorZeroWithinBounds)
{
    const MultiStageStacks ms = sample();
    EXPECT_DOUBLE_EQ(multiStageError(ms, CpiComponent::kBpred, 0.33), 0.0);
    EXPECT_DOUBLE_EQ(multiStageError(ms, CpiComponent::kBpred, 0.11), 0.0);
    EXPECT_DOUBLE_EQ(multiStageError(ms, CpiComponent::kBpred, 0.39), 0.0);
}

TEST(Bounds, MultiStageErrorUsesClosestComponentOutside)
{
    const MultiStageStacks ms = sample();
    // Actual above the upper bound: error = hi - actual (negative).
    EXPECT_NEAR(multiStageError(ms, CpiComponent::kBpred, 0.50), -0.11,
                1e-12);
    // Actual below the lower bound: error = lo - actual (positive).
    EXPECT_NEAR(multiStageError(ms, CpiComponent::kBpred, 0.05), 0.06,
                1e-12);
}

TEST(Bounds, MultiStageErrorNeverLargerThanBestSingleStack)
{
    // Structural property from §V-A: the multi-stage error is bounded by
    // the magnitude of every single stack's error.
    const MultiStageStacks ms = sample();
    for (double actual : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        const double multi =
            std::abs(multiStageError(ms, CpiComponent::kDcache, actual));
        for (const CpiStack *s : {&ms.dispatch, &ms.issue, &ms.commit}) {
            const double single =
                std::abs(singleStackError(*s, CpiComponent::kDcache, actual));
            EXPECT_LE(multi, single + 1e-12) << actual;
        }
    }
}

}  // namespace
}  // namespace stackscope::analysis
