/** Tests for box-plot construction and rendering. */

#include "analysis/boxplot.hpp"

#include <gtest/gtest.h>

namespace stackscope::analysis {
namespace {

TEST(BoxPlot, MakeBoxComputesSummary)
{
    const BoxPlotEntry e = makeBox("disp", {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(e.label, "disp");
    EXPECT_EQ(e.summary.count, 5u);
    EXPECT_DOUBLE_EQ(e.summary.median, 3.0);
    EXPECT_DOUBLE_EQ(e.summary.min, 1.0);
    EXPECT_DOUBLE_EQ(e.summary.max, 5.0);
}

TEST(BoxPlot, RenderContainsLabelsAndStats)
{
    std::vector<BoxPlotEntry> boxes;
    boxes.push_back(makeBox("dispatch", {-0.1, 0.0, 0.1, 0.2}));
    boxes.push_back(makeBox("commit", {-0.3, -0.2, -0.1, 0.0}));
    const std::string out = renderBoxPlot(boxes, "Icache error");
    EXPECT_NE(out.find("Icache error"), std::string::npos);
    EXPECT_NE(out.find("dispatch"), std::string::npos);
    EXPECT_NE(out.find("commit"), std::string::npos);
    EXPECT_NE(out.find("med="), std::string::npos);
}

TEST(BoxPlot, RenderEmptyGroup)
{
    const std::string out = renderBoxPlot({}, "empty");
    EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(BoxPlot, RenderDegenerateAllZero)
{
    std::vector<BoxPlotEntry> boxes;
    boxes.push_back(makeBox("zeros", {0.0, 0.0, 0.0}));
    const std::string out = renderBoxPlot(boxes, "t");
    EXPECT_NE(out.find("zeros"), std::string::npos);
}

TEST(BoxPlot, RowsHaveConsistentWidth)
{
    std::vector<BoxPlotEntry> boxes;
    boxes.push_back(makeBox("a", {-1.0, 0.0, 2.0}));
    boxes.push_back(makeBox("bb", {-0.5, 0.5, 1.0}));
    const std::string out = renderBoxPlot(boxes, "title", 40);
    // Each box row contains the 42-char bracketed area.
    EXPECT_NE(out.find('['), std::string::npos);
    EXPECT_NE(out.find(']'), std::string::npos);
}

}  // namespace
}  // namespace stackscope::analysis
