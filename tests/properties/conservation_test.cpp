/** Cross-cutting conservation properties: whatever knobs are turned,
 *  cycles are conserved and attributed exactly once. */

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/hpc_kernels.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope {
namespace {

using sim::SimOptions;
using sim::SimResult;
using stacks::CpiComponent;
using stacks::FlopsComponent;
using stacks::SpeculationMode;
using stacks::Stage;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 50'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

TEST(Conservation, AllSpeculationModesConserveCycles)
{
    for (SpeculationMode mode :
         {SpeculationMode::kOracle, SpeculationMode::kSimple,
          SpeculationMode::kSpecCounters}) {
        for (const char *w : {"deepsjeng", "mcf", "exchange2"}) {
            auto gen = shortWorkload(w);
            SimOptions opt;
            opt.spec_mode = mode;
            const SimResult r = sim::simulate(sim::bdwConfig(), gen, opt);
            for (Stage s :
                 {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
                EXPECT_NEAR(r.cycle_stacks[static_cast<std::size_t>(s)]
                                .sum(),
                            static_cast<double>(r.cycles),
                            r.cycles * 0.002 + 2.0)
                    << w << "/" << static_cast<int>(mode) << "/"
                    << toString(s);
            }
        }
    }
}

TEST(Conservation, SpeculationModesDoNotChangeTiming)
{
    // Accounting strategy is a pure observer: identical cycle counts.
    auto gen = shortWorkload("mcf");
    Cycle cycles[3];
    int i = 0;
    for (SpeculationMode mode :
         {SpeculationMode::kOracle, SpeculationMode::kSimple,
          SpeculationMode::kSpecCounters}) {
        SimOptions opt;
        opt.spec_mode = mode;
        cycles[i++] = sim::simulate(sim::bdwConfig(), gen, opt).cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[0], cycles[2]);
}

TEST(Conservation, IntegerWorkloadHasZeroFlopsBase)
{
    // A workload with no vector FP can only accumulate non-base FLOPS
    // components; the whole stack is "lost" peak.
    auto gen = shortWorkload("gcc");
    const SimResult r = sim::simulate(sim::skxConfig(), gen);
    EXPECT_DOUBLE_EQ(r.flops_cycles[FlopsComponent::kBase], 0.0);
    EXPECT_DOUBLE_EQ(r.flops_cycles[FlopsComponent::kNonFma], 0.0);
    EXPECT_DOUBLE_EQ(r.flops_cycles[FlopsComponent::kMask], 0.0);
    EXPECT_EQ(r.stats.flops_issued, 0u);
    EXPECT_NEAR(r.flops_cycles.sum(), static_cast<double>(r.cycles), 2.0);
}

TEST(Conservation, HpcKernelFlopsMatchStackBase)
{
    // The base component in flops units equals the actually issued flops.
    const trace::HpcTarget target{16, trace::SgemmCodegen::kKnlJit};
    auto tr = trace::makeSgemmTrace({1024, 64, 1024}, target, 40'000);
    const SimResult r = sim::simulate(sim::knlConfig(), *tr);
    const double base_cycles = r.flops_cycles[FlopsComponent::kBase];
    const double peak_per_cycle = 2.0 * 2 * 16;  // 2 VPUs x 16 lanes x FMA
    EXPECT_NEAR(base_cycles * peak_per_cycle,
                static_cast<double>(r.stats.flops_issued),
                r.stats.flops_issued * 0.001 + 1.0);
}

TEST(Conservation, PerfectEverythingLeavesOnlyPipelineComponents)
{
    auto gen = shortWorkload("gcc");
    sim::Idealization ideal;
    ideal.perfect_icache = true;
    ideal.perfect_dcache = true;
    ideal.perfect_bpred = true;
    ideal.single_cycle_alu = true;
    const SimResult r =
        sim::simulate(sim::applyIdealization(sim::bdwConfig(), ideal), gen);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        const auto &c = r.cpiStack(s);
        EXPECT_NEAR(c[CpiComponent::kIcache], 0.0, 1e-9);
        EXPECT_NEAR(c[CpiComponent::kDcache], 0.0, 1e-9);
        EXPECT_NEAR(c[CpiComponent::kBpred], 0.0, 1e-9);
        // L1-hit loads are still multi-cycle ops, so a whiff of ALU-lat
        // blame survives even with 1-cycle arithmetic.
        EXPECT_NEAR(c[CpiComponent::kAluLat], 0.0, 0.01);
        // Only base, dependences and residual structural slots remain.
        EXPECT_NEAR(c[CpiComponent::kBase] + c[CpiComponent::kDepend] +
                        c[CpiComponent::kOther] + c[CpiComponent::kAluLat] +
                        c[CpiComponent::kMicrocode],
                    r.cpi, r.cpi * 0.001);
    }
}

TEST(Conservation, IdealizationNeverHurtsMuch)
{
    // Property over the registry: idealizing any single structure never
    // increases CPI by more than noise (second-order effects can hurt a
    // tiny bit, e.g. prefetch retraining).
    const sim::Idealization ideals[] = {
        {.perfect_icache = true},
        {.perfect_dcache = true},
        {.perfect_bpred = true},
        {.single_cycle_alu = true},
    };
    for (const char *w : {"bwaves", "povray", "x264", "lbm"}) {
        auto gen = shortWorkload(w, 30'000);
        const SimResult real = sim::simulate(sim::bdwConfig(), gen);
        for (const sim::Idealization &ideal : ideals) {
            const SimResult r = sim::simulate(
                sim::applyIdealization(sim::bdwConfig(), ideal), gen);
            EXPECT_LE(r.cpi, real.cpi * 1.05 + 0.02)
                << w << " with " << sim::Idealization(ideal).label();
        }
    }
}

}  // namespace
}  // namespace stackscope
