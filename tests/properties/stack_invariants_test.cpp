/** Parameterized property tests: the paper's structural stack invariants
 *  must hold for every workload x machine combination. */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope {
namespace {

using sim::MachineConfig;
using sim::SimResult;
using stacks::CpiComponent;
using stacks::Stage;

class StackInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
  protected:
    static SimResult
    run(const std::string &workload, const std::string &machine)
    {
        trace::SyntheticParams p = trace::findWorkload(workload).params;
        p.num_instrs = 60'000;
        trace::SyntheticGenerator gen(p);
        return sim::simulate(sim::machineByName(machine), gen);
    }
};

TEST_P(StackInvariants, StacksSumToCpi)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        EXPECT_NEAR(r.cpiStack(s).sum(), r.cpi, r.cpi * 0.001 + 1e-6)
            << toString(s);
    }
}

TEST_P(StackInvariants, FlopsStackSumsToCycles)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    EXPECT_NEAR(r.flops_cycles.sum(), static_cast<double>(r.cycles),
                r.cycles * 0.001 + 2.0);
}

TEST_P(StackInvariants, AllComponentsNonNegative)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
        r.cpiStack(s).forEach([&](CpiComponent c, double v) {
            EXPECT_GE(v, 0.0) << toString(s) << "/" << componentName(c);
        });
    }
}

TEST_P(StackInvariants, BaseEqualAcrossStages)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    const double base_c = r.cpiStack(Stage::kCommit)[CpiComponent::kBase];
    for (Stage s : {Stage::kDispatch, Stage::kIssue}) {
        EXPECT_NEAR(r.cpiStack(s)[CpiComponent::kBase], base_c,
                    base_c * 0.005 + 1e-4)
            << toString(s);
    }
}

TEST_P(StackInvariants, FrontendComponentsOrdered)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    auto fe = [&](Stage s) {
        const auto &c = r.cpiStack(s);
        return c[CpiComponent::kIcache] + c[CpiComponent::kBpred] +
               c[CpiComponent::kMicrocode];
    };
    const double slack = r.cpi * 0.03 + 0.01;
    EXPECT_GE(fe(Stage::kDispatch), fe(Stage::kIssue) - slack);
    EXPECT_GE(fe(Stage::kIssue), fe(Stage::kCommit) - slack);
}

TEST_P(StackInvariants, BackendComponentsOrdered)
{
    const auto [workload, machine] = GetParam();
    const SimResult r = run(workload, machine);
    auto be = [&](Stage s) {
        const auto &c = r.cpiStack(s);
        return c[CpiComponent::kDcache] + c[CpiComponent::kAluLat] +
               c[CpiComponent::kDepend] + c[CpiComponent::kOther];
    };
    const double slack = r.cpi * 0.03 + 0.01;
    EXPECT_LE(be(Stage::kDispatch), be(Stage::kIssue) + slack);
    EXPECT_LE(be(Stage::kIssue), be(Stage::kCommit) + slack);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllMachines, StackInvariants,
    ::testing::Combine(
        ::testing::Values("mcf", "cactus", "bwaves", "povray", "imagick",
                          "gcc", "deepsjeng", "exchange2", "lbm", "x264"),
        ::testing::Values("bdw", "knl", "skx")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>
           &info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace stackscope
