/** Parameterized sweep: every registry workload simulates successfully,
 *  deterministically and within sane CPI ranges on every machine. */

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/hpc_kernels.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope {
namespace {

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, RunsOnAllMachinesWithSaneCpi)
{
    trace::SyntheticParams p = trace::findWorkload(GetParam()).params;
    p.num_instrs = 40'000;
    trace::SyntheticGenerator gen(p);
    for (const std::string &machine : sim::allMachineNames()) {
        const sim::SimResult r =
            sim::simulate(sim::machineByName(machine), gen);
        EXPECT_EQ(r.instrs, 40'000u) << machine;
        // CPI must be above the width bound and below an absurdity bound.
        const double min_cpi =
            1.0 /
            sim::machineByName(machine).core.effectiveWidth();
        EXPECT_GE(r.cpi, min_cpi - 1e-9) << machine;
        EXPECT_LT(r.cpi, 25.0) << machine;
    }
}

TEST_P(WorkloadSweep, CloneDeterminism)
{
    trace::SyntheticParams p = trace::findWorkload(GetParam()).params;
    p.num_instrs = 20'000;
    trace::SyntheticGenerator gen(p);
    const sim::SimResult a = sim::simulate(sim::bdwConfig(), gen);
    const sim::SimResult b = sim::simulate(sim::bdwConfig(), gen);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.branch_mispredicts, b.stats.branch_mispredicts);
    EXPECT_EQ(a.stats.l1d_load_misses, b.stats.l1d_load_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, WorkloadSweep,
    ::testing::ValuesIn(trace::allSpecWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

class HpcSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HpcSweep, KernelsRunOnKnlAndSkx)
{
    const trace::HpcBenchmark &bm = trace::deepBenchSuite()[GetParam()];
    const struct
    {
        const char *machine;
        trace::SgemmCodegen style;
    } targets[] = {
        {"knl", trace::SgemmCodegen::kKnlJit},
        {"skx", trace::SgemmCodegen::kSkxBroadcast},
    };
    for (const auto &t : targets) {
        const sim::MachineConfig m = sim::machineByName(t.machine);
        auto trace = bm.make({m.core.flops_vec_lanes, t.style}, 30'000);
        const sim::SimResult r = sim::simulate(m, *trace);
        EXPECT_GT(r.instrs, 29'000u) << bm.name << " on " << t.machine;
        EXPECT_GT(r.stats.flops_issued, 0u) << bm.name;
        // The FLOPS base fraction is positive and below peak.
        const double base_frac =
            r.flops_cycles[stacks::FlopsComponent::kBase] /
            static_cast<double>(r.cycles);
        EXPECT_GT(base_frac, 0.0) << bm.name;
        EXPECT_LE(base_frac, 1.0) << bm.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DeepBenchSample, HpcSweep,
    ::testing::Values(0, 4, 8, 12, 16, 20, 26, 32, 38, 44),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        return trace::deepBenchSuite()[info.param].name;
    });

}  // namespace
}  // namespace stackscope
