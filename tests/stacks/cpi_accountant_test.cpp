/** Unit tests for the Table II per-stage CPI accounting algorithms,
 *  driven by hand-constructed CycleState sequences. */

#include "stacks/cpi_accountant.hpp"

#include <gtest/gtest.h>

namespace stackscope::stacks {
namespace {

CpiAccountantConfig
cfg(Stage stage, unsigned width = 4,
    SpeculationMode mode = SpeculationMode::kOracle)
{
    return {stage, width, mode};
}

/** A fully-utilized cycle. */
CycleState
fullCycle(unsigned width = 4)
{
    CycleState s;
    s.n_dispatch = width;
    s.n_issue = width;
    s.n_commit = width;
    s.fe_has_correct = true;
    s.fe_has_any = true;
    s.rob_empty_correct = false;
    s.rob_empty_any = false;
    s.rs_empty_correct = false;
    s.rs_empty_any = false;
    return s;
}

TEST(CpiAccountant, FullWidthAccountsBaseOnly)
{
    CpiAccountant a(cfg(Stage::kDispatch));
    for (int i = 0; i < 10; ++i)
        a.tick(fullCycle());
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 10.0);
    EXPECT_DOUBLE_EQ(a.cycles().sum(), 10.0);
}

TEST(CpiAccountant, PartialWidthSplitsBaseAndStall)
{
    CpiAccountant a(cfg(Stage::kDispatch));
    CycleState s = fullCycle();
    s.n_dispatch = 1;  // f = 1/4
    s.fe_has_correct = false;
    s.fe_has_any = false;
    s.fe_reason = FrontendReason::kIcache;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 0.25);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kIcache], 0.75);
}

TEST(CpiAccountant, DispatchFrontendReasons)
{
    const struct
    {
        FrontendReason reason;
        CpiComponent comp;
    } cases[] = {
        {FrontendReason::kIcache, CpiComponent::kIcache},
        {FrontendReason::kBpred, CpiComponent::kBpred},
        {FrontendReason::kMicrocode, CpiComponent::kMicrocode},
        {FrontendReason::kDrain, CpiComponent::kOther},
    };
    for (const auto &c : cases) {
        CpiAccountant a(cfg(Stage::kDispatch));
        CycleState s;
        s.fe_reason = c.reason;
        a.tick(s);
        a.finalize();
        EXPECT_DOUBLE_EQ(a.cycles()[c.comp], 1.0)
            << static_cast<int>(c.reason);
    }
}

TEST(CpiAccountant, DispatchBackendFullBlamesHead)
{
    const struct
    {
        BackendBlame blame;
        CpiComponent comp;
    } cases[] = {
        {BackendBlame::kDcache, CpiComponent::kDcache},
        {BackendBlame::kAluLat, CpiComponent::kAluLat},
        {BackendBlame::kDepend, CpiComponent::kDepend},
    };
    for (const auto &c : cases) {
        CpiAccountant a(cfg(Stage::kDispatch));
        CycleState s;
        s.fe_has_correct = true;  // frontend has work, backend is full
        s.fe_has_any = true;
        s.backend_full = true;
        s.head_blame = c.blame;
        a.tick(s);
        a.finalize();
        EXPECT_DOUBLE_EQ(a.cycles()[c.comp], 1.0);
    }
}

TEST(CpiAccountant, DispatchFrontendEmptyHasPriorityOverBackendFull)
{
    // Table II checks "FE empty" before "ROB or RS full".
    CpiAccountant a(cfg(Stage::kDispatch));
    CycleState s;
    s.fe_has_correct = false;
    s.fe_has_any = false;
    s.fe_reason = FrontendReason::kIcache;
    s.backend_full = true;
    s.head_blame = BackendBlame::kDcache;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kIcache], 1.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kDcache], 0.0);
}

TEST(CpiAccountant, IssueBlamesProducerOfFirstNonReady)
{
    CpiAccountant a(cfg(Stage::kIssue));
    CycleState s;
    s.rs_empty_correct = false;
    s.rs_empty_any = false;
    s.issue_blame = BackendBlame::kDcache;
    a.tick(s);
    s.issue_blame = BackendBlame::kAluLat;
    a.tick(s);
    s.issue_blame = BackendBlame::kDepend;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kDcache], 1.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kAluLat], 1.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kDepend], 1.0);
}

TEST(CpiAccountant, IssueStructuralStallIsOther)
{
    CpiAccountant a(cfg(Stage::kIssue));
    CycleState s;
    s.rs_empty_correct = false;
    s.rs_empty_any = false;
    s.ready_unissued = true;
    s.issue_blame = BackendBlame::kNone;
    s.n_issue = 2;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 0.5);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kOther], 0.5);
}

TEST(CpiAccountant, IssueRsEmptyUsesFrontendReason)
{
    CpiAccountant a(cfg(Stage::kIssue));
    CycleState s;
    s.rs_empty_correct = true;
    s.rs_empty_any = true;
    s.fe_reason = FrontendReason::kBpred;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBpred], 1.0);
}

TEST(CpiAccountant, IssueRsEmptyWithBackendFullBlamesHead)
{
    // RS drained while the ROB is full (long Dcache miss): backend stall.
    CpiAccountant a(cfg(Stage::kIssue));
    CycleState s;
    s.rs_empty_correct = true;
    s.rs_empty_any = true;
    s.backend_full = true;
    s.head_blame = BackendBlame::kDcache;
    s.fe_reason = FrontendReason::kNone;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kDcache], 1.0);
}

TEST(CpiAccountant, CommitRobEmptyUsesFrontend)
{
    CpiAccountant a(cfg(Stage::kCommit));
    CycleState s;
    s.rob_empty_correct = true;
    s.rob_empty_any = true;
    s.fe_reason = FrontendReason::kIcache;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kIcache], 1.0);
}

TEST(CpiAccountant, CommitHeadIncompleteBlamesHead)
{
    CpiAccountant a(cfg(Stage::kCommit));
    CycleState s;
    s.rob_empty_correct = false;
    s.rob_empty_any = false;
    s.head_incomplete = true;
    s.head_blame = BackendBlame::kAluLat;
    s.n_commit = 1;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 0.25);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kAluLat], 0.75);
}

TEST(CpiAccountant, UnschedCycles)
{
    CpiAccountant a(cfg(Stage::kCommit));
    CycleState s;
    s.unsched = true;
    a.tick(s);
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kUnsched], 2.0);
    EXPECT_DOUBLE_EQ(a.cycles().sum(), 2.0);
}

TEST(CpiAccountant, WidthCarryOverForWiderStage)
{
    // Issue stage wider than W: issuing 6 with W=4 gives f=1.5; the 0.5
    // excess transfers to the next cycle (§III-A).
    CpiAccountant a(cfg(Stage::kIssue, 4));
    CycleState s = fullCycle();
    s.n_issue = 6;
    a.tick(s);
    CycleState idle;
    idle.rs_empty_correct = true;
    idle.rs_empty_any = true;
    idle.fe_reason = FrontendReason::kIcache;
    a.tick(idle);
    a.finalize();
    // Cycle 1: base 1.0. Cycle 2: carry 0.5 -> base 0.5, icache 0.5.
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 1.5);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kIcache], 0.5);
    EXPECT_DOUBLE_EQ(a.cycles().sum(), 2.0);
}

TEST(CpiAccountant, EveryCycleSumsToOne)
{
    // Property: whatever the state, each tick adds exactly 1 cycle
    // (barring carry-over, which this state sequence avoids).
    CpiAccountant a(cfg(Stage::kDispatch));
    CycleState states[4];
    states[0] = fullCycle();
    states[1].fe_reason = FrontendReason::kBpred;
    states[2].backend_full = true;
    states[2].fe_has_correct = true;
    states[2].fe_has_any = true;
    states[2].head_blame = BackendBlame::kDcache;
    states[3].unsched = true;
    double expected = 0.0;
    for (int i = 0; i < 100; ++i) {
        a.tick(states[i % 4]);
        expected += 1.0;
    }
    a.finalize();
    EXPECT_NEAR(a.cycles().sum(), expected, 1e-9);
}

TEST(CpiAccountant, CpiDividesByInstructions)
{
    CpiAccountant a(cfg(Stage::kCommit));
    for (int i = 0; i < 8; ++i)
        a.tick(fullCycle());
    a.finalize();
    const CpiStack cpi = a.cpi(32);  // 8 cycles, 32 instrs
    EXPECT_DOUBLE_EQ(cpi[CpiComponent::kBase], 0.25);
    EXPECT_DOUBLE_EQ(a.cpi(0).sum(), 0.0);
}

TEST(CpiAccountant, SimpleModeCountsWrongPathThenFixup)
{
    CpiAccountant a(cfg(Stage::kDispatch, 4, SpeculationMode::kSimple));
    // 2 correct + 2 wrong-path uops per cycle for 10 cycles.
    CycleState s = fullCycle();
    s.n_dispatch = 2;
    s.n_dispatch_wrong = 2;
    for (int i = 0; i < 10; ++i)
        a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 10.0);
    // Commit-stage base would be 5.0 -> surplus 5 moves to bpred.
    a.applySimpleFixup(5.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 5.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBpred], 5.0);
}

TEST(CpiAccountant, OracleModeIgnoresWrongPath)
{
    CpiAccountant a(cfg(Stage::kDispatch, 4, SpeculationMode::kOracle));
    CycleState s = fullCycle();
    s.n_dispatch = 0;
    s.n_dispatch_wrong = 4;
    s.fe_has_correct = false;  // only wrong-path work available
    s.fe_reason = FrontendReason::kBpred;
    a.tick(s);
    a.finalize();
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBase], 0.0);
    EXPECT_DOUBLE_EQ(a.cycles()[CpiComponent::kBpred], 1.0);
}

}  // namespace
}  // namespace stackscope::stacks
