/** CycleRecord is the packed wire format of CycleState inside the batched
 *  engine: packing must round-trip every field, and feeding a single
 *  record through tickBatch() must be bitwise identical to tick() on the
 *  unpacked state (equivalence by construction of the stall table). */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "stacks/cpi_accountant.hpp"
#include "stacks/cycle_record.hpp"
#include "stacks/flops_accountant.hpp"

namespace stackscope::stacks {
namespace {

CycleState
randomState(Rng &rng)
{
    CycleState s;
    s.n_dispatch = static_cast<std::uint32_t>(rng.below(5));
    s.n_dispatch_wrong = static_cast<std::uint32_t>(rng.below(5));
    s.fe_has_correct = rng.chance(0.5);
    s.fe_has_any = s.fe_has_correct || rng.chance(0.5);
    s.fe_reason = static_cast<FrontendReason>(rng.below(5));
    s.backend_full = rng.chance(0.3);
    s.rob_empty_correct = rng.chance(0.3);
    s.rob_empty_any = s.rob_empty_correct && rng.chance(0.5);
    s.head_incomplete = rng.chance(0.5);
    s.head_blame = static_cast<BackendBlame>(rng.below(4));
    s.n_issue = static_cast<std::uint32_t>(rng.below(5));
    s.n_issue_wrong = static_cast<std::uint32_t>(rng.below(5));
    s.rs_empty_correct = rng.chance(0.3);
    s.rs_empty_any = s.rs_empty_correct && rng.chance(0.5);
    s.ready_unissued = rng.chance(0.3);
    s.issue_blame = static_cast<BackendBlame>(rng.below(4));
    s.n_commit = static_cast<std::uint32_t>(rng.below(5));
    s.n_vfp = static_cast<std::uint32_t>(rng.below(3));
    s.vfp_lane_ops = static_cast<double>(rng.below(64));
    s.vfp_nonfma_loss = static_cast<double>(rng.below(32));
    s.vfp_mask_loss = static_cast<double>(rng.below(32));
    s.vfp_in_rs = rng.chance(0.4);
    s.nonvfp_on_vpu = static_cast<std::uint32_t>(rng.below(3));
    s.vfp_blame = static_cast<VfpBlame>(rng.below(3));
    s.unsched = rng.chance(0.1);
    return s;
}

bool
statesEqual(const CycleState &a, const CycleState &b)
{
    return a.n_dispatch == b.n_dispatch &&
           a.n_dispatch_wrong == b.n_dispatch_wrong &&
           a.fe_has_correct == b.fe_has_correct &&
           a.fe_has_any == b.fe_has_any && a.fe_reason == b.fe_reason &&
           a.backend_full == b.backend_full &&
           a.rob_empty_correct == b.rob_empty_correct &&
           a.rob_empty_any == b.rob_empty_any &&
           a.head_incomplete == b.head_incomplete &&
           a.head_blame == b.head_blame && a.n_issue == b.n_issue &&
           a.n_issue_wrong == b.n_issue_wrong &&
           a.rs_empty_correct == b.rs_empty_correct &&
           a.rs_empty_any == b.rs_empty_any &&
           a.ready_unissued == b.ready_unissued &&
           a.issue_blame == b.issue_blame && a.n_commit == b.n_commit &&
           a.n_vfp == b.n_vfp && a.vfp_lane_ops == b.vfp_lane_ops &&
           a.vfp_nonfma_loss == b.vfp_nonfma_loss &&
           a.vfp_mask_loss == b.vfp_mask_loss &&
           a.vfp_in_rs == b.vfp_in_rs &&
           a.nonvfp_on_vpu == b.nonvfp_on_vpu &&
           a.vfp_blame == b.vfp_blame && a.unsched == b.unsched;
}

TEST(CycleRecord, PackUnpackRoundTrips)
{
    Rng rng(12345);
    for (int i = 0; i < 2000; ++i) {
        const CycleState s = randomState(rng);
        const CycleRecord r = packCycleState(s);
        EXPECT_EQ(r.repeat, 1u);
        const CycleState back = unpackCycleRecord(r);
        ASSERT_TRUE(statesEqual(s, back)) << "iteration " << i;
    }
}

TEST(CycleRecord, IdlePredicateMatchesCounts)
{
    CycleState s;
    EXPECT_TRUE(packCycleState(s).idle());
    s.n_commit = 1;
    EXPECT_FALSE(packCycleState(s).idle());
    s.n_commit = 0;
    s.nonvfp_on_vpu = 2;
    EXPECT_FALSE(packCycleState(s).idle());
}

template <typename StackT>
void
expectBitwiseEqual(const StackT &a, const StackT &b)
{
    std::vector<double> av;
    a.forEach([&](auto, double v) { av.push_back(v); });
    std::size_t i = 0;
    b.forEach([&](auto c, double v) {
        EXPECT_EQ(av[i], v) << "component " << static_cast<int>(c);
        ++i;
    });
}

/** tickBatch on repeat==1 records must be bitwise equal to tick. */
TEST(CycleRecord, SingleRecordBatchBitwiseEqualsTick)
{
    for (SpeculationMode mode :
         {SpeculationMode::kOracle, SpeculationMode::kSimple}) {
        for (Stage stage :
             {Stage::kDispatch, Stage::kIssue, Stage::kCommit}) {
            CpiAccountantConfig cfg;
            cfg.stage = stage;
            cfg.effective_width = 4;
            cfg.spec_mode = mode;
            CpiAccountant by_tick(cfg);
            CpiAccountant by_batch(cfg);

            Rng rng(99);
            std::vector<CycleRecord> records;
            for (int i = 0; i < 500; ++i) {
                const CycleState s = randomState(rng);
                by_tick.tick(s);
                records.push_back(packCycleState(s));
            }
            by_batch.tickBatch(records.data(), records.size());
            expectBitwiseEqual(by_tick.cycles(), by_batch.cycles());
        }
    }
}

TEST(CycleRecord, SingleRecordFlopsBatchBitwiseEqualsTick)
{
    FlopsAccountantConfig cfg;
    cfg.vpu_count = 2;
    cfg.vec_lanes = 16;
    FlopsAccountant by_tick(cfg);
    FlopsAccountant by_batch(cfg);

    Rng rng(7);
    std::vector<CycleRecord> records;
    for (int i = 0; i < 500; ++i) {
        const CycleState s = randomState(rng);
        by_tick.tick(s);
        records.push_back(packCycleState(s));
    }
    by_batch.tickBatch(records.data(), records.size());
    expectBitwiseEqual(by_tick.cycles(), by_batch.cycles());
}

/** A folded idle run must equal the same record ticked repeat times to
 *  within summation-order error. */
TEST(CycleRecord, IdleRunFoldMatchesRepeatedTicks)
{
    CycleState idle;  // nothing dispatched/issued/committed
    idle.fe_reason = FrontendReason::kIcache;
    idle.rob_empty_correct = false;
    idle.rob_empty_any = false;
    idle.head_incomplete = true;
    idle.head_blame = BackendBlame::kDcache;
    idle.rs_empty_correct = false;
    idle.rs_empty_any = false;
    idle.issue_blame = BackendBlame::kDcache;

    CpiAccountantConfig cfg;
    cfg.stage = Stage::kCommit;
    cfg.effective_width = 4;
    CpiAccountant by_tick(cfg);
    CpiAccountant by_batch(cfg);

    constexpr std::uint32_t kRun = 1000;
    for (std::uint32_t i = 0; i < kRun; ++i)
        by_tick.tick(idle);

    CycleRecord rec = packCycleState(idle);
    ASSERT_TRUE(rec.idle());
    rec.repeat = kRun;
    by_batch.tickBatch(&rec, 1);

    std::vector<double> tick_v;
    by_tick.cycles().forEach([&](auto, double v) { tick_v.push_back(v); });
    std::size_t i = 0;
    by_batch.cycles().forEach([&](auto c, double v) {
        EXPECT_NEAR(tick_v[i], v, 1e-9 * kRun)
            << "component " << static_cast<int>(c);
        ++i;
    });
    EXPECT_NEAR(by_batch.accountedCycles(), static_cast<double>(kRun),
                1e-9 * kRun);
}

}  // namespace
}  // namespace stackscope::stacks
