/** Unit tests for the Table III FLOPS stack accounting algorithm. */

#include "stacks/flops_accountant.hpp"

#include <gtest/gtest.h>

namespace stackscope::stacks {
namespace {

/** k=2 VPUs, v=16 lanes: peak = 64 flops/cycle. */
FlopsAccountantConfig
cfg()
{
    return {2, 16};
}

/** CycleState for n issued VFP uops, each a ops/lane over m lanes. */
CycleState
vfpCycle(unsigned n, double a, double m)
{
    CycleState s;
    s.n_vfp = n;
    s.vfp_lane_ops = a * m * n;
    s.vfp_nonfma_loss = (2.0 - a) * m * n;
    s.vfp_mask_loss = (16.0 - m) * n;
    return s;
}

TEST(FlopsAccountant, PeakCycleIsAllBase)
{
    FlopsAccountant fa(cfg());
    fa.tick(vfpCycle(2, 2.0, 16.0));  // two full FMAs
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 1.0);
    EXPECT_DOUBLE_EQ(fa.cycles().sum(), 1.0);
}

TEST(FlopsAccountant, NonFmaLoss)
{
    FlopsAccountant fa(cfg());
    fa.tick(vfpCycle(2, 1.0, 16.0));  // two full vector adds
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kNonFma], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles().sum(), 1.0);
}

TEST(FlopsAccountant, MaskLoss)
{
    FlopsAccountant fa(cfg());
    fa.tick(vfpCycle(2, 2.0, 8.0));  // two half-masked FMAs
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kMask], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles().sum(), 1.0);
}

TEST(FlopsAccountant, CombinedNonFmaAndMask)
{
    FlopsAccountant fa(cfg());
    fa.tick(vfpCycle(2, 1.0, 8.0));  // half-masked adds
    // Per Table III: f = 1*8*2/64 = 0.25; nonfma = 1*8*2/64 = 0.25;
    // mask = 2*(16-8)/32 = 0.5.
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 0.25);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kNonFma], 0.25);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kMask], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles().sum(), 1.0);
}

TEST(FlopsAccountant, FrontendWhenNoVfpInRs)
{
    FlopsAccountant fa(cfg());
    CycleState s;  // nothing issued, no VFP waiting
    s.vfp_in_rs = false;
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kFrontend], 1.0);
}

TEST(FlopsAccountant, NonVfpWhenVpuStolen)
{
    FlopsAccountant fa(cfg());
    CycleState s = vfpCycle(1, 2.0, 16.0);  // one FMA issued
    s.vfp_in_rs = true;
    s.nonvfp_on_vpu = 1;  // the other VPU ran an integer vector op
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kNonVfp], 0.5);
}

TEST(FlopsAccountant, MemWhenProducerIsLoad)
{
    FlopsAccountant fa(cfg());
    CycleState s;
    s.vfp_in_rs = true;
    s.vfp_blame = VfpBlame::kMem;
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kMem], 1.0);
}

TEST(FlopsAccountant, DependWhenProducerIsNotLoad)
{
    FlopsAccountant fa(cfg());
    CycleState s;
    s.vfp_in_rs = true;
    s.vfp_blame = VfpBlame::kDepend;
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kDepend], 1.0);
}

TEST(FlopsAccountant, PartialVfpIssueSplitsRemainder)
{
    FlopsAccountant fa(cfg());
    CycleState s = vfpCycle(1, 2.0, 16.0);  // one of two VPUs doing an FMA
    s.vfp_in_rs = true;
    s.vfp_blame = VfpBlame::kMem;
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kBase], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kMem], 0.5);
    EXPECT_DOUBLE_EQ(fa.cycles().sum(), 1.0);
}

TEST(FlopsAccountant, UnschedCycle)
{
    FlopsAccountant fa(cfg());
    CycleState s;
    s.unsched = true;
    fa.tick(s);
    EXPECT_DOUBLE_EQ(fa.cycles()[FlopsComponent::kUnsched], 1.0);
}

TEST(FlopsAccountant, EveryCycleSumsToOne)
{
    // Property: components partition each cycle exactly (Table III).
    FlopsAccountant fa(cfg());
    const CycleState states[] = {
        vfpCycle(2, 2.0, 16.0), vfpCycle(1, 1.5, 12.0),
        vfpCycle(2, 1.0, 4.0),  vfpCycle(0, 0.0, 0.0),
    };
    int n = 0;
    for (int i = 0; i < 400; ++i) {
        CycleState s = states[i % 4];
        if (s.n_vfp < 2) {
            s.vfp_in_rs = i % 8 < 4;
            s.vfp_blame = VfpBlame::kMem;
            s.nonvfp_on_vpu = i % 16 < 2 ? 1 : 0;
        }
        fa.tick(s);
        ++n;
    }
    EXPECT_NEAR(fa.cycles().sum(), n, 1e-9);
}

TEST(FlopsAccountant, Equation1Conversion)
{
    FlopsAccountant fa(cfg());
    // 100 cycles at half peak.
    for (int i = 0; i < 100; ++i)
        fa.tick(vfpCycle(1, 2.0, 16.0));
    const double freq = 2.0e9;
    // Peak = 2*2*16 = 64 flops/cycle -> 128 GFLOPS machine peak.
    const FlopsStack f = fa.asFlops(100, freq);
    EXPECT_NEAR(f.sum(), 64.0 * freq, 1.0);
    EXPECT_NEAR(fa.achievedFlops(100, freq), 32.0 * freq, 1.0);
    EXPECT_DOUBLE_EQ(fa.peakFlopsPerCycle(), 64.0);
}

TEST(FlopsAccountant, ZeroCyclesGiveEmptyStack)
{
    FlopsAccountant fa(cfg());
    EXPECT_DOUBLE_EQ(fa.asFlops(0, 1e9).sum(), 0.0);
}

}  // namespace
}  // namespace stackscope::stacks
