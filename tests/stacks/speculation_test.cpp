/** Tests for the wrong-path handling strategies of §III-B. */

#include "stacks/speculation.hpp"

#include <gtest/gtest.h>

namespace stackscope::stacks {
namespace {

TEST(SpeculativeCounters, NoBranchesGoesStraightToCommitted)
{
    SpeculativeCounters sc;
    sc.add(CpiComponent::kBase, 2.0);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 2.0);
    EXPECT_EQ(sc.pendingEpochs(), 0u);
}

TEST(SpeculativeCounters, CorrectBranchFlushesEpoch)
{
    SpeculativeCounters sc;
    sc.onBranchFetched(1);
    sc.add(CpiComponent::kBase, 3.0);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 0.0);
    sc.onBranchResolved(1, /*mispredicted=*/false);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 3.0);
    EXPECT_EQ(sc.pendingEpochs(), 0u);
}

TEST(SpeculativeCounters, MispredictedBranchCreditsBpred)
{
    SpeculativeCounters sc;
    sc.onBranchFetched(1);
    sc.add(CpiComponent::kBase, 2.0);
    sc.add(CpiComponent::kDcache, 1.0);
    sc.onBranchResolved(1, /*mispredicted=*/true);
    // Everything buffered since the branch was speculative work.
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBpred], 3.0);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 0.0);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kDcache], 0.0);
}

TEST(SpeculativeCounters, NestedBranchesMergeIntoParent)
{
    SpeculativeCounters sc;
    sc.onBranchFetched(1);
    sc.add(CpiComponent::kBase, 1.0);
    sc.onBranchFetched(2);
    sc.add(CpiComponent::kBase, 1.0);
    // Inner branch correct: merges into branch 1's epoch, not committed.
    sc.onBranchResolved(2, false);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 0.0);
    EXPECT_EQ(sc.pendingEpochs(), 1u);
    sc.onBranchResolved(1, false);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 2.0);
}

TEST(SpeculativeCounters, MispredictSquashesYoungerEpochs)
{
    SpeculativeCounters sc;
    sc.onBranchFetched(1);
    sc.add(CpiComponent::kBase, 1.0);
    sc.onBranchFetched(2);
    sc.add(CpiComponent::kIcache, 2.0);
    sc.onBranchFetched(3);
    sc.add(CpiComponent::kDepend, 4.0);
    // Branch 1 mispredicts: its epoch AND the younger ones go to bpred.
    sc.onBranchResolved(1, true);
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBpred], 7.0);
    EXPECT_EQ(sc.pendingEpochs(), 0u);
    // Late resolutions of squashed branches are ignored.
    sc.onBranchResolved(2, false);
    sc.onBranchResolved(3, true);
    EXPECT_DOUBLE_EQ(sc.committed().sum(), 7.0);
}

TEST(SpeculativeCounters, FinalizeFlushesOutstanding)
{
    SpeculativeCounters sc;
    sc.onBranchFetched(1);
    sc.add(CpiComponent::kBase, 5.0);
    sc.finalize();
    EXPECT_DOUBLE_EQ(sc.committed()[CpiComponent::kBase], 5.0);
    EXPECT_EQ(sc.pendingEpochs(), 0u);
}

TEST(SpeculativeCounters, TotalIsConservedAcrossOutcomes)
{
    // Property: whatever the resolution pattern, the committed total
    // equals everything ever added.
    SpeculativeCounters sc;
    double added = 0.0;
    for (int round = 0; round < 50; ++round) {
        sc.onBranchFetched(100 + round);
        sc.add(CpiComponent::kBase, 1.0);
        sc.add(CpiComponent::kDcache, 0.5);
        added += 1.5;
        sc.onBranchResolved(100 + round, round % 3 == 0);
    }
    sc.finalize();
    EXPECT_NEAR(sc.committed().sum(), added, 1e-9);
}

TEST(SimpleFixup, MovesSurplusBaseToBpred)
{
    CpiStack s;
    s[CpiComponent::kBase] = 10.0;
    s[CpiComponent::kIcache] = 2.0;
    applySimpleSpeculationFixup(s, 7.0);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kBase], 7.0);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kBpred], 3.0);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kIcache], 2.0);
}

TEST(SimpleFixup, NoSurplusNoChange)
{
    CpiStack s;
    s[CpiComponent::kBase] = 5.0;
    applySimpleSpeculationFixup(s, 7.0);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kBase], 5.0);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kBpred], 0.0);
}

}  // namespace
}  // namespace stackscope::stacks
