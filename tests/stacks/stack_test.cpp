/** Tests for the stack container arithmetic. */

#include "stacks/stack.hpp"

#include <gtest/gtest.h>

namespace stackscope::stacks {
namespace {

TEST(Stack, DefaultIsZero)
{
    CpiStack s;
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    s.forEach([](CpiComponent, double v) { EXPECT_DOUBLE_EQ(v, 0.0); });
}

TEST(Stack, IndexAndSum)
{
    CpiStack s;
    s[CpiComponent::kBase] = 0.25;
    s[CpiComponent::kDcache] = 0.5;
    EXPECT_DOUBLE_EQ(s.sum(), 0.75);
    EXPECT_DOUBLE_EQ(s[CpiComponent::kBase], 0.25);
}

TEST(Stack, ScaledAndNormalized)
{
    CpiStack s;
    s[CpiComponent::kBase] = 1.0;
    s[CpiComponent::kBpred] = 3.0;
    const CpiStack n = s.normalized();
    EXPECT_DOUBLE_EQ(n.sum(), 1.0);
    EXPECT_DOUBLE_EQ(n[CpiComponent::kBpred], 0.75);
    const CpiStack d = s.scaled(2.0);
    EXPECT_DOUBLE_EQ(d.sum(), 8.0);
}

TEST(Stack, NormalizeZeroIsNoop)
{
    CpiStack s;
    const CpiStack n = s.normalized();
    EXPECT_DOUBLE_EQ(n.sum(), 0.0);
}

TEST(Stack, AddSubtract)
{
    CpiStack a;
    CpiStack b;
    a[CpiComponent::kBase] = 1.0;
    b[CpiComponent::kBase] = 0.5;
    b[CpiComponent::kIcache] = 0.25;
    const CpiStack sum = a + b;
    EXPECT_DOUBLE_EQ(sum[CpiComponent::kBase], 1.5);
    EXPECT_DOUBLE_EQ(sum[CpiComponent::kIcache], 0.25);
    const CpiStack diff = sum - b;
    EXPECT_DOUBLE_EQ(diff[CpiComponent::kBase], 1.0);
    EXPECT_DOUBLE_EQ(diff[CpiComponent::kIcache], 0.0);
}

TEST(Stack, MinMax)
{
    CpiStack a;
    CpiStack b;
    a[CpiComponent::kDcache] = 1.0;
    b[CpiComponent::kDcache] = 2.0;
    a[CpiComponent::kBpred] = 4.0;
    b[CpiComponent::kBpred] = 3.0;
    const CpiStack lo = CpiStack::min(a, b);
    const CpiStack hi = CpiStack::max(a, b);
    EXPECT_DOUBLE_EQ(lo[CpiComponent::kDcache], 1.0);
    EXPECT_DOUBLE_EQ(lo[CpiComponent::kBpred], 3.0);
    EXPECT_DOUBLE_EQ(hi[CpiComponent::kDcache], 2.0);
    EXPECT_DOUBLE_EQ(hi[CpiComponent::kBpred], 4.0);
}

TEST(Stack, ComponentNamesExist)
{
    for (std::size_t i = 0; i < kNumCpiComponents; ++i)
        EXPECT_NE(componentName(static_cast<CpiComponent>(i)), "?");
    for (std::size_t i = 0; i < kNumFlopsComponents; ++i)
        EXPECT_NE(componentName(static_cast<FlopsComponent>(i)), "?");
    EXPECT_EQ(toString(Stage::kDispatch), "dispatch");
    EXPECT_EQ(toString(Stage::kIssue), "issue");
    EXPECT_EQ(toString(Stage::kCommit), "commit");
}

}  // namespace
}  // namespace stackscope::stacks
