/** Tests for homogeneous multi-core simulation and stack aggregation. */

#include "sim/multicore.hpp"

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "trace/hpc_kernels.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::sim {
namespace {

using stacks::FlopsComponent;
using stacks::Stage;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 50'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

TEST(Multicore, RunsAllCoresToCompletion)
{
    const auto gen = shortWorkload("exchange2");
    const MulticoreResult r = simulateMulticore(bdwConfig(), gen, 4);
    ASSERT_EQ(r.per_core.size(), 4u);
    for (const SimResult &c : r.per_core) {
        EXPECT_EQ(c.instrs, 50'000u);
        EXPECT_GT(c.cycles, 0u);
    }
}

TEST(Multicore, AggregationIsComponentWiseAverage)
{
    const auto gen = shortWorkload("gcc");
    const MulticoreResult r = simulateMulticore(bdwConfig(), gen, 2);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
        stacks::CpiStack manual;
        for (const SimResult &c : r.per_core)
            manual += c.cpi_stacks[s].scaled(0.5);
        manual.forEach([&](stacks::CpiComponent comp, double v) {
            EXPECT_NEAR(r.avg_cpi_stacks[s][comp], v, 1e-12);
        });
    }
}

TEST(Multicore, HomogeneousCoresBehaveSimilarly)
{
    const auto gen = shortWorkload("exchange2");
    const MulticoreResult r = simulateMulticore(skxConfig(), gen, 4);
    const double cpi0 = r.per_core[0].cpi;
    for (const SimResult &c : r.per_core)
        EXPECT_NEAR(c.cpi, cpi0, cpi0 * 0.2);
}

TEST(Multicore, SingleCoreMatchesSimulateClosely)
{
    const auto gen = shortWorkload("exchange2");
    const SimResult single = simulate(bdwConfig(), gen);
    const MulticoreResult multi = simulateMulticore(bdwConfig(), gen, 1);
    // A 1-core "multicore" run uses the same per-core uncore slice.
    EXPECT_NEAR(static_cast<double>(multi.per_core[0].cycles),
                static_cast<double>(single.cycles), single.cycles * 0.01);
}

TEST(Multicore, SocketFlopsBelowPeak)
{
    const trace::HpcTarget target{16, trace::SgemmCodegen::kSkxBroadcast};
    auto trace = trace::makeSgemmTrace({1760, 64, 1760}, target, 60'000);
    const MulticoreResult r = simulateMulticore(skxConfig(), *trace, 2);
    EXPECT_GT(r.socket_flops, 0.0);
    EXPECT_LT(r.socket_flops, r.socket_peak_flops);
    // The socket FLOPS stack sums to the peak.
    EXPECT_NEAR(r.socketFlopsStack().sum(), r.socket_peak_flops,
                r.socket_peak_flops * 0.01);
}

TEST(Multicore, IpcStackSumsToMaxIpc)
{
    const auto gen = shortWorkload("exchange2");
    const MulticoreResult r = simulateMulticore(skxConfig(), gen, 2);
    EXPECT_NEAR(r.ipcStack(4).sum(), 4.0, 0.05);
}

TEST(Multicore, WarmupTruncationIsReportedPerCore)
{
    // Same law as the single-core driver: a watchdog stop inside the
    // warmup window must surface as a progress violation on every core
    // that never started measuring.
    const auto gen = shortWorkload("gcc", 1'000'000);
    SimOptions opt;
    opt.warmup_instrs = 500'000;
    opt.max_cycles = 5'000;
    const MulticoreResult r = simulateMulticore(bdwConfig(), gen, 2, opt);
    EXPECT_FALSE(r.validation.passed());
    for (const SimResult &c : r.per_core) {
        EXPECT_TRUE(
            c.validation.contains(validate::Invariant::kProgress));
        ASSERT_FALSE(c.validation.violations.empty());
        EXPECT_NE(c.validation.violations[0].detail.find("warmup"),
                  std::string::npos);
    }
}

TEST(Multicore, SharedUncoreCreatesContention)
{
    // Memory-bound threads sharing an uncore must be slower than a single
    // thread using the same per-core slice alone would suggest... at equal
    // per-core resources the n-core run can only be equal or slower.
    trace::SyntheticParams p = trace::findWorkload("lbm").params;
    p.num_instrs = 40'000;
    trace::SyntheticGenerator gen(p);
    const SimResult single = simulate(bdwConfig(), gen);
    const MulticoreResult quad = simulateMulticore(bdwConfig(), gen, 4);
    double avg_cpi = 0.0;
    for (const SimResult &c : quad.per_core)
        avg_cpi += c.cpi / 4.0;
    EXPECT_GE(avg_cpi, single.cpi * 0.9);
}

}  // namespace
}  // namespace stackscope::sim
