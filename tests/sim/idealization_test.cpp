/** Tests of the §IV idealization methodology. */

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::sim {
namespace {

using stacks::CpiComponent;
using stacks::Stage;

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 100'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

TEST(Idealization, EachKnobImprovesItsBottleneck)
{
    const struct
    {
        const char *workload;
        Idealization ideal;
    } cases[] = {
        {"mcf", {.perfect_dcache = true}},
        {"cactus", {.perfect_icache = true}},
        {"deepsjeng", {.perfect_bpred = true}},
        {"imagick", {.single_cycle_alu = true}},
    };
    for (const auto &c : cases) {
        const auto gen = shortWorkload(c.workload);
        const double delta = cpiReduction(bdwConfig(), gen, c.ideal);
        EXPECT_GT(delta, 0.0)
            << c.workload << " with " << Idealization(c.ideal).label();
    }
}

TEST(Idealization, PerfectDcacheZeroesDcacheComponents)
{
    auto gen = shortWorkload("mcf");
    Idealization ideal;
    ideal.perfect_dcache = true;
    const SimResult r = simulate(applyIdealization(bdwConfig(), ideal), gen);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit})
        EXPECT_NEAR(r.cpiStack(s)[CpiComponent::kDcache], 0.0, 1e-6);
    EXPECT_EQ(r.stats.l1d_load_misses, 0u);
}

TEST(Idealization, PerfectIcacheZeroesIcacheComponents)
{
    auto gen = shortWorkload("cactus");
    Idealization ideal;
    ideal.perfect_icache = true;
    const SimResult r = simulate(applyIdealization(bdwConfig(), ideal), gen);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit})
        EXPECT_NEAR(r.cpiStack(s)[CpiComponent::kIcache], 0.0, 1e-6);
}

TEST(Idealization, PerfectBpredZeroesBpredComponents)
{
    auto gen = shortWorkload("deepsjeng");
    Idealization ideal;
    ideal.perfect_bpred = true;
    const SimResult r = simulate(applyIdealization(bdwConfig(), ideal), gen);
    for (Stage s : {Stage::kDispatch, Stage::kIssue, Stage::kCommit})
        EXPECT_NEAR(r.cpiStack(s)[CpiComponent::kBpred], 0.0, 1e-6);
    EXPECT_EQ(r.stats.branch_mispredicts, 0u);
    EXPECT_EQ(r.stats.wrong_path_dispatched, 0u);
}

TEST(Idealization, AllPerfectApproachesIdealCpi)
{
    auto gen = shortWorkload("gcc");
    Idealization ideal;
    ideal.perfect_icache = true;
    ideal.perfect_dcache = true;
    ideal.perfect_bpred = true;
    ideal.single_cycle_alu = true;
    const SimResult r = simulate(applyIdealization(bdwConfig(), ideal), gen);
    // Ideal CPI = 1/W = 0.25; dependences still cost something.
    EXPECT_LT(r.cpi, 0.6);
    EXPECT_GE(r.cpi, 0.25 - 1e-9);
}

TEST(Idealization, TraceIsIdenticalUnderIdealization)
{
    // The §IV methodology requires the idealized run to execute the exact
    // same instruction stream: committed counts must match.
    auto gen = shortWorkload("povray");
    const SimResult real = simulate(knlConfig(), gen);
    Idealization ideal;
    ideal.perfect_dcache = true;
    const SimResult pd = simulate(applyIdealization(knlConfig(), ideal), gen);
    EXPECT_EQ(real.instrs, pd.instrs);
    EXPECT_EQ(real.stats.branches, pd.stats.branches);
}

TEST(Idealization, ActualReductionWithinMultiStageBoundsMostOfTheTime)
{
    // The core claim of the paper (§V-A): the dispatch and commit stack
    // components bracket the actual CPI reduction (up to second-order
    // effects). We verify it for bpred across several branchy workloads,
    // where the paper reports zero error.
    int within = 0;
    int total = 0;
    for (const char *name : {"deepsjeng", "leela", "mcf", "gcc"}) {
        auto gen = shortWorkload(name);
        const SimResult real = simulate(bdwConfig(), gen);
        Idealization ideal;
        ideal.perfect_bpred = true;
        const double actual = cpiReduction(bdwConfig(), gen, ideal);
        double lo = real.cpiStack(Stage::kDispatch)[CpiComponent::kBpred];
        double hi = lo;
        for (Stage s : {Stage::kIssue, Stage::kCommit}) {
            lo = std::min(lo, real.cpiStack(s)[CpiComponent::kBpred]);
            hi = std::max(hi, real.cpiStack(s)[CpiComponent::kBpred]);
        }
        ++total;
        if (actual >= lo - 0.02 && actual <= hi + 0.02)
            ++within;
    }
    EXPECT_GE(within, total - 1);
}

}  // namespace
}  // namespace stackscope::sim
