/** Tests for the single-core simulation driver and presets. */

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/presets.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"

namespace stackscope::sim {
namespace {

trace::SyntheticGenerator
shortWorkload(const char *name, std::uint64_t n = 100'000)
{
    trace::SyntheticParams p = trace::findWorkload(name).params;
    p.num_instrs = n;
    return trace::SyntheticGenerator(p);
}

TEST(Presets, AllNamesResolve)
{
    for (const std::string &name : allMachineNames()) {
        const MachineConfig m = machineByName(name);
        EXPECT_FALSE(m.name.empty());
        EXPECT_GT(m.freq_ghz, 0.0);
        EXPECT_GT(m.socket_cores, 0u);
    }
    EXPECT_THROW((void)machineByName("p4"), std::out_of_range);
}

TEST(Presets, PaperMachineShapes)
{
    const MachineConfig bdw = bdwConfig();
    const MachineConfig knl = knlConfig();
    const MachineConfig skx = skxConfig();
    // §IV: BDW is a 4-wide OoO, KNL a 2-wide OoO.
    EXPECT_EQ(bdw.core.dispatch_width, 4u);
    EXPECT_EQ(knl.core.dispatch_width, 2u);
    EXPECT_EQ(skx.core.dispatch_width, 4u);
    // AVX512 on KNL and SKX, AVX2 on BDW.
    EXPECT_EQ(knl.core.flops_vec_lanes, 16u);
    EXPECT_EQ(skx.core.flops_vec_lanes, 16u);
    EXPECT_EQ(bdw.core.flops_vec_lanes, 8u);
    // Socket sizes as in the paper.
    EXPECT_EQ(bdw.socket_cores, 18u);
    EXPECT_EQ(knl.socket_cores, 68u);
    EXPECT_EQ(skx.socket_cores, 26u);
}

TEST(Presets, SkxSocketPeakIsFourTeraflops)
{
    // Fig. 5: the 26-core SKX peak is 4 TFLOPS.
    EXPECT_NEAR(skxConfig().socketPeakFlops(), 4.0e12, 0.1e12);
}

TEST(Simulation, ProducesConsistentResult)
{
    const auto gen = shortWorkload("exchange2");
    const SimResult r = simulate(bdwConfig(), gen);
    EXPECT_EQ(r.machine, "BDW");
    EXPECT_EQ(r.instrs, 100'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_NEAR(r.cpi, static_cast<double>(r.cycles) / r.instrs, 1e-9);
    EXPECT_NEAR(r.ipc(), 1.0 / r.cpi, 1e-9);
    for (std::size_t s = 0; s < stacks::kNumStages; ++s) {
        EXPECT_NEAR(r.cpi_stacks[s].sum(), r.cpi, r.cpi * 0.001);
        EXPECT_NEAR(r.cycle_stacks[s].sum(), static_cast<double>(r.cycles),
                    r.cycles * 0.001);
    }
}

TEST(Simulation, DeterministicAcrossCalls)
{
    const auto gen = shortWorkload("gcc");
    const SimResult a = simulate(bdwConfig(), gen);
    const SimResult b = simulate(bdwConfig(), gen);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(
        a.cpiStack(stacks::Stage::kDispatch)[stacks::CpiComponent::kBpred],
        b.cpiStack(stacks::Stage::kDispatch)[stacks::CpiComponent::kBpred]);
}

TEST(Simulation, MaxCyclesCapsRun)
{
    const auto gen = shortWorkload("gcc", 1'000'000);
    SimOptions opt;
    opt.max_cycles = 5'000;
    const SimResult r = simulate(bdwConfig(), gen, opt);
    EXPECT_LE(r.cycles, 5'000u);
    EXPECT_LT(r.instrs, 1'000'000u);
}

TEST(Simulation, WarmupTruncationIsReported)
{
    // The cycle cap fires while still inside the warmup window, so
    // resetMeasurement() never runs and the stacks are warmup-polluted:
    // the report must say so instead of silently truncating.
    const auto gen = shortWorkload("gcc", 1'000'000);
    SimOptions opt;
    opt.warmup_instrs = 500'000;
    opt.max_cycles = 5'000;
    const SimResult r = simulate(bdwConfig(), gen, opt);
    EXPECT_FALSE(r.validation.passed());
    EXPECT_TRUE(r.validation.contains(validate::Invariant::kProgress));
    ASSERT_FALSE(r.validation.violations.empty());
    EXPECT_NE(r.validation.violations[0].detail.find("warmup"),
              std::string::npos);
}

TEST(Simulation, WarmupTruncationStrictThrows)
{
    const auto gen = shortWorkload("gcc", 1'000'000);
    SimOptions opt;
    opt.warmup_instrs = 500'000;
    opt.max_cycles = 5'000;
    opt.validation = validate::ValidationPolicy::kStrict;
    EXPECT_THROW((void)simulate(bdwConfig(), gen, opt), StackscopeError);
}

TEST(Simulation, PostWarmupTruncationStaysSilent)
{
    // A max-cycles stop after the warmup window closed keeps the
    // historical silent-truncation behaviour.
    const auto gen = shortWorkload("gcc", 1'000'000);
    SimOptions opt;
    opt.warmup_instrs = 1'000;
    opt.max_cycles = 100'000;
    const SimResult r = simulate(bdwConfig(), gen, opt);
    EXPECT_LT(r.instrs, 1'000'000u);
    EXPECT_TRUE(r.validation.passed());
}

TEST(Simulation, AccountingOffSkipsStacks)
{
    const auto gen = shortWorkload("exchange2", 20'000);
    SimOptions opt;
    opt.accounting = false;
    const SimResult r = simulate(bdwConfig(), gen, opt);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_DOUBLE_EQ(r.cpiStack(stacks::Stage::kDispatch).sum(), 0.0);
}

TEST(Simulation, KnlIsSlowerThanBdwPerInstruction)
{
    // 2-wide KNL vs 4-wide BDW on a compute-bound workload.
    const auto gen = shortWorkload("exchange2");
    const SimResult bdw = simulate(bdwConfig(), gen);
    const SimResult knl = simulate(knlConfig(), gen);
    EXPECT_GT(knl.cpi, bdw.cpi * 1.3);
}

TEST(Simulation, IpcStackHeightIsMaxIpc)
{
    const auto gen = shortWorkload("exchange2", 50'000);
    const SimResult r = simulate(skxConfig(), gen);
    const stacks::CpiStack ipc = r.ipcStack(4);
    EXPECT_NEAR(ipc.sum(), 4.0, 0.01);
    EXPECT_NEAR(ipc[stacks::CpiComponent::kBase], r.ipc(), r.ipc() * 0.01);
}

TEST(Simulation, CpiReductionMatchesManualDifference)
{
    const auto gen = shortWorkload("mcf", 50'000);
    const MachineConfig m = bdwConfig();
    Idealization ideal;
    ideal.perfect_dcache = true;
    const double delta = cpiReduction(m, gen, ideal);
    const SimResult real = simulate(m, gen);
    const SimResult pd = simulate(applyIdealization(m, ideal), gen);
    EXPECT_NEAR(delta, real.cpi - pd.cpi, 1e-9);
    EXPECT_GT(delta, 0.0);
}

TEST(Idealization, LabelFormatting)
{
    Idealization i;
    EXPECT_EQ(i.label(), "all real");
    i.perfect_dcache = true;
    EXPECT_EQ(i.label(), "perfect D$");
    i.single_cycle_alu = true;
    EXPECT_EQ(i.label(), "perfect D$ + 1-cycle ALU");
    EXPECT_TRUE(i.any());
}

}  // namespace
}  // namespace stackscope::sim
