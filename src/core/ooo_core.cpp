#include "core/ooo_core.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>

#include "common/simd.hpp"

namespace stackscope::core {

using stacks::BackendBlame;
using stacks::CycleRecord;
using stacks::CycleState;
using stacks::FrontendReason;
using stacks::Stage;
using stacks::VfpBlame;
using trace::InstrClass;
using uarch::InflightInstr;

OooCore::OooCore(const CoreParams &params,
                 std::unique_ptr<trace::TraceSource> trace,
                 uarch::Uncore *shared_uncore)
    : params_(params),
      trace_(std::move(trace)),
      mem_(params.mem, shared_uncore),
      bp_(params.bpred),
      fu_(params.fu),
      rob_(params.rob_size),
      rs_(params.rs_size, params.rob_size),
      fetch_q_(params.fetch_queue_size),
      wp_rng_(params.wrong_path_seed),
      scoreboard_(kScoreboardSize),
      pending_stores_(params.rob_size),
      store_filter_(kStoreFilterSize, 0),
      acct_dispatch_({Stage::kDispatch,
                      params.accounting_native_widths
                          ? params.dispatch_width
                          : params.effectiveWidth(),
                      params.spec_mode}),
      acct_issue_({Stage::kIssue,
                   params.accounting_native_widths ? params.issue_width
                                                   : params.effectiveWidth(),
                   params.spec_mode}),
      acct_commit_({Stage::kCommit,
                    params.accounting_native_widths
                        ? params.commit_width
                        : params.effectiveWidth(),
                    params.spec_mode}),
      flops_({params.fu.vpu_units, params.flops_vec_lanes}),
      has_shared_uncore_(shared_uncore != nullptr)
{
    assert(trace_);
    assert(trace::kMaxDepDistance + params_.rob_size < kScoreboardSize);
    // ScoreEntry::waiters stores ROB slots as uint16_t.
    assert(params_.rob_size <= 0xffff);
    batch_.reserve(kBatchCapacity);
    const std::uint64_t line = mem_.params().l1i.line_bytes;
    if (line > 1 && (line & (line - 1)) == 0) {
        while ((std::uint64_t{1} << ifetch_line_shift_) < line)
            ++ifetch_line_shift_;
    }
    updateSkipAllowed();
}

const stacks::CpiAccountant &
OooCore::accountant(Stage stage) const
{
    // Logical constness: draining the record ring changes no observable
    // result, it only moves already-recorded cycles into the accountant.
    const_cast<OooCore *>(this)->flushBatch();
    switch (stage) {
      case Stage::kDispatch: return acct_dispatch_;
      case Stage::kIssue: return acct_issue_;
      case Stage::kCommit: return acct_commit_;
      case Stage::kCount: break;
    }
    assert(false);
    return acct_dispatch_;
}

const stacks::FlopsAccountant &
OooCore::flopsAccountant() const
{
    const_cast<OooCore *>(this)->flushBatch();
    return flops_;
}

OooCore::ScoreEntry &
OooCore::scoreSlot(std::uint64_t trace_index)
{
    return scoreboard_[trace_index % kScoreboardSize];
}

bool
OooCore::producerComplete(std::uint64_t trace_index) const
{
    const ScoreEntry &se = scoreboard_[trace_index % kScoreboardSize];
    if (se.trace_index != trace_index) {
        // The entry has been recycled: the producer left the pipeline long
        // ago (the scoreboard is sized so this is the only possibility).
        return true;
    }
    return se.complete_at <= now_;
}

const OooCore::ScoreEntry *
OooCore::liveIncompleteProducer(std::uint64_t trace_index) const
{
    const ScoreEntry &se = scoreboard_[trace_index % kScoreboardSize];
    if (se.trace_index != trace_index || se.complete_at <= now_)
        return nullptr;
    return &se;
}

bool
OooCore::entryReady(const InflightInstr &e, bool &store_conflict) const
{
    store_conflict = false;
    if (e.wrong_path) {
        if (e.wp_dep_slot >= 0 &&
            rob_.holds(static_cast<unsigned>(e.wp_dep_slot), e.wp_dep_seq)) {
            return rob_.at(static_cast<unsigned>(e.wp_dep_slot)).completed;
        }
        return true;
    }
    for (unsigned i = 0; i < e.instr.num_srcs; ++i) {
        if (!producerComplete(e.instr.src[i]))
            return false;
    }
    if (e.instr.isLoad()) {
        // A load whose address matches an older, not-yet-executed store
        // must wait (issue-stage structural stall, "Other"). The counting
        // filter skips the queue walk when no pending store can possibly
        // share the word address (the common case).
        const Addr word = e.instr.mem_addr / 8;
        if (store_filter_[word & (kStoreFilterSize - 1)] != 0) {
            const std::size_t n = pending_stores_.size();
            for (std::size_t i = 0; i < n; ++i) {
                const PendingStore &ps = pending_stores_[i];
                if (ps.seq >= e.seq)
                    break;
                if (ps.word_addr == word && rob_.holds(ps.slot, ps.seq) &&
                    !rob_.at(ps.slot).completed) {
                    store_conflict = true;
                    return false;
                }
            }
        }
    }
    return true;
}

stacks::BackendBlame
OooCore::blameProducer(const InflightInstr &e) const
{
    if (e.wrong_path)
        return BackendBlame::kDepend;

    // Table II (issue): i = prod(first non-ready instr). Pick the
    // latest-completing incomplete producer as the binding one; producers
    // that have not even issued count as latest of all.
    const ScoreEntry *binding = nullptr;
    Cycle binding_done = 0;
    for (unsigned i = 0; i < e.instr.num_srcs; ++i) {
        const ScoreEntry *se = liveIncompleteProducer(e.instr.src[i]);
        if (se == nullptr)
            continue;
        if (binding == nullptr || se->complete_at >= binding_done) {
            binding = se;
            binding_done = se->complete_at;
        }
    }
    if (binding == nullptr)
        return BackendBlame::kDepend;
    if (!binding->issued)
        return BackendBlame::kDepend;
    if (binding->dcache_miss)
        return BackendBlame::kDcache;
    if (binding->exec_latency > 1)
        return BackendBlame::kAluLat;
    return BackendBlame::kDepend;
}

void
OooCore::classifyBlocked(const InflightInstr &e, Cycle &lb,
                         stacks::BackendBlame &blame,
                         std::uint64_t &unissued_src) const
{
    lb = 0;
    blame = BackendBlame::kDepend;
    unissued_src = kNoSeq;
    if (e.wrong_path) {
        if (e.wp_dep_slot >= 0 &&
            rob_.holds(static_cast<unsigned>(e.wp_dep_slot), e.wp_dep_seq)) {
            const InflightInstr &d =
                rob_.at(static_cast<unsigned>(e.wp_dep_slot));
            // An issued dependence completes exactly at its writeback
            // event; an unissued one has no bound yet.
            if (d.issued)
                lb = d.complete_cycle;
        }
        return;
    }
    // Same binding-producer selection as blameProducer(). The bound is
    // only sound when every incomplete producer has issued: readiness is
    // then exactly the latest completion, and the binding (and therefore
    // the blame) cannot change before that cycle because every other
    // producer completes no later.
    const ScoreEntry *binding = nullptr;
    Cycle binding_done = 0;
    bool all_issued = true;
    for (unsigned i = 0; i < e.instr.num_srcs; ++i) {
        const ScoreEntry *se = liveIncompleteProducer(e.instr.src[i]);
        if (se == nullptr)
            continue;
        if (!se->issued) {
            all_issued = false;
            if (unissued_src == kNoSeq)
                unissued_src = se->trace_index;
        }
        if (binding == nullptr || se->complete_at >= binding_done) {
            binding = se;
            binding_done = se->complete_at;
        }
    }
    if (binding == nullptr || !binding->issued) {
        blame = BackendBlame::kDepend;
    } else if (binding->dcache_miss) {
        blame = BackendBlame::kDcache;
    } else if (binding->exec_latency > 1) {
        blame = BackendBlame::kAluLat;
    } else {
        blame = BackendBlame::kDepend;
    }
    if (binding != nullptr && all_issued)
        lb = binding_done;
}

stacks::BackendBlame
OooCore::headBlame() const
{
    if (rob_.empty())
        return BackendBlame::kNone;
    const InflightInstr &h = rob_.head();
    if (h.completed)
        return BackendBlame::kNone;
    if (h.dcache_miss)
        return BackendBlame::kDcache;
    if (h.issued)
        return h.exec_latency > 1 ? BackendBlame::kAluLat
                                  : BackendBlame::kDepend;
    // Not yet issued: the head has no incomplete producers (everything
    // older has committed), so classify by its static latency.
    const Cycle lat = trace::isMemory(h.instr.cls) ? params_.mem.l1_lat
                                                   : fu_.latency(h.instr.cls);
    return lat > 1 ? BackendBlame::kAluLat : BackendBlame::kDepend;
}

void
OooCore::captureHeadState()
{
    cs_.rob_empty_any = rob_.empty();
    cs_.rob_empty_correct = rob_correct_ == 0;
    cs_.head_incomplete = !rob_.empty() && !rob_.head().completed;
    cs_.head_blame = headBlame();
}

void
OooCore::onBranchFetchedAll(SeqNum seq)
{
    // Only spec-counter epochs consume branch events (the accountants
    // ignore them under oracle/simple), so everything else skips the
    // three forwarding calls per branch.
    if (!params_.accounting_enabled ||
        params_.spec_mode != stacks::SpeculationMode::kSpecCounters)
        return;
    // Spec-counter epochs are order-sensitive with respect to branch
    // events: drain the ring so every already-recorded cycle is accounted
    // before the event, exactly as the per-cycle reference interleaves
    // them.
    if (params_.batched_accounting)
        flushBatch();
    acct_dispatch_.onBranchFetched(seq);
    acct_issue_.onBranchFetched(seq);
    acct_commit_.onBranchFetched(seq);
}

void
OooCore::onBranchResolvedAll(SeqNum seq, bool mispredicted)
{
    if (!params_.accounting_enabled ||
        params_.spec_mode != stacks::SpeculationMode::kSpecCounters)
        return;
    if (params_.batched_accounting)
        flushBatch();
    acct_dispatch_.onBranchResolved(seq, mispredicted);
    acct_issue_.onBranchResolved(seq, mispredicted);
    acct_commit_.onBranchResolved(seq, mispredicted);
}

void
OooCore::doWriteback()
{
    // Events drain in (done, seq) order — the WbEvent comparator contract
    // (see wb_calendar.hpp for the tie-order legality argument). The drain
    // callback never pushes: squashAfter only removes pipeline state.
    wb_cal_.drainUpTo(now_, [&](const WbEvent &ev) {
        progress_ = true;
        if (!rob_.holds(ev.slot, ev.seq))
            return;  // squashed
        InflightInstr &e = rob_.at(ev.slot);
        if (e.completed)
            return;
        e.completed = true;
        e.complete_cycle = now_;
        if (e.mispredicted && !e.wrong_path)
            squashAfter(ev.slot, ev.seq);
    });
}

void
OooCore::squashAfter(unsigned branch_slot, SeqNum branch_seq)
{
    progress_ = true;
    rob_.squashYounger(branch_slot, [&](InflightInstr &sq) {
        ++stats_.squashed_uops;
        (void)sq;
    });
    rs_.removeIf([&](unsigned s) { return !rob_.isLiveSlot(s); });
    rs_counts_valid_ = false;
    while (!pending_stores_.empty() &&
           !rob_.holds(pending_stores_.back().slot,
                       pending_stores_.back().seq)) {
        --store_filter_[pending_stores_.back().word_addr &
                        (kStoreFilterSize - 1)];
        pending_stores_.pop_back();
    }
    recountRsVfp();
    // Everything in the fetch queue is wrong-path by construction.
    fetch_q_.clear();
    fetch_q_correct_ = 0;
    wrong_path_mode_ = false;
    wp_last_producer_slot_ = -1;
    wp_last_producer_seq_ = kNoSeq;
    redirect_until_ =
        std::max<Cycle>(redirect_until_, now_ + params_.frontend_depth);
    onBranchResolvedAll(branch_seq, /*mispredicted=*/true);
}

void
OooCore::recountRsVfp()
{
    rs_vfp_correct_ = 0;
    const std::uint8_t *tags = rs_.tags();
    const unsigned n = rs_.size();
    for (unsigned pos = 0; pos < n; ++pos)
        rs_vfp_correct_ += tags[pos] != 0;
}

void
OooCore::doCommit()
{
    // Commit-width batching: walk the contiguous completed prefix applying
    // side effects in sequence order (stores drain oldest-first — the
    // pending_stores_ seq-order invariant), then retire the whole span
    // with one ROB head/count update and one counter adjustment instead of
    // per-uop bookkeeping.
    const unsigned cap = rob_.capacity();
    const unsigned avail = std::min(params_.commit_width, rob_.size());
    unsigned slot = avail > 0 ? rob_.headSlot() : 0;
    unsigned n = 0;
    while (n < avail) {
        InflightInstr &h = rob_.at(slot);
        if (!h.completed)
            break;
        assert(!h.wrong_path);
        if (h.instr.isStore()) {
            mem_.store(h.instr.mem_addr, now_);
            if (!pending_stores_.empty() &&
                pending_stores_.front().seq == h.seq) {
                --store_filter_[pending_stores_.front().word_addr &
                                (kStoreFilterSize - 1)];
                pending_stores_.pop_front();
            }
        }
        if (h.instr.isBranch() && !h.mispredicted)
            onBranchResolvedAll(h.seq, /*mispredicted=*/false);
        ++n;
        if (++slot == cap)
            slot = 0;
    }
    if (n > 0) {
        rob_.popHeads(n);
        stats_.instrs_committed += n;
        rob_correct_ -= n;
        progress_ = true;
    }
    cs_.n_commit = n;
    captureHeadState();
}

void
OooCore::issueOne(unsigned slot)
{
    InflightInstr &e = rob_.at(slot);
    fu_.issue(e.instr.cls, now_);

    Cycle lat = 1;
    if (e.instr.isLoad()) {
        if (e.wrong_path) {
            lat = params_.mem.l1_lat;
        } else {
            const uarch::AccessResult res =
                mem_.load(e.instr.mem_addr, now_);
            lat = std::max<Cycle>(1, res.done - now_);
            e.dcache_miss = !res.l1_hit;
            ++stats_.loads;
            if (e.dcache_miss)
                ++stats_.l1d_load_misses;
        }
    } else if (e.instr.isStore()) {
        lat = 1;  // address resolution; data drains to cache at commit
    } else {
        lat = std::max<Cycle>(1, fu_.latency(e.instr.cls));
    }

    e.issued = true;
    e.issue_cycle = now_;
    e.exec_latency = lat;
    e.complete_cycle = now_ + lat;
    wb_cal_.push(WbEvent{now_ + lat, slot, e.seq});

    if (!e.wrong_path) {
        ScoreEntry &se = scoreSlot(e.trace_index);
        se.complete_at = now_ + lat;
        se.exec_latency = static_cast<std::uint32_t>(lat);
        se.dcache_miss = e.dcache_miss;
        se.issued = true;
        // Re-arm consumers parked on this producer: their bound is
        // computable now that the completion time is known. A waiter whose
        // slot has since left the RS (issued/committed/squashed, possibly
        // recycled) is a no-op inside rearmSlot.
        for (unsigned i = 0; i < se.num_waiters; ++i)
            rearmed_waiter_ |= rs_.rearmSlot(se.waiters[i]);
        se.num_waiters = 0;

        if (trace::isVfp(e.instr.cls)) {
            const double a = trace::flopsPerLane(e.instr.cls);
            const double v = params_.flops_vec_lanes;
            const double m = std::min<double>(e.instr.active_lanes, v);
            ++cs_.n_vfp;
            cs_.vfp_lane_ops += a * m;
            cs_.vfp_nonfma_loss += (2.0 - a) * m;
            cs_.vfp_mask_loss += v - m;
            stats_.flops_issued += static_cast<std::uint64_t>(a * m);
            --rs_vfp_correct_;
        }
    }
}

void
OooCore::doIssue()
{
    fu_.beginCycle(now_);
    cs_.issue_blame = BackendBlame::kNone;
    cs_.ready_unissued = false;

    if (rs_counts_valid_ && rs_active_ == 0 && now_ < next_wake_) {
        // Every RS entry is parked with an unexpired bound: none can have
        // become ready (entryReady() on a data-incomplete entry is false
        // with no store conflict), so the walk would only replay blames.
        // The oldest entry is the first nonready one in age order.
        if (!rs_.empty())
            cs_.issue_blame = static_cast<BackendBlame>(rs_.blameAt(0));
        cs_.n_issue = 0;
        cs_.n_issue_wrong = 0;
        cs_.rs_empty_any = rs_.empty();
        cs_.rs_empty_correct = rs_correct_ == 0;
        cs_.nonvfp_on_vpu = fu_.nonVfpOnVpuThisCycle();
        scanVfpWait();
        return;
    }

    unsigned budget = params_.issue_width;
    unsigned n_issue = 0;
    unsigned n_wrong = 0;
    bool found_nonready = false;
    bool walk_complete = true;
    unsigned active = 0;
    Cycle wake = kNeverCycle;

    issued_scratch_.clear();
    const std::vector<unsigned> &ents = rs_.entries();
    const unsigned n_ents = rs_.size();
    const std::uint32_t now_key = rs_.nowKey(now_);
    const std::uint32_t *keys = rs_.keys();
    simd::ReadyScanner scanner(now_key);
    for (unsigned base = 0; base < n_ents && walk_complete;
         base += simd::kScanBlock) {
        // One SIMD pass answers both questions the scalar walk asked per
        // entry: which lanes are due for re-evaluation (bound <= now_),
        // and the wake minimum over the still-parked rest (kNeverKey
        // park sentinels and tail padding are excluded by construction;
        // the horizontal reduce is deferred to wakeKey() below).
        std::uint32_t due = scanner.block(keys + base);
        if (due == 0 && found_nonready)
            continue;  // fully parked block, blame already chosen
        const unsigned lim = std::min(n_ents - base, simd::kScanBlock);
        for (unsigned i = 0; i < lim; ++i) {
            if ((due & (1u << i)) == 0) {
                // Provably blocked: replay the blame cached at park time.
                if (!found_nonready) {
                    found_nonready = true;
                    cs_.issue_blame =
                        static_cast<BackendBlame>(rs_.blameAt(base + i));
                }
                continue;
            }
            const unsigned pos = base + i;
            const unsigned slot = ents[pos];
            InflightInstr &e = rob_.at(slot);
            bool conflict = false;
            if (!entryReady(e, conflict)) {
                if (conflict) {
                    cs_.ready_unissued = true;
                    ++active;
                } else {
                    Cycle lb = 0;
                    stacks::BackendBlame blame = BackendBlame::kDepend;
                    std::uint64_t unissued = kNoSeq;
                    classifyBlocked(e, lb, blame, unissued);
                    if (lb > now_) {
                        rs_.park(pos, lb, static_cast<std::uint8_t>(blame));
                        wake = std::min(wake, lb);
                    } else if (unissued != kNoSeq) {
                        // Blocked on a producer that has not even issued:
                        // park the entry until that producer's issueOne()
                        // re-arms it (blame is kDepend the whole time).
                        ScoreEntry &p = scoreSlot(unissued);
                        if (p.num_waiters < std::size(p.waiters)) {
                            p.waiters[p.num_waiters++] =
                                static_cast<std::uint16_t>(slot);
                            rs_.park(pos, kNeverCycle,
                                     static_cast<std::uint8_t>(blame));
                        } else {
                            ++active;
                        }
                    } else {
                        ++active;
                    }
                    if (!found_nonready) {
                        found_nonready = true;
                        cs_.issue_blame = blame;
                    }
                }
                continue;
            }
            if (budget == 0) {
                cs_.ready_unissued = true;
                walk_complete = false;
                break;
            }
            if (!fu_.canIssue(e.instr.cls)) {
                cs_.ready_unissued = true;
                ++active;
                continue;
            }
            rearmed_waiter_ = false;
            issueOne(slot);
            issued_scratch_.push_back(pos);
            --budget;
            if (e.wrong_path) {
                ++n_wrong;
            } else {
                ++n_issue;
                --rs_correct_;
            }
            if (rearmed_waiter_) {
                // The wakeup may have re-armed a parked entry later in
                // this block (its key just dropped to 0); refresh the
                // due mask so the remaining lanes see it, exactly as the
                // scalar walk read each bound at visit time. Keys of
                // unvisited lanes only ever drop (re-arm), so OR-ing the
                // fresh mask is a recompute for them; no wake minimum is
                // needed because every parked lane already contributed
                // above (and the newly parked current lane at park time).
                due |= simd::dueMask8(keys + base, now_key);
            }
        }
    }
    if (!issued_scratch_.empty()) {
        progress_ = true;
        // Positions were recorded in walk order (ascending), so the
        // compaction needs no per-entry predicate or mark array.
        rs_.removeAtPositions(issued_scratch_);
    }

    // The walk's census is trustworthy only if it covered every entry and
    // no issue re-armed an already-visited waiter mid-walk.
    if (walk_complete && issued_scratch_.empty()) {
        rs_counts_valid_ = true;
        rs_active_ = active;
        next_wake_ = std::min(wake, rs_.keyToCycle(scanner.wakeKey()));
    } else {
        rs_counts_valid_ = false;
    }

    cs_.n_issue = n_issue;
    cs_.n_issue_wrong = n_wrong;
    cs_.rs_empty_any = rs_.empty();
    cs_.rs_empty_correct = rs_correct_ == 0;
    cs_.nonvfp_on_vpu = fu_.nonVfpOnVpuThisCycle();
    scanVfpWait();
}

void
OooCore::scanVfpWait()
{
    // FLOPS stack inputs: is a correct-path VFP uop still waiting, and why?
    // The occupancy counter makes the common no-VFP case free.
    cs_.vfp_in_rs = false;
    cs_.vfp_blame = VfpBlame::kNone;
    if (rs_vfp_correct_ > 0) {
        // The RS tags correct-path VFP entries at insert, so finding the
        // oldest one is a contiguous byte scan — only that single entry's
        // ROB record is ever loaded.
        const std::uint8_t *tags = rs_.tags();
        const unsigned n = rs_.size();
        unsigned pos = 0;
        while (pos < n && tags[pos] == 0)
            ++pos;
        if (pos < n) {
            const InflightInstr &e = rob_.at(rs_.entries()[pos]);
            cs_.vfp_in_rs = true;
            // prod(oldest VFP instr): Table III blames the producer the VFP
            // op is actually waiting for — the latest-completing incomplete
            // one. Memory load -> mem component, anything else -> depend.
            const ScoreEntry *binding = nullptr;
            Cycle binding_done = 0;
            for (unsigned i = 0; i < e.instr.num_srcs; ++i) {
                const ScoreEntry *se =
                    liveIncompleteProducer(e.instr.src[i]);
                if (se == nullptr)
                    continue;
                if (binding == nullptr || se->complete_at >= binding_done) {
                    binding = se;
                    binding_done = se->complete_at;
                }
            }
            cs_.vfp_blame = (binding != nullptr && binding->is_load)
                                ? VfpBlame::kMem
                                : VfpBlame::kDepend;
        }
    }
}

void
OooCore::doDispatch()
{
    unsigned n = 0;
    unsigned n_wrong = 0;
    cs_.backend_full = false;

    while (n + n_wrong < params_.dispatch_width && !fetch_q_.empty()) {
        InflightInstr &front = fetch_q_.front();

        if (front.instr.cls == InstrClass::kYield && !front.wrong_path) {
            if (rob_.empty()) {
                // Retire the marker and deschedule the thread.
                progress_ = true;
                unsched_until_ = now_ + 1 + front.instr.yield_cycles;
                ScoreEntry &se = scoreSlot(front.trace_index);
                se = ScoreEntry{front.trace_index, now_, false, false, 1,
                                true};
                ++stats_.instrs_committed;
                fetch_q_.pop_front();
                --fetch_q_correct_;
            } else {
                // Wait for the pipeline to drain: a backend-bound stall.
                cs_.backend_full = true;
            }
            break;
        }

        if (rob_.full() || rs_.full()) {
            cs_.backend_full = true;
            break;
        }

        front.dispatch_cycle = now_;

        if (front.wrong_path) {
            // Give wrong-path uops shallow dependence chains among
            // themselves so they contend for issue slots realistically.
            if (wp_last_producer_slot_ >= 0 && wp_rng_.chance(0.5)) {
                front.wp_dep_slot = wp_last_producer_slot_;
                front.wp_dep_seq = wp_last_producer_seq_;
            }
        }

        const bool wrong_path = front.wrong_path;
        const bool is_branch = front.instr.isBranch();
        const bool is_vfp = trace::isVfp(front.instr.cls);
        const SeqNum seq = front.seq;
        const std::uint64_t tidx = front.trace_index;
        const bool is_store = front.instr.isStore();
        const Addr addr = front.instr.mem_addr;

        // Move straight from the queue slot into the ROB slot: one copy,
        // no stack intermediate.
        const unsigned slot = rob_.push(std::move(front));
        fetch_q_.pop_front();
        // Fresh entries start with bound 0; the tag marks correct-path
        // VFP uops so scanVfpWait() can find the oldest one without
        // touching the ROB.
        rs_.insert(slot, !wrong_path && is_vfp ? 1 : 0);
        // A fresh entry is unclassified, hence active.
        if (rs_counts_valid_)
            ++rs_active_;

        if (wrong_path) {
            ++n_wrong;
            ++stats_.wrong_path_dispatched;
            wp_last_producer_slot_ = static_cast<int>(slot);
            wp_last_producer_seq_ = seq;
        } else {
            ++n;
            ++rob_correct_;
            ++rs_correct_;
            --fetch_q_correct_;
            if (is_vfp)
                ++rs_vfp_correct_;
            ScoreEntry &se = scoreSlot(tidx);
            se = ScoreEntry{tidx, kNeverCycle,
                            rob_.at(slot).instr.isLoad(), false, 1, false};
            if (is_branch)
                onBranchFetchedAll(seq);
            if (is_store) {
                pending_stores_.push_back(PendingStore{slot, seq, addr / 8});
                ++store_filter_[(addr / 8) & (kStoreFilterSize - 1)];
            }
        }
    }

    if (n + n_wrong > 0)
        progress_ = true;
    cs_.n_dispatch = n;
    cs_.n_dispatch_wrong = n_wrong;
    cs_.fe_has_any = !fetch_q_.empty();
    cs_.fe_has_correct = fetch_q_correct_ > 0;
    cs_.fe_reason = fe_reason_;
}

void
OooCore::fetchWrongPath(unsigned budget)
{
    while (budget-- > 0 && fetch_q_.size() < params_.fetch_queue_size) {
        InflightInstr &inst = fetch_q_.emplace_back();
        inst.wrong_path = true;
        inst.seq = next_seq_++;
        inst.trace_index = kNoSeq;
        inst.fetch_cycle = now_;
        inst.instr.pc = 0xdead0000;
        const double r = wp_rng_.uniform();
        if (r < 0.55) {
            inst.instr.cls = InstrClass::kAlu;
        } else if (r < 0.75) {
            inst.instr.cls = InstrClass::kLoad;
            inst.instr.mem_addr = 0x70000000 + wp_rng_.below(1 << 16);
        } else if (r < 0.85) {
            inst.instr.cls = InstrClass::kAluMul;
        } else {
            inst.instr.cls = InstrClass::kAlu;
        }
    }
}

void
OooCore::fetchCorrectPath(unsigned budget)
{
    fe_reason_ = FrontendReason::kNone;
    while (budget > 0 && fetch_q_.size() < params_.fetch_queue_size) {
        if (decode_busy_ > 0) {
            // The decoder is sequencing a microcoded instruction.
            --decode_busy_;
            fe_reason_ = FrontendReason::kMicrocode;
            return;
        }
        if (now_ < fetch_ready_at_) {
            fe_reason_ = FrontendReason::kIcache;
            return;
        }
        if (!has_pending_) {
            if (trace_done_ || !trace_->next(pending_)) {
                trace_done_ = true;
                fe_reason_ = FrontendReason::kDrain;
                return;
            }
            pending_index_ = next_trace_index_++;
            has_pending_ = true;
            pending_decode_paid_ = false;
        }

        // Instruction cache: one timed access per new line.
        const Addr line = ifetchLine(pending_.pc);
        if (line != last_fetch_line_) {
            const uarch::AccessResult res = mem_.ifetch(pending_.pc, now_);
            last_fetch_line_ = line;
            if (!res.l1_hit) {
                fetch_ready_at_ = res.done;
                fe_reason_ = FrontendReason::kIcache;
                return;
            }
        }

        // Microcoded instructions occupy the decoder for extra cycles.
        if (pending_.decode_cycles > 1 && !pending_decode_paid_) {
            pending_decode_paid_ = true;
            decode_busy_ = pending_.decode_cycles - 1;
            fe_reason_ = FrontendReason::kMicrocode;
            return;
        }

        InflightInstr &inst = fetch_q_.emplace_back();
        inst.instr = pending_;
        inst.seq = next_seq_++;
        inst.trace_index = pending_index_;
        inst.fetch_cycle = now_;
        has_pending_ = false;

        bool mispredicted = false;
        if (pending_.isBranch()) {
            ++stats_.branches;
            const bool correct =
                bp_.predictAndUpdate(pending_.pc, pending_.branch_taken);
            if (!correct) {
                ++stats_.branch_mispredicts;
                inst.mispredicted = true;
                mispredicted = true;
            }
        }

        ++fetch_q_correct_;
        --budget;

        if (mispredicted) {
            // Functional-first: the wrong target is known immediately; the
            // frontend switches to wrong-path fetch until the branch
            // executes.
            wrong_path_mode_ = true;
            fe_reason_ = FrontendReason::kBpred;
            return;
        }
    }
}

void
OooCore::doFetch()
{
    // Snapshot the frontend latches so any mutation below marks the cycle
    // as having made progress (which vetoes skip-ahead). fe_reason_ is
    // part of the snapshot because dispatch publishes it one cycle late:
    // a boundary cycle that flips only the latched reason (e.g. redirect
    // expiry with the trace drained, kBpred -> kDrain) must not be quiet,
    // or skip-ahead would replicate the stale reason across the span.
    const std::size_t fq_before = fetch_q_.size();
    const unsigned decode_before = decode_busy_;
    const bool pending_before = has_pending_;
    const Cycle ready_before = fetch_ready_at_;
    const FrontendReason reason_before = fe_reason_;

    if (now_ < redirect_until_) {
        fe_reason_ = FrontendReason::kBpred;
    } else if (wrong_path_mode_) {
        fe_reason_ = FrontendReason::kBpred;
        fetchWrongPath(params_.fetch_width);
    } else {
        fetchCorrectPath(params_.fetch_width);
    }

    if (fetch_q_.size() != fq_before || decode_busy_ != decode_before ||
        has_pending_ != pending_before || fetch_ready_at_ != ready_before ||
        fe_reason_ != reason_before) {
        progress_ = true;
    }
}

void
OooCore::flushBatch()
{
    if (batch_.empty())
        return;
    acct_dispatch_.tickBatch(batch_.data(), batch_.size());
    acct_issue_.tickBatch(batch_.data(), batch_.size());
    acct_commit_.tickBatch(batch_.data(), batch_.size());
    flops_.tickBatch(batch_.data(), batch_.size());
    batch_.clear();
}

void
OooCore::appendRecord(const CycleRecord &rec)
{
    if (!batch_.empty()) {
        CycleRecord &last = batch_.back();
        // Runs of identical idle cycles collapse into one record; records
        // with any pipeline activity are kept singular so the accountants'
        // per-cycle arithmetic (and the §III-A carry) replays bit-exactly.
        if (last.flags == rec.flags && last.idle() && rec.idle() &&
            rec.repeat <=
                std::numeric_limits<std::uint32_t>::max() - last.repeat) {
            last.repeat += rec.repeat;
            return;
        }
    }
    if (batch_.size() == kBatchCapacity)
        flushBatch();
    batch_.push_back(rec);
}

void
OooCore::account()
{
    if (!params_.accounting_enabled)
        return;
    if (!params_.batched_accounting) {
        acct_dispatch_.tick(cs_);
        acct_issue_.tick(cs_);
        acct_commit_.tick(cs_);
        flops_.tick(cs_);
        return;
    }
    // The record ring earns its keep on idle runs (one record accounts a
    // whole span); for a cycle with pipeline activity, packing + ring
    // traffic is pure overhead on top of the same per-record arithmetic.
    // Tick active cycles directly instead — bit-identical, because the
    // batch stall table is built from the very classify functions tick()
    // uses — after draining any buffered idle run to keep the §III-A
    // carry sequence exact.
    const bool idle = (cs_.n_dispatch | cs_.n_dispatch_wrong | cs_.n_issue |
                       cs_.n_issue_wrong | cs_.n_commit | cs_.n_vfp |
                       cs_.nonvfp_on_vpu) == 0;
    if (!idle) {
        flushBatch();
        acct_dispatch_.tick(cs_);
        acct_issue_.tick(cs_);
        acct_commit_.tick(cs_);
        flops_.tick(cs_);
        return;
    }
    appendRecord(stacks::packCycleState(cs_));
}

void
OooCore::accountUnsched(Cycle span)
{
    if (!params_.accounting_enabled)
        return;
    if (!params_.batched_accounting) {
        assert(span == 1);
        acct_dispatch_.tick(cs_);
        acct_issue_.tick(cs_);
        acct_commit_.tick(cs_);
        flops_.tick(cs_);
        return;
    }
    CycleRecord rec{};
    rec.flags = stacks::record_flags::kUnsched;
    while (span > 0) {
        const Cycle chunk = std::min<Cycle>(
            span, std::numeric_limits<std::uint32_t>::max());
        rec.repeat = static_cast<std::uint32_t>(chunk);
        appendRecord(rec);
        span -= chunk;
    }
}

void
OooCore::maybeSkipAhead()
{
    // A cycle that mutated nothing and holds no ready-but-unissued work is
    // provably inert: microarchitectural state next changes only when a
    // writeback completes, an icache refill lands, or a redirect expires.
    // Jump to the earliest such event and account the skipped cycles as
    // repeats of the (identical) record just appended. See
    // docs/performance.md for the legality argument.
    if (!skip_allowed_ || progress_ || cs_.ready_unissued)
        return;
    // earliest() is kNeverCycle when the calendar is empty.
    Cycle target = std::min(cycle_horizon_, wb_cal_.earliest());
    // now_ is the next unevaluated cycle: an event landing exactly on it
    // means that cycle is not quiet, so >= (not >) keeps it in the target
    // set and the `target <= now_` check below refuses the jump.
    if (fetch_ready_at_ >= now_)
        target = std::min(target, fetch_ready_at_);
    if (redirect_until_ >= now_)
        target = std::min(target, redirect_until_);
    if (target == kNeverCycle || target <= now_)
        return;
    Cycle span = target - now_;
    if (params_.accounting_enabled) {
        assert(!batch_.empty());
        CycleRecord &last = batch_.back();
        const std::uint32_t headroom =
            std::numeric_limits<std::uint32_t>::max() - last.repeat;
        span = std::min<Cycle>(span, headroom);
        if (span == 0)
            return;
        last.repeat += static_cast<std::uint32_t>(span);
    }
    now_ += span;
}

void
OooCore::stepUnsched()
{
    cs_ = CycleState{};
    cs_.unsched = true;
    Cycle span = 1;
    if (skip_allowed_) {
        const Cycle limit = std::min(unsched_until_, cycle_horizon_);
        if (limit > now_)
            span = limit - now_;
    }
    accountUnsched(span);
    now_ += span;
}

void
OooCore::cycle()
{
    if (profile_ != nullptr) {
        cycleProfiled();
        return;
    }
    if (now_ < unsched_until_) {
        stepUnsched();
        return;
    }
    cs_ = CycleState{};
    progress_ = false;
    doWriteback();
    doCommit();
    doIssue();
    doDispatch();
    doFetch();
    account();
    ++now_;
    maybeSkipAhead();
}

void
OooCore::cycleProfiled()
{
    using Clock = std::chrono::steady_clock;
    const auto ns = [](Clock::time_point a, Clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };
    ++profile_->cycles;
    if (now_ < unsched_until_) {
        const auto t0 = Clock::now();
        stepUnsched();
        profile_->accounting_ns += ns(t0, Clock::now());
        return;
    }
    cs_ = CycleState{};
    progress_ = false;
    const auto t0 = Clock::now();
    doWriteback();
    const auto t1 = Clock::now();
    doCommit();
    const auto t2 = Clock::now();
    doIssue();
    const auto t3 = Clock::now();
    doDispatch();
    const auto t4 = Clock::now();
    doFetch();
    const auto t5 = Clock::now();
    account();
    ++now_;
    maybeSkipAhead();
    const auto t6 = Clock::now();
    profile_->writeback_ns += ns(t0, t1);
    profile_->commit_ns += ns(t1, t2);
    profile_->issue_ns += ns(t2, t3);
    profile_->dispatch_ns += ns(t3, t4);
    profile_->fetch_ns += ns(t4, t5);
    profile_->accounting_ns += ns(t5, t6);
}

bool
OooCore::done() const
{
    return trace_done_ && !has_pending_ && fetch_q_.empty() &&
           rob_.empty() && now_ >= unsched_until_;
}

bool
OooCore::storeQueueSorted() const
{
    for (std::size_t i = 1; i < pending_stores_.size(); ++i) {
        if (pending_stores_[i - 1].seq >= pending_stores_[i].seq)
            return false;
    }
    return true;
}

void
OooCore::run(Cycle max_cycles)
{
    if (max_cycles != 0)
        cycle_horizon_ = std::min(cycle_horizon_, max_cycles);
    while (!done() && (max_cycles == 0 || now_ < max_cycles))
        cycle();
    stats_.cycles = cycles();
    finalizeAccounting();
}

void
OooCore::resetMeasurement()
{
    const auto width_for = [&](unsigned native) {
        return params_.accounting_native_widths ? native
                                                : params_.effectiveWidth();
    };
    acct_dispatch_ = stacks::CpiAccountant(
        {stacks::Stage::kDispatch, width_for(params_.dispatch_width),
         params_.spec_mode});
    acct_issue_ = stacks::CpiAccountant(
        {stacks::Stage::kIssue, width_for(params_.issue_width),
         params_.spec_mode});
    acct_commit_ = stacks::CpiAccountant(
        {stacks::Stage::kCommit, width_for(params_.commit_width),
         params_.spec_mode});
    flops_ = stacks::FlopsAccountant(
        {params_.fu.vpu_units, params_.flops_vec_lanes});
    batch_.clear();  // warmup cycles never reach the fresh accountants
    stats_ = CoreStats{};
    measure_start_cycle_ = now_;
    accounting_finalized_ = false;
}

void
OooCore::finalizeAccounting()
{
    if (accounting_finalized_ || !params_.accounting_enabled)
        return;
    flushBatch();
    acct_dispatch_.finalize();
    acct_issue_.finalize();
    acct_commit_.finalize();
    if (params_.spec_mode == stacks::SpeculationMode::kSimple) {
        const double commit_base =
            acct_commit_.cycles()[stacks::CpiComponent::kBase];
        acct_dispatch_.applySimpleFixup(commit_base);
        acct_issue_.applySimpleFixup(commit_base);
    }
    accounting_finalized_ = true;
}

}  // namespace stackscope::core
