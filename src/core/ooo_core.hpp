/**
 * @file
 * Cycle-level superscalar out-of-order core model.
 *
 * The pipeline models the mechanisms the paper's analysis depends on:
 *  - a frontend with instruction-cache misses, microcoded-decode stalls and
 *    branch misprediction handling (wrong-path uops are fetched, dispatched
 *    and issued until the branch executes, then squashed and the frontend
 *    refills);
 *  - dispatch into a ROB and unified reservation stations, blocking when
 *    either is full;
 *  - oldest-first issue limited by issue width and functional-unit/port
 *    availability, with load/store address-conflict blocking;
 *  - execution with per-class latencies, timed data-cache accesses for
 *    loads (including MSHR and bandwidth contention);
 *  - in-order commit.
 *
 * Every cycle the core fills a stacks::CycleState observation and drives
 * the four accountants (dispatch/issue/commit CPI stacks and the FLOPS
 * stack), which is exactly the integration style the paper recommends for
 * simulators (§IV: negligible overhead).
 *
 * Two accounting engines share that observation contract
 * (docs/performance.md):
 *  - the batched engine (default) packs each CycleState into a
 *    stacks::CycleRecord ring consumed in spans via tickBatch(), merges
 *    runs of identical idle cycles, and fast-forwards `now_` across
 *    provably quiet spans to the next writeback/refill/redirect event;
 *  - the reference engine (CoreParams::batched_accounting = false) keeps
 *    the original one-tick-per-cycle path and never skips, serving as the
 *    golden baseline the batched engine is checked against.
 */

#ifndef STACKSCOPE_CORE_OOO_CORE_HPP
#define STACKSCOPE_CORE_OOO_CORE_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bounded_deque.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/wb_calendar.hpp"
#include "stacks/cpi_accountant.hpp"
#include "stacks/cycle_record.hpp"
#include "stacks/cycle_state.hpp"
#include "stacks/flops_accountant.hpp"
#include "trace/trace_source.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache_hierarchy.hpp"
#include "uarch/fu_pool.hpp"
#include "uarch/reservation_station.hpp"
#include "uarch/rob.hpp"

namespace stackscope::core {

/** Full static configuration of one core. */
struct CoreParams
{
    unsigned fetch_width = 4;
    unsigned dispatch_width = 4;
    unsigned issue_width = 6;
    unsigned commit_width = 4;

    unsigned rob_size = 192;
    unsigned rs_size = 60;
    unsigned fetch_queue_size = 16;

    /** Frontend refill penalty after a misprediction redirect (cycles). */
    unsigned frontend_depth = 8;

    uarch::FuPoolParams fu{};
    uarch::HierarchyParams mem{};
    uarch::BranchPredictorParams bpred{};

    /** Wrong-path handling for the dispatch/issue accountants (§III-B). */
    stacks::SpeculationMode spec_mode = stacks::SpeculationMode::kOracle;

    /** Master switch for all stack accounting (overhead benchmark). */
    bool accounting_enabled = true;

    /**
     * Engine selection: true (default) drives the accountants through the
     * packed CycleRecord ring with idle-run merging and skip-ahead; false
     * retains the per-cycle reference path (SimOptions::reference_engine,
     * the golden baseline of the bit-identity suite).
     */
    bool batched_accounting = true;

    /**
     * Ablation knob: account each stage with its *native* width instead of
     * the normalized minimum width of §III-A. Breaks the equal-base
     * property across stacks; exists to demonstrate why the paper
     * normalizes (see bench/ablation_design_choices).
     */
    bool accounting_native_widths = false;

    /** Machine vector width (v of Table III) for the FLOPS stack. */
    unsigned flops_vec_lanes = 16;

    /** Seed for the deterministic wrong-path uop synthesizer. */
    std::uint64_t wrong_path_seed = 7;

    /** Effective accounting width: min over all stage widths (§III-A). */
    unsigned
    effectiveWidth() const
    {
        unsigned w = dispatch_width;
        w = std::min(w, issue_width);
        w = std::min(w, commit_width);
        return std::max(1u, w);
    }
};

/**
 * Wall-time breakdown of the pipeline stages, accumulated by
 * OooCore::cycleProfiled() when a profile sink is attached
 * (`bench/simspeed --profile`). Nanoseconds of std::chrono::steady_clock;
 * `accounting_ns` covers record packing/ticking plus skip-ahead.
 */
struct StageProfile
{
    std::uint64_t writeback_ns = 0;
    std::uint64_t commit_ns = 0;
    std::uint64_t issue_ns = 0;
    std::uint64_t dispatch_ns = 0;
    std::uint64_t fetch_ns = 0;
    std::uint64_t accounting_ns = 0;
    std::uint64_t cycles = 0;  ///< profiled cycle() invocations
};

/** Aggregate run counters not covered by the stacks. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t instrs_committed = 0;  ///< correct-path uops (incl. yields)
    std::uint64_t wrong_path_dispatched = 0;
    std::uint64_t branches = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t l1d_load_misses = 0;
    std::uint64_t squashed_uops = 0;
    std::uint64_t flops_issued = 0;  ///< actual flops (sum of a*m over VFP)
};

/**
 * The core. Construct with a trace and (optionally) a shared uncore, call
 * run(), then read stacks and stats.
 */
class OooCore
{
  public:
    OooCore(const CoreParams &params,
            std::unique_ptr<trace::TraceSource> trace,
            uarch::Uncore *shared_uncore = nullptr);

    /** Advance one cycle (or, when skip-ahead engages, one quiet span). */
    void cycle();

    /** Trace exhausted and pipeline drained. */
    bool done() const;

    /**
     * Run until done (or @p max_cycles when non-zero) and finalize
     * accounting.
     */
    void run(Cycle max_cycles = 0);

    /** Flush speculative accounting state; called by run(). */
    void finalizeAccounting();

    /**
     * Restart measurement at the current cycle: zero the accountants and
     * statistics while keeping all microarchitectural state (caches,
     * predictor, pipeline contents) warm. This is the paper's
     * fast-forward-then-measure methodology (§IV).
     */
    void resetMeasurement();

    /**
     * Runtime gate for idle skip-ahead (on by default). Drivers turn it
     * off when an observer needs to see every individual cycle (the
     * pipeline tracer). It has no effect in the reference engine or with
     * a shared uncore, where skip is never legal.
     */
    void
    setSkipAheadEnabled(bool on)
    {
        skip_user_enabled_ = on;
        updateSkipAllowed();
    }

    /**
     * Attach a per-stage wall-time profile sink (nullptr detaches).
     * While attached, cycle() routes through a timed twin that brackets
     * each stage with steady_clock reads; when detached the hot path pays
     * one predicted branch. Used by `bench/simspeed --profile`.
     */
    void setStageProfile(StageProfile *sink) { profile_ = sink; }

    /**
     * Absolute-cycle ceiling for skip-ahead: a quiet span never advances
     * `now_` past this value, so cycle-exact consumers (watchdogs,
     * interval snapshots, periodic validators) observe the same
     * boundaries as a never-skipping run. kNeverCycle disables the cap;
     * drivers refresh it every iteration.
     */
    void setCycleHorizon(Cycle horizon) { cycle_horizon_ = horizon; }

    /**
     * The `pending_stores_` ordering invariant the load-alias early-break
     * relies on: sequence numbers strictly increase front to back.
     * Dispatch appends in program order and both removal paths (commit
     * pops the front, squash pops the wrong-path suffix from the back)
     * preserve it; validate::IntervalValidator asserts it under
     * `--validate strict`.
     */
    bool storeQueueSorted() const;

    /** @name Results @{ */
    /** Cycles elapsed since the last resetMeasurement() (or start). */
    Cycle cycles() const { return now_ - measure_start_cycle_; }
    /** Absolute simulated cycle count. */
    Cycle absoluteCycles() const { return now_; }
    const CoreStats &stats() const { return stats_; }
    double
    cpi() const
    {
        return stats_.instrs_committed == 0
                   ? 0.0
                   : static_cast<double>(cycles()) /
                         static_cast<double>(stats_.instrs_committed);
    }
    /** Per-stage accountant; drains any batched records first. */
    const stacks::CpiAccountant &accountant(stacks::Stage stage) const;
    /** FLOPS accountant; drains any batched records first. */
    const stacks::FlopsAccountant &flopsAccountant() const;
    /** The observation record of the most recently executed cycle. */
    const stacks::CycleState &cycleState() const { return cs_; }
    const uarch::CacheHierarchy &caches() const { return mem_; }
    const uarch::BranchPredictor &branchPredictor() const { return bp_; }
    /** @} */

    const CoreParams &params() const { return params_; }

  private:
    /** Dependence scoreboard entry for one correct-path instruction. */
    /**
     * Packed to 32 bytes (two per cache line): the dispatch stage rewrites
     * one entry per uop, so the footprint is hot.
     */
    struct ScoreEntry
    {
        std::uint64_t trace_index = kNoSeq;
        Cycle complete_at = kNeverCycle;
        std::uint32_t exec_latency = 1;
        bool is_load = false;
        bool dcache_miss = false;
        bool issued = false;
        /**
         * ROB slots of RS entries parked (readiness bound kNeverCycle)
         * until this producer issues; issueOne() re-arms them through
         * ReservationStations::rearmSlot(). A full list simply leaves
         * further consumers on the evaluate-every-cycle path, and a stale
         * wake is only a spurious re-evaluation, never a correctness
         * hazard.
         */
        std::uint8_t num_waiters = 0;
        std::uint16_t waiters[4] = {};
    };

    /** Outstanding (uncommitted) store for load-conflict checks. */
    struct PendingStore
    {
        unsigned slot = 0;
        SeqNum seq = kNoSeq;
        Addr word_addr = 0;
    };

    static constexpr std::uint64_t kScoreboardSize = 4096;
    /** Record ring capacity before a forced drain into the accountants. */
    static constexpr std::size_t kBatchCapacity = 256;
    /**
     * Counting-filter buckets for pending-store word addresses (power of
     * two; collisions only cost a redundant scan, never a missed one).
     */
    static constexpr std::size_t kStoreFilterSize = 1024;

    void doWriteback();
    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch();
    /** cycle() twin that brackets every stage with steady_clock reads. */
    void cycleProfiled();
    /** One descheduled (yield) step, shared by cycle()/cycleProfiled(). */
    void stepUnsched();
    void account();
    void accountUnsched(Cycle span);
    void maybeSkipAhead();
    void flushBatch();
    void appendRecord(const stacks::CycleRecord &rec);
    void
    updateSkipAllowed()
    {
        skip_allowed_ = params_.batched_accounting && skip_user_enabled_ &&
                        !has_shared_uncore_;
    }

    void fetchCorrectPath(unsigned budget);
    void fetchWrongPath(unsigned budget);
    void squashAfter(unsigned branch_slot, SeqNum branch_seq);

    ScoreEntry &scoreSlot(std::uint64_t trace_index);
    bool producerComplete(std::uint64_t trace_index) const;
    /**
     * The scoreboard entry for @p trace_index iff it is still live (not
     * recycled after the kScoreboardSize wrap) and not yet complete;
     * nullptr otherwise. Blame selection must go through this guard — a
     * recycled entry's is_load/dcache_miss/exec_latency belong to a
     * long-gone instruction.
     */
    const ScoreEntry *liveIncompleteProducer(std::uint64_t trace_index) const;
    Addr
    ifetchLine(Addr pc) const
    {
        return ifetch_line_shift_ != 0
                   ? pc >> ifetch_line_shift_
                   : pc / mem_.params().l1i.line_bytes;
    }
    bool entryReady(const uarch::InflightInstr &e, bool &store_conflict) const;
    stacks::BackendBlame blameProducer(const uarch::InflightInstr &e) const;
    /**
     * For an RS entry that failed entryReady() on a producer dependence:
     * the earliest cycle it could become ready (0 when unknowable, i.e.
     * some producer has not issued yet) and the Table II blame it will
     * carry until then. Mirrors blameProducer() exactly; the pair feeds
     * the per-slot ready_lb_ cache that lets doIssue() skip re-evaluating
     * provably blocked entries.
     */
    void classifyBlocked(const uarch::InflightInstr &e, Cycle &lb,
                         stacks::BackendBlame &blame,
                         std::uint64_t &unissued_src) const;
    stacks::BackendBlame headBlame() const;
    void captureHeadState();
    void issueOne(unsigned slot);
    void onBranchFetchedAll(SeqNum seq);
    void onBranchResolvedAll(SeqNum seq, bool mispredicted);
    void recountRsVfp();
    /** FLOPS-stack inputs (cs_.vfp_in_rs / vfp_blame) from the RS walk. */
    void scanVfpWait();

    CoreParams params_;
    std::unique_ptr<trace::TraceSource> trace_;
    uarch::CacheHierarchy mem_;
    uarch::BranchPredictor bp_;
    uarch::FuPool fu_;
    uarch::Rob rob_;
    uarch::ReservationStations rs_;

    Cycle now_ = 0;
    Cycle measure_start_cycle_ = 0;
    SeqNum next_seq_ = 0;
    std::uint64_t next_trace_index_ = 0;
    bool trace_done_ = false;
    CoreStats stats_;

    // Frontend state.
    BoundedDeque<uarch::InflightInstr> fetch_q_;
    trace::DynInstr pending_{};
    std::uint64_t pending_index_ = 0;
    bool has_pending_ = false;
    bool pending_decode_paid_ = false;
    Cycle fetch_ready_at_ = 0;       ///< icache-miss stall
    unsigned decode_busy_ = 0;       ///< microcode decode cycles remaining
    Addr last_fetch_line_ = ~Addr{0};
    /** log2(l1i line bytes) when a power of two, else 0 (= use division). */
    unsigned ifetch_line_shift_ = 0;
    stacks::FrontendReason fe_reason_ = stacks::FrontendReason::kNone;

    // Wrong-path / redirect state.
    bool wrong_path_mode_ = false;
    Cycle redirect_until_ = 0;
    Rng wp_rng_;
    SeqNum wp_last_producer_seq_ = kNoSeq;
    int wp_last_producer_slot_ = -1;

    // Synchronization yield state.
    Cycle unsched_until_ = 0;

    // Occupancy counters for "empty of correct-path work" tests.
    unsigned fetch_q_correct_ = 0;
    unsigned rob_correct_ = 0;
    unsigned rs_correct_ = 0;
    /** Correct-path VFP uops waiting in the RS (elides the Table III scan). */
    unsigned rs_vfp_correct_ = 0;

    // Backend bookkeeping. (Per-entry readiness bounds + cached blames
    // live inside rs_, position-parallel with its age-ordered slot list,
    // so the issue walk scans them with SIMD; see reservation_station.hpp.)
    std::vector<ScoreEntry> scoreboard_;
    /** RS positions issued this cycle (ascending walk order). */
    std::vector<unsigned> issued_scratch_;
    /**
     * doIssue() O(1) fast path. While rs_counts_valid_, rs_active_ counts
     * RS entries whose readiness bound has been reached (they must be
     * re-evaluated), and next_wake_ is the earliest finite bound among
     * the parked rest. When rs_active_ == 0 and now_ < next_wake_, no
     * entry can possibly issue this cycle and the per-entry walk is
     * skipped: blame replays from the oldest entry's cached value.
     * Invalidated by any issue (wakeups shift entries to active) or
     * squash; revalidated by the next completed full walk.
     */
    bool rs_counts_valid_ = false;
    unsigned rs_active_ = 0;
    Cycle next_wake_ = 0;
    /**
     * Set by issueOne() when a producer wakeup actually re-armed a queued
     * RS entry; the issue walk then refreshes the current block's due
     * mask. Issues without waiters (the vast majority) skip the rescan.
     */
    bool rearmed_waiter_ = false;
    WbCalendar wb_cal_;
    BoundedDeque<PendingStore> pending_stores_;
    /** Per-bucket count of pending-store word addresses. */
    std::vector<std::uint16_t> store_filter_;

    // Accounting.
    stacks::CpiAccountant acct_dispatch_;
    stacks::CpiAccountant acct_issue_;
    stacks::CpiAccountant acct_commit_;
    stacks::FlopsAccountant flops_;
    stacks::CycleState cs_;
    bool accounting_finalized_ = false;

    // Batched engine state.
    std::vector<stacks::CycleRecord> batch_;
    bool progress_ = false;  ///< any state mutation in the current cycle
    bool has_shared_uncore_ = false;
    bool skip_user_enabled_ = true;
    bool skip_allowed_ = false;
    Cycle cycle_horizon_ = kNeverCycle;
    StageProfile *profile_ = nullptr;
};

}  // namespace stackscope::core

#endif  // STACKSCOPE_CORE_OOO_CORE_HPP
