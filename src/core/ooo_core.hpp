/**
 * @file
 * Cycle-level superscalar out-of-order core model.
 *
 * The pipeline models the mechanisms the paper's analysis depends on:
 *  - a frontend with instruction-cache misses, microcoded-decode stalls and
 *    branch misprediction handling (wrong-path uops are fetched, dispatched
 *    and issued until the branch executes, then squashed and the frontend
 *    refills);
 *  - dispatch into a ROB and unified reservation stations, blocking when
 *    either is full;
 *  - oldest-first issue limited by issue width and functional-unit/port
 *    availability, with load/store address-conflict blocking;
 *  - execution with per-class latencies, timed data-cache accesses for
 *    loads (including MSHR and bandwidth contention);
 *  - in-order commit.
 *
 * Every cycle the core fills a stacks::CycleState observation and drives
 * the four accountants (dispatch/issue/commit CPI stacks and the FLOPS
 * stack), which is exactly the integration style the paper recommends for
 * simulators (§IV: negligible overhead).
 */

#ifndef STACKSCOPE_CORE_OOO_CORE_HPP
#define STACKSCOPE_CORE_OOO_CORE_HPP

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "stacks/cpi_accountant.hpp"
#include "stacks/cycle_state.hpp"
#include "stacks/flops_accountant.hpp"
#include "trace/trace_source.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/cache_hierarchy.hpp"
#include "uarch/fu_pool.hpp"
#include "uarch/reservation_station.hpp"
#include "uarch/rob.hpp"

namespace stackscope::core {

/** Full static configuration of one core. */
struct CoreParams
{
    unsigned fetch_width = 4;
    unsigned dispatch_width = 4;
    unsigned issue_width = 6;
    unsigned commit_width = 4;

    unsigned rob_size = 192;
    unsigned rs_size = 60;
    unsigned fetch_queue_size = 16;

    /** Frontend refill penalty after a misprediction redirect (cycles). */
    unsigned frontend_depth = 8;

    uarch::FuPoolParams fu{};
    uarch::HierarchyParams mem{};
    uarch::BranchPredictorParams bpred{};

    /** Wrong-path handling for the dispatch/issue accountants (§III-B). */
    stacks::SpeculationMode spec_mode = stacks::SpeculationMode::kOracle;

    /** Master switch for all stack accounting (overhead benchmark). */
    bool accounting_enabled = true;

    /**
     * Ablation knob: account each stage with its *native* width instead of
     * the normalized minimum width of §III-A. Breaks the equal-base
     * property across stacks; exists to demonstrate why the paper
     * normalizes (see bench/ablation_design_choices).
     */
    bool accounting_native_widths = false;

    /** Machine vector width (v of Table III) for the FLOPS stack. */
    unsigned flops_vec_lanes = 16;

    /** Seed for the deterministic wrong-path uop synthesizer. */
    std::uint64_t wrong_path_seed = 7;

    /** Effective accounting width: min over all stage widths (§III-A). */
    unsigned
    effectiveWidth() const
    {
        unsigned w = dispatch_width;
        w = std::min(w, issue_width);
        w = std::min(w, commit_width);
        return std::max(1u, w);
    }
};

/** Aggregate run counters not covered by the stacks. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t instrs_committed = 0;  ///< correct-path uops (incl. yields)
    std::uint64_t wrong_path_dispatched = 0;
    std::uint64_t branches = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t l1d_load_misses = 0;
    std::uint64_t squashed_uops = 0;
    std::uint64_t flops_issued = 0;  ///< actual flops (sum of a*m over VFP)
};

/**
 * The core. Construct with a trace and (optionally) a shared uncore, call
 * run(), then read stacks and stats.
 */
class OooCore
{
  public:
    OooCore(const CoreParams &params,
            std::unique_ptr<trace::TraceSource> trace,
            uarch::Uncore *shared_uncore = nullptr);

    /** Advance one cycle. */
    void cycle();

    /** Trace exhausted and pipeline drained. */
    bool done() const;

    /**
     * Run until done (or @p max_cycles when non-zero) and finalize
     * accounting.
     */
    void run(Cycle max_cycles = 0);

    /** Flush speculative accounting state; called by run(). */
    void finalizeAccounting();

    /**
     * Restart measurement at the current cycle: zero the accountants and
     * statistics while keeping all microarchitectural state (caches,
     * predictor, pipeline contents) warm. This is the paper's
     * fast-forward-then-measure methodology (§IV).
     */
    void resetMeasurement();

    /** @name Results @{ */
    /** Cycles elapsed since the last resetMeasurement() (or start). */
    Cycle cycles() const { return now_ - measure_start_cycle_; }
    /** Absolute simulated cycle count. */
    Cycle absoluteCycles() const { return now_; }
    const CoreStats &stats() const { return stats_; }
    double
    cpi() const
    {
        return stats_.instrs_committed == 0
                   ? 0.0
                   : static_cast<double>(cycles()) /
                         static_cast<double>(stats_.instrs_committed);
    }
    const stacks::CpiAccountant &accountant(stacks::Stage stage) const;
    const stacks::FlopsAccountant &flopsAccountant() const { return flops_; }
    /** The observation record of the most recently executed cycle. */
    const stacks::CycleState &cycleState() const { return cs_; }
    const uarch::CacheHierarchy &caches() const { return mem_; }
    const uarch::BranchPredictor &branchPredictor() const { return bp_; }
    /** @} */

    const CoreParams &params() const { return params_; }

  private:
    /** Dependence scoreboard entry for one correct-path instruction. */
    struct ScoreEntry
    {
        std::uint64_t trace_index = kNoSeq;
        Cycle complete_at = kNeverCycle;
        bool is_load = false;
        bool dcache_miss = false;
        Cycle exec_latency = 1;
        bool issued = false;
    };

    /** Writeback event. */
    struct WbEvent
    {
        Cycle done;
        unsigned slot;
        SeqNum seq;
        bool operator>(const WbEvent &o) const { return done > o.done; }
    };

    /** Outstanding (uncommitted) store for load-conflict checks. */
    struct PendingStore
    {
        unsigned slot;
        SeqNum seq;
        Addr word_addr;
    };

    static constexpr std::uint64_t kScoreboardSize = 4096;

    void doWriteback();
    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch();
    void account();

    void fetchCorrectPath(unsigned budget);
    void fetchWrongPath(unsigned budget);
    void squashAfter(unsigned branch_slot, SeqNum branch_seq);

    ScoreEntry &scoreSlot(std::uint64_t trace_index);
    bool producerComplete(std::uint64_t trace_index) const;
    bool entryReady(const uarch::InflightInstr &e, bool &store_conflict) const;
    stacks::BackendBlame blameProducer(const uarch::InflightInstr &e) const;
    stacks::BackendBlame headBlame() const;
    void captureHeadState();
    void issueOne(unsigned slot);
    void onBranchFetchedAll(SeqNum seq);
    void onBranchResolvedAll(SeqNum seq, bool mispredicted);

    CoreParams params_;
    std::unique_ptr<trace::TraceSource> trace_;
    uarch::CacheHierarchy mem_;
    uarch::BranchPredictor bp_;
    uarch::FuPool fu_;
    uarch::Rob rob_;
    uarch::ReservationStations rs_;

    Cycle now_ = 0;
    Cycle measure_start_cycle_ = 0;
    SeqNum next_seq_ = 0;
    std::uint64_t next_trace_index_ = 0;
    bool trace_done_ = false;
    CoreStats stats_;

    // Frontend state.
    std::deque<uarch::InflightInstr> fetch_q_;
    trace::DynInstr pending_{};
    std::uint64_t pending_index_ = 0;
    bool has_pending_ = false;
    bool pending_decode_paid_ = false;
    Cycle fetch_ready_at_ = 0;       ///< icache-miss stall
    unsigned decode_busy_ = 0;       ///< microcode decode cycles remaining
    Addr last_fetch_line_ = ~Addr{0};
    stacks::FrontendReason fe_reason_ = stacks::FrontendReason::kNone;

    // Wrong-path / redirect state.
    bool wrong_path_mode_ = false;
    Cycle redirect_until_ = 0;
    Rng wp_rng_;
    SeqNum wp_last_producer_seq_ = kNoSeq;
    int wp_last_producer_slot_ = -1;

    // Synchronization yield state.
    Cycle unsched_until_ = 0;

    // Occupancy counters for "empty of correct-path work" tests.
    unsigned fetch_q_correct_ = 0;
    unsigned rob_correct_ = 0;
    unsigned rs_correct_ = 0;

    // Backend bookkeeping.
    std::vector<ScoreEntry> scoreboard_;
    std::vector<unsigned> issued_scratch_;
    std::priority_queue<WbEvent, std::vector<WbEvent>, std::greater<>>
        wb_queue_;
    std::deque<PendingStore> pending_stores_;

    // Accounting.
    stacks::CpiAccountant acct_dispatch_;
    stacks::CpiAccountant acct_issue_;
    stacks::CpiAccountant acct_commit_;
    stacks::FlopsAccountant flops_;
    stacks::CycleState cs_;
    bool accounting_finalized_ = false;
};

}  // namespace stackscope::core

#endif  // STACKSCOPE_CORE_OOO_CORE_HPP
