/**
 * @file
 * Calendar queue for writeback completion events.
 *
 * Replaces the binary heap (`std::priority_queue<WbEvent>`) the writeback
 * stage used through PR 6. Completion times are dense, near-future and
 * monotonically consumed — exactly the access pattern a bucketed future
 * event wheel serves in O(1) per operation where a heap pays O(log n)
 * with pointer-chasing swaps per push/pop.
 *
 * Layout: `kNumBuckets` (power of two) buckets, event with completion
 * cycle `done` lives in bucket `done & (kNumBuckets - 1)`. A bucket holds
 * every lap (events `kNumBuckets` cycles apart share a bucket); each
 * bucket is kept sorted by (done, seq) descending so draining one cycle
 * pops matching events off the back in (done, seq) ascending order.
 *
 * The wheel is deliberately small (64 buckets): in-flight events are
 * bounded by the ROB (~200) and cluster within a few tens of cycles, so a
 * small wheel keeps every bucket header and its (capacity-retaining)
 * storage resident in L1 — a wide wheel would touch each bucket only once
 * per lap and evict itself. Long-latency events (memory misses a few
 * hundred cycles out) simply sit a few laps out in their bucket; the
 * sorted-descending order makes mixed-lap buckets drain correctly.
 *
 * Tie order is accounting-visible (docs/performance.md): the drain order
 * of events completing in the same cycle decides which ROB entries the
 * same-cycle squash walk sees, and the spec-counter accountants consume
 * branch-resolution events in drain order. The contract is the total
 * order of WbEvent::operator> — earlier completion first, then smaller
 * sequence number (older instruction) first. The adversarial permutation
 * suite in tests/core/wb_calendar_test.cpp drains this queue against a
 * `std::priority_queue` using that comparator and requires bit-identical
 * order for same-cycle insertions in every permutation.
 *
 * The queue also answers `earliest()` in O(1) amortized — the idle
 * skip-ahead's jump target. The minimum is tracked as a lower bound
 * (`lb_`) plus an exactness flag: pushes can only lower an exact minimum
 * (becoming the new exact minimum themselves), and draining the minimum
 * cycle invalidates it, after which the next query scans forward from the
 * stale bound — in total at most one bucket probe per simulated cycle
 * plus one per event, amortized O(1). A full-wheel fallback handles the
 * rare case of every remaining event sitting further than one lap away.
 */

#ifndef STACKSCOPE_CORE_WB_CALENDAR_HPP
#define STACKSCOPE_CORE_WB_CALENDAR_HPP

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace stackscope::core {

/** Writeback completion event. */
struct WbEvent
{
    Cycle done;
    unsigned slot;
    SeqNum seq;

    /**
     * Total drain order: earlier completion first; among events
     * completing the same cycle, the older instruction (smaller seq)
     * first. This comparator is the normative tie-order contract shared
     * by the calendar queue and the reference priority queue the tests
     * drain against.
     */
    bool
    operator>(const WbEvent &o) const
    {
        return done != o.done ? done > o.done : seq > o.seq;
    }
};

/** Bucketed future-event wheel over WbEvent, drained in (done, seq). */
class WbCalendar
{
  public:
    static constexpr std::size_t kNumBuckets = 64;
    static constexpr std::size_t kBucketMask = kNumBuckets - 1;

    WbCalendar()
        : buckets_(kNumBuckets),
          counts_(kNumBuckets, 0)
    {
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Insert; @p ev.done must be >= the last drained cycle + 1. */
    void
    push(const WbEvent &ev)
    {
        std::vector<WbEvent> &b = buckets_[ev.done & kBucketMask];
        // Descending (done, seq) insertion keeps the due events poppable
        // off the back; buckets hold a handful of events, so the linear
        // scan beats any cleverness.
        auto it = b.begin();
        while (it != b.end() && *it > ev)
            ++it;
        b.insert(it, ev);
        ++counts_[ev.done & kBucketMask];
        ++size_;
        if (size_ == 1 || ev.done <= lb_) {
            // Everything else is >= the old bound, so this push is the
            // new exact minimum.
            lb_ = ev.done;
            exact_ = true;
        }
    }

    /**
     * Earliest queued completion cycle (kNeverCycle when empty). Lazy:
     * may scan forward from the cached lower bound, then caches the
     * exact answer until the next drain.
     */
    Cycle
    earliest()
    {
        if (size_ == 0)
            return kNeverCycle;
        if (!exact_)
            locateMinimum();
        return lb_;
    }

    /**
     * Extract every event with done <= @p now, invoking @p fn on each in
     * (done, seq) ascending order — exactly the order the reference
     * priority queue would pop them. @p fn must not push.
     */
    template <typename F>
    void
    drainUpTo(Cycle now, F &&fn)
    {
        while (size_ > 0) {
            if (exact_) {
                if (lb_ > now)
                    return;
            } else {
                locateMinimum();
                if (lb_ > now)
                    return;
            }
            drainCycle(lb_, fn);
            // The minimum cycle is exhausted; the next minimum is at
            // least one cycle later.
            lb_ += 1;
            exact_ = false;
        }
        if (lb_ <= now) {
            // Keep the bound tight so the next locateMinimum() scan
            // starts at the present, not in the drained past.
            lb_ = now + 1;
            exact_ = false;
        }
    }

  private:
    /** Advance lb_ to the exact queue minimum (size_ > 0). */
    void
    locateMinimum()
    {
        // Forward scan: consecutive cycles map to consecutive buckets, so
        // this touches one counter per candidate cycle. One full lap
        // without a hit means every event is more than kNumBuckets cycles
        // out — fall back to a whole-wheel minimum.
        Cycle c = lb_;
        for (std::size_t step = 0; step < kNumBuckets; ++step, ++c) {
            if (counts_[c & kBucketMask] == 0)
                continue;
            const std::vector<WbEvent> &b = buckets_[c & kBucketMask];
            // Sorted descending: the back is this bucket's minimum.
            if (b.back().done == c) {
                lb_ = c;
                exact_ = true;
                return;
            }
        }
        Cycle best = kNeverCycle;
        for (const std::vector<WbEvent> &b : buckets_) {
            if (!b.empty() && b.back().done < best)
                best = b.back().done;
        }
        assert(best != kNeverCycle);
        lb_ = best;
        exact_ = true;
    }

    template <typename F>
    void
    drainCycle(Cycle c, F &&fn)
    {
        std::vector<WbEvent> &b = buckets_[c & kBucketMask];
        std::uint32_t drained = 0;
        while (!b.empty() && b.back().done == c) {
            const WbEvent ev = b.back();
            b.pop_back();
            ++drained;
            fn(ev);
        }
        counts_[c & kBucketMask] -= drained;
        size_ -= drained;
    }

    std::vector<std::vector<WbEvent>> buckets_;
    /** Per-bucket event counts, densely packed for the scan. */
    std::vector<std::uint32_t> counts_;
    std::size_t size_ = 0;
    /** All queued events have done >= lb_; exact_ says lb_ is the min. */
    Cycle lb_ = 0;
    bool exact_ = false;
};

}  // namespace stackscope::core

#endif  // STACKSCOPE_CORE_WB_CALENDAR_HPP
