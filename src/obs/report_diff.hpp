/**
 * @file
 * Report diffing: turn two run reports into a regression verdict.
 *
 * `stackscope diff-report a.json b.json` compares every CPI-stack
 * component, the FLOPS fraction and the headline CPI of each job between
 * a baseline report (a) and a candidate report (b). A component regresses
 * when |b - a| > max(tol_abs, tol_rel * |a|) — the absolute floor keeps
 * near-zero components from tripping on rounding noise, the relative arm
 * scales with component size.
 *
 * Host metrics ("host_metrics", schema v2) are compared informationally:
 * they measure the host, not the simulated machine, so run-to-run
 * variation is expected and must not fail a determinism gate. A metric
 * only participates in the verdict when explicitly watched (--watch),
 * with its own tolerances.
 *
 * Structural differences — different job label sets, or stacks with
 * different component sets — are a usage error (the reports are not
 * comparable), not a regression.
 */

#ifndef STACKSCOPE_OBS_REPORT_DIFF_HPP
#define STACKSCOPE_OBS_REPORT_DIFF_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"

namespace stackscope::obs {

/** |b - a| > max(abs, rel * |a|) flags a regression. */
struct DiffTolerance
{
    double abs = 1e-6;
    double rel = 0.01;

    bool
    exceeded(double a, double b) const
    {
        const double delta = b > a ? b - a : a - b;
        const double mag = a < 0 ? -a : a;
        const double allowed = rel * mag > abs ? rel * mag : abs;
        return delta > allowed;
    }
};

/** One host metric promoted from informational to gating. */
struct WatchSpec
{
    std::string metric;
    DiffTolerance tol{};
};

/** One compared stack value (component, CPI, or FLOPS fraction). */
struct DiffEntry
{
    std::string job;
    /** Dotted path, e.g. "cpi_stacks.commit.base-cpi". */
    std::string path;
    double a = 0.0;
    double b = 0.0;
    double delta = 0.0;
    bool regression = false;
};

/** One compared host metric (counter or gauge). */
struct MetricDelta
{
    std::string name;
    double a = 0.0;
    double b = 0.0;
    double delta = 0.0;
    bool watched = false;
    bool regression = false;
};

/** A job whose final status ("job_status") differs between reports. */
struct StatusMismatch
{
    std::string job;
    std::string a;
    std::string b;
};

/** Full outcome of one report comparison. */
struct ReportDiff
{
    /** Stack-level comparisons that exceeded tolerance. */
    std::vector<DiffEntry> regressions;
    /** Host metrics present in both reports (watched ones flagged). */
    std::vector<MetricDelta> host_metrics;
    /**
     * Jobs completed on one side but failed (or failed differently) on
     * the other — always a regression: a candidate that times out or
     * quarantines a job the baseline completed has lost coverage even if
     * every surviving stack matches.
     */
    std::vector<StatusMismatch> status_mismatches;
    /** Stack values compared (regressed or not). */
    std::size_t values_compared = 0;
    std::size_t jobs_compared = 0;
    /** Jobs failed on both sides (identically); stacks not compared. */
    std::size_t jobs_failed_both = 0;

    bool
    regression() const
    {
        if (!regressions.empty() || !status_mismatches.empty())
            return true;
        for (const MetricDelta &m : host_metrics) {
            if (m.regression)
                return true;
        }
        return false;
    }
};

/**
 * Compare parsed report documents @p a (baseline) and @p b (candidate).
 * Accepts schema versions 1 and 2. Throws StackscopeError(kUsage) when
 * either document is not a stackscope report or the two are structurally
 * incomparable.
 */
ReportDiff diffReports(const JsonValue &a, const JsonValue &b,
                       const DiffTolerance &tol,
                       const std::vector<WatchSpec> &watches = {});

/** Human-readable summary (regressions first, then watched metrics). */
std::string renderDiff(const ReportDiff &diff);

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_REPORT_DIFF_HPP
