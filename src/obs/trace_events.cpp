#include "obs/trace_events.hpp"

#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace stackscope::obs {

using stacks::BackendBlame;
using stacks::CycleState;
using stacks::FrontendReason;
using stacks::Stage;

std::string_view
toString(StallCause cause)
{
    switch (cause) {
      case StallCause::kNone: return "none";
      case StallCause::kIcache: return "icache";
      case StallCause::kBpred: return "bpred";
      case StallCause::kMicrocode: return "microcode";
      case StallCause::kDrain: return "drain";
      case StallCause::kDcache: return "dcache";
      case StallCause::kAluLat: return "alu-lat";
      case StallCause::kDepend: return "depend";
      case StallCause::kOther: return "other";
      case StallCause::kUnsched: return "unsched";
    }
    return "none";
}

namespace {

StallCause
fromFrontend(FrontendReason reason)
{
    switch (reason) {
      case FrontendReason::kIcache: return StallCause::kIcache;
      case FrontendReason::kBpred: return StallCause::kBpred;
      case FrontendReason::kMicrocode: return StallCause::kMicrocode;
      case FrontendReason::kDrain: return StallCause::kDrain;
      case FrontendReason::kNone: return StallCause::kOther;
    }
    return StallCause::kOther;
}

StallCause
fromBlame(BackendBlame blame)
{
    switch (blame) {
      case BackendBlame::kDcache: return StallCause::kDcache;
      case BackendBlame::kAluLat: return StallCause::kAluLat;
      case BackendBlame::kDepend:
      case BackendBlame::kNone: return StallCause::kDepend;
    }
    return StallCause::kDepend;
}

/**
 * Mirror CpiAccountant's Table II attribution so each lane's stall cause
 * matches the component the accountant charges for the same cycle.
 */
StallCause
dispatchCause(const CycleState &s)
{
    if (s.unsched)
        return StallCause::kUnsched;
    if (s.backend_full)
        return fromBlame(s.head_blame);
    return fromFrontend(s.fe_reason);
}

StallCause
issueCause(const CycleState &s)
{
    if (s.unsched)
        return StallCause::kUnsched;
    if (s.rs_empty_correct) {
        if (s.backend_full)
            return fromBlame(s.head_blame);
        return fromFrontend(s.fe_reason);
    }
    if (s.issue_blame != BackendBlame::kNone)
        return fromBlame(s.issue_blame);
    return StallCause::kOther;
}

StallCause
commitCause(const CycleState &s)
{
    if (s.unsched)
        return StallCause::kUnsched;
    if (s.rob_empty_correct)
        return fromFrontend(s.fe_reason);
    if (s.head_incomplete)
        return fromBlame(s.head_blame);
    return StallCause::kOther;
}

}  // namespace

PipelineTracer::PipelineTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void
PipelineTracer::push(const TraceEvent &event)
{
    ++emitted_;
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        return;
    }
    // Ring is full: overwrite the oldest entry.
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

void
PipelineTracer::laneObserve(std::size_t lane, bool active, StallCause cause,
                            std::uint32_t uops, Cycle cycle)
{
    LaneState &ls = lanes_[lane];
    if (ls.open && ls.active == active && (active || ls.cause == cause)) {
        ls.count += uops;
        return;
    }
    if (ls.open)
        closeLane(lane, cycle);
    ls.open = true;
    ls.active = active;
    ls.cause = active ? StallCause::kNone : cause;
    ls.start = cycle;
    ls.count = uops;
}

void
PipelineTracer::closeLane(std::size_t lane, Cycle end)
{
    LaneState &ls = lanes_[lane];
    if (!ls.open)
        return;
    TraceEvent e;
    e.start = ls.start;
    e.dur = end - ls.start;
    e.kind = ls.active ? TraceEventKind::kStageActive
                       : TraceEventKind::kStageStall;
    e.lane = static_cast<std::uint8_t>(lane);
    e.cause = ls.cause;
    e.count = ls.count;
    push(e);
    ls.open = false;
}

void
PipelineTracer::observe(Cycle cycle, const CycleState &s,
                        std::uint64_t squashed_total)
{
    const std::uint32_t disp = s.n_dispatch + s.n_dispatch_wrong;
    const std::uint32_t iss = s.n_issue + s.n_issue_wrong;
    laneObserve(static_cast<std::size_t>(Stage::kDispatch), disp > 0,
                disp > 0 ? StallCause::kNone : dispatchCause(s), disp, cycle);
    laneObserve(static_cast<std::size_t>(Stage::kIssue), iss > 0,
                iss > 0 ? StallCause::kNone : issueCause(s), iss, cycle);
    laneObserve(static_cast<std::size_t>(Stage::kCommit), s.n_commit > 0,
                s.n_commit > 0 ? StallCause::kNone : commitCause(s),
                s.n_commit, cycle);
    if (squashed_total > last_squashed_) {
        TraceEvent e;
        e.start = cycle;
        e.kind = TraceEventKind::kFlush;
        e.count = static_cast<std::uint32_t>(squashed_total - last_squashed_);
        push(e);
        last_squashed_ = squashed_total;
    }
    last_cycle_ = cycle;
}

void
PipelineTracer::note(TraceEventKind kind, Cycle cycle, std::uint32_t count)
{
    TraceEvent e;
    e.start = cycle;
    e.kind = kind;
    e.count = count;
    push(e);
}

void
PipelineTracer::finish(Cycle end_cycle)
{
    if (finished_)
        return;
    finished_ = true;
    last_cycle_ = end_cycle;
    for (std::size_t lane = 0; lane < stacks::kNumStages; ++lane)
        closeLane(lane, end_cycle);
}

EventLog
PipelineTracer::take()
{
    // The ring drops oldest-first when full; surface that in the global
    // registry so a truncated trace can never pass for a complete one.
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("obs.trace_events_emitted_total").inc(emitted_);
    reg.counter("obs.trace_events_dropped_total").inc(dropped_);

    EventLog log;
    log.enabled = true;
    log.emitted = emitted_;
    log.dropped = dropped_;
    log.end_cycle = last_cycle_;
    log.events.reserve(ring_.size());
    // Unroll the ring into chronological (emission) order.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        log.events.push_back(ring_[(head_ + i) % ring_.size()]);
    ring_.clear();
    head_ = 0;
    return log;
}

namespace {

const char *
laneName(std::uint8_t lane)
{
    switch (lane) {
      case 0: return "dispatch";
      case 1: return "issue";
      case 2: return "commit";
      default: return "stage";
    }
}

void
writeMeta(JsonWriter &w, unsigned pid, int tid, const char *what,
          const std::string &name)
{
    w.beginObject()
        .key("name").value(what)
        .key("ph").value("M")
        .key("pid").value(pid)
        .key("tid").value(tid)
        .key("args").beginObject().key("name").value(name).endObject()
        .endObject();
}

void
writeEvent(JsonWriter &w, unsigned pid, const TraceEvent &e)
{
    switch (e.kind) {
      case TraceEventKind::kStageActive:
      case TraceEventKind::kStageStall: {
        const bool active = e.kind == TraceEventKind::kStageActive;
        w.beginObject()
            .key("name").value(active ? "active" : toString(e.cause))
            .key("cat").value(active ? "active" : "stall")
            .key("ph").value("X")
            .key("ts").value(static_cast<std::uint64_t>(e.start))
            .key("dur").value(static_cast<std::uint64_t>(e.dur))
            .key("pid").value(pid)
            .key("tid").value(static_cast<int>(e.lane) + 1)
            .key("args").beginObject();
        if (active)
            w.key("uops").value(e.count);
        w.endObject().endObject();
        return;
      }
      case TraceEventKind::kFlush:
        w.beginObject()
            .key("name").value("flush")
            .key("cat").value("pipeline")
            .key("ph").value("i")
            .key("ts").value(static_cast<std::uint64_t>(e.start))
            .key("pid").value(pid)
            .key("tid").value(0)
            .key("s").value("t")
            .key("args").beginObject()
            .key("squashed").value(e.count)
            .endObject().endObject();
        return;
      case TraceEventKind::kWatchdog:
        w.beginObject()
            .key("name").value("watchdog")
            .key("cat").value("pipeline")
            .key("ph").value("i")
            .key("ts").value(static_cast<std::uint64_t>(e.start))
            .key("pid").value(pid)
            .key("tid").value(0)
            .key("s").value("t")
            .key("args").beginObject().endObject()
            .endObject();
        return;
      case TraceEventKind::kValidation:
        w.beginObject()
            .key("name").value("validation")
            .key("cat").value("pipeline")
            .key("ph").value("i")
            .key("ts").value(static_cast<std::uint64_t>(e.start))
            .key("pid").value(pid)
            .key("tid").value(0)
            .key("s").value("t")
            .key("args").beginObject()
            .key("violations").value(e.count)
            .endObject().endObject();
        return;
    }
}

}  // namespace

std::string
chromeTraceJson(const std::vector<EventLog> &cores)
{
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    for (std::size_t core = 0; core < cores.size(); ++core) {
        const unsigned pid = static_cast<unsigned>(core);
        writeMeta(w, pid, 0, "process_name",
                  "core " + std::to_string(core));
        writeMeta(w, pid, 0, "thread_name", "events");
        for (int lane = 0; lane < static_cast<int>(stacks::kNumStages);
             ++lane) {
            writeMeta(w, pid, lane + 1, "thread_name",
                      laneName(static_cast<std::uint8_t>(lane)));
        }
        for (const TraceEvent &e : cores[core].events)
            writeEvent(w, pid, e);
    }
    std::uint64_t total_emitted = 0;
    std::uint64_t total_dropped = 0;
    for (const EventLog &log : cores) {
        total_emitted += log.emitted;
        total_dropped += log.dropped;
    }
    w.endArray()
        .key("displayTimeUnit").value("ns")
        .key("otherData").beginObject()
        .key("timebase").value("1 simulated cycle = 1 trace microsecond")
        .key("events_emitted").value(total_emitted)
        .key("events_dropped").value(total_dropped)
        .endObject()
        .endObject();
    return w.str();
}

std::string
hostSpansChromeJson(const std::string &process_name,
                    const std::vector<std::string> &lane_names,
                    const std::vector<HostSpan> &spans)
{
    constexpr unsigned pid = 0;
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    writeMeta(w, pid, 0, "process_name", process_name);
    for (std::size_t lane = 0; lane < lane_names.size(); ++lane)
        writeMeta(w, pid, static_cast<int>(lane), "thread_name",
                  lane_names[lane]);
    for (const HostSpan &s : spans) {
        w.beginObject()
            .key("name").value(s.name)
            .key("cat").value(s.category)
            .key("ph").value("X")
            .key("ts").value(s.start_us)
            .key("dur").value(s.dur_us)
            .key("pid").value(pid)
            .key("tid").value(s.lane)
            .key("args").beginObject().endObject()
            .endObject();
    }
    w.endArray()
        .key("displayTimeUnit").value("ns")
        .key("otherData").beginObject()
        .key("timebase").value("wall clock; 1 trace microsecond = 1 us")
        .endObject()
        .endObject();
    return w.str();
}

}  // namespace stackscope::obs
