#include "obs/interval.hpp"

#include "common/error.hpp"
#include "core/ooo_core.hpp"

namespace stackscope::obs {

using stacks::Stage;

namespace {

/** Compensated component-wise sum over samples via long double. */
template <typename E, typename Pick>
stacks::StackT<E>
sumStacks(const std::vector<IntervalSample> &samples, Pick &&pick)
{
    std::array<long double, stacks::StackT<E>::kSize> acc{};
    for (const IntervalSample &s : samples) {
        pick(s).forEach([&](E c, double v) {
            acc[static_cast<std::size_t>(c)] += v;
        });
    }
    stacks::StackT<E> out;
    for (std::size_t i = 0; i < stacks::StackT<E>::kSize; ++i)
        out[static_cast<E>(i)] = static_cast<double>(acc[i]);
    return out;
}

}  // namespace

stacks::CpiStack
IntervalSeries::summedCycleStack(Stage stage) const
{
    return sumStacks<stacks::CpiComponent>(
        samples,
        [stage](const IntervalSample &s) -> const stacks::CpiStack & {
            return s.cycleStack(stage);
        });
}

stacks::FlopsStack
IntervalSeries::summedFlopsCycles() const
{
    return sumStacks<stacks::FlopsComponent>(
        samples, [](const IntervalSample &s) -> const stacks::FlopsStack & {
            return s.flops_cycles;
        });
}

IntervalAccountant::IntervalAccountant(Cycle window)
    : window_(window), next_(window)
{
    if (window == 0) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "interval accountant needs a window >= 1 "
                              "cycle");
    }
    series_.window = window;
}

void
IntervalAccountant::capture(const core::OooCore &core, Cycle now)
{
    IntervalSample s;
    s.start = prev_cycles_;
    s.end = now;
    s.instrs = core.stats().instrs_committed - prev_instrs_;
    for (std::size_t i = 0; i < stacks::kNumStages; ++i) {
        const stacks::CpiStack cur =
            core.accountant(static_cast<Stage>(i)).cycles();
        s.cycle_stacks[i] = cur - prev_stacks_[i];
        prev_stacks_[i] = cur;
    }
    const stacks::FlopsStack cur_flops = core.flopsAccountant().cycles();
    s.flops_cycles = cur_flops - prev_flops_;
    prev_flops_ = cur_flops;
    prev_cycles_ = now;
    prev_instrs_ = core.stats().instrs_committed;
    series_.samples.push_back(std::move(s));
}

void
IntervalAccountant::snapshot(const core::OooCore &core)
{
    capture(core, core.cycles());
    next_ += window_;
}

void
IntervalAccountant::finish(const core::OooCore &core)
{
    const Cycle now = core.cycles();
    if (now > prev_cycles_ || series_.samples.empty()) {
        capture(core, now);
        return;
    }
    // The run ended exactly on a boundary, but finalize() may still have
    // redistributed mass (e.g. the kSimple fixup). Fold the residual into
    // the last sample so the series keeps summing to the aggregate.
    IntervalSample &last = series_.samples.back();
    for (std::size_t i = 0; i < stacks::kNumStages; ++i) {
        const stacks::CpiStack cur =
            core.accountant(static_cast<Stage>(i)).cycles();
        last.cycle_stacks[i] += cur - prev_stacks_[i];
        prev_stacks_[i] = cur;
    }
    const stacks::FlopsStack cur_flops = core.flopsAccountant().cycles();
    last.flops_cycles += cur_flops - prev_flops_;
    prev_flops_ = cur_flops;
}

}  // namespace stackscope::obs
