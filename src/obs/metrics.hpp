/**
 * @file
 * Low-overhead host-side metrics registry: monotonic counters, gauges and
 * fixed-bucket histograms describing the *simulator itself* (thread-pool
 * behaviour, simulation throughput, memory, validation activity).
 *
 * The paper's selling point is measurement that costs <1% of the thing it
 * measures (§V); the same bar applies to measuring the measurement tool.
 * Hot-path increments therefore touch only per-thread sharded storage —
 * one relaxed fetch_add on a cell no other thread writes — and all
 * cross-thread merging happens at snapshot() time, off the hot path.
 * Handles (Counter/Gauge/Histogram) are cheap value types safe to copy
 * and to use concurrently from any thread.
 *
 * Snapshots are deterministic in *shape*: metrics are emitted sorted by
 * name, so two snapshots of registries with the same metric set are
 * field-for-field comparable (the diff-report regression gate relies on
 * this). Values are measurements and vary run to run.
 */

#ifndef STACKSCOPE_OBS_METRICS_HPP
#define STACKSCOPE_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace stackscope::obs {

class MetricsRegistry;

/** One merged counter in a snapshot. */
struct CounterValue
{
    std::string name;
    std::uint64_t value = 0;
};

/** One gauge in a snapshot. */
struct GaugeValue
{
    std::string name;
    double value = 0.0;
};

/** One merged histogram in a snapshot. */
struct HistogramValue
{
    std::string name;
    /** Inclusive upper bucket edges; an implicit +inf bucket follows. */
    std::vector<double> bounds;
    /** Per-bucket observation counts; size == bounds.size() + 1. */
    std::vector<std::uint64_t> counts;
    /** Total observations and their sum. */
    std::uint64_t total = 0;
    double sum = 0.0;
};

/** Point-in-time merge of every shard, sorted by metric name. */
struct MetricsSnapshot
{
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    const CounterValue *counter(std::string_view name) const;
    const GaugeValue *gauge(std::string_view name) const;
    const HistogramValue *histogram(std::string_view name) const;

    /** Counter value by name, or @p fallback when absent. */
    std::uint64_t counterOr(std::string_view name,
                            std::uint64_t fallback = 0) const;
};

/** Monotonic counter handle. Default-constructed handles are no-ops. */
class Counter
{
  public:
    Counter() = default;

    inline void inc(std::uint64_t delta = 1);

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, std::uint32_t id) : reg_(reg), id_(id) {}

    MetricsRegistry *reg_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Last-writer-wins gauge handle. Default-constructed handles are no-ops. */
class Gauge
{
  public:
    Gauge() = default;

    inline void set(double value);
    void add(double delta);
    inline double get() const;

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<double> *slot) : slot_(slot) {}

    std::atomic<double> *slot_ = nullptr;
};

/**
 * Fixed-bucket histogram handle. Bucket i counts observations
 * <= bounds[i] (first matching edge); values above the last edge land in
 * the implicit overflow bucket. Default-constructed handles are no-ops.
 */
class Histogram
{
  public:
    Histogram() = default;

    void record(double value);

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *reg, std::uint32_t id, const double *bounds,
              std::size_t nbounds)
        : reg_(reg), id_(id), bounds_(bounds), nbounds_(nbounds)
    {
    }

    MetricsRegistry *reg_ = nullptr;
    std::uint32_t id_ = 0;
    const double *bounds_ = nullptr;
    std::size_t nbounds_ = 0;
};

/**
 * The registry. Registration (counter()/gauge()/histogram()) takes a lock
 * and deduplicates by name — registering the same name twice returns a
 * handle to the same metric, so independent subsystems (or repeated
 * ThreadPool instances) share one series. Increments never lock.
 *
 * Capacity is fixed (kMaxCounters/kMaxGauges/kMaxHistograms) so shards
 * can be flat atomic arrays; exceeding it throws StackscopeError
 * (kInternal) at registration time, never on the hot path.
 */
class MetricsRegistry
{
  public:
    static constexpr std::size_t kMaxCounters = 192;
    static constexpr std::size_t kMaxGauges = 64;
    static constexpr std::size_t kMaxHistograms = 24;
    static constexpr std::size_t kMaxBuckets = 16;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    /** @p bounds must be strictly increasing; at most kMaxBuckets edges. */
    Histogram histogram(std::string_view name, std::vector<double> bounds);

    /** Merge every thread's shard into one sorted snapshot. */
    MetricsSnapshot snapshot() const;

    /** Zero every counter, gauge and histogram cell (handles stay valid). */
    void reset();

    /** The process-wide registry every subsystem reports into. */
    static MetricsRegistry &global();

  private:
    friend class Counter;
    friend class Histogram;

    /** Cells for one thread: written by that thread, read at snapshot(). */
    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
        std::array<std::atomic<std::uint64_t>,
                   kMaxHistograms *(kMaxBuckets + 1)>
            hist_counts{};
        std::array<std::atomic<double>, kMaxHistograms> hist_sums{};
    };

    struct HistogramDef
    {
        std::string name;
        std::vector<double> bounds;
    };

    struct GaugeSlot
    {
        std::string name;
        std::atomic<double> value{0.0};
    };

    /** One-entry per-thread shard cache: a thread hammers one registry
     *  at a time (the global one in production); switching registries
     *  (tests) just re-resolves through the slow path. */
    struct ShardCache
    {
        /** Zero-initialized (static storage); null = not yet resolved. */
        const MetricsRegistry *registry;
        Shard *shard;
    };
    inline static thread_local ShardCache tls_shard_cache_;

    /**
     * This thread's shard. Inline so a cache hit — the per-increment hot
     * path — is one TLS load and a compare, with no cross-TU call.
     */
    Shard &
    localShard()
    {
        if (tls_shard_cache_.registry == this) [[likely]]
            return *tls_shard_cache_.shard;
        return localShardSlow();
    }

    /** First touch per (thread, registry): allocate and cache the shard. */
    Shard &localShardSlow();

    mutable std::mutex mutex_;
    std::vector<std::string> counter_names_;
    std::vector<HistogramDef> histogram_defs_;
    /** deque: slots never move, so Gauge handles stay valid. */
    std::deque<GaugeSlot> gauges_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unordered_map<std::thread::id, Shard *> shard_of_thread_;
};

// Hot-path handle operations, inline so an increment in a per-cycle loop
// costs a TLS hit plus one relaxed RMW (bench/overhead_accounting holds
// the combined metrics+logging budget under 2%).

inline void
Counter::inc(std::uint64_t delta)
{
    if (reg_ == nullptr)
        return;
    reg_->localShard().counters[id_].fetch_add(delta,
                                               std::memory_order_relaxed);
}

inline void
Gauge::set(double value)
{
    if (slot_ != nullptr)
        slot_->store(value, std::memory_order_relaxed);
}

inline double
Gauge::get() const
{
    return slot_ == nullptr ? 0.0
                            : slot_->load(std::memory_order_relaxed);
}

/** Peak resident-set size of this process in bytes (0 when unknown). */
std::uint64_t peakRssBytes();

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_METRICS_HPP
