#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace stackscope::obs {

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw StackscopeError(ErrorCategory::kUsage,
                              "JSON parse error: " + what)
            .withContext("offset", std::to_string(pos_));
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::kString;
            v.string = parseString();
            return v;
          }
          case 't': {
            if (!consumeLiteral("true"))
                fail("invalid literal");
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            if (!consumeLiteral("false"))
                fail("invalid literal");
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("invalid literal");
            return {};
          }
          default: return parseNumber();
        }
    }

    /** Guards the recursion depth; fail() before the stack can overflow. */
    void
    enterNested()
    {
        if (++depth_ > kMaxJsonDepth) {
            fail("nesting depth exceeds the limit of " +
                 std::to_string(kMaxJsonDepth) + " levels");
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        enterNested();
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            --depth_;
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        enterNested();
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            --depth_;
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("invalid escape");
            }
        }
    }

    /** \uXXXX, decoded to UTF-8 (surrogate pairs supported). */
    std::string
    parseUnicodeEscape()
    {
        std::uint32_t cp = parseHex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!consumeLiteral("\\u"))
                fail("unpaired surrogate");
            const std::uint32_t low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        }
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("truncated \\u escape");
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return value;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("invalid value");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("invalid number");
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        v.number = number;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "JSON document is missing a required member")
            .withContext("member", std::string(key));
    }
    return *v;
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

}  // namespace stackscope::obs
