/**
 * @file
 * Machine-readable run reports: one versioned JSON document per CLI
 * invocation, carrying everything a run produced — configuration, the
 * three CPI stacks and the FLOPS stack, the interval time-series, the
 * validation report and summary statistics.
 *
 * The schema is a documented contract (docs/formats.md, schema
 * "stackscope-report" version 2): external tooling may parse it, the
 * tests round-trip it, and CI validates a freshly generated report
 * against the documented schema. Bump kReportSchemaVersion on any
 * incompatible change and update docs/formats.md in the same commit.
 *
 * Reports are deterministic: no timestamps, hostnames or thread counts
 * appear in the output, so the same jobs produce byte-identical reports
 * regardless of BatchRunner parallelism. The one exception is the
 * opt-in "host_metrics" section (v2): host-side telemetry is a
 * measurement of this run on this machine and varies by construction, so
 * it is emitted only when a front-end calls setHostMetrics(), and
 * diff-report compares it only informationally unless asked to watch a
 * metric.
 */

#ifndef STACKSCOPE_OBS_REPORT_HPP
#define STACKSCOPE_OBS_REPORT_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "runner/batch_runner.hpp"
#include "sim/multicore.hpp"
#include "sim/simulation.hpp"

namespace stackscope::obs {

class JsonWriter;

inline constexpr std::string_view kReportSchemaName = "stackscope-report";
inline constexpr int kReportSchemaVersion = 2;

/**
 * Accumulates job results and serializes them as one report document.
 * Add jobs in a deterministic order (submission order, not completion
 * order) — the report preserves insertion order.
 */
class ReportBuilder
{
  public:
    /** @param command the CLI subcommand (or caller tag) producing this. */
    explicit ReportBuilder(std::string command)
        : command_(std::move(command))
    {
    }

    /** Add a single-core run. */
    void add(std::string label, const sim::SimOptions &options,
             const sim::SimResult &result);

    /** Add a multi-core run (per-core results plus the aggregate). */
    void add(std::string label, const sim::SimOptions &options,
             const sim::MulticoreResult &result);

    /**
     * Add a batch outcome in whichever shape its core count produced.
     * Carries the outcome's status/attempts/error into the job's
     * "job_status" section; a failed or skipped outcome becomes a job
     * entry with an empty results array and a null aggregate, so partial
     * batches still serialize every job they attempted.
     */
    void add(const runner::JobOutcome &outcome,
             const sim::SimOptions &options, unsigned cores);

    /**
     * Splice a pre-serialized job fragment (produced by jobJson())
     * verbatim. This is how `sweep --resume` replays journaled points:
     * re-emitting stored bytes, not re-serializing parsed values, keeps
     * the resumed report byte-identical to a cold run.
     */
    void addRaw(std::string job_json);

    /**
     * The exact per-job JSON fragment json() would emit for this
     * outcome — the unit the sweep journal stores and addRaw() replays.
     */
    static std::string jobJson(const runner::JobOutcome &outcome,
                               const sim::SimOptions &options,
                               unsigned cores);

    bool empty() const { return jobs_.empty(); }
    std::size_t jobCount() const { return jobs_.size(); }

    /**
     * Attach a host-telemetry snapshot; the report then carries a
     * "host_metrics" section (null otherwise). Opt-in because host
     * metrics are inherently non-deterministic — library users that rely
     * on byte-identical reports simply never call this.
     */
    void setHostMetrics(MetricsSnapshot snapshot);

    /** Serialize the full report (schema v2) as a JSON document. */
    std::string json() const;

  private:
    struct Job
    {
        std::string label;
        unsigned cores = 1;
        sim::SimOptions options{};
        runner::JobStatus status = runner::JobStatus::kOk;
        unsigned attempts = 1;
        /** Final error text; empty for completed jobs. */
        std::string error;
        /** Valid when cores == 1 and the job completed. */
        sim::SimResult single{};
        /** Set when cores > 1 and the job completed. */
        std::optional<sim::MulticoreResult> multi{};
        /** Pre-serialized fragment (addRaw); overrides everything else. */
        std::optional<std::string> raw{};
    };

    static Job makeEntry(const runner::JobOutcome &outcome,
                         const sim::SimOptions &options, unsigned cores);
    static void writeJob(JsonWriter &w, const Job &job);

    std::string command_;
    std::vector<Job> jobs_;
    std::optional<MetricsSnapshot> host_metrics_{};
};

/**
 * Write @p content to @p path atomically enough for CLI use (truncate +
 * write + flush). Throws StackscopeError(kUsage) when the file cannot be
 * created or written.
 */
void writeTextFile(const std::string &path, std::string_view content);

/**
 * Serialize @p snap as the report's "host_metrics" object
 * ({counters:{...},gauges:{...},histograms:{...}}). Shared between the
 * report writer and the serve daemon's statusz frame so both expose the
 * exact same shape (docs/observability.md).
 */
void writeMetricsSnapshot(JsonWriter &w, const MetricsSnapshot &snap);

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_REPORT_HPP
