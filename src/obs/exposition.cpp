#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stackscope::obs {

std::string
promName(std::string_view name)
{
    std::string out(name);
    for (char &c : out)
        if (c == '.')
            c = '_';
    return out;
}

std::string
promEscapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
promDouble(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buf[64];
    // Shortest %g that round-trips: monotone in precision, so the first
    // precision whose parse-back equals the value is the shortest form.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

namespace {

void
appendSample(std::string &out, const std::string &name, double value)
{
    out += name;
    out += ' ';
    out += promDouble(value);
    out += '\n';
}

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += buf;
    out += '\n';
}

}  // namespace

std::string
prometheusText(const MetricsSnapshot &snap)
{
    std::string out;
    out.reserve(4096);
    for (const CounterValue &c : snap.counters) {
        const std::string name = promName(c.name);
        out += "# TYPE " + name + " counter\n";
        out += name;
        out += ' ';
        appendUint(out, c.value);
    }
    for (const GaugeValue &g : snap.gauges) {
        const std::string name = promName(g.name);
        out += "# TYPE " + name + " gauge\n";
        appendSample(out, name, g.value);
    }
    for (const HistogramValue &h : snap.histograms) {
        const std::string name = promName(h.name);
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            cumulative += i < h.counts.size() ? h.counts[i] : 0;
            out += name + "_bucket{le=\"" +
                   promEscapeLabel(promDouble(h.bounds[i])) + "\"} ";
            appendUint(out, cumulative);
        }
        // total == sum(counts) by registry invariant, so le="+Inf" both
        // closes the cumulative series and equals _count.
        out += name + "_bucket{le=\"+Inf\"} ";
        appendUint(out, h.total);
        appendSample(out, name + "_sum", h.sum);
        out += name + "_count ";
        appendUint(out, h.total);
    }
    return out;
}

}  // namespace stackscope::obs
