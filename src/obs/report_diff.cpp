#include "obs/report_diff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace stackscope::obs {

namespace {

[[noreturn]] void
usage(const std::string &what)
{
    throw StackscopeError(ErrorCategory::kUsage, what);
}

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
checkSchema(const JsonValue &doc, const char *which)
{
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != "stackscope-report") {
        usage(std::string(which) + " is not a stackscope report");
    }
    const JsonValue *version = doc.find("version");
    const int v =
        version != nullptr ? static_cast<int>(version->numberOr(0)) : 0;
    if (v != 1 && v != 2) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "unsupported report schema version")
            .withContext("report", which)
            .withContext("version", std::to_string(v));
    }
}

/** Jobs by label, document order preserved. */
std::vector<std::pair<std::string, const JsonValue *>>
jobsOf(const JsonValue &doc, const char *which)
{
    const JsonValue &jobs = doc.at("jobs");
    if (!jobs.isArray())
        usage(std::string(which) + ": \"jobs\" is not an array");
    std::vector<std::pair<std::string, const JsonValue *>> out;
    out.reserve(jobs.array.size());
    for (const JsonValue &job : jobs.array) {
        const JsonValue &label = job.at("label");
        if (!label.isString())
            usage(std::string(which) + ": job label is not a string");
        for (const auto &[seen, unused] : out) {
            (void)unused;
            if (seen == label.string) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "duplicate job label in report")
                    .withContext("report", which)
                    .withContext("label", label.string);
            }
        }
        out.emplace_back(label.string, &job);
    }
    return out;
}

struct Comparer
{
    const DiffTolerance &tol;
    ReportDiff &out;

    void
    value(const std::string &job, std::string path, double a, double b)
    {
        ++out.values_compared;
        if (!tol.exceeded(a, b))
            return;
        DiffEntry e;
        e.job = job;
        e.path = std::move(path);
        e.a = a;
        e.b = b;
        e.delta = b - a;
        e.regression = true;
        out.regressions.push_back(std::move(e));
    }

    /** Flat object of numbers (one stack). */
    void
    numberObject(const std::string &job, const std::string &path,
                 const JsonValue &a, const JsonValue &b)
    {
        if (!a.isObject() || !b.isObject() ||
            a.object.size() != b.object.size()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "reports are structurally incomparable")
                .withContext("job", job)
                .withContext("path", path);
        }
        for (const auto &[key, va] : a.object) {
            const JsonValue *vb = b.find(key);
            if (vb == nullptr || !va.isNumber() || !vb->isNumber()) {
                throw StackscopeError(
                    ErrorCategory::kUsage,
                    "reports are structurally incomparable")
                    .withContext("job", job)
                    .withContext("path", path + "." + key);
            }
            value(job, path + "." + key, va.number, vb->number);
        }
    }

    /** Object of stacks (stage -> component -> number). */
    void
    stackObject(const std::string &job, const std::string &path,
                const JsonValue &a, const JsonValue &b)
    {
        if (!a.isObject() || !b.isObject() ||
            a.object.size() != b.object.size()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "reports are structurally incomparable")
                .withContext("job", job)
                .withContext("path", path);
        }
        for (const auto &[stage, sa] : a.object) {
            const JsonValue *sb = b.find(stage);
            if (sb == nullptr) {
                throw StackscopeError(
                    ErrorCategory::kUsage,
                    "reports are structurally incomparable")
                    .withContext("job", job)
                    .withContext("path", path + "." + stage);
            }
            numberObject(job, path + "." + stage, sa, *sb);
        }
    }
};

/** FLOPS cycle stack scaled to fractions of total cycles. */
JsonValue
flopsFraction(const JsonValue &result)
{
    const double cycles = result.at("cycles").numberOr(0.0);
    const JsonValue &raw = result.at("flops_cycles");
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    for (const auto &[key, v] : raw.object) {
        JsonValue scaled;
        scaled.kind = JsonValue::Kind::kNumber;
        scaled.number = cycles > 0.0 ? v.numberOr(0.0) / cycles : 0.0;
        out.object.emplace_back(key, std::move(scaled));
    }
    return out;
}

void
compareJob(const std::string &label, const JsonValue &ja,
           const JsonValue &jb, Comparer &cmp)
{
    const JsonValue *agg_a = ja.find("aggregate");
    const JsonValue *agg_b = jb.find("aggregate");
    const bool multi_a = agg_a != nullptr && agg_a->isObject();
    const bool multi_b = agg_b != nullptr && agg_b->isObject();
    if (multi_a != multi_b) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "reports are structurally incomparable "
                              "(single-core vs multi-core job)")
            .withContext("job", label);
    }
    if (multi_a) {
        cmp.value(label, "avg_cpi", agg_a->at("avg_cpi").numberOr(0.0),
                  agg_b->at("avg_cpi").numberOr(0.0));
        cmp.stackObject(label, "cpi_stacks", agg_a->at("avg_cpi_stacks"),
                        agg_b->at("avg_cpi_stacks"));
        cmp.numberObject(label, "flops_fraction",
                         agg_a->at("avg_flops_fraction"),
                         agg_b->at("avg_flops_fraction"));
        return;
    }
    const JsonValue &results_a = ja.at("results");
    const JsonValue &results_b = jb.at("results");
    if (!results_a.isArray() || !results_b.isArray() ||
        results_a.array.empty() || results_b.array.empty()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "report job has no results")
            .withContext("job", label);
    }
    const JsonValue &ra = results_a.array.front();
    const JsonValue &rb = results_b.array.front();
    cmp.value(label, "cpi", ra.at("cpi").numberOr(0.0),
              rb.at("cpi").numberOr(0.0));
    cmp.stackObject(label, "cpi_stacks", ra.at("cpi_stacks"),
                    rb.at("cpi_stacks"));
    cmp.numberObject(label, "flops_fraction", flopsFraction(ra),
                     flopsFraction(rb));
}

/**
 * Flatten a host_metrics section to name -> value. Histograms contribute
 * "<name>.total" and "<name>.sum" so they can be watched too.
 */
std::map<std::string, double>
flattenHostMetrics(const JsonValue &doc)
{
    std::map<std::string, double> out;
    const JsonValue *hm = doc.find("host_metrics");
    if (hm == nullptr || !hm->isObject())
        return out;
    if (const JsonValue *counters = hm->find("counters")) {
        for (const auto &[name, v] : counters->object)
            out[name] = v.numberOr(0.0);
    }
    if (const JsonValue *gauges = hm->find("gauges")) {
        for (const auto &[name, v] : gauges->object)
            out[name] = v.numberOr(0.0);
    }
    if (const JsonValue *hists = hm->find("histograms")) {
        for (const auto &[name, v] : hists->object) {
            if (const JsonValue *total = v.find("total"))
                out[name + ".total"] = total->numberOr(0.0);
            if (const JsonValue *sum = v.find("sum"))
                out[name + ".sum"] = sum->numberOr(0.0);
        }
    }
    return out;
}

}  // namespace

ReportDiff
diffReports(const JsonValue &a, const JsonValue &b, const DiffTolerance &tol,
            const std::vector<WatchSpec> &watches)
{
    checkSchema(a, "baseline report");
    checkSchema(b, "candidate report");

    const auto jobs_a = jobsOf(a, "baseline report");
    const auto jobs_b = jobsOf(b, "candidate report");
    if (jobs_a.size() != jobs_b.size()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "reports have different job counts")
            .withContext("baseline", std::to_string(jobs_a.size()))
            .withContext("candidate", std::to_string(jobs_b.size()));
    }

    ReportDiff diff;
    Comparer cmp{tol, diff};
    for (const auto &[label, ja] : jobs_a) {
        const auto it = std::find_if(
            jobs_b.begin(), jobs_b.end(),
            [&label = label](const auto &p) { return p.first == label; });
        if (it == jobs_b.end()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "job missing from candidate report")
                .withContext("job", label);
        }
        compareJob(label, *ja, *it->second, cmp);
        ++diff.jobs_compared;
    }

    const auto host_a = flattenHostMetrics(a);
    const auto host_b = flattenHostMetrics(b);
    for (const auto &[name, va] : host_a) {
        const auto it = host_b.find(name);
        if (it == host_b.end())
            continue;
        MetricDelta m;
        m.name = name;
        m.a = va;
        m.b = it->second;
        m.delta = m.b - m.a;
        diff.host_metrics.push_back(std::move(m));
    }
    for (const WatchSpec &watch : watches) {
        const auto found = std::find_if(
            diff.host_metrics.begin(), diff.host_metrics.end(),
            [&watch](const MetricDelta &m) {
                return m.name == watch.metric;
            });
        if (found == diff.host_metrics.end()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "watched host metric is not present in "
                                  "both reports")
                .withContext("metric", watch.metric);
        }
        found->watched = true;
        found->regression = watch.tol.exceeded(found->a, found->b);
    }
    return diff;
}

std::string
renderDiff(const ReportDiff &diff)
{
    std::string out;
    if (!diff.regressions.empty()) {
        out += "stack regressions (" +
               std::to_string(diff.regressions.size()) + "):\n";
        for (const DiffEntry &e : diff.regressions) {
            out += "  " + e.job + ": " + e.path + "  a=" + fmt(e.a) +
                   " b=" + fmt(e.b) + " delta=" + fmt(e.delta) + "\n";
        }
    }
    bool any_watched = false;
    for (const MetricDelta &m : diff.host_metrics) {
        if (!m.watched)
            continue;
        if (!any_watched) {
            out += "watched host metrics:\n";
            any_watched = true;
        }
        out += "  " + m.name + "  a=" + fmt(m.a) + " b=" + fmt(m.b) +
               " delta=" + fmt(m.delta) +
               (m.regression ? "  REGRESSION" : "  ok") + "\n";
    }
    std::size_t informational = 0;
    for (const MetricDelta &m : diff.host_metrics) {
        if (!m.watched)
            ++informational;
    }
    out += "compared " + std::to_string(diff.values_compared) +
           " stack values across " + std::to_string(diff.jobs_compared) +
           " jobs; " + std::to_string(informational) +
           " host metrics informational\n";
    out += diff.regression() ? "result: REGRESSION\n" : "result: OK\n";
    return out;
}

}  // namespace stackscope::obs
