#include "obs/report_diff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace stackscope::obs {

namespace {

[[noreturn]] void
usage(const std::string &what)
{
    throw StackscopeError(ErrorCategory::kUsage, what);
}

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
checkSchema(const JsonValue &doc, const char *which)
{
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != "stackscope-report") {
        usage(std::string(which) + " is not a stackscope report");
    }
    const JsonValue *version = doc.find("version");
    const int v =
        version != nullptr ? static_cast<int>(version->numberOr(0)) : 0;
    if (v != 1 && v != 2) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "unsupported report schema version")
            .withContext("report", which)
            .withContext("version", std::to_string(v));
    }
}

/** Jobs by label, document order preserved. */
std::vector<std::pair<std::string, const JsonValue *>>
jobsOf(const JsonValue &doc, const char *which)
{
    const JsonValue &jobs = doc.at("jobs");
    if (!jobs.isArray())
        usage(std::string(which) + ": \"jobs\" is not an array");
    std::vector<std::pair<std::string, const JsonValue *>> out;
    out.reserve(jobs.array.size());
    for (const JsonValue &job : jobs.array) {
        const JsonValue &label = job.at("label");
        if (!label.isString())
            usage(std::string(which) + ": job label is not a string");
        for (const auto &[seen, unused] : out) {
            (void)unused;
            if (seen == label.string) {
                throw StackscopeError(ErrorCategory::kUsage,
                                      "duplicate job label in report")
                    .withContext("report", which)
                    .withContext("label", label.string);
            }
        }
        out.emplace_back(label.string, &job);
    }
    return out;
}

struct Comparer
{
    const DiffTolerance &tol;
    ReportDiff &out;

    void
    value(const std::string &job, std::string path, double a, double b)
    {
        ++out.values_compared;
        if (!tol.exceeded(a, b))
            return;
        DiffEntry e;
        e.job = job;
        e.path = std::move(path);
        e.a = a;
        e.b = b;
        e.delta = b - a;
        e.regression = true;
        out.regressions.push_back(std::move(e));
    }

    /** Flat object of numbers (one stack). */
    void
    numberObject(const std::string &job, const std::string &path,
                 const JsonValue &a, const JsonValue &b)
    {
        if (!a.isObject() || !b.isObject() ||
            a.object.size() != b.object.size()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "reports are structurally incomparable")
                .withContext("job", job)
                .withContext("path", path);
        }
        for (const auto &[key, va] : a.object) {
            const JsonValue *vb = b.find(key);
            if (vb == nullptr || !va.isNumber() || !vb->isNumber()) {
                throw StackscopeError(
                    ErrorCategory::kUsage,
                    "reports are structurally incomparable")
                    .withContext("job", job)
                    .withContext("path", path + "." + key);
            }
            value(job, path + "." + key, va.number, vb->number);
        }
    }

    /** Object of stacks (stage -> component -> number). */
    void
    stackObject(const std::string &job, const std::string &path,
                const JsonValue &a, const JsonValue &b)
    {
        if (!a.isObject() || !b.isObject() ||
            a.object.size() != b.object.size()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "reports are structurally incomparable")
                .withContext("job", job)
                .withContext("path", path);
        }
        for (const auto &[stage, sa] : a.object) {
            const JsonValue *sb = b.find(stage);
            if (sb == nullptr) {
                throw StackscopeError(
                    ErrorCategory::kUsage,
                    "reports are structurally incomparable")
                    .withContext("job", job)
                    .withContext("path", path + "." + stage);
            }
            numberObject(job, path + "." + stage, sa, *sb);
        }
    }
};

/**
 * Final status of one report job. "job_status" is additive (absent in
 * reports written before partial-result support), so absence means the
 * job completed: every pre-status report only ever contained results.
 */
std::string
jobStatusOf(const JsonValue &job)
{
    const JsonValue *status = job.find("job_status");
    if (status == nullptr || !status->isObject())
        return "ok";
    const JsonValue *s = status->find("status");
    return s != nullptr && s->isString() ? s->string : "ok";
}

bool
statusCompleted(const std::string &status)
{
    return status == "ok" || status == "retried";
}

/** FLOPS cycle stack scaled to fractions of total cycles. */
JsonValue
flopsFraction(const JsonValue &result)
{
    const double cycles = result.at("cycles").numberOr(0.0);
    const JsonValue &raw = result.at("flops_cycles");
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    for (const auto &[key, v] : raw.object) {
        JsonValue scaled;
        scaled.kind = JsonValue::Kind::kNumber;
        scaled.number = cycles > 0.0 ? v.numberOr(0.0) / cycles : 0.0;
        out.object.emplace_back(key, std::move(scaled));
    }
    return out;
}

void
compareJob(const std::string &label, const JsonValue &ja,
           const JsonValue &jb, Comparer &cmp)
{
    const JsonValue *agg_a = ja.find("aggregate");
    const JsonValue *agg_b = jb.find("aggregate");
    const bool multi_a = agg_a != nullptr && agg_a->isObject();
    const bool multi_b = agg_b != nullptr && agg_b->isObject();
    if (multi_a != multi_b) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "reports are structurally incomparable "
                              "(single-core vs multi-core job)")
            .withContext("job", label);
    }
    if (multi_a) {
        cmp.value(label, "avg_cpi", agg_a->at("avg_cpi").numberOr(0.0),
                  agg_b->at("avg_cpi").numberOr(0.0));
        cmp.stackObject(label, "cpi_stacks", agg_a->at("avg_cpi_stacks"),
                        agg_b->at("avg_cpi_stacks"));
        cmp.numberObject(label, "flops_fraction",
                         agg_a->at("avg_flops_fraction"),
                         agg_b->at("avg_flops_fraction"));
        return;
    }
    const JsonValue &results_a = ja.at("results");
    const JsonValue &results_b = jb.at("results");
    if (!results_a.isArray() || !results_b.isArray() ||
        results_a.array.empty() || results_b.array.empty()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "report job has no results")
            .withContext("job", label);
    }
    const JsonValue &ra = results_a.array.front();
    const JsonValue &rb = results_b.array.front();
    cmp.value(label, "cpi", ra.at("cpi").numberOr(0.0),
              rb.at("cpi").numberOr(0.0));
    cmp.stackObject(label, "cpi_stacks", ra.at("cpi_stacks"),
                    rb.at("cpi_stacks"));
    cmp.numberObject(label, "flops_fraction", flopsFraction(ra),
                     flopsFraction(rb));
}

/**
 * Flatten a host_metrics section to name -> value. Histograms contribute
 * "<name>.total" and "<name>.sum" so they can be watched too.
 */
std::map<std::string, double>
flattenHostMetrics(const JsonValue &doc)
{
    std::map<std::string, double> out;
    const JsonValue *hm = doc.find("host_metrics");
    if (hm == nullptr || !hm->isObject())
        return out;
    if (const JsonValue *counters = hm->find("counters")) {
        for (const auto &[name, v] : counters->object)
            out[name] = v.numberOr(0.0);
    }
    if (const JsonValue *gauges = hm->find("gauges")) {
        for (const auto &[name, v] : gauges->object)
            out[name] = v.numberOr(0.0);
    }
    if (const JsonValue *hists = hm->find("histograms")) {
        for (const auto &[name, v] : hists->object) {
            if (const JsonValue *total = v.find("total"))
                out[name + ".total"] = total->numberOr(0.0);
            if (const JsonValue *sum = v.find("sum"))
                out[name + ".sum"] = sum->numberOr(0.0);
        }
    }
    return out;
}

}  // namespace

ReportDiff
diffReports(const JsonValue &a, const JsonValue &b, const DiffTolerance &tol,
            const std::vector<WatchSpec> &watches)
{
    checkSchema(a, "baseline report");
    checkSchema(b, "candidate report");

    const auto jobs_a = jobsOf(a, "baseline report");
    const auto jobs_b = jobsOf(b, "candidate report");
    if (jobs_a.size() != jobs_b.size()) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "reports have different job counts")
            .withContext("baseline", std::to_string(jobs_a.size()))
            .withContext("candidate", std::to_string(jobs_b.size()));
    }

    ReportDiff diff;
    Comparer cmp{tol, diff};
    for (const auto &[label, ja] : jobs_a) {
        const auto it = std::find_if(
            jobs_b.begin(), jobs_b.end(),
            [&label = label](const auto &p) { return p.first == label; });
        if (it == jobs_b.end()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "job missing from candidate report")
                .withContext("job", label);
        }
        // Partial-report awareness: a job that failed on both sides the
        // same way has no stacks to compare; a job that completed on one
        // side only (or failed differently) is a status regression, not
        // a structural error.
        const std::string status_a = jobStatusOf(*ja);
        const std::string status_b = jobStatusOf(*it->second);
        const bool completed_a = statusCompleted(status_a);
        const bool completed_b = statusCompleted(status_b);
        ++diff.jobs_compared;
        if (completed_a != completed_b ||
            (!completed_a && status_a != status_b)) {
            diff.status_mismatches.push_back(
                {label, status_a, status_b});
            continue;
        }
        if (!completed_a) {
            ++diff.jobs_failed_both;
            continue;
        }
        compareJob(label, *ja, *it->second, cmp);
    }

    const auto host_a = flattenHostMetrics(a);
    const auto host_b = flattenHostMetrics(b);
    for (const auto &[name, va] : host_a) {
        const auto it = host_b.find(name);
        if (it == host_b.end())
            continue;
        MetricDelta m;
        m.name = name;
        m.a = va;
        m.b = it->second;
        m.delta = m.b - m.a;
        diff.host_metrics.push_back(std::move(m));
    }
    for (const WatchSpec &watch : watches) {
        const auto found = std::find_if(
            diff.host_metrics.begin(), diff.host_metrics.end(),
            [&watch](const MetricDelta &m) {
                return m.name == watch.metric;
            });
        if (found == diff.host_metrics.end()) {
            throw StackscopeError(ErrorCategory::kUsage,
                                  "watched host metric is not present in "
                                  "both reports")
                .withContext("metric", watch.metric);
        }
        found->watched = true;
        found->regression = watch.tol.exceeded(found->a, found->b);
    }
    return diff;
}

std::string
renderDiff(const ReportDiff &diff)
{
    std::string out;
    if (!diff.status_mismatches.empty()) {
        out += "job status mismatches (" +
               std::to_string(diff.status_mismatches.size()) + "):\n";
        for (const StatusMismatch &m : diff.status_mismatches) {
            out += "  " + m.job + ": a=" + m.a + " b=" + m.b + "\n";
        }
    }
    if (!diff.regressions.empty()) {
        out += "stack regressions (" +
               std::to_string(diff.regressions.size()) + "):\n";
        for (const DiffEntry &e : diff.regressions) {
            out += "  " + e.job + ": " + e.path + "  a=" + fmt(e.a) +
                   " b=" + fmt(e.b) + " delta=" + fmt(e.delta) + "\n";
        }
    }
    bool any_watched = false;
    for (const MetricDelta &m : diff.host_metrics) {
        if (!m.watched)
            continue;
        if (!any_watched) {
            out += "watched host metrics:\n";
            any_watched = true;
        }
        out += "  " + m.name + "  a=" + fmt(m.a) + " b=" + fmt(m.b) +
               " delta=" + fmt(m.delta) +
               (m.regression ? "  REGRESSION" : "  ok") + "\n";
    }
    std::size_t informational = 0;
    for (const MetricDelta &m : diff.host_metrics) {
        if (!m.watched)
            ++informational;
    }
    out += "compared " + std::to_string(diff.values_compared) +
           " stack values across " + std::to_string(diff.jobs_compared) +
           " jobs; " + std::to_string(informational) +
           " host metrics informational\n";
    if (diff.jobs_failed_both > 0) {
        out += std::to_string(diff.jobs_failed_both) +
               " job(s) failed identically in both reports (stacks not "
               "compared)\n";
    }
    out += diff.regression() ? "result: REGRESSION\n" : "result: OK\n";
    return out;
}

}  // namespace stackscope::obs
