#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace stackscope::obs {

namespace {

template <typename T>
const T *
findByName(const std::vector<T> &sorted, std::string_view name)
{
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), name,
        [](const T &entry, std::string_view n) { return entry.name < n; });
    if (it == sorted.end() || it->name != name)
        return nullptr;
    return &*it;
}

}  // namespace

const CounterValue *
MetricsSnapshot::counter(std::string_view name) const
{
    return findByName(counters, name);
}

const GaugeValue *
MetricsSnapshot::gauge(std::string_view name) const
{
    return findByName(gauges, name);
}

const HistogramValue *
MetricsSnapshot::histogram(std::string_view name) const
{
    return findByName(histograms, name);
}

std::uint64_t
MetricsSnapshot::counterOr(std::string_view name,
                           std::uint64_t fallback) const
{
    const CounterValue *c = counter(name);
    return c ? c->value : fallback;
}

void
Gauge::add(double delta)
{
    if (slot_ == nullptr)
        return;
    double cur = slot_->load(std::memory_order_relaxed);
    while (!slot_->compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
Histogram::record(double value)
{
    if (reg_ == nullptr)
        return;
    // Bucket i covers (bounds[i-1], bounds[i]]; the final implicit bucket
    // is (bounds[n-1], +inf).
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(bounds_, bounds_ + nbounds_, value) - bounds_);
    MetricsRegistry::Shard &shard = reg_->localShard();
    shard
        .hist_counts[id_ * (MetricsRegistry::kMaxBuckets + 1) + bucket]
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic<double> &sum = shard.hist_sums[id_];
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed)) {
    }
}

MetricsRegistry::Shard &
MetricsRegistry::localShardSlow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard *&slot = shard_of_thread_[std::this_thread::get_id()];
    if (slot == nullptr) {
        shards_.push_back(std::make_unique<Shard>());
        slot = shards_.back().get();
    }
    tls_shard_cache_ = {this, slot};
    return *slot;
}

Counter
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        if (counter_names_[i] == name)
            return Counter(this, static_cast<std::uint32_t>(i));
    }
    if (counter_names_.size() >= kMaxCounters) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "metrics registry counter capacity exceeded")
            .withContext("name", std::string(name))
            .withContext("capacity", std::to_string(kMaxCounters));
    }
    counter_names_.emplace_back(name);
    return Counter(this,
                   static_cast<std::uint32_t>(counter_names_.size() - 1));
}

Gauge
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (GaugeSlot &slot : gauges_) {
        if (slot.name == name)
            return Gauge(&slot.value);
    }
    if (gauges_.size() >= kMaxGauges) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "metrics registry gauge capacity exceeded")
            .withContext("name", std::string(name))
            .withContext("capacity", std::to_string(kMaxGauges));
    }
    gauges_.emplace_back();
    gauges_.back().name = std::string(name);
    return Gauge(&gauges_.back().value);
}

Histogram
MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < histogram_defs_.size(); ++i) {
        if (histogram_defs_[i].name == name) {
            const HistogramDef &def = histogram_defs_[i];
            return Histogram(this, static_cast<std::uint32_t>(i),
                             def.bounds.data(), def.bounds.size());
        }
    }
    if (bounds.empty() || bounds.size() > kMaxBuckets ||
        !std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
        throw StackscopeError(
            ErrorCategory::kInternal,
            "histogram bounds must be 1..16 strictly increasing edges")
            .withContext("name", std::string(name));
    }
    if (histogram_defs_.size() >= kMaxHistograms) {
        throw StackscopeError(
            ErrorCategory::kInternal,
            "metrics registry histogram capacity exceeded")
            .withContext("name", std::string(name))
            .withContext("capacity", std::to_string(kMaxHistograms));
    }
    histogram_defs_.push_back({std::string(name), std::move(bounds)});
    const HistogramDef &def = histogram_defs_.back();
    return Histogram(this,
                     static_cast<std::uint32_t>(histogram_defs_.size() - 1),
                     def.bounds.data(), def.bounds.size());
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;

    snap.counters.reserve(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard->counters[i].load(std::memory_order_relaxed);
        snap.counters.push_back({counter_names_[i], total});
    }

    snap.gauges.reserve(gauges_.size());
    for (const GaugeSlot &slot : gauges_) {
        snap.gauges.push_back(
            {slot.name, slot.value.load(std::memory_order_relaxed)});
    }

    snap.histograms.reserve(histogram_defs_.size());
    for (std::size_t i = 0; i < histogram_defs_.size(); ++i) {
        const HistogramDef &def = histogram_defs_[i];
        HistogramValue hv;
        hv.name = def.name;
        hv.bounds = def.bounds;
        hv.counts.assign(def.bounds.size() + 1, 0);
        for (const auto &shard : shards_) {
            for (std::size_t b = 0; b < hv.counts.size(); ++b) {
                hv.counts[b] +=
                    shard->hist_counts[i * (kMaxBuckets + 1) + b].load(
                        std::memory_order_relaxed);
            }
            hv.sum +=
                shard->hist_sums[i].load(std::memory_order_relaxed);
        }
        for (const std::uint64_t c : hv.counts)
            hv.total += c;
        snap.histograms.push_back(std::move(hv));
    }

    const auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.gauges.begin(), snap.gauges.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &c : shard->hist_counts)
            c.store(0, std::memory_order_relaxed);
        for (auto &s : shard->hist_sums)
            s.store(0.0, std::memory_order_relaxed);
    }
    for (GaugeSlot &slot : gauges_)
        slot.value.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
    return 0;
#endif
}

}  // namespace stackscope::obs
