#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace stackscope::obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        const auto c = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (first_.empty())
        return;
    if (first_.back())
        first_.back() = false;
    else
        out_ += ',';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    if (!std::isfinite(number))
        return null();
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view fragment)
{
    separate();
    out_ += fragment;
    return *this;
}

}  // namespace stackscope::obs
