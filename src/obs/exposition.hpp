/**
 * @file
 * Prometheus text-format (version 0.0.4) rendering of a MetricsSnapshot.
 *
 * This is the second exposition path for the same data that
 * writeMetricsSnapshot() embeds in reports: `stackscope serve` serves it
 * at `GET /metricsz` so a scraper sees exactly the series catalogued in
 * docs/observability.md. Both paths render one MetricsSnapshot, so a
 * scrape and a report taken from the same snapshot agree bucket for
 * bucket (tools/check_exposition.py lints the invariants).
 *
 * Mapping rules (normative, mirrored in docs/observability.md):
 *  - metric names swap '.' for '_' ("serve.requests_total" ->
 *    "serve_requests_total"); all registry names are already ASCII
 *    [a-z0-9_.] so no further mangling is needed.
 *  - counters emit `# TYPE <name> counter` + one sample.
 *  - gauges emit `# TYPE <name> gauge` + one sample.
 *  - histograms emit cumulative `<name>_bucket{le="<edge>"}` samples,
 *    one per configured edge plus `le="+Inf"`, then `<name>_sum` and
 *    `<name>_count`. The +Inf bucket always equals `_count`.
 *  - label values escape '\\', '"' and '\n' per the exposition spec.
 */

#ifndef STACKSCOPE_OBS_EXPOSITION_HPP
#define STACKSCOPE_OBS_EXPOSITION_HPP

#include <string>

#include "obs/metrics.hpp"

namespace stackscope::obs {

/** Registry metric name -> Prometheus name ('.' becomes '_'). */
std::string promName(std::string_view name);

/** Escape a label value per the text-format spec (\\, ", \n). */
std::string promEscapeLabel(std::string_view value);

/**
 * Shortest decimal string that strtod()s back to exactly @p value.
 * Used for `le` edges and sample values so 1e-06 renders as "1e-06",
 * not "9.9999999999999995e-07". NaN/Inf render as "NaN"/"+Inf"/"-Inf".
 */
std::string promDouble(double value);

/** Render the whole snapshot as Prometheus text format 0.0.4. */
std::string prometheusText(const MetricsSnapshot &snap);

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_EXPOSITION_HPP
