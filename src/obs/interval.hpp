/**
 * @file
 * Interval stack accounting: a time-series of per-window CPI and FLOPS
 * stacks alongside the whole-run aggregates.
 *
 * The paper's stacks are whole-run aggregates, but its case studies live
 * on seeing *where* in a run a bottleneck appears (cf. the sensitivity /
 * causality line of Dutilleul et al. and the bottleneck detection of
 * Pompougnac et al., which both need time-resolved data). The interval
 * accountant piggy-backs on the per-cycle accounting the core already
 * performs: at every window boundary it records the difference between
 * the accountants' cumulative stacks and the previous snapshot — no
 * second accounting pass, no per-cycle work beyond one comparison, in
 * the spirit of the paper's <1% overhead claim (§IV).
 *
 * Conservation by construction: the window stacks telescope, so their
 * component-wise sum equals the whole-run stack to within floating-point
 * rounding (each window's stack-law invariants hold up to the ±1-cycle
 * carry the §III-A width-normalization rule moves across boundaries).
 */

#ifndef STACKSCOPE_OBS_INTERVAL_HPP
#define STACKSCOPE_OBS_INTERVAL_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "stacks/stack.hpp"

namespace stackscope::core {
class OooCore;
}

namespace stackscope::obs {

/** The stacks accumulated over one window of measured cycles. */
struct IntervalSample
{
    /** Measured-cycle window [start, end). */
    Cycle start = 0;
    Cycle end = 0;
    /** Instructions committed within the window. */
    std::uint64_t instrs = 0;
    /** Per-stage CPI stacks in cycle units, indexed by stacks::Stage. */
    std::array<stacks::CpiStack, stacks::kNumStages> cycle_stacks{};
    /** FLOPS stack in cycle units. */
    stacks::FlopsStack flops_cycles{};

    Cycle cycles() const { return end - start; }

    const stacks::CpiStack &
    cycleStack(stacks::Stage s) const
    {
        return cycle_stacks[static_cast<std::size_t>(s)];
    }
};

/** The full interval time-series of one run. */
struct IntervalSeries
{
    /** Nominal window length in measured cycles (0 = disabled). */
    Cycle window = 0;
    /** Chronological samples; the last window may be shorter. */
    std::vector<IntervalSample> samples;

    bool enabled() const { return window != 0; }

    /**
     * Component-wise (cycle-weighted) sum of all window stacks for one
     * stage — equals the whole-run cycle stack within rounding.
     * Compensated (long double) accumulation keeps the telescoping error
     * below 1e-9 of the aggregate.
     */
    stacks::CpiStack summedCycleStack(stacks::Stage stage) const;

    /** Same for the FLOPS stack. */
    stacks::FlopsStack summedFlopsCycles() const;
};

/**
 * Snapshots a core's accountants at fixed cycle boundaries.
 *
 * Usage (mirrors validate::IntervalValidator): after every core cycle,
 * `if (acct.due(core.cycles())) acct.snapshot(core);`; after
 * finalizeAccounting() call finish(core) — it emits the final partial
 * window from the *finalized* stacks, so any mass finalize() moves
 * (e.g. the kSimple §III-B fixup) lands in the last sample and the
 * series still sums exactly to the aggregate.
 *
 * Not usable with SpeculationMode::kSpecCounters, whose stacks are
 * undefined before finalize(); the sim driver rejects that combination
 * with a kConfig error.
 */
class IntervalAccountant
{
  public:
    explicit IntervalAccountant(Cycle window);

    /** True when a boundary is due at measured cycle @p elapsed. */
    bool
    due(Cycle elapsed) const
    {
        return window_ != 0 && elapsed >= next_;
    }

    /**
     * The next boundary in measured cycles — drivers feed it into
     * core::OooCore::setCycleHorizon() so idle skip-ahead never jumps a
     * window edge (0 when disabled maps to an immediate horizon; callers
     * must check enabled() via window()).
     */
    Cycle nextBoundary() const { return next_; }

    /** Nominal window length (0 = disabled). */
    Cycle window() const { return window_; }

    /** Record the window ending at the current measured cycle. */
    void snapshot(const core::OooCore &core);

    /**
     * Close the series after finalizeAccounting(): emits the trailing
     * partial window (or folds any finalize()-time redistribution into
     * the last sample when the run ended exactly on a boundary).
     */
    void finish(const core::OooCore &core);

    /** Move the accumulated series out. */
    IntervalSeries take() { return std::move(series_); }

  private:
    void capture(const core::OooCore &core, Cycle now);

    Cycle window_;
    Cycle next_;
    IntervalSeries series_;

    /** Cumulative state at the previous boundary. */
    Cycle prev_cycles_ = 0;
    std::uint64_t prev_instrs_ = 0;
    std::array<stacks::CpiStack, stacks::kNumStages> prev_stacks_{};
    stacks::FlopsStack prev_flops_{};
};

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_INTERVAL_HPP
