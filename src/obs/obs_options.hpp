/**
 * @file
 * Observability configuration shared by the simulation drivers.
 *
 * Kept free of dependencies so sim::SimOptions can embed it by value; the
 * machinery it switches on lives in obs/interval.hpp (interval stack
 * time-series) and obs/trace_events.hpp (pipeline event tracing).
 */

#ifndef STACKSCOPE_OBS_OBS_OPTIONS_HPP
#define STACKSCOPE_OBS_OBS_OPTIONS_HPP

#include <cstddef>

#include "common/types.hpp"

namespace stackscope::obs {

/** Per-run observability switches (everything off by default). */
struct ObsOptions
{
    /**
     * Snapshot the CPI and FLOPS stacks every this many measured cycles,
     * producing SimResult::intervals. 0 disables interval accounting.
     * Incompatible with SpeculationMode::kSpecCounters, whose stacks are
     * undefined before finalize() (kConfig error).
     */
    Cycle interval_cycles = 0;

    /**
     * Record pipeline events (stage activity/stall spans, flushes,
     * watchdog and validation events) into SimResult::events.
     */
    bool trace_events = false;

    /**
     * Ring-buffer capacity of the event tracer; when full, the oldest
     * events are overwritten and counted as dropped.
     */
    std::size_t trace_capacity = 1 << 16;

    bool enabled() const { return interval_cycles != 0 || trace_events; }
};

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_OBS_OPTIONS_HPP
