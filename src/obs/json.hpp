/**
 * @file
 * Minimal streaming JSON writer for the observability exporters.
 *
 * The run-report and trace-event formats are versioned, machine-readable
 * contracts (docs/formats.md), so the writer is deliberately strict and
 * deterministic: keys are emitted in call order, doubles use a fixed
 * round-trippable format, and non-finite values become null (JSON has no
 * NaN/Infinity). No external JSON dependency is required.
 */

#ifndef STACKSCOPE_OBS_JSON_HPP
#define STACKSCOPE_OBS_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stackscope::obs {

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Append-only JSON document builder. Call sequence mirrors document
 * structure: beginObject()/endObject(), beginArray()/endArray(), key()
 * before every object member, value() for scalars. Commas are inserted
 * automatically. Misuse (e.g. two keys in a row) produces malformed
 * output rather than throwing; the tests round-trip every produced
 * document through a real parser.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key inside an object; the next begin/value call is its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    /** Doubles use "%.17g" (lossless); NaN/Inf are emitted as null. */
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(unsigned number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /**
     * Splice a pre-serialized JSON fragment verbatim as the next value.
     * The caller vouches that @p fragment is well-formed JSON; the sweep
     * journal uses this to replay stored report fragments byte-for-byte.
     */
    JsonWriter &raw(std::string_view fragment);

    const std::string &str() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** One entry per open container: true until its first element. */
    std::vector<bool> first_;
    bool after_key_ = false;
};

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_JSON_HPP
