/**
 * @file
 * Pipeline event tracing: a bounded ring buffer of structured events with
 * a Chrome trace-event (chrome://tracing / Perfetto) JSON exporter.
 *
 * The tracer consumes the same per-cycle stacks::CycleState observation
 * the accountants do, so it attaches to the simulation loop without
 * touching the core's hot path: contiguous cycles in which a stage is
 * active (or stalled for one cause) collapse into a single span event,
 * which is what keeps the event rate — and therefore the overhead — low.
 * The stall causes use exactly the attribution rules of the Table II
 * accountants, so the trace timeline is the time-resolved view of what
 * the CPI stacks aggregate.
 *
 * Event lanes per core (Chrome "tid"): 0 = pipeline events (flush,
 * watchdog, validation), 1 = dispatch, 2 = issue, 3 = commit. The full
 * mapping to Chrome trace-event JSON is specified in docs/formats.md.
 */

#ifndef STACKSCOPE_OBS_TRACE_EVENTS_HPP
#define STACKSCOPE_OBS_TRACE_EVENTS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "stacks/components.hpp"
#include "stacks/cycle_state.hpp"

namespace stackscope::obs {

/** Why a stage produced no uops this cycle (unified cause taxonomy). */
enum class StallCause : std::uint8_t
{
    kNone,       ///< not stalled (active spans)
    kIcache,     ///< frontend: instruction-cache miss
    kBpred,      ///< frontend: wrong-path fetch / redirect refill
    kMicrocode,  ///< frontend: decoder sequencing a microcoded instr
    kDrain,      ///< frontend: trace exhausted, pipeline draining
    kDcache,     ///< backend: blocked on a data-cache miss
    kAluLat,     ///< backend: blocked on a multi-cycle instruction
    kDepend,     ///< backend: blocked on a dependence chain
    kOther,      ///< structural (ports, conflicts) or unattributed
    kUnsched,    ///< thread yielded for synchronization
};

std::string_view toString(StallCause cause);

/** What one ring-buffer entry describes. */
enum class TraceEventKind : std::uint8_t
{
    kStageActive,  ///< span: lane's stage delivered uops (count = uops)
    kStageStall,   ///< span: lane's stage idle for `cause`
    kFlush,        ///< instant: pipeline squash (count = squashed uops)
    kWatchdog,     ///< instant: the run watchdog tripped
    kValidation,   ///< instant: an invariant violation was recorded
};

/** One structured pipeline event (POD; 24 bytes). */
struct TraceEvent
{
    /** Measured cycle the event (or span) starts at. */
    Cycle start = 0;
    /** Span length in cycles; 0 for instant events. */
    Cycle dur = 0;
    TraceEventKind kind = TraceEventKind::kStageActive;
    /** stacks::Stage index for stage spans; 0 otherwise. */
    std::uint8_t lane = 0;
    StallCause cause = StallCause::kNone;
    /** Uops for active spans / flushes; violation count for validation. */
    std::uint32_t count = 0;
};

/** The completed event log of one core's run. */
struct EventLog
{
    bool enabled = false;
    /** Events in emission order (spans close in end-cycle order). */
    std::vector<TraceEvent> events;
    /** Total events emitted, including any overwritten in the ring. */
    std::uint64_t emitted = 0;
    /** Events lost to ring-buffer wrap-around (oldest dropped first). */
    std::uint64_t dropped = 0;
    /** Measured cycle the log was closed at. */
    Cycle end_cycle = 0;
};

/**
 * Bounded pipeline tracer. Call observe() once per measured cycle with
 * the CycleState the core just published; call note() for out-of-band
 * events; call finish() once after the last cycle, then take() the log.
 */
class PipelineTracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit PipelineTracer(std::size_t capacity = kDefaultCapacity);

    /**
     * Observe the cycle that just executed. @p cycle is the measured
     * cycle index (0-based); @p squashed_total is the cumulative
     * CoreStats::squashed_uops counter, used to detect flushes.
     */
    void observe(Cycle cycle, const stacks::CycleState &state,
                 std::uint64_t squashed_total);

    /** Record an instant event (watchdog trip, validation violation). */
    void note(TraceEventKind kind, Cycle cycle, std::uint32_t count = 0);

    /** Close all open spans at @p end_cycle. Idempotent. */
    void finish(Cycle end_cycle);

    /** Move the log out (call after finish()). */
    EventLog take();

  private:
    struct LaneState
    {
        bool open = false;
        bool active = false;
        StallCause cause = StallCause::kNone;
        Cycle start = 0;
        std::uint32_t count = 0;
    };

    void laneObserve(std::size_t lane, bool active, StallCause cause,
                     std::uint32_t uops, Cycle cycle);
    void closeLane(std::size_t lane, Cycle end);
    void push(const TraceEvent &event);

    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  ///< index of the oldest event once wrapped
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
    LaneState lanes_[stacks::kNumStages];
    std::uint64_t last_squashed_ = 0;
    Cycle last_cycle_ = 0;
    bool finished_ = false;
};

/**
 * Serialize per-core event logs as one Chrome trace-event JSON document
 * (loadable in chrome://tracing and Perfetto). One trace "pid" per core,
 * lanes as named threads; 1 simulated cycle maps to 1 trace microsecond.
 * The exact mapping is documented in docs/formats.md.
 */
std::string chromeTraceJson(const std::vector<EventLog> &cores);

/**
 * One named wall-clock span on a host timeline (e.g. a serve request
 * phase). Timestamps are microseconds relative to the timeline origin.
 */
struct HostSpan
{
    std::string name;
    std::string category;
    std::int64_t start_us = 0;
    std::int64_t dur_us = 0;
    /** Chrome "tid" lane; names come from the exporter's lane list. */
    int lane = 0;
};

/**
 * Serialize host-side spans as one Chrome trace-event JSON document on a
 * single trace process named @p process_name, with lanes named by
 * @p lane_names (index == HostSpan::lane). Timestamps pass through
 * unscaled: 1 span microsecond = 1 trace microsecond.
 */
std::string hostSpansChromeJson(const std::string &process_name,
                                const std::vector<std::string> &lane_names,
                                const std::vector<HostSpan> &spans);

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_TRACE_EVENTS_HPP
