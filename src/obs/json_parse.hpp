/**
 * @file
 * Minimal recursive-descent JSON parser — the read side of the report
 * contract, built for `diff-report`.
 *
 * The writer (obs/json.hpp) only ever produces standard JSON, so the
 * parser accepts exactly RFC 8259: objects, arrays, strings with the
 * usual escapes, numbers, true/false/null. Errors throw
 * StackscopeError(kUsage) with byte-offset context, because the only
 * malformed documents this will ever see are user-supplied files.
 *
 * Object member order is preserved (vector of pairs, not a map): the
 * report schema is ordered, and a diff that reports components in stack
 * order is far easier to read than one sorted alphabetically.
 */

#ifndef STACKSCOPE_OBS_JSON_PARSE_HPP
#define STACKSCOPE_OBS_JSON_PARSE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stackscope::obs {

/**
 * Maximum container nesting depth parseJson() accepts. The parser is
 * recursive-descent, so without a bound an adversarial input of a few
 * hundred kilobytes of '[' would exhaust the call stack and crash the
 * process; past this depth it throws StackscopeError(kUsage) instead.
 * Real reports nest ~8 levels, so the bound is two orders of magnitude
 * of headroom.
 */
inline constexpr std::size_t kMaxJsonDepth = 192;

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Members in document order. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::kNull; }
    bool isBool() const { return kind == Kind::kBool; }
    bool isNumber() const { return kind == Kind::kNumber; }
    bool isString() const { return kind == Kind::kString; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isObject() const { return kind == Kind::kObject; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member lookup that throws StackscopeError(kUsage) when missing. */
    const JsonValue &at(std::string_view key) const;

    /** Number value, or @p fallback when this is not a number. */
    double numberOr(double fallback) const
    {
        return isNumber() ? number : fallback;
    }
};

/**
 * Parse @p text as one JSON document (trailing garbage is an error).
 * Throws StackscopeError(kUsage) on any syntax error.
 */
JsonValue parseJson(std::string_view text);

}  // namespace stackscope::obs

#endif  // STACKSCOPE_OBS_JSON_PARSE_HPP
