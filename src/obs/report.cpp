#include "obs/report.hpp"

#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace stackscope::obs {

using stacks::Stage;

namespace {

const char *
specModeName(stacks::SpeculationMode mode)
{
    switch (mode) {
      case stacks::SpeculationMode::kOracle: return "oracle";
      case stacks::SpeculationMode::kSimple: return "simple";
      case stacks::SpeculationMode::kSpecCounters: return "spec-counters";
    }
    return "oracle";
}

template <typename E>
void
writeStack(JsonWriter &w, const stacks::StackT<E> &stack)
{
    w.beginObject();
    stack.forEach([&](E c, double v) {
        w.key(stacks::componentName(c)).value(v);
    });
    w.endObject();
}

void
writeStageStacks(JsonWriter &w,
                 const std::array<stacks::CpiStack, stacks::kNumStages> &s)
{
    w.beginObject();
    for (std::size_t i = 0; i < stacks::kNumStages; ++i) {
        w.key(stacks::toString(static_cast<Stage>(i)));
        writeStack(w, s[i]);
    }
    w.endObject();
}

void
writeValidation(JsonWriter &w, const validate::ValidationReport &report)
{
    w.beginObject()
        .key("policy").value(validate::toString(report.policy))
        .key("checks_run").value(report.checks_run)
        .key("passed").value(report.passed())
        .key("violations").beginArray();
    for (const validate::Violation &v : report.violations) {
        w.beginObject()
            .key("invariant").value(validate::toString(v.invariant))
            .key("cycle").value(static_cast<std::uint64_t>(v.cycle))
            .key("detail").value(v.detail)
            .endObject();
    }
    w.endArray().endObject();
}

void
writeStats(JsonWriter &w, const core::CoreStats &s)
{
    w.beginObject()
        .key("cycles").value(static_cast<std::uint64_t>(s.cycles))
        .key("instrs_committed").value(s.instrs_committed)
        .key("wrong_path_dispatched").value(s.wrong_path_dispatched)
        .key("branches").value(s.branches)
        .key("branch_mispredicts").value(s.branch_mispredicts)
        .key("loads").value(s.loads)
        .key("l1d_load_misses").value(s.l1d_load_misses)
        .key("squashed_uops").value(s.squashed_uops)
        .key("flops_issued").value(s.flops_issued)
        .endObject();
}

void
writeIntervals(JsonWriter &w, const IntervalSeries &series)
{
    if (!series.enabled()) {
        w.null();
        return;
    }
    w.beginObject()
        .key("window").value(static_cast<std::uint64_t>(series.window))
        .key("samples").beginArray();
    for (const IntervalSample &s : series.samples) {
        w.beginObject()
            .key("start").value(static_cast<std::uint64_t>(s.start))
            .key("end").value(static_cast<std::uint64_t>(s.end))
            .key("instrs").value(s.instrs)
            .key("cycle_stacks");
        writeStageStacks(w, s.cycle_stacks);
        w.key("flops_cycles");
        writeStack(w, s.flops_cycles);
        w.endObject();
    }
    w.endArray().endObject();
}

void
writeTrace(JsonWriter &w, const EventLog &log)
{
    if (!log.enabled) {
        w.null();
        return;
    }
    w.beginObject()
        .key("captured").value(static_cast<std::uint64_t>(log.events.size()))
        .key("emitted").value(log.emitted)
        .key("dropped").value(log.dropped)
        .key("end_cycle").value(static_cast<std::uint64_t>(log.end_cycle))
        .endObject();
}

void
writeResult(JsonWriter &w, unsigned core, const sim::SimResult &r)
{
    w.beginObject()
        .key("core").value(core)
        .key("machine").value(r.machine)
        .key("cycles").value(static_cast<std::uint64_t>(r.cycles))
        .key("instrs").value(r.instrs)
        .key("cpi").value(r.cpi)
        .key("ipc").value(r.ipc())
        .key("freq_hz").value(r.freq_hz)
        .key("core_peak_flops").value(r.core_peak_flops)
        .key("achieved_flops").value(r.achievedFlops())
        .key("stats");
    writeStats(w, r.stats);
    w.key("cpi_stacks");
    writeStageStacks(w, r.cpi_stacks);
    w.key("cycle_stacks");
    writeStageStacks(w, r.cycle_stacks);
    w.key("flops_cycles");
    writeStack(w, r.flops_cycles);
    w.key("validation");
    writeValidation(w, r.validation);
    w.key("intervals");
    writeIntervals(w, r.intervals);
    w.key("trace");
    writeTrace(w, r.events);
    w.endObject();
}

void
writeOptions(JsonWriter &w, const sim::SimOptions &o)
{
    w.beginObject()
        .key("spec_mode").value(specModeName(o.spec_mode))
        .key("accounting").value(o.accounting)
        .key("max_cycles").value(static_cast<std::uint64_t>(o.max_cycles))
        .key("warmup_instrs");
    if (o.warmup_instrs)
        w.value(*o.warmup_instrs);
    else
        w.null();
    w.key("validation").value(validate::toString(o.validation))
        .key("validation_interval")
        .value(static_cast<std::uint64_t>(o.validation_interval))
        .key("watchdog_cycles")
        .value(static_cast<std::uint64_t>(o.watchdog_cycles))
        .key("interval_cycles")
        .value(static_cast<std::uint64_t>(o.obs.interval_cycles))
        .key("trace_events").value(o.obs.trace_events)
        .endObject();
}

void
writeAggregate(JsonWriter &w, const sim::MulticoreResult &m)
{
    w.beginObject()
        .key("avg_cpi").value(m.avg_cpi)
        .key("avg_ipc").value(m.avg_ipc)
        .key("avg_cpi_stacks");
    writeStageStacks(w, m.avg_cpi_stacks);
    w.key("avg_flops_fraction");
    writeStack(w, m.avg_flops_fraction);
    w.key("avg_ipc_fraction");
    writeStack(w, m.avg_ipc_fraction);
    w.key("socket_flops").value(m.socket_flops)
        .key("socket_peak_flops").value(m.socket_peak_flops)
        .key("validation");
    writeValidation(w, m.validation);
    w.endObject();
}

}  // namespace

void
writeMetricsSnapshot(JsonWriter &w, const MetricsSnapshot &snap)
{
    w.beginObject().key("counters").beginObject();
    for (const CounterValue &c : snap.counters)
        w.key(c.name).value(c.value);
    w.endObject().key("gauges").beginObject();
    for (const GaugeValue &g : snap.gauges)
        w.key(g.name).value(g.value);
    w.endObject().key("histograms").beginObject();
    for (const HistogramValue &h : snap.histograms) {
        w.key(h.name).beginObject().key("bounds").beginArray();
        for (const double b : h.bounds)
            w.value(b);
        w.endArray().key("counts").beginArray();
        for (const std::uint64_t c : h.counts)
            w.value(c);
        w.endArray()
            .key("total").value(h.total)
            .key("sum").value(h.sum)
            .endObject();
    }
    w.endObject().endObject();
}

void
ReportBuilder::setHostMetrics(MetricsSnapshot snapshot)
{
    host_metrics_ = std::move(snapshot);
}

void
ReportBuilder::add(std::string label, const sim::SimOptions &options,
                   const sim::SimResult &result)
{
    Job job;
    job.label = std::move(label);
    job.cores = 1;
    job.options = options;
    job.single = result;
    jobs_.push_back(std::move(job));
}

void
ReportBuilder::add(std::string label, const sim::SimOptions &options,
                   const sim::MulticoreResult &result)
{
    Job job;
    job.label = std::move(label);
    job.cores = static_cast<unsigned>(result.per_core.size());
    job.options = options;
    job.multi = result;
    jobs_.push_back(std::move(job));
}

ReportBuilder::Job
ReportBuilder::makeEntry(const runner::JobOutcome &outcome,
                         const sim::SimOptions &options, unsigned cores)
{
    Job job;
    job.label = outcome.label;
    job.cores = cores;
    job.options = options;
    job.status = outcome.status;
    job.attempts = outcome.attempts;
    job.error = outcome.error;
    if (outcome.completed()) {
        if (outcome.multi) {
            job.cores =
                static_cast<unsigned>(outcome.multi->per_core.size());
            job.multi = *outcome.multi;
        } else {
            job.single = outcome.single;
        }
    }
    return job;
}

void
ReportBuilder::add(const runner::JobOutcome &outcome,
                   const sim::SimOptions &options, unsigned cores)
{
    jobs_.push_back(makeEntry(outcome, options, cores));
}

void
ReportBuilder::addRaw(std::string job_json)
{
    Job job;
    job.raw = std::move(job_json);
    jobs_.push_back(std::move(job));
}

void
ReportBuilder::writeJob(JsonWriter &w, const Job &job)
{
    const bool completed = job.status == runner::JobStatus::kOk ||
                           job.status == runner::JobStatus::kRetried;
    w.beginObject()
        .key("label").value(job.label)
        .key("cores").value(job.cores)
        .key("job_status").beginObject()
        .key("status").value(runner::toString(job.status))
        .key("attempts").value(job.attempts)
        .key("error").value(job.error)
        .endObject()
        .key("options");
    writeOptions(w, job.options);
    w.key("results").beginArray();
    if (completed) {
        if (job.multi) {
            for (std::size_t i = 0; i < job.multi->per_core.size(); ++i)
                writeResult(w, static_cast<unsigned>(i),
                            job.multi->per_core[i]);
        } else {
            writeResult(w, 0, job.single);
        }
    }
    w.endArray();
    w.key("aggregate");
    if (completed && job.multi)
        writeAggregate(w, *job.multi);
    else
        w.null();
    w.endObject();
}

std::string
ReportBuilder::jobJson(const runner::JobOutcome &outcome,
                       const sim::SimOptions &options, unsigned cores)
{
    JsonWriter w;
    writeJob(w, makeEntry(outcome, options, cores));
    return w.str();
}

std::string
ReportBuilder::json() const
{
    JsonWriter w;
    w.beginObject()
        .key("schema").value(kReportSchemaName)
        .key("version").value(kReportSchemaVersion)
        .key("command").value(command_)
        .key("jobs").beginArray();
    for (const Job &job : jobs_) {
        if (job.raw) {
            w.raw(*job.raw);
            continue;
        }
        writeJob(w, job);
    }
    w.endArray();
    w.key("host_metrics");
    if (host_metrics_)
        writeMetricsSnapshot(w, *host_metrics_);
    else
        w.null();
    w.endObject();
    return w.str();
}

void
writeTextFile(const std::string &path, std::string_view content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "cannot open output file for writing")
            .withContext("path", path);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "failed writing output file")
            .withContext("path", path);
    }
}

}  // namespace stackscope::obs
