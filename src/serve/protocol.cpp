#include "serve/protocol.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sim/multicore.hpp"
#include "sim/presets.hpp"
#include "sim/simulation.hpp"
#include "stacks/speculation.hpp"
#include "trace/synthetic_generator.hpp"
#include "trace/workload_library.hpp"
#include "validate/invariants.hpp"

namespace stackscope::serve {

namespace {

[[noreturn]] void
usageError(std::string message, const std::string &where)
{
    throw StackscopeError(ErrorCategory::kUsage, std::move(message))
        .withContext("field", where);
}

/** Reject unknown members: the spec feeds the cache key, so a silently
 *  dropped key would alias two different requests onto one entry. */
void
checkKeys(const obs::JsonValue &object,
          std::initializer_list<std::string_view> allowed,
          const std::string &where)
{
    for (const auto &[key, value] : object.object) {
        bool known = false;
        for (std::string_view a : allowed)
            known = known || key == a;
        if (!known)
            usageError("unknown key '" + key + "'", where);
    }
}

std::string
requireString(const obs::JsonValue &object, const std::string &key)
{
    const obs::JsonValue *v = object.find(key);
    if (v == nullptr || !v->isString())
        usageError("'" + key + "' must be a string", key);
    return v->string;
}

/** Integral, non-negative, exactly representable in a double. */
std::uint64_t
uintField(const obs::JsonValue &object, const std::string &key,
          std::uint64_t fallback)
{
    const obs::JsonValue *v = object.find(key);
    if (v == nullptr)
        return fallback;
    if (!v->isNumber() || v->number < 0 ||
        v->number != std::floor(v->number) || v->number > 9.007199254740992e15)
        usageError("'" + key + "' must be a non-negative integer", key);
    return static_cast<std::uint64_t>(v->number);
}

double
numberField(const obs::JsonValue &object, const std::string &key,
            double fallback)
{
    const obs::JsonValue *v = object.find(key);
    if (v == nullptr)
        return fallback;
    if (!v->isNumber() || v->number < 0)
        usageError("'" + key + "' must be a non-negative number", key);
    return v->number;
}

stacks::SpeculationMode
parseSpecMode(const std::string &text)
{
    if (text == "oracle")
        return stacks::SpeculationMode::kOracle;
    if (text == "simple")
        return stacks::SpeculationMode::kSimple;
    if (text == "spec-counters")
        return stacks::SpeculationMode::kSpecCounters;
    usageError("unknown spec_mode '" + text +
                   "' (oracle|simple|spec-counters)",
               "spec_mode");
}

}  // namespace

Request
parseRequest(std::string_view line)
{
    const obs::JsonValue frame = obs::parseJson(line);
    if (!frame.isObject())
        usageError("request frame must be a JSON object", "frame");
    checkKeys(frame, {"type", "id", "spec"}, "frame");

    Request req;
    if (const obs::JsonValue *id = frame.find("id")) {
        if (!id->isString())
            usageError("'id' must be a string", "id");
        req.id = id->string;
    }
    const std::string type = requireString(frame, "type");
    if (type == "ping") {
        req.kind = Request::Kind::kPing;
    } else if (type == "statusz") {
        req.kind = Request::Kind::kStatusz;
    } else if (type == "analyze") {
        req.kind = Request::Kind::kAnalyze;
        const obs::JsonValue *spec = frame.find("spec");
        if (spec == nullptr || !spec->isObject())
            usageError("analyze requires a 'spec' object", "spec");
        req.spec = *spec;
    } else {
        usageError("unknown request type '" + type +
                       "' (ping|statusz|analyze)",
                   "type");
    }
    return req;
}

runner::JobSpec
parseSpec(const obs::JsonValue &spec)
{
    checkKeys(spec, {"workload", "machine", "cores", "instrs", "warmup",
                     "options"},
              "spec");

    runner::JobSpec job;
    job.workload = requireString(spec, "workload");
    job.machine = requireString(spec, "machine");
    try {
        trace::findWorkload(job.workload);
        sim::machineByName(job.machine);
    } catch (const std::out_of_range &e) {
        throw StackscopeError(ErrorCategory::kUsage, e.what());
    }

    const std::uint64_t cores = uintField(spec, "cores", 1);
    if (cores < 1 || cores > 1024)
        usageError("'cores' must be in [1, 1024]", "cores");
    job.cores = static_cast<unsigned>(cores);

    const std::uint64_t instrs = uintField(spec, "instrs", kDefaultInstrs);
    if (instrs < 1)
        usageError("'instrs' must be at least 1", "instrs");
    // CLI convention: warmup defaults to half the measured count, and
    // JobSpec::instrs is the total the generator runs (measured+warmup),
    // so wire specs hash identically to equivalent CLI invocations.
    const std::uint64_t warmup = uintField(spec, "warmup", instrs / 2);
    job.instrs = instrs + warmup;

    sim::SimOptions &so = job.options;
    so.warmup_instrs = warmup;
    const obs::JsonValue *options = spec.find("options");
    if (options != nullptr) {
        if (!options->isObject())
            usageError("'options' must be an object", "options");
        checkKeys(*options,
                  {"spec_mode", "engine", "validate", "max_cycles",
                   "watchdog_cycles", "deadline_cycles",
                   "job_timeout_seconds", "interval_cycles"},
                  "options");
        if (const obs::JsonValue *v = options->find("spec_mode")) {
            if (!v->isString())
                usageError("'spec_mode' must be a string", "spec_mode");
            so.spec_mode = parseSpecMode(v->string);
        }
        if (const obs::JsonValue *v = options->find("engine")) {
            if (!v->isString() ||
                (v->string != "batched" && v->string != "reference"))
                usageError("'engine' must be \"batched\" or \"reference\"",
                           "engine");
            so.reference_engine = v->string == "reference";
        }
        if (const obs::JsonValue *v = options->find("validate")) {
            const auto policy =
                v->isString() ? validate::parsePolicy(v->string)
                              : std::nullopt;
            if (!policy)
                usageError("'validate' must be off|warn|strict", "validate");
            so.validation = *policy;
        }
        so.max_cycles = uintField(*options, "max_cycles", 0);
        so.watchdog_cycles = uintField(*options, "watchdog_cycles", 0);
        so.deadline_cycles = uintField(*options, "deadline_cycles", 0);
        so.job_timeout_seconds =
            numberField(*options, "job_timeout_seconds", 0.0);
        so.obs.interval_cycles = uintField(*options, "interval_cycles", 0);
    }
    sim::checkObsOptions(so);
    return job;
}

std::string
simulateSpec(const runner::JobSpec &spec, RequestTrace *trace)
{
    const auto sim_start = RequestTrace::Clock::now();
    const sim::MachineConfig machine = sim::machineByName(spec.machine);
    trace::SyntheticParams params =
        trace::findWorkload(spec.workload).params;
    params.num_instrs = spec.instrs;
    const trace::SyntheticGenerator gen(params);

    obs::ReportBuilder report("run");
    if (spec.cores > 1) {
        const sim::MulticoreResult r =
            sim::simulateMulticore(machine, gen, spec.cores, spec.options);
        report.add(spec.workload + "/" + machine.name + "/x" +
                       std::to_string(spec.cores),
                   spec.options, r);
    } else {
        const sim::SimResult r = sim::simulate(machine, gen, spec.options);
        report.add(spec.workload + "/" + machine.name, spec.options, r);
    }
    const auto sim_end = RequestTrace::Clock::now();
    std::string bytes = report.json();
    if (trace != nullptr) {
        trace->addJobSpan(Span::kSimulate, sim_start, sim_end);
        trace->addJobSpan(Span::kSerialize, sim_end,
                          RequestTrace::Clock::now());
    }
    return bytes;
}

std::string
helloFrame()
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("hello")
        .key("schema").value(kProtocolName)
        .key("version").value(kProtocolVersion)
        .endObject();
    return w.str() + "\n";
}

std::string
pongFrame(const std::string &id)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("pong")
        .key("id").value(id)
        .endObject();
    return w.str() + "\n";
}

std::string
progressFrame(const std::string &id, const std::string &request,
              const std::string &key, std::uint64_t elapsed_ms)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("progress")
        .key("id").value(id)
        .key("request").value(request)
        .key("key").value(key)
        .key("elapsed_ms").value(elapsed_ms)
        .endObject();
    return w.str() + "\n";
}

std::string
errorFrame(const std::string &id, ErrorCategory category,
           const std::string &message)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("error")
        .key("id").value(id)
        .key("category").value(toString(category))
        .key("message").value(message)
        .endObject();
    return w.str() + "\n";
}

std::string
resultFrame(const std::string &id, const std::string &request,
            const std::string &key, CacheOutcome outcome,
            const std::string &report)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("result")
        .key("id").value(id)
        .key("request").value(request)
        .key("key").value(key)
        .key("cache").value(toString(outcome))
        .key("report").raw(report)
        .endObject();
    return w.str() + "\n";
}

std::string
statusFrame(const std::string &id, const ResultCache::Stats &cache,
            const SloTracker::Summary &slo,
            const obs::MetricsSnapshot &snap)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("type").value("status")
        .key("id").value(id)
        .key("cache").beginObject()
        .key("hits").value(cache.hits)
        .key("misses").value(cache.misses)
        .key("coalesced").value(cache.coalesced)
        .key("evictions").value(cache.evictions)
        .key("failures").value(cache.failures)
        .key("entries").value(static_cast<std::uint64_t>(cache.entries))
        .key("pending").value(static_cast<std::uint64_t>(cache.pending))
        .key("waiting").value(static_cast<std::uint64_t>(cache.waiting))
        .key("bytes").value(static_cast<std::uint64_t>(cache.bytes))
        .key("capacity_bytes")
        .value(static_cast<std::uint64_t>(cache.capacity_bytes))
        .endObject()
        .key("slo").beginObject()
        .key("window_s").value(slo.window_s)
        .key("objective_ms").value(slo.objective_ms)
        .key("target").value(slo.target)
        .key("requests").value(slo.requests)
        .key("errors").value(slo.errors)
        .key("error_rate").value(slo.error_rate)
        .key("within_objective").value(slo.within_objective)
        .key("attainment").value(slo.attainment)
        .key("p50_ms").value(slo.p50_ms)
        .key("p99_ms").value(slo.p99_ms)
        .key("ok").value(slo.ok)
        .endObject()
        .key("host_metrics");
    obs::writeMetricsSnapshot(w, snap);
    w.endObject();
    return w.str() + "\n";
}

}  // namespace stackscope::serve
