/**
 * @file
 * Wire protocol of the `stackscope serve` daemon.
 *
 * The normative contract is docs/serving.md; this header implements it
 * and the protocol tests in tests/serve/protocol_test.cpp assert the
 * exact frame bytes documented there. The protocol is newline-delimited
 * JSON (one frame per line, no embedded newlines) over a Unix-domain
 * stream socket, with a minimal HTTP/1.1 mapping for loopback TCP.
 *
 * Request parsing is *strict*: unknown keys anywhere in a job spec are
 * usage errors. The spec schema feeds the canonical job-spec hash
 * (runner::specHash) that addresses the result cache, so a silently
 * ignored key would alias two different intents onto one cache entry
 * and serve the wrong report.
 */

#ifndef STACKSCOPE_SERVE_PROTOCOL_HPP
#define STACKSCOPE_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "runner/job_spec.hpp"
#include "serve/request_trace.hpp"
#include "serve/result_cache.hpp"
#include "serve/slo.hpp"

namespace stackscope::serve {

/** Protocol identity carried in the hello frame (docs/serving.md). */
inline constexpr std::string_view kProtocolName = "stackscope-serve";
inline constexpr int kProtocolVersion = 1;

/** Default measured-instruction count when a spec omits "instrs". */
inline constexpr std::uint64_t kDefaultInstrs = 250'000;

/** One parsed client request frame. */
struct Request
{
    enum class Kind
    {
        kPing,
        kStatusz,
        kAnalyze,
    };

    Kind kind = Kind::kPing;
    /** Client-chosen correlation id, echoed on every response frame. */
    std::string id;
    /** The raw "spec" object (analyze only); parsed by parseSpec(). */
    obs::JsonValue spec;
};

/**
 * Parse one request line. Throws StackscopeError(kUsage) on malformed
 * JSON, an unknown "type", a non-string "id", or a missing "spec" on
 * analyze. The spec object itself is validated later by parseSpec() so
 * the caller already knows the request id when that fails.
 */
Request parseRequest(std::string_view line);

/**
 * Validate a wire job spec against the documented schema and resolve it
 * to the canonical runner::JobSpec. Strict: unknown keys, unknown
 * workload/machine names, non-integral or out-of-range numbers all
 * throw StackscopeError(kUsage). Defaults mirror the CLI `run`
 * command: instrs 250000, warmup instrs/2, oracle speculation, batched
 * engine, validation off.
 *
 * Note JobSpec::instrs is the *total* instruction count
 * (measured + warmup), matching the CLI/sweep convention, so wire specs
 * hash identically to the equivalent CLI invocation.
 */
runner::JobSpec parseSpec(const obs::JsonValue &spec);

/**
 * Run @p spec synchronously and serialize the v2 report with command
 * "run", label "workload/MACHINE" (cores == 1) or "workload/MACHINE/xN",
 * and host_metrics null — byte-identical to
 * `stackscope run ... --no-host-metrics --report-out`.
 *
 * When @p trace is non-null the simulate and serialize job spans are
 * recorded into it (the caller — the pool task — records queue_wait).
 * Tracing never changes the produced bytes.
 */
std::string simulateSpec(const runner::JobSpec &spec,
                         RequestTrace *trace = nullptr);

// Frame builders. Every frame is a single line of compact JSON
// terminated by '\n' (included in the returned string).
//
// The "request" member on progress/result frames is the server-minted
// request id (distinct from the client's correlation "id"); it keys
// `GET /tracez` and attributes interleaved heartbeats. Conforming
// clients ignore unknown members, so adding it stays protocol
// version 1 (docs/formats.md "Version-bump rule").

std::string helloFrame();
std::string pongFrame(const std::string &id);
std::string progressFrame(const std::string &id, const std::string &request,
                          const std::string &key, std::uint64_t elapsed_ms);
std::string errorFrame(const std::string &id, ErrorCategory category,
                       const std::string &message);
/** "report" is the LAST member so clients can slice the report bytes
 *  verbatim out of the frame (docs/serving.md "Extracting the report"). */
std::string resultFrame(const std::string &id, const std::string &request,
                        const std::string &key, CacheOutcome outcome,
                        const std::string &report);
std::string statusFrame(const std::string &id,
                        const ResultCache::Stats &cache,
                        const SloTracker::Summary &slo,
                        const obs::MetricsSnapshot &snap);

}  // namespace stackscope::serve

#endif  // STACKSCOPE_SERVE_PROTOCOL_HPP
