#include "serve/result_cache.hpp"

#include <utility>

#include "common/error.hpp"

namespace stackscope::serve {

ResultCache::ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes)
{
    stats_.capacity_bytes = max_bytes;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    m_hits_ = reg.counter("serve.cache_hits_total");
    m_misses_ = reg.counter("serve.cache_misses_total");
    m_coalesced_ = reg.counter("serve.cache_coalesced_total");
    m_evictions_ = reg.counter("serve.cache_evictions_total");
    m_failures_ = reg.counter("serve.cache_failures_total");
    m_bytes_ = reg.gauge("serve.cache_bytes");
    m_entries_ = reg.gauge("serve.cache_entries");
    m_waiting_ = reg.gauge("serve.singleflight_waiters");
}

std::size_t
ResultCache::chargeFor(const std::string &key, const std::string &bytes) const
{
    // Key stored twice (map + LRU list) plus per-entry bookkeeping; the
    // budget is approximate but must not drift below the payload size.
    return bytes.size() + 2 * key.size() + 128;
}

ResultCache::Handle
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        Entry entry;
        entry.future = entry.promise.get_future().share();
        Handle handle{entry.future, CacheOutcome::kMiss};
        entries_.emplace(key, std::move(entry));
        ++stats_.misses;
        ++stats_.pending;
        m_misses_.inc();
        return handle;
    }
    Entry &entry = it->second;
    if (entry.pending) {
        ++stats_.coalesced;
        ++entry.waiters;
        ++stats_.waiting;
        m_coalesced_.inc();
        m_waiting_.set(static_cast<double>(stats_.waiting));
        return Handle{entry.future, CacheOutcome::kCoalesced};
    }
    // Touch: move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
    ++stats_.hits;
    m_hits_.inc();
    return Handle{entry.future, CacheOutcome::kHit};
}

void
ResultCache::evictLockedOverBudget()
{
    while (stats_.bytes > max_bytes_ && !lru_.empty()) {
        const std::string victim = lru_.back();
        lru_.pop_back();
        auto it = entries_.find(victim);
        if (it != entries_.end()) {
            stats_.bytes -= it->second.charge;
            entries_.erase(it);
            --stats_.entries;
            ++stats_.evictions;
            m_evictions_.inc();
        }
    }
    m_bytes_.set(static_cast<double>(stats_.bytes));
    m_entries_.set(static_cast<double>(stats_.entries));
}

void
ResultCache::complete(const std::string &key, std::string bytes)
{
    std::promise<CachedBytes> promise;
    CachedBytes shared =
        std::make_shared<const std::string>(std::move(bytes));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.pending) {
            throw StackscopeError(ErrorCategory::kInternal,
                                  "complete() without a pending cache entry")
                .withContext("key", key);
        }
        Entry &entry = it->second;
        promise = std::move(entry.promise);
        entry.pending = false;
        // Waiters wake as soon as the promise resolves below.
        stats_.waiting -= entry.waiters;
        entry.waiters = 0;
        m_waiting_.set(static_cast<double>(stats_.waiting));
        entry.bytes = shared;
        entry.charge = chargeFor(key, *shared);
        lru_.push_front(key);
        entry.lru_it = lru_.begin();
        --stats_.pending;
        ++stats_.entries;
        stats_.bytes += entry.charge;
        evictLockedOverBudget();
    }
    // Publish outside the lock: set_value wakes every waiter, and none
    // of them should contend with the cache mutex to read the bytes.
    promise.set_value(std::move(shared));
}

void
ResultCache::fail(const std::string &key, std::exception_ptr error)
{
    std::promise<CachedBytes> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.pending) {
            throw StackscopeError(ErrorCategory::kInternal,
                                  "fail() without a pending cache entry")
                .withContext("key", key);
        }
        promise = std::move(it->second.promise);
        stats_.waiting -= it->second.waiters;
        m_waiting_.set(static_cast<double>(stats_.waiting));
        entries_.erase(it);
        --stats_.pending;
        ++stats_.failures;
        m_failures_.inc();
    }
    promise.set_exception(std::move(error));
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace stackscope::serve
