#include "serve/request_trace.hpp"

#include <algorithm>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace_events.hpp"

namespace stackscope::serve {

namespace {

std::int64_t
toUs(RequestTrace::Clock::duration d)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

}  // namespace

std::string_view
toString(Span span)
{
    switch (span) {
      case Span::kAccept: return "accept";
      case Span::kParse: return "parse";
      case Span::kCacheLookup: return "cache_lookup";
      case Span::kQueueWait: return "queue_wait";
      case Span::kSimulate: return "simulate";
      case Span::kSerialize: return "serialize";
      case Span::kSingleflightWait: return "singleflight_wait";
      case Span::kWrite: return "write";
    }
    return "unknown";
}

std::int64_t
TraceSummary::spanUs(Span span) const
{
    std::int64_t total = 0;
    for (const SpanValue &s : spans)
        if (s.span == span)
            total += s.dur_us;
    return total;
}

bool
TraceSummary::hasSpan(Span span) const
{
    for (const SpanValue &s : spans)
        if (s.span == span)
            return true;
    return false;
}

RequestTrace::RequestTrace(std::string id, std::string endpoint,
                           Clock::time_point accept_time)
    : id_(std::move(id)),
      endpoint_(std::move(endpoint)),
      origin_(accept_time),
      open_start_(accept_time)
{
}

void
RequestTrace::begin(Span span)
{
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.push_back({open_span_, open_start_, now});
    open_span_ = span;
    open_start_ = now;
}

void
RequestTrace::addJobSpan(Span span, Clock::time_point start,
                         Clock::time_point end)
{
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back({span, start, end});
}

void
RequestTrace::setClientId(std::string client_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    client_id_ = std::move(client_id);
}

void
RequestTrace::setEndpoint(std::string endpoint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    endpoint_ = std::move(endpoint);
}

void
RequestTrace::setOutcome(std::string outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    outcome_ = std::move(outcome);
}

void
RequestTrace::setStatus(std::string status)
{
    std::lock_guard<std::mutex> lock(mutex_);
    status_ = std::move(status);
}

std::shared_ptr<const TraceSummary>
RequestTrace::finish()
{
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.push_back({open_span_, open_start_, now});

    auto out = std::make_shared<TraceSummary>();
    out->id = id_;
    out->client_id = client_id_;
    out->endpoint = endpoint_;
    out->outcome = outcome_;
    out->status = status_;
    out->wall_us = toUs(now - origin_);

    // Durations are differences of origin-relative truncated
    // timestamps, so consecutive phases telescope: their sum equals
    // wall_us *exactly*, with no per-phase rounding residue.
    const auto rel = [this](Clock::time_point t) {
        return toUs(t - origin_);
    };

    // Job spans are carved out of the wait phase they executed inside;
    // everything they don't cover is genuine singleflight_wait.
    std::int64_t job_total_us = 0;
    for (const Phase &j : jobs_)
        job_total_us += rel(j.end) - rel(j.start);

    for (const Phase &p : phases_) {
        const std::int64_t dur = rel(p.end) - rel(p.start);
        if (p.span != Span::kSingleflightWait) {
            if (dur > 0 || p.span != Span::kAccept)
                out->spans.push_back({p.span, rel(p.start), dur});
            continue;
        }
        // The wait phase: emit the worker's spans (leader) then the
        // remainder. A coalesced waiter has no job spans, so the whole
        // phase is singleflight_wait — exactly the right attribution.
        for (const Phase &j : jobs_) {
            out->spans.push_back(
                {j.span, rel(j.start), rel(j.end) - rel(j.start)});
        }
        const std::int64_t remainder = dur - job_total_us;
        out->spans.push_back(
            {Span::kSingleflightWait, rel(p.start),
             std::max<std::int64_t>(remainder, 0)});
    }

    // Conservation: phases partition wall time by construction, so the
    // only residue is a job overshoot past its wait phase (cross-thread
    // clock jitter) or the dropped zero-length accept phase.
    std::int64_t sum = 0;
    for (const TraceSummary::SpanValue &s : out->spans)
        sum += s.dur_us;
    out->conservation_error_us =
        sum > out->wall_us ? sum - out->wall_us : out->wall_us - sum;
    out->conservation_ok = out->conservation_error_us <= kToleranceUs;

    // Canonical stack order for the JSON rendering (timeline order and
    // stack order differ only in where singleflight_wait sits).
    std::stable_sort(out->spans.begin(), out->spans.end(),
                     [](const TraceSummary::SpanValue &a,
                        const TraceSummary::SpanValue &b) {
                         return static_cast<int>(a.span) <
                                static_cast<int>(b.span);
                     });
    return out;
}

TraceStore::TraceStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
TraceStore::add(std::shared_ptr<const TraceSummary> trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(trace));
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

std::shared_ptr<const TraceSummary>
TraceStore::find(std::string_view id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it)
        if ((*it)->id == id)
            return *it;
    return nullptr;
}

std::vector<std::shared_ptr<const TraceSummary>>
TraceStore::recent(std::size_t limit) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::shared_ptr<const TraceSummary>> out;
    for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < limit;
         ++it)
        out.push_back(*it);
    return out;
}

std::string
traceJson(const TraceSummary &trace)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("schema").value("stackscope-request-trace")
        .key("version").value(1)
        .key("request").value(trace.id)
        .key("id").value(trace.client_id)
        .key("endpoint").value(trace.endpoint)
        .key("outcome").value(trace.outcome)
        .key("status").value(trace.status)
        .key("wall_us").value(trace.wall_us)
        .key("spans").beginArray();
    for (const TraceSummary::SpanValue &s : trace.spans) {
        w.beginObject()
            .key("span").value(toString(s.span))
            .key("start_us").value(s.start_us)
            .key("dur_us").value(s.dur_us)
            .endObject();
    }
    w.endArray()
        .key("conservation_ok").value(trace.conservation_ok)
        .key("conservation_error_us").value(trace.conservation_error_us)
        .endObject();
    return w.str();
}

std::string
traceChromeJson(const TraceSummary &trace)
{
    // Lane 0: the connection thread's phases (plus the singleflight
    // remainder, which never overlaps the next phase). Lane 1: the pool
    // worker's job spans, carved out of the wait window.
    std::vector<obs::HostSpan> spans;
    spans.reserve(trace.spans.size());
    for (const TraceSummary::SpanValue &s : trace.spans) {
        const bool job = s.span == Span::kQueueWait ||
                         s.span == Span::kSimulate ||
                         s.span == Span::kSerialize;
        spans.push_back({std::string(toString(s.span)),
                         job ? "job" : "request", s.start_us, s.dur_us,
                         job ? 1 : 0});
    }
    return obs::hostSpansChromeJson("request " + trace.id,
                                    {"connection", "job"}, spans);
}

std::string
traceIndexJson(const std::vector<std::shared_ptr<const TraceSummary>> &traces)
{
    obs::JsonWriter w;
    w.beginObject().key("traces").beginArray();
    for (const auto &t : traces) {
        w.beginObject()
            .key("request").value(t->id)
            .key("endpoint").value(t->endpoint)
            .key("outcome").value(t->outcome)
            .key("status").value(t->status)
            .key("wall_us").value(t->wall_us)
            .endObject();
    }
    w.endArray().endObject();
    return w.str();
}

}  // namespace stackscope::serve
