/**
 * @file
 * The resident `stackscope serve` daemon: listener, per-connection
 * state machines, request router, result cache and graceful drain.
 *
 * Transport model (docs/serving.md is the normative contract):
 *
 *  - A Unix-domain stream socket speaks the newline-delimited JSON
 *    protocol (serve/protocol.hpp): the server sends a hello frame,
 *    then answers each request line with pong/status/error frames or,
 *    for analyze, a stream of progress frames followed by one result
 *    frame.
 *  - An optional loopback TCP port speaks minimal HTTP/1.1
 *    (GET /statusz, GET /healthz, POST /analyze), one request per
 *    connection.
 *
 * Concurrency model: the accept loop is a poll() over the listeners
 * plus a self-pipe used by requestStop() (async-signal-safe, so the
 * CLI's SIGTERM handler may call it directly). Each connection runs on
 * its own detached thread, tracked only by an active count + condition
 * variable; simulations themselves run on the shared work-stealing
 * ThreadPool, so a slow client never occupies a simulation slot.
 * Analyze requests go through the single-flight ResultCache: the
 * leader submits one pool task, coalesced followers just wait on the
 * shared future, and every waiter emits its own heartbeat progress
 * frames while blocked.
 *
 * Shutdown: requestStop() stops the accept loop, half-closes every
 * open connection (shutdown(SHUT_RD): idle clients see EOF, in-flight
 * responses still flush), then waits up to drain_timeout for active
 * connections to finish. run() returns false on a drain timeout — the
 * CLI maps that to exit code 8 (docs/exit_codes.md).
 */

#ifndef STACKSCOPE_SERVE_SERVER_HPP
#define STACKSCOPE_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runner/job_spec.hpp"
#include "runner/thread_pool.hpp"
#include "serve/request_trace.hpp"
#include "serve/result_cache.hpp"
#include "serve/slo.hpp"

namespace stackscope::serve {

/**
 * Listener setup failure (socket path already served, TCP port in
 * use, ...). Distinct from StackscopeError because the CLI maps it to
 * its own exit code (7, docs/exit_codes.md) so supervisors can tell
 * "another instance is running" from ordinary config errors.
 */
class BindError : public StackscopeError
{
  public:
    explicit BindError(std::string message)
        : StackscopeError(ErrorCategory::kConfig, std::move(message))
    {
    }
};

struct ServeOptions
{
    /** Unix-domain socket path; empty disables the UDS listener. */
    std::string socket_path;
    /** Loopback HTTP port; -1 disables TCP, 0 binds an ephemeral port. */
    int tcp_port = -1;
    /** Simulation worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Result-cache byte budget. */
    std::size_t cache_bytes = 64u << 20;
    /** Progress-frame period while an analyze request is in flight. */
    std::chrono::milliseconds heartbeat{500};
    /** Grace period for in-flight connections after requestStop(). */
    std::chrono::milliseconds drain_timeout{30'000};
    /** Warn-log the full span breakdown for requests slower than this
     *  (wall milliseconds); 0 disables. */
    double slow_ms = 0.0;
    /** Rolling-window latency objective (ms) surfaced in /statusz. */
    double slo_ms = 50.0;
    /** Finished request traces kept for `GET /tracez`. */
    std::size_t trace_capacity = 256;
};

class Server
{
  public:
    /** Binds every configured listener; throws BindError on conflicts,
     *  StackscopeError(kConfig) when no listener is configured. */
    explicit Server(const ServeOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound TCP port (useful with tcp_port = 0), or -1. */
    int tcpPort() const { return tcp_port_; }

    /**
     * Serve until requestStop(); returns true when every connection
     * drained within the timeout, false otherwise (exit code 8).
     */
    bool run();

    /**
     * Begin shutdown. Async-signal-safe (one write() to a pipe); safe
     * to call from any thread or from a signal handler, repeatedly.
     */
    void requestStop();

    const ResultCache &cache() const { return cache_; }
    const TraceStore &traces() const { return traces_; }

  private:
    void acceptLoop();
    void connectionMain(int fd, bool http);
    void ndjsonConnection(int fd);
    void httpConnection(int fd);
    /** Handle one analyze request; writes progress + result/error. */
    void analyze(int fd, const std::string &id,
                 const runner::JobSpec &spec,
                 const std::shared_ptr<RequestTrace> &trace);
    /** Cache lookup + (for the leader) pool scheduling, with the span
     *  and outcome bookkeeping shared by the NDJSON and HTTP paths. */
    ResultCache::Handle scheduleAnalyze(
        const std::string &key, const runner::JobSpec &spec,
        const std::shared_ptr<RequestTrace> &trace);
    bool sendAll(int fd, std::string_view bytes);

    /** Server-minted request id ("r-<seq>"), unique per process. */
    std::string mintRequestId();
    /** Start-of-request bookkeeping (in-flight gauge). */
    std::shared_ptr<RequestTrace> openTrace(
        const std::string &endpoint,
        RequestTrace::Clock::time_point accept_time);
    /** Freeze @p trace, store it, log the access line, feed the SLO
     *  tracker and run the conservation check. */
    void finishRequest(RequestTrace &trace);

    ServeOptions options_;
    int uds_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int wake_rd_ = -1;
    int wake_wr_ = -1;
    std::atomic<bool> stopping_{false};

    ResultCache cache_;
    runner::ThreadPool pool_;
    TraceStore traces_;
    SloTracker slo_;
    std::atomic<std::uint64_t> request_seq_{0};

    std::mutex conn_mutex_;
    std::condition_variable conn_cv_;
    std::unordered_set<int> conn_fds_;
    std::size_t active_conns_ = 0;

    obs::Counter m_connections_;
    obs::Counter m_requests_;
    obs::Counter m_errors_;
    obs::Counter m_http_requests_;
    obs::Counter m_slow_requests_;
    obs::Counter m_traced_requests_;
    obs::Counter m_conservation_failures_;
    obs::Gauge m_inflight_;
    obs::Gauge m_queue_depth_;
    obs::Histogram m_analyze_seconds_;
    obs::Histogram m_status_seconds_;
};

}  // namespace stackscope::serve

#endif  // STACKSCOPE_SERVE_SERVER_HPP
