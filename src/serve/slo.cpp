#include "serve/slo.hpp"

#include <algorithm>
#include <vector>

#include "common/stats_math.hpp"

namespace stackscope::serve {

SloTracker::SloTracker(Options options) : options_(options) {}

void
SloTracker::pruneLocked(Clock::time_point at) const
{
    const Clock::time_point cutoff = at - options_.window;
    while (!samples_.empty() && samples_.front().at < cutoff)
        samples_.pop_front();
    while (samples_.size() > options_.max_samples)
        samples_.pop_front();
}

void
SloTracker::record(double latency_ms, bool error, Clock::time_point at)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back({at, latency_ms, error});
    pruneLocked(at);
}

SloTracker::Summary
SloTracker::summary(Clock::time_point at) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    pruneLocked(at);

    Summary out;
    out.window_s = std::chrono::duration<double>(options_.window).count();
    out.objective_ms = options_.objective_ms;
    out.target = options_.target;
    out.requests = samples_.size();
    if (samples_.empty())
        return out;

    std::vector<double> latencies;
    latencies.reserve(samples_.size());
    for (const Sample &s : samples_) {
        latencies.push_back(s.latency_ms);
        if (s.error)
            ++out.errors;
        if (!s.error && s.latency_ms <= options_.objective_ms)
            ++out.within_objective;
    }
    std::sort(latencies.begin(), latencies.end());
    out.p50_ms = percentileSorted(latencies, 0.50);
    out.p99_ms = percentileSorted(latencies, 0.99);
    out.error_rate =
        static_cast<double>(out.errors) / static_cast<double>(out.requests);
    out.attainment = static_cast<double>(out.within_objective) /
                     static_cast<double>(out.requests);
    out.ok = out.attainment >= out.target &&
             out.error_rate <= 1.0 - out.target;
    return out;
}

}  // namespace stackscope::serve
