#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "obs/exposition.hpp"
#include "runner/job_spec.hpp"
#include "serve/protocol.hpp"

namespace stackscope::serve {

namespace {

/** Longest accepted NDJSON request line / HTTP request (head + body). */
constexpr std::size_t kMaxRequestBytes = 1u << 20;

constexpr double kLatencyBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                     1e-2, 1e-1, 1.0,  10.0, 100.0};

std::uint64_t
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

int
bindUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw BindError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    // A leftover socket file from a crashed daemon must not block
    // restart, but an actively served path must: probe with connect().
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        const int rc = ::connect(
            probe, reinterpret_cast<const sockaddr *>(&addr), sizeof(addr));
        const int err = errno;
        ::close(probe);
        if (rc == 0)
            throw BindError("socket path already served by another daemon: " +
                            path);
        if (err == ECONNREFUSED)
            ::unlink(path.c_str());  // stale socket file
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw BindError(std::string("socket(): ") + std::strerror(errno));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        throw BindError("cannot listen on " + path + ": " + detail);
    }
    return fd;
}

int
bindTcpSocket(int port, int *bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw BindError(std::string("socket(): ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string detail = std::strerror(errno);
        ::close(fd);
        throw BindError("cannot listen on 127.0.0.1:" +
                        std::to_string(port) + ": " + detail);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) == 0)
        *bound_port = ntohs(bound.sin_port);
    return fd;
}

std::string
httpResponse(int status, const std::string &reason, const std::string &body,
             const std::string &content_type = "application/json")
{
    return "HTTP/1.1 " + std::to_string(status) + " " + reason +
           "\r\nContent-Type: " + content_type +
           "\r\nContent-Length: " + std::to_string(body.size()) +
           "\r\nConnection: close\r\n\r\n" + body;
}

/** Prometheus text format 0.0.4 media type (the /metricsz body). */
constexpr const char *kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/** Value of query parameter @p name in @p query ("a=1&b=2"), or "". No
 *  percent-decoding: request ids and format names never need it. */
std::string
queryParam(const std::string &query, std::string_view name)
{
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string_view pair =
            std::string_view(query).substr(pos, amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string_view::npos && pair.substr(0, eq) == name)
            return std::string(pair.substr(eq + 1));
        pos = amp + 1;
    }
    return "";
}

SloTracker::Options
sloOptions(const ServeOptions &options)
{
    SloTracker::Options slo;
    slo.objective_ms = options.slo_ms;
    return slo;
}

int
httpStatusFor(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::kUsage:
      case ErrorCategory::kConfig:
        return 400;
      case ErrorCategory::kValidation:
      case ErrorCategory::kWatchdog:
        return 422;
      case ErrorCategory::kInternal:
        return 500;
    }
    return 500;
}

}  // namespace

Server::Server(const ServeOptions &options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(options.threads),
      traces_(options.trace_capacity),
      slo_(sloOptions(options))
{
    if (options_.socket_path.empty() && options_.tcp_port < 0) {
        throw StackscopeError(ErrorCategory::kConfig,
                              "serve needs --socket and/or --tcp");
    }

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    m_connections_ = reg.counter("serve.connections_total");
    m_requests_ = reg.counter("serve.requests_total");
    m_errors_ = reg.counter("serve.errors_total");
    m_http_requests_ = reg.counter("serve.http_requests_total");
    m_slow_requests_ = reg.counter("serve.slow_requests_total");
    m_traced_requests_ = reg.counter("serve.traced_requests_total");
    m_conservation_failures_ =
        reg.counter("serve.trace_conservation_failures_total");
    m_inflight_ = reg.gauge("serve.inflight_requests");
    m_queue_depth_ = reg.gauge("serve.queue_depth");
    const std::vector<double> bounds(std::begin(kLatencyBounds),
                                     std::end(kLatencyBounds));
    m_analyze_seconds_ = reg.histogram("serve.analyze_seconds", bounds);
    m_status_seconds_ = reg.histogram("serve.status_seconds", bounds);

    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        throw StackscopeError(ErrorCategory::kInternal,
                              std::string("pipe(): ") +
                                  std::strerror(errno));
    }
    wake_rd_ = pipefd[0];
    wake_wr_ = pipefd[1];
    // Non-blocking read side: the accept loop drains it without risking
    // a block when a second requestStop() never arrives.
    ::fcntl(wake_rd_, F_SETFL, O_NONBLOCK);

    if (!options_.socket_path.empty())
        uds_fd_ = bindUnixSocket(options_.socket_path);
    if (options_.tcp_port >= 0) {
        try {
            tcp_fd_ = bindTcpSocket(options_.tcp_port, &tcp_port_);
        } catch (...) {
            if (uds_fd_ >= 0) {
                ::close(uds_fd_);
                ::unlink(options_.socket_path.c_str());
            }
            ::close(wake_rd_);
            ::close(wake_wr_);
            throw;
        }
    }
}

Server::~Server()
{
    requestStop();
    // Hard stop: force every remaining connection off its socket, then
    // wait (unbounded — they exit within one heartbeat) so no detached
    // thread can outlive this object.
    {
        std::unique_lock<std::mutex> lock(conn_mutex_);
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RDWR);
        conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
    }
    if (uds_fd_ >= 0) {
        ::close(uds_fd_);
        ::unlink(options_.socket_path.c_str());
    }
    if (tcp_fd_ >= 0)
        ::close(tcp_fd_);
    ::close(wake_rd_);
    ::close(wake_wr_);
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    const char byte = 'x';
    // Async-signal-safe wakeup; the pipe buffer absorbs repeats.
    [[maybe_unused]] ssize_t rc = ::write(wake_wr_, &byte, 1);
}

bool
Server::run()
{
    log::info("serve", "listening",
              {{"socket", options_.socket_path},
               {"tcp", tcp_port_},
               {"threads", pool_.threads()},
               {"cache_bytes",
                static_cast<std::uint64_t>(options_.cache_bytes)}});
    acceptLoop();

    // Stop accepting before draining: close the listeners so late
    // clients fail fast instead of queueing behind the drain.
    if (uds_fd_ >= 0) {
        ::close(uds_fd_);
        ::unlink(options_.socket_path.c_str());
        uds_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }

    bool drained = false;
    std::size_t remaining = 0;
    {
        std::unique_lock<std::mutex> lock(conn_mutex_);
        // Half-close: idle connections read EOF and leave; connections
        // mid-analyze still flush their result frame.
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RD);
        drained = conn_cv_.wait_for(lock, options_.drain_timeout, [this] {
            return active_conns_ == 0;
        });
        remaining = active_conns_;
    }
    log::info("serve", drained ? "drained" : "drain timeout",
              {{"active", static_cast<std::uint64_t>(remaining)}});
    return drained;
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd fds[3];
        bool is_http[3] = {false, false, false};
        nfds_t n = 0;
        fds[n++] = {wake_rd_, POLLIN, 0};
        if (uds_fd_ >= 0)
            fds[n++] = {uds_fd_, POLLIN, 0};
        if (tcp_fd_ >= 0) {
            is_http[n] = true;
            fds[n++] = {tcp_fd_, POLLIN, 0};
        }

        if (::poll(fds, n, -1) < 0) {
            if (errno == EINTR)
                continue;
            log::warn("serve", "poll failed", {{"errno", errno}});
            return;
        }
        if (fds[0].revents != 0) {
            char drain[64];
            while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
            }
            continue;  // loop condition re-checks stopping_
        }
        for (nfds_t slot = 1; slot < n; ++slot) {
            if ((fds[slot].revents & POLLIN) == 0)
                continue;
            const bool http = is_http[slot];
            const int conn = ::accept(fds[slot].fd, nullptr, nullptr);
            if (conn < 0)
                continue;
            {
                std::lock_guard<std::mutex> lock(conn_mutex_);
                conn_fds_.insert(conn);
                ++active_conns_;
            }
            m_connections_.inc();
            try {
                std::thread(&Server::connectionMain, this, conn, http)
                    .detach();
            } catch (...) {
                std::lock_guard<std::mutex> lock(conn_mutex_);
                conn_fds_.erase(conn);
                --active_conns_;
                ::close(conn);
                conn_cv_.notify_all();
            }
        }
    }
}

void
Server::connectionMain(int fd, bool http)
{
    try {
        if (http)
            httpConnection(fd);
        else
            ndjsonConnection(fd);
    } catch (...) {
        // A connection must never take the daemon down; the socket is
        // simply closed and the client sees EOF.
        m_errors_.inc();
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(fd);
    ::close(fd);
    --active_conns_;
    conn_cv_.notify_all();
}

bool
Server::sendAll(int fd, std::string_view bytes)
{
    while (!bytes.empty()) {
        // MSG_NOSIGNAL: a vanished client must produce EPIPE, not kill
        // the daemon with SIGPIPE.
        const ssize_t n =
            ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

std::string
Server::mintRequestId()
{
    return "r-" + std::to_string(
                      request_seq_.fetch_add(1, std::memory_order_relaxed) +
                      1);
}

std::shared_ptr<RequestTrace>
Server::openTrace(const std::string &endpoint,
                  RequestTrace::Clock::time_point accept_time)
{
    m_inflight_.add(1.0);
    return std::make_shared<RequestTrace>(mintRequestId(), endpoint,
                                          accept_time);
}

void
Server::finishRequest(RequestTrace &trace)
{
    const std::shared_ptr<const TraceSummary> s = trace.finish();
    m_inflight_.add(-1.0);
    m_traced_requests_.inc();
    if (!s->conservation_ok) {
        m_conservation_failures_.inc();
        log::warn("serve", "span conservation violated",
                  {{"request", s->id},
                   {"wall_us", s->wall_us},
                   {"error_us", s->conservation_error_us}});
    }
    const double wall_ms = static_cast<double>(s->wall_us) / 1000.0;
    slo_.record(wall_ms, s->status != "ok" && s->status != "abandoned");
    traces_.add(s);

    const bool slow =
        options_.slow_ms > 0.0 && wall_ms >= options_.slow_ms;
    if (slow)
        m_slow_requests_.inc();
    const bool log_access = log::enabled(log::Level::kInfo);
    if (!log_access && !(slow && log::enabled(log::Level::kWarn)))
        return;

    std::vector<log::Field> fields;
    fields.reserve(6 + s->spans.size());
    fields.emplace_back("request", s->id);
    if (!s->client_id.empty())
        fields.emplace_back("id", s->client_id);
    fields.emplace_back("endpoint", s->endpoint);
    if (!s->outcome.empty())
        fields.emplace_back("cache", s->outcome);
    fields.emplace_back("status", s->status);
    fields.emplace_back("wall_us", s->wall_us);
    for (const TraceSummary::SpanValue &sv : s->spans)
        fields.emplace_back(toString(sv.span), sv.dur_us);
    if (log_access)
        log::message(log::Level::kInfo, "serve", "access", fields);
    if (slow) {
        fields.emplace_back("slow_ms", options_.slow_ms);
        log::message(log::Level::kWarn, "serve", "slow request", fields);
    }
}

ResultCache::Handle
Server::scheduleAnalyze(const std::string &key, const runner::JobSpec &spec,
                        const std::shared_ptr<RequestTrace> &trace)
{
    trace->begin(Span::kCacheLookup);
    ResultCache::Handle handle = cache_.lookup(key);
    trace->setOutcome(toString(handle.outcome));
    // Hits skip the wait phase entirely: the future already holds the
    // bytes, so a hit trace has no queue_wait/simulate/singleflight_wait.
    if (handle.outcome != CacheOutcome::kHit)
        trace->begin(Span::kSingleflightWait);
    if (handle.leader()) {
        // The simulation runs on the shared pool, not this connection
        // thread, so the result lands in the cache even if every
        // requesting client disconnects first. Job spans go to the
        // leader's trace and are published before complete()/fail()
        // resolve the future (the leader's finish() happens after).
        const auto submitted = RequestTrace::Clock::now();
        pool_.submit([this, key, spec, trace, submitted] {
            trace->addJobSpan(Span::kQueueWait, submitted,
                              RequestTrace::Clock::now());
            try {
                cache_.complete(key, simulateSpec(spec, trace.get()));
            } catch (...) {
                cache_.fail(key, std::current_exception());
            }
            m_queue_depth_.set(static_cast<double>(pool_.pending()));
        });
        m_queue_depth_.set(static_cast<double>(pool_.pending()));
    }
    return handle;
}

void
Server::analyze(int fd, const std::string &id, const runner::JobSpec &spec,
                const std::shared_ptr<RequestTrace> &trace)
{
    const auto start = std::chrono::steady_clock::now();
    const std::string key = runner::specHash(spec);
    ResultCache::Handle handle = scheduleAnalyze(key, spec, trace);

    bool client_alive = true;
    while (handle.future.wait_for(options_.heartbeat) ==
           std::future_status::timeout) {
        if (client_alive &&
            !sendAll(fd,
                     progressFrame(id, trace->id(), key, elapsedMs(start))))
            client_alive = false;
        if (!client_alive) {
            trace->setStatus("abandoned");
            return;  // abandoned; the pool task still populates the cache
        }
    }
    try {
        const CachedBytes bytes = handle.future.get();
        trace->begin(Span::kWrite);
        if (!sendAll(fd, resultFrame(id, trace->id(), key, handle.outcome,
                                     *bytes)))
            trace->setStatus("abandoned");
    } catch (const StackscopeError &e) {
        m_errors_.inc();
        trace->setStatus(std::string(toString(e.category())));
        trace->begin(Span::kWrite);
        sendAll(fd, errorFrame(id, e.category(), e.describe()));
    } catch (const std::exception &e) {
        m_errors_.inc();
        trace->setStatus("internal");
        trace->begin(Span::kWrite);
        sendAll(fd, errorFrame(id, ErrorCategory::kInternal, e.what()));
    }
    m_analyze_seconds_.record(elapsedSeconds(start));
}

void
Server::ndjsonConnection(int fd)
{
    // The first request's accept span starts at the connection accept;
    // later requests on the same connection start when their bytes are
    // complete (client think-time must not pollute their wall time).
    const auto accept_time = RequestTrace::Clock::now();
    bool first_request = true;
    if (!sendAll(fd, helloFrame()))
        return;
    std::string pending;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (n == 0)
            return;  // EOF (also how the drain half-close ends a session)
        pending.append(buf, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = pending.find('\n')) != std::string::npos) {
            const std::string line = pending.substr(0, pos);
            pending.erase(0, pos + 1);
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            m_requests_.inc();
            const auto read_done = RequestTrace::Clock::now();
            const std::shared_ptr<RequestTrace> trace = openTrace(
                "ndjson", first_request ? accept_time : read_done);
            first_request = false;
            trace->begin(Span::kParse);
            Request req;
            try {
                req = parseRequest(line);
            } catch (const StackscopeError &e) {
                m_errors_.inc();
                trace->setStatus(std::string(toString(e.category())));
                trace->begin(Span::kWrite);
                const bool ok =
                    sendAll(fd, errorFrame("", e.category(), e.describe()));
                finishRequest(*trace);
                if (!ok)
                    return;
                continue;
            }
            trace->setClientId(req.id);
            switch (req.kind) {
              case Request::Kind::kPing: {
                trace->setEndpoint("ping");
                trace->begin(Span::kWrite);
                const bool ok = sendAll(fd, pongFrame(req.id));
                finishRequest(*trace);
                if (!ok)
                    return;
                break;
              }
              case Request::Kind::kStatusz: {
                trace->setEndpoint("statusz");
                const auto start = std::chrono::steady_clock::now();
                trace->begin(Span::kWrite);
                const std::string frame =
                    statusFrame(req.id, cache_.stats(), slo_.summary(),
                                obs::MetricsRegistry::global().snapshot());
                const bool ok = sendAll(fd, frame);
                m_status_seconds_.record(elapsedSeconds(start));
                finishRequest(*trace);
                if (!ok)
                    return;
                break;
              }
              case Request::Kind::kAnalyze:
                trace->setEndpoint("analyze");
                try {
                    analyze(fd, req.id, parseSpec(req.spec), trace);
                } catch (const StackscopeError &e) {
                    m_errors_.inc();
                    trace->setStatus(std::string(toString(e.category())));
                    trace->begin(Span::kWrite);
                    if (!sendAll(fd, errorFrame(req.id, e.category(),
                                                e.describe()))) {
                        finishRequest(*trace);
                        return;
                    }
                }
                finishRequest(*trace);
                break;
            }
        }
        if (pending.size() > kMaxRequestBytes) {
            m_errors_.inc();
            sendAll(fd, errorFrame("", ErrorCategory::kUsage,
                                   "request line exceeds 1 MiB"));
            return;
        }
    }
}

void
Server::httpConnection(int fd)
{
    m_http_requests_.inc();
    // One request per connection, so the request timeline starts here
    // (effectively at accept) and kAccept covers reading head + body.
    const std::shared_ptr<RequestTrace> trace =
        openTrace("http", RequestTrace::Clock::now());
    // Every exit path responds through here so the write span, status
    // bookkeeping and access log stay consistent across the router.
    const auto respond = [&](int status, const std::string &reason,
                             const std::string &body,
                             const std::string &content_type =
                                 "application/json") {
        trace->begin(Span::kWrite);
        if (!sendAll(fd, httpResponse(status, reason, body, content_type)))
            trace->setStatus("abandoned");
        finishRequest(*trace);
    };

    std::string raw;
    char buf[4096];
    std::size_t head_end = std::string::npos;
    while (head_end == std::string::npos) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            trace->setStatus("abandoned");
            finishRequest(*trace);
            return;
        }
        raw.append(buf, static_cast<std::size_t>(n));
        head_end = raw.find("\r\n\r\n");
        if (raw.size() > kMaxRequestBytes)
            break;
    }
    if (head_end == std::string::npos) {
        trace->setStatus("usage");
        respond(400, "Bad Request",
                errorFrame("", ErrorCategory::kUsage,
                           "malformed or oversized HTTP request"));
        return;
    }

    trace->begin(Span::kParse);
    const std::string head = raw.substr(0, head_end);
    const std::size_t m_end = head.find(' ');
    const std::size_t t_end =
        m_end == std::string::npos ? std::string::npos
                                   : head.find(' ', m_end + 1);
    if (t_end == std::string::npos) {
        trace->setStatus("usage");
        respond(400, "Bad Request",
                errorFrame("", ErrorCategory::kUsage,
                           "malformed request line"));
        return;
    }
    const std::string method = head.substr(0, m_end);
    const std::string target = head.substr(m_end + 1, t_end - m_end - 1);
    const std::size_t q_pos = target.find('?');
    const std::string path =
        q_pos == std::string::npos ? target : target.substr(0, q_pos);
    const std::string query =
        q_pos == std::string::npos ? "" : target.substr(q_pos + 1);
    trace->setEndpoint("http:" + path);

    // Sole header we honour; names are case-insensitive per RFC 9112.
    std::size_t content_length = 0;
    std::string lower = head;
    for (char &c : lower)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    const std::size_t cl = lower.find("content-length:");
    if (cl != std::string::npos)
        content_length = static_cast<std::size_t>(
            std::strtoull(head.c_str() + cl + 15, nullptr, 10));
    if (content_length > kMaxRequestBytes) {
        trace->setStatus("usage");
        respond(400, "Bad Request",
                errorFrame("", ErrorCategory::kUsage,
                           "request body exceeds 1 MiB"));
        return;
    }

    std::string body = raw.substr(head_end + 4);
    while (body.size() < content_length) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            trace->setStatus("abandoned");
            finishRequest(*trace);
            return;
        }
        body.append(buf, static_cast<std::size_t>(n));
    }

    if (method == "GET" && path == "/healthz") {
        respond(200, "OK", "{\"status\":\"ok\"}\n");
        return;
    }
    if (method == "GET" && path == "/statusz") {
        const auto start = std::chrono::steady_clock::now();
        const std::string frame =
            statusFrame("", cache_.stats(), slo_.summary(),
                        obs::MetricsRegistry::global().snapshot());
        respond(200, "OK", frame);
        m_status_seconds_.record(elapsedSeconds(start));
        return;
    }
    if (method == "GET" && path == "/metricsz") {
        respond(200, "OK",
                obs::prometheusText(
                    obs::MetricsRegistry::global().snapshot()),
                kPromContentType);
        return;
    }
    if (method == "GET" && path == "/tracez") {
        const std::string id = queryParam(query, "id");
        if (id.empty()) {
            respond(200, "OK", traceIndexJson(traces_.recent(64)) + "\n");
            return;
        }
        const std::shared_ptr<const TraceSummary> found = traces_.find(id);
        if (found == nullptr) {
            trace->setStatus("usage");
            respond(404, "Not Found",
                    errorFrame("", ErrorCategory::kUsage,
                               "no trace for request '" + id + "'"));
            return;
        }
        if (queryParam(query, "format") == "chrome") {
            respond(200, "OK", traceChromeJson(*found) + "\n");
            return;
        }
        respond(200, "OK", traceJson(*found) + "\n");
        return;
    }
    if (method == "POST" && path == "/analyze") {
        m_requests_.inc();
        const auto start = std::chrono::steady_clock::now();
        try {
            const runner::JobSpec spec = parseSpec(obs::parseJson(body));
            const std::string key = runner::specHash(spec);
            // HTTP has no progress stream: block until the result.
            ResultCache::Handle handle = scheduleAnalyze(key, spec, trace);
            const CachedBytes bytes = handle.future.get();
            respond(200, "OK",
                    resultFrame("", trace->id(), key, handle.outcome,
                                *bytes));
        } catch (const StackscopeError &e) {
            m_errors_.inc();
            trace->setStatus(std::string(toString(e.category())));
            const int status = httpStatusFor(e.category());
            respond(status,
                    status == 400 ? "Bad Request" : "Analysis Failed",
                    errorFrame("", e.category(), e.describe()));
        } catch (const std::exception &e) {
            m_errors_.inc();
            trace->setStatus("internal");
            respond(500, "Internal Server Error",
                    errorFrame("", ErrorCategory::kInternal, e.what()));
        }
        m_analyze_seconds_.record(elapsedSeconds(start));
        return;
    }
    trace->setStatus("usage");
    respond(404, "Not Found",
            errorFrame("", ErrorCategory::kUsage,
                       "unknown endpoint " + method + " " + target));
}

}  // namespace stackscope::serve
