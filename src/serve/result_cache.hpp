/**
 * @file
 * Content-addressed, single-flight, LRU-bounded result cache for the
 * serve daemon.
 *
 * Simulations are deterministic, so the canonical job-spec hash
 * (runner::specHash, docs/formats.md "Job spec hashing") is a content
 * address for the finished report bytes: under production traffic the
 * common case is a repeat query, which must return in microseconds
 * without touching the simulator. Three properties carry the design
 * (docs/serving.md "Result cache" is the normative contract):
 *
 *  - **Single-flight**: concurrent requests for the same key coalesce
 *    onto one simulation. The first requester becomes the *leader* and
 *    computes; followers receive the same std::shared_future and block
 *    until the leader publishes. No thundering herd: N clients asking
 *    for the same cold spec cost exactly one simulation.
 *  - **Byte addressing**: the cache stores the exact serialized report
 *    (a shared immutable string), so a hit is byte-identical to the
 *    cold run that populated it — the serve determinism guarantee.
 *  - **LRU byte budget**: completed entries are evicted least-recently-
 *    used when the total stored bytes exceed the budget. Pending
 *    entries are never evicted (their size is unknown and waiters hold
 *    their future); failed computations are never cached, so a later
 *    request retries.
 */

#ifndef STACKSCOPE_SERVE_RESULT_CACHE_HPP
#define STACKSCOPE_SERVE_RESULT_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace stackscope::serve {

/** Immutable published report bytes, shared between cache and waiters. */
using CachedBytes = std::shared_ptr<const std::string>;

/** How a lookup was satisfied; echoed in the result frame's "cache". */
enum class CacheOutcome
{
    kHit,        ///< entry was resident and complete
    kMiss,       ///< caller is the leader and must compute
    kCoalesced,  ///< another request is computing; wait on the future
};

constexpr const char *
toString(CacheOutcome o)
{
    switch (o) {
      case CacheOutcome::kHit: return "hit";
      case CacheOutcome::kMiss: return "miss";
      case CacheOutcome::kCoalesced: return "coalesced";
    }
    return "miss";
}

class ResultCache
{
  public:
    /** Lookup result: a future that yields the bytes (or rethrows the
     *  leader's error) plus the outcome classification. When outcome is
     *  kMiss the caller MUST eventually call complete() or fail() for
     *  the key, or every coalesced waiter blocks forever. */
    struct Handle
    {
        std::shared_future<CachedBytes> future;
        CacheOutcome outcome = CacheOutcome::kMiss;

        bool leader() const { return outcome == CacheOutcome::kMiss; }
    };

    /** Point-in-time statistics (also exported as serve.cache_* host
     *  metrics; see docs/observability.md). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t coalesced = 0;
        std::uint64_t evictions = 0;
        std::uint64_t failures = 0;
        std::size_t bytes = 0;
        std::size_t entries = 0;
        std::size_t pending = 0;
        /** Coalesced requests currently blocked on an in-flight entry
         *  (the backpressure signal; also serve.singleflight_waiters). */
        std::size_t waiting = 0;
        std::size_t capacity_bytes = 0;
    };

    /** @param max_bytes LRU byte budget for completed entries. */
    explicit ResultCache(std::size_t max_bytes);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up @p key. kHit resolves immediately; kMiss makes the caller
     * the leader; kCoalesced joins an in-flight computation.
     */
    Handle lookup(const std::string &key);

    /**
     * Publish the leader's result for @p key: waiters wake with the
     * shared bytes, the entry is charged against the byte budget and
     * LRU eviction runs. An entry larger than the whole budget is
     * published to waiters but not retained.
     */
    void complete(const std::string &key, std::string bytes);

    /**
     * Publish the leader's failure: waiters rethrow @p error and the
     * pending entry is removed so the next lookup retries.
     */
    void fail(const std::string &key, std::exception_ptr error);

    Stats stats() const;

  private:
    struct Entry
    {
        std::promise<CachedBytes> promise;
        std::shared_future<CachedBytes> future;
        CachedBytes bytes;  ///< null while pending
        std::size_t charge = 0;
        /** Position in lru_ (valid only when complete and resident). */
        std::list<std::string>::iterator lru_it{};
        bool pending = true;
        /** Coalesced waiters blocked on this entry (pending only). */
        std::size_t waiters = 0;
    };

    std::size_t chargeFor(const std::string &key,
                          const std::string &bytes) const;
    void evictLockedOverBudget();

    const std::size_t max_bytes_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    /** Completed resident keys, most-recently-used first. */
    std::list<std::string> lru_;
    Stats stats_{};

    obs::Counter m_hits_;
    obs::Counter m_misses_;
    obs::Counter m_coalesced_;
    obs::Counter m_evictions_;
    obs::Counter m_failures_;
    obs::Gauge m_bytes_;
    obs::Gauge m_entries_;
    obs::Gauge m_waiting_;
};

}  // namespace stackscope::serve

#endif  // STACKSCOPE_SERVE_RESULT_CACHE_HPP
