/**
 * @file
 * Per-request latency stacks for the serve daemon.
 *
 * The paper's thesis — decompose an opaque aggregate into an additive
 * stack of causes, and *prove* the decomposition by conservation — is
 * applied here to serve latency: every request records a span tree
 * (accept, parse, cache_lookup, queue_wait, simulate, serialize,
 * singleflight_wait, write) whose durations must sum to the request's
 * wall time, exactly like CPI-stack components must sum to CPI.
 *
 * Conservation holds *by construction* on the connection thread: the
 * request timeline is a sequence of contiguous phases — each begin()
 * closes the previous phase at the same instant it opens the next — so
 * phase durations partition wall time with zero residue. The one phase
 * that spans other threads' work is the single-flight wait: while the
 * connection blocks on the cache future, the pool worker records
 * queue_wait / simulate / serialize spans into the same trace. Those
 * job spans are carved *out of* the wait phase; the remainder is
 * reported as singleflight_wait. The worker publishes its spans before
 * ResultCache::complete() releases the future, so they are fully
 * recorded (happens-before) when finish() runs — a negative remainder
 * can only come from clock jitter and is clamped, flagged when it
 * exceeds the 1 ms tolerance (serve.trace_conservation_failures_total).
 *
 * Semantics of the per-outcome shapes (asserted in tests/serve/):
 *  - cache hit: the future is already resolved, the wait phase is never
 *    opened — no queue_wait, no simulate, no singleflight_wait.
 *  - cold (leader): queue_wait + simulate + serialize appear, recorded
 *    by the pool worker; singleflight_wait is the small remainder.
 *  - coalesced: no job spans (they belong to the leader's trace); the
 *    whole wait phase is singleflight_wait.
 *
 * Finished traces land in a bounded TraceStore ring served by
 * `GET /tracez` (JSON latency stack, or Chrome trace-event JSON via
 * `format=chrome`); docs/formats.md specifies both schemas.
 */

#ifndef STACKSCOPE_SERVE_REQUEST_TRACE_HPP
#define STACKSCOPE_SERVE_REQUEST_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stackscope::serve {

/** The span taxonomy, in canonical latency-stack order. */
enum class Span : std::uint8_t
{
    kAccept,           ///< accept()/read until the request bytes are complete
    kParse,            ///< request + spec parsing and hashing
    kCacheLookup,      ///< result-cache probe (single-flight classification)
    kQueueWait,        ///< leader only: pool submit until the worker starts
    kSimulate,         ///< leader only: the simulation itself
    kSerialize,        ///< leader only: report serialization
    kSingleflightWait, ///< blocked on the shared future (wait remainder)
    kWrite,            ///< response frame serialization + socket write
};

inline constexpr std::size_t kNumSpans = 8;

std::string_view toString(Span span);

/** An immutable finished trace: the request's additive latency stack. */
struct TraceSummary
{
    struct SpanValue
    {
        Span span = Span::kAccept;
        /** Microseconds since the request's accept timestamp. */
        std::int64_t start_us = 0;
        std::int64_t dur_us = 0;
    };

    std::string id;        ///< server-minted request id ("r-<n>")
    std::string client_id; ///< client correlation id (NDJSON "id"), may be ""
    std::string endpoint;  ///< "analyze", "statusz", "ping", "http:/statusz"...
    std::string outcome;   ///< cache outcome ("hit"/"miss"/"coalesced"), or ""
    std::string status;    ///< "ok" or the error category
    std::int64_t wall_us = 0;
    /** Spans in canonical order; absent spans are omitted. Durations sum
     *  to wall_us within the conservation tolerance. */
    std::vector<SpanValue> spans;
    bool conservation_ok = true;
    /** |sum(spans) - wall| in microseconds. */
    std::int64_t conservation_error_us = 0;

    std::int64_t spanUs(Span span) const;
    bool hasSpan(Span span) const;
};

/**
 * The live per-request recorder. begin()/setters run on the connection
 * thread; addJobSpan() runs on the pool worker. All mutators lock, so
 * the heartbeat path and the worker may race safely.
 */
class RequestTrace
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Conservation tolerance: clock jitter across threads, not model
     *  error, so it is deliberately tight (the CPI stacks get 1e-9 on
     *  one clock; two host clocks get 1 ms). */
    static constexpr std::int64_t kToleranceUs = 1000;

    /** Opens the kAccept phase at @p accept_time. */
    RequestTrace(std::string id, std::string endpoint,
                 Clock::time_point accept_time);

    /** Close the open phase now and open @p span. Connection thread. */
    void begin(Span span);

    /** Record a worker-side span carved out of the wait phase. */
    void addJobSpan(Span span, Clock::time_point start,
                    Clock::time_point end);

    void setClientId(std::string client_id);
    void setEndpoint(std::string endpoint);
    void setOutcome(std::string outcome);
    void setStatus(std::string status);

    /** Close the open phase, resolve the wait-phase carve-out and freeze
     *  the trace. Returns the immutable summary. Idempotent per trace —
     *  call exactly once. */
    std::shared_ptr<const TraceSummary> finish();

    const std::string &id() const { return id_; }

  private:
    struct Phase
    {
        Span span;
        Clock::time_point start;
        Clock::time_point end;
    };

    mutable std::mutex mutex_;
    std::string id_;
    std::string client_id_;
    std::string endpoint_;
    std::string outcome_;
    std::string status_ = "ok";
    Clock::time_point origin_;
    std::vector<Phase> phases_;  ///< closed phases, contiguous in time
    std::vector<Phase> jobs_;    ///< worker-side spans (timestamped)
    Span open_span_ = Span::kAccept;
    Clock::time_point open_start_;
};

/** Bounded ring of finished traces, newest kept, for `GET /tracez`. */
class TraceStore
{
  public:
    explicit TraceStore(std::size_t capacity = 256);

    void add(std::shared_ptr<const TraceSummary> trace);
    std::shared_ptr<const TraceSummary> find(std::string_view id) const;
    /** Newest first, at most @p limit entries. */
    std::vector<std::shared_ptr<const TraceSummary>>
    recent(std::size_t limit) const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::deque<std::shared_ptr<const TraceSummary>> ring_;
};

/** One JSON object (docs/formats.md "Request trace"), no trailing \n. */
std::string traceJson(const TraceSummary &trace);

/** Chrome trace-event document: connection lane + job lane. */
std::string traceChromeJson(const TraceSummary &trace);

/** Index document for `GET /tracez` without an id: newest-first list of
 *  {id, endpoint, outcome, status, wall_us}. */
std::string
traceIndexJson(const std::vector<std::shared_ptr<const TraceSummary>> &traces);

}  // namespace stackscope::serve

#endif  // STACKSCOPE_SERVE_REQUEST_TRACE_HPP
