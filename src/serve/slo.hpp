/**
 * @file
 * Rolling-window latency/error objective tracking for the serve daemon.
 *
 * Answers "are we meeting our objective *right now*?" — which the
 * cumulative histograms can't, because they never forget. The tracker
 * keeps every request completion from the last window (default 60 s):
 * latency, error flag, and whether the latency met the objective. The
 * summary — attainment vs target, error rate, window percentiles — is
 * surfaced in `/statusz` under "slo" (docs/serving.md).
 *
 * record() is O(1) amortized (append + front pruning); summary() sorts
 * a copy of the window, which is fine at statusz rates. The sample
 * count is capped so a traffic spike bounds memory, not latency
 * accuracy (oldest samples drop first, same as window expiry).
 */

#ifndef STACKSCOPE_SERVE_SLO_HPP
#define STACKSCOPE_SERVE_SLO_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

namespace stackscope::serve {

class SloTracker
{
  public:
    using Clock = std::chrono::steady_clock;

    struct Options
    {
        std::chrono::seconds window{60};
        /** Latency objective; a request is "within" when <= this. */
        double objective_ms = 50.0;
        /** Fraction of requests that must be within the objective. */
        double target = 0.99;
        /** Window sample cap (oldest dropped first past this). */
        std::size_t max_samples = 65536;
    };

    struct Summary
    {
        double window_s = 0.0;
        double objective_ms = 0.0;
        double target = 0.0;
        std::uint64_t requests = 0;
        std::uint64_t errors = 0;
        double error_rate = 0.0;
        std::uint64_t within_objective = 0;
        /** within / requests; 1.0 on an empty window (vacuously met). */
        double attainment = 1.0;
        double p50_ms = 0.0;
        double p99_ms = 0.0;
        /** attainment >= target AND error_rate <= 1 - target. */
        bool ok = true;
    };

    explicit SloTracker(Options options);

    /** Record one completed request. @p at defaults to now (tests pin it). */
    void record(double latency_ms, bool error,
                Clock::time_point at = Clock::now());

    /** Summarize the window ending at @p at (defaults to now). */
    Summary summary(Clock::time_point at = Clock::now()) const;

  private:
    struct Sample
    {
        Clock::time_point at;
        double latency_ms;
        bool error;
    };

    void pruneLocked(Clock::time_point at) const;

    const Options options_;
    mutable std::mutex mutex_;
    mutable std::deque<Sample> samples_;
};

}  // namespace stackscope::serve

#endif  // STACKSCOPE_SERVE_SLO_HPP
