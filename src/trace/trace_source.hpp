/**
 * @file
 * Abstract interface for dynamic instruction streams.
 */

#ifndef STACKSCOPE_TRACE_TRACE_SOURCE_HPP
#define STACKSCOPE_TRACE_TRACE_SOURCE_HPP

#include <memory>

#include "trace/instruction.hpp"

namespace stackscope::trace {

/**
 * A replayable stream of correct-path dynamic instructions.
 *
 * All implementations must be deterministic: after reset() (or on a fresh
 * clone()) the exact same sequence is produced again. The idealization
 * methodology of the paper (§IV) depends on this: a configuration with,
 * e.g., a perfect Dcache must replay the identical instruction stream so
 * that the CPI difference isolates the timing effect.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next correct-path instruction.
     * @param out Filled with the instruction when available.
     * @retval true an instruction was produced.
     * @retval false the trace is exhausted.
     */
    virtual bool next(DynInstr &out) = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;

    /** Fresh, independent copy producing the same stream from the start. */
    virtual std::unique_ptr<TraceSource> clone() const = 0;
};

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_TRACE_SOURCE_HPP
