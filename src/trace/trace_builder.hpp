/**
 * @file
 * Programmatic trace construction: a fluent builder and an in-memory
 * replayable trace. Used by unit tests to construct precise pipeline
 * scenarios and by users to analyze hand-written kernels.
 */

#ifndef STACKSCOPE_TRACE_TRACE_BUILDER_HPP
#define STACKSCOPE_TRACE_TRACE_BUILDER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace_source.hpp"

namespace stackscope::trace {

/**
 * A trace held in memory as a vector of instructions.
 *
 * Cloning is cheap: the instruction vector is shared (immutably) between
 * clones, so homogeneous multi-core runs do not duplicate the trace.
 */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<DynInstr> instrs);
    explicit VectorTraceSource(
        std::shared_ptr<const std::vector<DynInstr>> instrs);

    bool next(DynInstr &out) override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

    /** Number of instructions in the trace. */
    std::uint64_t size() const { return instrs_->size(); }

    /** Read-only access for inspection in tests. */
    const std::vector<DynInstr> &instructions() const { return *instrs_; }

  private:
    std::shared_ptr<const std::vector<DynInstr>> instrs_;
    std::uint64_t pos_ = 0;
};

/**
 * Handle to an instruction added to a TraceBuilder; usable as a dependence
 * token for later instructions.
 */
struct InstrHandle
{
    std::uint64_t index = kNoSeq;
};

/**
 * Fluent builder for hand-constructed traces.
 *
 * Example: a load feeding a multiply feeding a branch:
 * @code
 *   TraceBuilder b;
 *   auto ld = b.load(0x1000);
 *   auto mu = b.mul({ld});
 *   b.branch(0x40, true, {mu});
 *   auto trace = b.build();
 * @endcode
 *
 * Program counters advance automatically (4 bytes per uop) unless set
 * explicitly with at().
 */
class TraceBuilder
{
  public:
    TraceBuilder();

    /** Set the PC for the next instruction (subsequent PCs continue from it). */
    TraceBuilder &at(Addr pc);

    /** Append an arbitrary prepared instruction. */
    InstrHandle add(DynInstr instr);

    InstrHandle nop();
    InstrHandle alu(std::initializer_list<InstrHandle> deps = {});
    InstrHandle mul(std::initializer_list<InstrHandle> deps = {});
    InstrHandle div(std::initializer_list<InstrHandle> deps = {});
    InstrHandle load(Addr addr, std::initializer_list<InstrHandle> deps = {});
    InstrHandle store(Addr addr, std::initializer_list<InstrHandle> deps = {});
    InstrHandle branch(bool taken, std::initializer_list<InstrHandle> deps = {});
    InstrHandle fpAdd(std::initializer_list<InstrHandle> deps = {});
    InstrHandle fpMul(std::initializer_list<InstrHandle> deps = {});
    InstrHandle fpDiv(std::initializer_list<InstrHandle> deps = {});

    /** Vector FMA with @p lanes active lanes. */
    InstrHandle vfma(unsigned lanes,
                     std::initializer_list<InstrHandle> deps = {});
    /** Vector FP add with @p lanes active lanes. */
    InstrHandle vadd(unsigned lanes,
                     std::initializer_list<InstrHandle> deps = {});
    /** Vector FP multiply with @p lanes active lanes. */
    InstrHandle vmul(unsigned lanes,
                     std::initializer_list<InstrHandle> deps = {});
    /** Non-FP vector op (occupies a VPU). */
    InstrHandle vint(std::initializer_list<InstrHandle> deps = {});
    /** Broadcast (occupies a VPU, zero flops). */
    InstrHandle vbroadcast(std::initializer_list<InstrHandle> deps = {});
    /** Microcoded ALU op occupying the decoder for @p decode_cycles. */
    InstrHandle microcoded(unsigned decode_cycles,
                           std::initializer_list<InstrHandle> deps = {});
    /** Thread yield for @p cycles (synchronization stall). */
    InstrHandle yield(std::uint32_t cycles);

    /**
     * Repeat the last @p count instructions @p times more, as a loop: the
     * copies keep the template's PCs (same code executing again) and every
     * dependence keeps its producer distance, so loop-carried chains (e.g.
     * accumulators reading the previous iteration) are preserved.
     */
    TraceBuilder &repeatLast(std::size_t count, std::size_t times);

    /** Number of instructions added so far. */
    std::uint64_t size() const { return instrs_.size(); }

    /** Finalize into a replayable trace source. */
    std::unique_ptr<VectorTraceSource> build();

  private:
    InstrHandle append(InstrClass cls, std::initializer_list<InstrHandle> deps,
                       Addr mem_addr = 0, bool taken = false,
                       unsigned lanes = 0, unsigned decode_cycles = 1,
                       std::uint32_t yield_cycles = 0);

    std::vector<DynInstr> instrs_;
    Addr next_pc_ = 0x400000;
};

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_TRACE_BUILDER_HPP
