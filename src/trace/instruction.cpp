#include "trace/instruction.hpp"

namespace stackscope::trace {

std::string_view
toString(InstrClass cls)
{
    switch (cls) {
      case InstrClass::kNop: return "nop";
      case InstrClass::kAlu: return "alu";
      case InstrClass::kAluMul: return "mul";
      case InstrClass::kAluDiv: return "div";
      case InstrClass::kLoad: return "load";
      case InstrClass::kStore: return "store";
      case InstrClass::kBranch: return "branch";
      case InstrClass::kFpAdd: return "fpadd";
      case InstrClass::kFpMul: return "fpmul";
      case InstrClass::kFpDiv: return "fpdiv";
      case InstrClass::kVecFma: return "vfma";
      case InstrClass::kVecAdd: return "vadd";
      case InstrClass::kVecMul: return "vmul";
      case InstrClass::kVecInt: return "vint";
      case InstrClass::kVecBroadcast: return "vbcast";
      case InstrClass::kYield: return "yield";
    }
    return "?";
}

}  // namespace stackscope::trace
