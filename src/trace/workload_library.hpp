/**
 * @file
 * Named synthetic workload presets standing in for the SPEC CPU 2017
 * benchmarks of the paper's evaluation (§IV).
 *
 * Each preset is tuned so that the *dominant bottleneck structure* matches
 * what the paper reports or implies for the benchmark of the same name:
 * mcf is pointer-chase/Dcache and branch bound, cactus has a large code
 * footprint coupled to its data through the unified L2, bwaves is a
 * prefetch-heavy streamer with MSHR contention, povray is microcode- and
 * FP-latency heavy, imagick is a multi-cycle-ALU dependence chain, etc.
 * Absolute CPIs are not expected to match SPEC; the bracketing behaviour
 * of multi-stage CPI stacks that the paper validates is
 * workload-independent.
 */

#ifndef STACKSCOPE_TRACE_WORKLOAD_LIBRARY_HPP
#define STACKSCOPE_TRACE_WORKLOAD_LIBRARY_HPP

#include <string>
#include <vector>

#include "trace/synthetic_generator.hpp"

namespace stackscope::trace {

/** A named workload: preset parameters plus a short description. */
struct Workload
{
    std::string name;
    std::string description;
    SyntheticParams params;
};

/** Look up a preset by name; throws std::out_of_range for unknown names. */
Workload findWorkload(const std::string &name);

/** All SPEC-CPU-2017-inspired presets (the Figure 2 population). */
const std::vector<Workload> &allSpecWorkloads();

/** Names of all presets, in registry order. */
std::vector<std::string> allSpecWorkloadNames();

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_WORKLOAD_LIBRARY_HPP
