#include "trace/synthetic_generator.hpp"

#include <algorithm>
#include <cassert>

namespace stackscope::trace {

namespace {

/** Base of the synthetic code address space. */
constexpr Addr kCodeBase = 0x00400000;
/** Base of the synthetic data address space. */
constexpr Addr kDataBase = 0x10000000;

/** Stateless 64-bit mix, used to derive per-PC static code properties. */
std::uint64_t
hashAddr(Addr x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(const SyntheticParams &params)
    : params_(params)
{
    assert(params_.dep_window <= kMaxDepDistance);
    assert(params_.dep_window >= 1);
    assert(params_.code_footprint >= 64);
    assert(params_.data_footprint >= 64);
    assert(params_.hot_bytes >= 64);
    assert(params_.function_bytes >= 256);

    mix_classes_ = {InstrClass::kAlu,    InstrClass::kAluMul,
                    InstrClass::kAluDiv, InstrClass::kLoad,
                    InstrClass::kStore,  InstrClass::kBranch,
                    InstrClass::kFpAdd,  InstrClass::kFpMul,
                    InstrClass::kFpDiv,  InstrClass::kVecFma,
                    InstrClass::kVecAdd, InstrClass::kVecInt};
    const std::array<double, 12> weights = {
        params_.w_alu,     params_.w_mul,     params_.w_div,
        params_.w_load,    params_.w_store,   params_.w_branch,
        params_.w_fp_add,  params_.w_fp_mul,  params_.w_fp_div,
        params_.w_vec_fma, params_.w_vec_add, params_.w_vec_int};
    double total = 0.0;
    for (double w : weights)
        total += w;
    assert(total > 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i] / total;
        mix_cumulative_[i] = acc;
    }
    mix_cumulative_.back() = 1.0;

    // One byte per 4-byte code slot (every generated PC is 4-aligned);
    // filled lazily as PCs are first visited. Intra-function jumps can
    // land past a footprint that is not a whole number of functions, so
    // cover the footprint rounded up to a full function.
    const std::uint64_t reach =
        (params_.code_footprint + params_.function_bytes - 1) /
        params_.function_bytes * params_.function_bytes;
    code_cache_.assign(reach / 4, 0);

    reseed();
}

void
SyntheticGenerator::reseed()
{
    Rng master(params_.seed);
    rng_class_ = master.fork();
    rng_dep_ = master.fork();
    rng_mem_ = master.fork();
    rng_branch_ = master.fork();
    rng_misc_ = master.fork();
    index_ = 0;
    pc_ = kCodeBase;
    stream_addr_ = kDataBase;
    chase_producer_ = kNoSeq;
    last_load_index_ = kNoSeq;
    last_mul_index_ = kNoSeq;
    recent_stores_.fill(kDataBase);
    recent_store_count_ = 0;
}

void
SyntheticGenerator::reset()
{
    reseed();
}

std::unique_ptr<TraceSource>
SyntheticGenerator::clone() const
{
    return std::make_unique<SyntheticGenerator>(params_);
}

InstrClass
SyntheticGenerator::classAt(Addr pc) const
{
    // Code is static: the opcode at an address never changes, which gives
    // the branch predictor and the icache realistic per-PC statistics.
    const std::uint64_t h = hashAddr(pc ^ (params_.seed << 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    for (std::size_t i = 0; i < mix_cumulative_.size(); ++i) {
        if (u < mix_cumulative_[i])
            return mix_classes_[i];
    }
    return InstrClass::kAlu;
}

std::uint8_t
SyntheticGenerator::staticCodeAt(Addr pc)
{
    // Everything derived purely from the address (opcode class, microcode
    // flag, branch bias) is computed once per PC and cached; the hot path
    // is a single byte load instead of two hashes and a distribution walk.
    const std::size_t idx = (pc - kCodeBase) >> 2;
    std::uint8_t sc = code_cache_[idx];
    if (sc != 0)
        return sc;

    const InstrClass cls = classAt(pc);
    sc = kScValid | static_cast<std::uint8_t>(cls);

    if (cls == InstrClass::kBranch) {
        const std::uint64_t h = hashAddr(pc);
        if ((h >> 8) % 10000 <
            static_cast<std::uint64_t>(params_.branch_random_frac * 10000.0))
            sc |= kScBrRandom;
        if ((h & 1) != 0)
            sc |= kScBrBias;
    }

    const bool microcodable = cls == InstrClass::kAlu ||
                              cls == InstrClass::kAluMul ||
                              cls == InstrClass::kFpAdd ||
                              cls == InstrClass::kFpMul ||
                              cls == InstrClass::kVecInt;
    if (microcodable && params_.microcoded_frac > 0.0) {
        const std::uint64_t h = hashAddr(pc ^ 0x5ca1ab1eULL);
        if ((h >> 16) % 10000 <
            static_cast<std::uint64_t>(params_.microcoded_frac * 10000.0))
            sc |= kScMicro;
    }

    code_cache_[idx] = sc;
    return sc;
}

void
SyntheticGenerator::fillDeps(DynInstr &instr)
{
    if (index_ == 0)
        return;
    const std::uint64_t window =
        std::min<std::uint64_t>(params_.dep_window, index_);

    auto add_src = [&](std::uint64_t producer) {
        if (instr.num_srcs < kMaxSrcs)
            instr.src[instr.num_srcs++] = producer;
    };

    if (instr.cls == InstrClass::kBranch) {
        // Data-dependent branches compare a recently loaded value; other
        // branches consume a shallow flag/compare chain.
        if (last_load_index_ != kNoSeq &&
            index_ - last_load_index_ <= window &&
            rng_dep_.chance(params_.branch_dep_load_frac)) {
            add_src(last_load_index_);
        } else if (rng_dep_.chance(0.5)) {
            add_src(index_ - 1);
        }
        return;
    }

    if (rng_dep_.chance(params_.chain_frac)) {
        add_src(index_ - 1);
    } else if (rng_dep_.chance(params_.far_dep_frac)) {
        add_src(index_ - rng_dep_.range(1, window));
    }
    if (rng_dep_.chance(params_.second_src_frac))
        add_src(index_ - rng_dep_.range(1, window));
}

Addr
SyntheticGenerator::pickLoadAddr(DynInstr &instr)
{
    const double roll = rng_mem_.uniform();
    if (roll < params_.pointer_chase_frac) {
        // Pointer chase: serially dependent loads to random locations.
        if (chase_producer_ != kNoSeq && instr.num_srcs < kMaxSrcs &&
            index_ - chase_producer_ <= kMaxDepDistance) {
            instr.src[instr.num_srcs++] = chase_producer_;
        }
        chase_producer_ = index_;
        return kDataBase + (rng_mem_.next() % params_.data_footprint) / 8 * 8;
    }
    if (roll < params_.pointer_chase_frac + params_.stream_frac) {
        // Sequential streaming: friendly to the stride prefetcher.
        stream_addr_ += params_.stream_stride;
        if (stream_addr_ >= kDataBase + params_.data_footprint)
            stream_addr_ = kDataBase;
        return stream_addr_;
    }
    if (recent_store_count_ > 0 &&
        rng_mem_.chance(params_.store_load_conflict_frac)) {
        // Alias a recent store: provokes issue-stage load-store conflicts.
        return recent_stores_[rng_mem_.below(
            std::min<std::uint64_t>(recent_store_count_, kRecentStores))];
    }
    if (rng_mem_.chance(params_.hot_frac)) {
        // Cache-resident hot working set.
        return kDataBase + (rng_mem_.next() % params_.hot_bytes) / 8 * 8;
    }
    return kDataBase + (rng_mem_.next() % params_.data_footprint) / 8 * 8;
}

Addr
SyntheticGenerator::pickStoreAddr()
{
    Addr addr;
    if (params_.stream_frac > 0.0 && rng_mem_.chance(params_.stream_frac)) {
        // Stores share the streaming pattern (one page ahead of the loads).
        addr = stream_addr_ + 4096;
    } else if (rng_mem_.chance(params_.hot_frac)) {
        addr = kDataBase + (rng_mem_.next() % params_.hot_bytes) / 8 * 8;
    } else {
        addr = kDataBase + (rng_mem_.next() % params_.data_footprint) / 8 * 8;
    }
    recent_stores_[recent_store_count_ % kRecentStores] = addr;
    ++recent_store_count_;
    return addr;
}

void
SyntheticGenerator::advancePc(DynInstr &instr, std::uint8_t sc)
{
    instr.pc = pc_;
    if (instr.cls == InstrClass::kBranch) {
        // Static branch behaviour is a pure function of the branch PC, so
        // the branch predictor sees stable per-PC statistics.
        const bool is_random = sc & kScBrRandom;
        const bool bias_taken = sc & kScBrBias;
        if (is_random) {
            instr.branch_taken = rng_branch_.chance(0.5);
        } else {
            const double p =
                bias_taken ? params_.branch_bias : 1.0 - params_.branch_bias;
            instr.branch_taken = rng_branch_.chance(p);
        }
        if (instr.branch_taken) {
            if (rng_branch_.chance(params_.call_frac)) {
                // Call / long jump: land at the start of a random function.
                const std::uint64_t functions =
                    std::max<std::uint64_t>(1, params_.code_footprint /
                                                   params_.function_bytes);
                pc_ = kCodeBase +
                      rng_branch_.below(functions) * params_.function_bytes;
            } else if (rng_branch_.chance(0.8)) {
                // Loop back-edge: short backward jump, revisiting the same
                // icache lines.
                const Addr back =
                    std::min<Addr>(pc_ - kCodeBase,
                                   rng_branch_.range(16, 384) & ~Addr{3});
                pc_ -= back;
            } else {
                // Intra-function jump: anywhere in the current function.
                const Addr func_base =
                    kCodeBase + (pc_ - kCodeBase) / params_.function_bytes *
                                    params_.function_bytes;
                pc_ = func_base +
                      rng_branch_.below(params_.function_bytes / 4) * 4;
            }
            return;
        }
    }
    pc_ += 4;
    if (pc_ >= kCodeBase + params_.code_footprint)
        pc_ = kCodeBase;
}

bool
SyntheticGenerator::next(DynInstr &out)
{
    if (index_ >= params_.num_instrs)
        return false;

    out = DynInstr{};

    if (params_.yield_every != 0 &&
        index_ % params_.yield_every == params_.yield_every - 1) {
        out.cls = InstrClass::kYield;
        out.yield_cycles = params_.yield_cycles;
        out.pc = pc_;
        ++index_;
        return true;
    }

    const std::uint8_t sc = staticCodeAt(pc_);
    out.cls = static_cast<InstrClass>(sc & kScClassMask);
    fillDeps(out);
    if (out.cls == InstrClass::kAluMul) {
        // Accumulator recurrence: chain onto the previous multiply.
        if (last_mul_index_ != kNoSeq && out.num_srcs < kMaxSrcs &&
            index_ - last_mul_index_ <=
                std::min<std::uint64_t>(params_.dep_window, index_) &&
            rng_dep_.chance(params_.mul_chain_frac)) {
            out.src[out.num_srcs++] = last_mul_index_;
        }
        last_mul_index_ = index_;
    }

    switch (out.cls) {
      case InstrClass::kLoad:
        out.mem_addr = pickLoadAddr(out);
        last_load_index_ = index_;
        break;
      case InstrClass::kStore:
        out.mem_addr = pickStoreAddr();
        break;
      case InstrClass::kVecFma:
      case InstrClass::kVecAdd:
      case InstrClass::kVecInt:
        out.active_lanes = static_cast<std::uint8_t>(params_.vec_lanes);
        if (params_.vec_mask_frac > 0.0 &&
            rng_misc_.chance(params_.vec_mask_frac)) {
            out.active_lanes = static_cast<std::uint8_t>(
                rng_misc_.range(1, std::max(1u, params_.vec_lanes - 1)));
        }
        break;
      default:
        break;
    }

    // Microcoded instructions are static code properties too.
    if (sc & kScMicro) {
        out.decode_cycles =
            static_cast<std::uint8_t>(params_.microcode_decode_cycles);
    }

    advancePc(out, sc);
    ++index_;
    return true;
}

}  // namespace stackscope::trace
