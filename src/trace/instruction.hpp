/**
 * @file
 * The dynamic instruction (micro-operation) model that trace sources emit
 * and the out-of-order core consumes.
 *
 * Stackscope is a trace-driven, functional-first simulator (like Sniper):
 * the instruction stream, including branch outcomes and memory addresses,
 * is known before timing simulation, so correct-path and wrong-path
 * instructions can be discriminated exactly (paper §III-B).
 */

#ifndef STACKSCOPE_TRACE_INSTRUCTION_HPP
#define STACKSCOPE_TRACE_INSTRUCTION_HPP

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace stackscope::trace {

/**
 * Micro-operation classes.
 *
 * These map onto the component taxonomy of the paper: single-cycle ALU ops,
 * multi-cycle ALU ops (the "ALU latency" component), loads/stores (the
 * "Dcache" component), branches (the "bpred" component), and vector
 * floating-point ops (the FLOPS stack of §III-C).
 */
enum class InstrClass : std::uint8_t {
    kNop,           ///< No-operation; consumes a slot only.
    kAlu,           ///< Single-cycle integer ALU operation.
    kAluMul,        ///< Multi-cycle integer multiply.
    kAluDiv,        ///< Long-latency integer divide (unpipelined).
    kLoad,          ///< Memory load through the data cache.
    kStore,         ///< Memory store (retires via store buffer).
    kBranch,        ///< Conditional branch; outcome carried in the trace.
    kFpAdd,         ///< Scalar floating-point add (multi-cycle).
    kFpMul,         ///< Scalar floating-point multiply (multi-cycle).
    kFpDiv,         ///< Scalar floating-point divide (long, unpipelined).
    kVecFma,        ///< Vector FP fused multiply-add: 2 flops per lane.
    kVecAdd,        ///< Vector FP add: 1 flop per lane.
    kVecMul,        ///< Vector FP multiply: 1 flop per lane.
    kVecInt,        ///< Integer vector op: occupies a VPU, zero flops.
    kVecBroadcast,  ///< Broadcast/permute: occupies a VPU, zero flops.
    kYield,         ///< Thread yield marker (synchronization, "Unsched").
};

/** Number of distinct instruction classes (for array sizing). */
inline constexpr std::size_t kNumInstrClasses =
    static_cast<std::size_t>(InstrClass::kYield) + 1;

/** Short lowercase mnemonic for an instruction class. */
std::string_view toString(InstrClass cls);

/** True for loads and stores. */
constexpr bool
isMemory(InstrClass cls)
{
    return cls == InstrClass::kLoad || cls == InstrClass::kStore;
}

/** True for any op executing on a vector unit (VPU). */
constexpr bool
usesVectorUnit(InstrClass cls)
{
    switch (cls) {
      case InstrClass::kVecFma:
      case InstrClass::kVecAdd:
      case InstrClass::kVecMul:
      case InstrClass::kVecInt:
      case InstrClass::kVecBroadcast:
        return true;
      default:
        return false;
    }
}

/** True for vector floating-point ops (the "VFP" of Table III). */
constexpr bool
isVfp(InstrClass cls)
{
    return cls == InstrClass::kVecFma || cls == InstrClass::kVecAdd ||
           cls == InstrClass::kVecMul;
}

/**
 * Floating-point operations per vector lane: the `a` term of Table III
 * (2 for FMA, 1 for add/multiply, 0 for non-FP).
 */
constexpr unsigned
flopsPerLane(InstrClass cls)
{
    if (cls == InstrClass::kVecFma)
        return 2;
    if (cls == InstrClass::kVecAdd || cls == InstrClass::kVecMul)
        return 1;
    return 0;
}

/** Maximum number of register source operands carried per uop. */
inline constexpr unsigned kMaxSrcs = 3;

/**
 * One dynamic micro-operation as it appears in a trace.
 *
 * Dependences are expressed as *correct-path trace indices* of the producer
 * uops (position in the correct-path stream, starting at 0). Producers are
 * guaranteed by all generators to lie within #kMaxDepDistance of the
 * consumer, which lets the core keep a bounded completion scoreboard.
 */
struct DynInstr
{
    /** Program counter of the uop (drives the instruction cache). */
    Addr pc = 0;

    /** Operation class. */
    InstrClass cls = InstrClass::kAlu;

    /**
     * Decoder occupancy in cycles; values above 1 model microcoded
     * instructions that stall the decoder (the "Microcode" component
     * observed on KNL, paper Fig. 3(d)).
     */
    std::uint8_t decode_cycles = 1;

    /** Number of valid entries in #src. */
    std::uint8_t num_srcs = 0;

    /** Correct-path trace indices of producer uops. */
    std::uint64_t src[kMaxSrcs] = {kNoSeq, kNoSeq, kNoSeq};

    /** Effective (virtual) address for loads and stores. */
    Addr mem_addr = 0;

    /** Branch outcome (valid when cls == kBranch). */
    bool branch_taken = false;

    /**
     * Active (unmasked) vector lanes, the `m` term of Table III.
     * Only meaningful for vector ops; generators set it to the machine
     * vector width for fully unmasked operations.
     */
    std::uint8_t active_lanes = 0;

    /** Cycles the thread stays descheduled (valid when cls == kYield). */
    std::uint32_t yield_cycles = 0;

    /** Convenience accessors. */
    bool isLoad() const { return cls == InstrClass::kLoad; }
    bool isStore() const { return cls == InstrClass::kStore; }
    bool isBranch() const { return cls == InstrClass::kBranch; }
};

/**
 * Upper bound on producer-consumer distance (in correct-path trace indices)
 * that generators may emit. The core sizes its completion scoreboard from
 * this value.
 */
inline constexpr std::uint64_t kMaxDepDistance = 1024;

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_INSTRUCTION_HPP
