#include "trace/workload_library.hpp"

#include <stdexcept>

namespace stackscope::trace {

namespace {

/** Default trace length for the SPEC-ish presets. */
constexpr std::uint64_t kDefaultLength = 1'000'000;

SyntheticParams
base()
{
    SyntheticParams p;
    p.num_instrs = kDefaultLength;
    p.seed = 0xabcd;
    return p;
}

std::vector<Workload>
buildRegistry()
{
    std::vector<Workload> ws;

    {
        // mcf: sparse graph traversal. Dominant Dcache component from
        // pointer chasing far beyond the caches; sizeable bpred component
        // from data-dependent branches (paper Table I, Fig. 3(a)).
        SyntheticParams p = base();
        p.w_alu = 0.335; p.w_mul = 0.10; p.w_div = 0.005; p.w_load = 0.30; p.w_store = 0.06;
        p.w_branch = 0.20;
        p.data_footprint = 2ULL << 20;
        p.hot_frac = 0.90; p.hot_bytes = 24ULL << 10;
        p.pointer_chase_frac = 0.015;
        p.branch_random_frac = 0.12;
        p.branch_dep_load_frac = 0.55;
        p.mul_chain_frac = 0.65;
        p.chain_frac = 0.45;
        ws.push_back({"mcf", "pointer-chase + unpredictable branches", p});
    }
    {
        // cactuBSSN: large instruction footprint whose lines contend with
        // data in the unified L2 (paper Fig. 3(b)).
        SyntheticParams p = base();
        p.w_alu = 0.40; p.w_fp_add = 0.06; p.w_fp_mul = 0.06;
        p.w_load = 0.28; p.w_store = 0.10; p.w_branch = 0.10;
        p.code_footprint = 512ULL << 10;
        p.call_frac = 0.12;
        p.data_footprint = 2ULL << 20;
        p.hot_frac = 0.78; p.hot_bytes = 96ULL << 10;
        p.branch_random_frac = 0.02; p.branch_bias = 0.95;
        p.chain_frac = 0.25;
        ws.push_back({"cactus", "huge code footprint, L2 I/D contention", p});
    }
    {
        // bwaves: dense streaming solver. Prefetcher keeps L2 MSHRs
        // saturated; a modest Icache component never materializes as a
        // speedup because Icache misses queue behind prefetches
        // (paper Fig. 3(c)).
        SyntheticParams p = base();
        p.w_alu = 0.30; p.w_fp_add = 0.08; p.w_fp_mul = 0.08;
        p.w_load = 0.38; p.w_store = 0.10; p.w_branch = 0.06;
        p.data_footprint = 192ULL << 20;
        p.stream_frac = 0.92; p.stream_stride = 8;
        p.code_footprint = 48ULL << 10;
        p.call_frac = 0.05;
        p.branch_random_frac = 0.0; p.branch_bias = 0.98;
        p.chain_frac = 0.15; p.far_dep_frac = 0.3;
        ws.push_back({"bwaves", "streaming + prefetch MSHR contention", p});
    }
    {
        // povray: scalar FP heavy, microcoded ops on small cores, branchy
        // (paper Fig. 3(d)).
        SyntheticParams p = base();
        p.w_alu = 0.34; p.w_mul = 0.04; p.w_fp_add = 0.14; p.w_fp_mul = 0.14;
        p.w_fp_div = 0.01;
        p.w_load = 0.16; p.w_store = 0.05; p.w_branch = 0.12;
        p.microcoded_frac = 0.06; p.microcode_decode_cycles = 4;
        p.data_footprint = 512ULL << 10;
        p.code_footprint = 96ULL << 10;
        p.call_frac = 0.05;
        p.branch_random_frac = 0.14;
        p.chain_frac = 0.35;
        ws.push_back({"povray", "FP latency + microcode + branches", p});
    }
    {
        // imagick: long chains of multi-cycle integer/FP ops; the issue
        // stack reveals the ALU-latency root cause that dispatch/commit
        // blame on dependences (paper Fig. 3(e)).
        SyntheticParams p = base();
        p.w_alu = 0.30; p.w_mul = 0.22; p.w_fp_mul = 0.08;
        p.w_load = 0.22; p.w_store = 0.08; p.w_branch = 0.10;
        p.microcoded_frac = 0.02;
        p.chain_frac = 0.55; p.far_dep_frac = 0.30; p.dep_window = 8;
        p.mul_chain_frac = 0.50;
        p.data_footprint = 256ULL << 10;
        p.code_footprint = 24ULL << 10;
        p.branch_random_frac = 0.03; p.branch_bias = 0.97;
        ws.push_back({"imagick", "multi-cycle ALU dependence chains", p});
    }
    {
        // gcc: balanced integer code, moderate code footprint, branchy.
        SyntheticParams p = base();
        p.w_alu = 0.46; p.w_mul = 0.02; p.w_load = 0.26; p.w_store = 0.09;
        p.w_branch = 0.17;
        p.code_footprint = 112ULL << 10;
        p.call_frac = 0.05;
        p.data_footprint = 4ULL << 20;
        p.hot_frac = 0.90;
        p.branch_random_frac = 0.10;
        ws.push_back({"gcc", "balanced integer, moderate I$ pressure", p});
    }
    {
        // xalancbmk: XML transform; big code, hot dispatch loops.
        SyntheticParams p = base();
        p.w_alu = 0.44; p.w_load = 0.28; p.w_store = 0.08; p.w_branch = 0.20;
        p.code_footprint = 192ULL << 10;
        p.call_frac = 0.06;
        p.data_footprint = 8ULL << 20;
        p.hot_frac = 0.90;
        p.branch_random_frac = 0.08;
        p.pointer_chase_frac = 0.015;
        ws.push_back({"xalancbmk", "large code + indirect-ish branches", p});
    }
    {
        // deepsjeng: game tree search, hard branches, small data.
        SyntheticParams p = base();
        p.w_alu = 0.50; p.w_mul = 0.03; p.w_load = 0.22; p.w_store = 0.06;
        p.w_branch = 0.19;
        p.code_footprint = 48ULL << 10;
        p.data_footprint = 2ULL << 20;
        p.hot_frac = 0.92;
        p.branch_random_frac = 0.22;
        p.branch_dep_load_frac = 0.35;
        ws.push_back({"deepsjeng", "branch-mispredict bound search", p});
    }
    {
        // leela: MCTS go engine; branchy with pointer-rich data.
        SyntheticParams p = base();
        p.w_alu = 0.48; p.w_load = 0.24; p.w_store = 0.06; p.w_branch = 0.22;
        p.code_footprint = 64ULL << 10;
        p.data_footprint = 2ULL << 20;
        p.hot_frac = 0.92;
        p.branch_random_frac = 0.16;
        p.branch_dep_load_frac = 0.30;
        p.pointer_chase_frac = 0.01;
        ws.push_back({"leela", "branches + light pointer chasing", p});
    }
    {
        // exchange2: pure compute, everything fits everywhere.
        SyntheticParams p = base();
        p.w_alu = 0.62; p.w_mul = 0.06; p.w_load = 0.14; p.w_store = 0.06;
        p.w_branch = 0.12;
        p.code_footprint = 12ULL << 10;
        p.data_footprint = 128ULL << 10;
        p.branch_random_frac = 0.02; p.branch_bias = 0.97;
        p.chain_frac = 0.30;
        ws.push_back({"exchange2", "core-bound, near-perfect caches", p});
    }
    {
        // perlbench: interpreter loop; chains + code footprint.
        SyntheticParams p = base();
        p.w_alu = 0.47; p.w_load = 0.26; p.w_store = 0.08; p.w_branch = 0.19;
        p.code_footprint = 160ULL << 10;
        p.call_frac = 0.05;
        p.data_footprint = 4ULL << 20;
        p.hot_frac = 0.90;
        p.branch_random_frac = 0.09;
        p.chain_frac = 0.45;
        ws.push_back({"perlbench", "interpreter: chains + big code", p});
    }
    {
        // x264: SIMD integer kernels over streaming frames.
        SyntheticParams p = base();
        p.w_alu = 0.30; p.w_vec_int = 0.22; p.w_load = 0.28; p.w_store = 0.12;
        p.w_branch = 0.08;
        p.data_footprint = 32ULL << 20;
        p.stream_frac = 0.70; p.stream_stride = 16;
        p.code_footprint = 40ULL << 10;
        p.branch_random_frac = 0.04;
        ws.push_back({"x264", "vector-int streaming", p});
    }
    {
        // omnetpp: discrete event simulation; heap-allocated event lists.
        SyntheticParams p = base();
        p.w_alu = 0.42; p.w_load = 0.30; p.w_store = 0.09; p.w_branch = 0.19;
        p.data_footprint = 16ULL << 20;
        p.hot_frac = 0.86;
        p.pointer_chase_frac = 0.025;
        p.code_footprint = 96ULL << 10;
        p.call_frac = 0.05;
        p.branch_random_frac = 0.10;
        ws.push_back({"omnetpp", "pointer-chase events + branches", p});
    }
    {
        // lbm: lattice Boltzmann; store-heavy streaming.
        SyntheticParams p = base();
        p.w_alu = 0.22; p.w_fp_add = 0.12; p.w_fp_mul = 0.12;
        p.w_load = 0.30; p.w_store = 0.20; p.w_branch = 0.04;
        p.data_footprint = 256ULL << 20;
        p.stream_frac = 0.95; p.stream_stride = 8;
        p.code_footprint = 8ULL << 10;
        p.branch_random_frac = 0.0; p.branch_bias = 0.99;
        ws.push_back({"lbm", "store-heavy streaming FP", p});
    }
    {
        // nab: molecular dynamics; FP multiply/add chains.
        SyntheticParams p = base();
        p.w_alu = 0.26; p.w_fp_add = 0.18; p.w_fp_mul = 0.20; p.w_fp_div = 0.01;
        p.w_load = 0.22; p.w_store = 0.06; p.w_branch = 0.07;
        p.data_footprint = 1ULL << 20;
        p.chain_frac = 0.50; p.dep_window = 12;
        p.code_footprint = 20ULL << 10;
        ws.push_back({"nab", "FP latency chains", p});
    }
    {
        // wrf: weather model; mixed FP + streams + fortran-sized code.
        SyntheticParams p = base();
        p.w_alu = 0.30; p.w_fp_add = 0.12; p.w_fp_mul = 0.12;
        p.w_load = 0.28; p.w_store = 0.10; p.w_branch = 0.08;
        p.data_footprint = 48ULL << 20;
        p.stream_frac = 0.60; p.stream_stride = 8;
        p.code_footprint = 256ULL << 10;
        p.call_frac = 0.06;
        p.branch_random_frac = 0.03;
        ws.push_back({"wrf", "FP + streams + large code", p});
    }
    {
        // fotonik3d: FDTD solver; streaming FP stencils.
        SyntheticParams p = base();
        p.w_alu = 0.24; p.w_fp_add = 0.16; p.w_fp_mul = 0.14;
        p.w_load = 0.32; p.w_store = 0.10; p.w_branch = 0.04;
        p.data_footprint = 160ULL << 20;
        p.stream_frac = 0.88; p.stream_stride = 8;
        p.code_footprint = 16ULL << 10;
        ws.push_back({"fotonik3d", "stencil streaming FP", p});
    }
    {
        // roms: ocean model; streams + stores + some chains.
        SyntheticParams p = base();
        p.w_alu = 0.26; p.w_fp_add = 0.14; p.w_fp_mul = 0.12;
        p.w_load = 0.28; p.w_store = 0.14; p.w_branch = 0.06;
        p.data_footprint = 96ULL << 20;
        p.stream_frac = 0.80; p.stream_stride = 8;
        p.code_footprint = 64ULL << 10;
        p.chain_frac = 0.35;
        ws.push_back({"roms", "streaming FP + stores", p});
    }

    return ws;
}

}  // namespace

const std::vector<Workload> &
allSpecWorkloads()
{
    static const std::vector<Workload> registry = buildRegistry();
    return registry;
}

Workload
findWorkload(const std::string &name)
{
    for (const Workload &w : allSpecWorkloads()) {
        if (w.name == name)
            return w;
    }
    std::string valid;
    for (const Workload &w : allSpecWorkloads()) {
        if (!valid.empty())
            valid += ", ";
        valid += w.name;
    }
    throw std::out_of_range("unknown workload '" + name +
                            "' (valid: " + valid + ")");
}

std::vector<std::string>
allSpecWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allSpecWorkloads())
        names.push_back(w.name);
    return names;
}

}  // namespace stackscope::trace
