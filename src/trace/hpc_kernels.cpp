#include "trace/hpc_kernels.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "trace/trace_builder.hpp"

namespace stackscope::trace {

namespace {

/** Loop body PC: every iteration reuses the same code (icache-resident). */
constexpr Addr kLoopPc = 0x00401000;
/** Base of the B-tile / weight-tile address region (cache resident). */
constexpr Addr kTileBase = 0x20000000;
/** Base of the large input/activation region (streams, misses). */
constexpr Addr kStreamBase = 0x40000000;
/** Base of the output/gradient store region. */
constexpr Addr kStoreBase = 0x60000000;

/**
 * Register blocking: number of independent accumulator chains in the inner
 * loop. GEMM kernels block the n dimension over accumulators, so tiny
 * inference batches leave fewer independent chains (more dependence
 * stalls); 8 is a typical upper bound given 32 architectural vector regs.
 */
unsigned
accumulatorCount(unsigned n)
{
    return std::clamp(n, 1u, 8u);
}

/**
 * Vectorization runs along the m dimension; the last m-block of each strip
 * is masked to m % lanes lanes. Returns the period of masked blocks
 * (one in every `period`), or 0 if m divides evenly.
 */
unsigned
maskPeriod(unsigned m, unsigned lanes)
{
    if (m % lanes == 0)
        return 0;
    return (m + lanes - 1) / lanes;
}

void
buildSgemmKnlJit(TraceBuilder &b, const SgemmConfig &cfg, unsigned lanes,
                 std::uint64_t num_instrs)
{
    // KNL MKL JIT idiom: FMA with memory operand = load uop + FMA uop; the
    // FMA waits on its own L1-resident load every time (paper §V-B).
    const unsigned acc_count = accumulatorCount(cfg.n);
    const unsigned mask_period = maskPeriod(cfg.m, lanes);
    const unsigned tail_lanes = cfg.m % lanes;
    const std::uint64_t tile_bytes = 16 << 10;  // L1-resident B tile

    std::vector<InstrHandle> acc(acc_count);
    b.at(kLoopPc - 0x100);
    for (unsigned u = 0; u < acc_count; ++u)
        acc[u] = b.vadd(lanes);  // accumulator initialization

    std::uint64_t it = 0;
    while (b.size() < num_instrs) {
        b.at(kLoopPc);
        const bool masked =
            mask_period != 0 && (it % mask_period) == mask_period - 1;
        const unsigned m_lanes = masked ? tail_lanes : lanes;
        for (unsigned u = 0; u < acc_count; ++u) {
            const Addr addr =
                kTileBase + ((it * acc_count + u) * 64) % tile_bytes;
            auto ld = b.load(addr);
            acc[u] = b.vfma(m_lanes, {ld, acc[u]});
        }
        auto ptr = b.alu();
        b.branch(true, {ptr});
        ++it;
    }
}

void
buildSgemmSkxBroadcast(TraceBuilder &b, const SgemmConfig &cfg,
                       unsigned lanes, std::uint64_t num_instrs)
{
    // SKX MKL idiom: load an A element, broadcast it across an AVX512
    // register, load the B panel row, and feed register-register FMAs
    // from the broadcast; pointer arithmetic and the loop branch fill the
    // rest of the 4-wide pipeline. The FMA fraction lands just below 50%
    // of uops and the accumulator count below FMA-latency x VPUs, so the
    // kernel is dependence-bound through the broadcast/accumulator chains
    // (paper §V-B: larger dependence component instead of memory).
    const unsigned acc_count = std::min(accumulatorCount(cfg.n), 5u);
    const unsigned mask_period = maskPeriod(cfg.m, lanes);
    const unsigned tail_lanes = cfg.m % lanes;
    const std::uint64_t a_bytes = 24 << 10;
    const std::uint64_t b_bytes = 16 << 10;

    std::vector<InstrHandle> acc(acc_count);
    b.at(kLoopPc - 0x100);
    for (unsigned u = 0; u < acc_count; ++u)
        acc[u] = b.vadd(lanes);

    std::uint64_t it = 0;
    while (b.size() < num_instrs) {
        b.at(kLoopPc);
        const bool masked =
            mask_period != 0 && (it % mask_period) == mask_period - 1;
        const unsigned m_lanes = masked ? tail_lanes : lanes;

        auto ld_a = b.load(kTileBase + (it * 4) % a_bytes);
        auto bc = b.vbroadcast({ld_a});
        auto ld_b = b.load(kTileBase + a_bytes + (it * 64) % b_bytes);
        for (unsigned u = 0; u < acc_count; ++u)
            acc[u] = b.vfma(m_lanes, {bc, ld_b, acc[u]});
        auto p1 = b.alu();
        auto p2 = b.alu({p1});
        b.branch(true, {p2});
        ++it;
    }
}

void
buildConv(TraceBuilder &b, const ConvConfig &cfg, ConvPhase phase,
          unsigned lanes, std::uint64_t num_instrs, std::uint64_t seed,
          bool dual_operand_loads)
{
    // MKL-DNN-style convolution inner loop: address arithmetic (im2col
    // style indexing), input loads with a streaming component that misses
    // the caches, weight loads from a resident tile, and FMAs with memory
    // operands (35% FMA fraction, each paired with a load - the Fig. 5
    // instruction mix), plus periodic barrier yields.
    Rng rng(seed);
    Rng rng_addr = rng.fork();

    const unsigned fma_count = phase == ConvPhase::kFwd ? 4 : 3;
    const unsigned mask_period = maskPeriod(cfg.width, lanes);
    const unsigned tail_lanes = cfg.width % lanes;

    // Input activations: footprint scales with the layer shape, clamped so
    // small layers are cache-resident and large ones stream.
    // Cache blocking keeps the streamed activations within the L2/L3
    // neighbourhood; misses are frequent enough to matter for FLOPS but
    // cheap enough that IPC stays near ideal (Fig. 5).
    const std::uint64_t in_bytes = std::clamp<std::uint64_t>(
        std::uint64_t{cfg.width} * cfg.height * cfg.channels, 384 << 10,
        1 << 20);
    // Weight tiles are register/L1-blocked by the JIT kernels.
    const std::uint64_t w_bytes = std::clamp<std::uint64_t>(
        std::uint64_t{cfg.filters} * cfg.channels * cfg.kernel * cfg.kernel *
            4 / 512,
        4 << 10, 8 << 10);
    // The blocked kernels have few cache misses (paper §V-B: IPC is
    // near-ideal); only a small streaming component reaches the uncore.
    // Backward phases walk the data with somewhat worse locality.
    const double stream_frac = phase == ConvPhase::kFwd ? 0.06
                               : phase == ConvPhase::kBwdFilter ? 0.08
                                                                : 0.10;

    std::vector<InstrHandle> acc(fma_count);
    b.at(kLoopPc - 0x100);
    for (unsigned u = 0; u < fma_count; ++u)
        acc[u] = b.vadd(lanes);

    std::uint64_t it = 0;
    Addr stream_addr = kStreamBase;
    std::uint64_t next_yield = 40'000;
    while (b.size() < num_instrs) {
        if (b.size() >= next_yield) {
            // Barrier synchronization between tiles ("Unsched", Fig. 5).
            b.yield(600);
            next_yield += 40'000;
        }
        if (it % 384 == 383) {
            // im2col / tensor-copy section: pure integer and memory work,
            // no vector FP at all, long enough that the out-of-order
            // window drains its VFP work. These sections are why the
            // FLOPS stack shows a "frontend" component (no VFP
            // instructions available) that the CPI stack cannot see
            // (paper Fig. 4/5).
            b.at(kLoopPc + 0x400);
            for (unsigned j = 0; j < 336; ++j) {
                auto idx = b.alu();
                // The copy walks small L1-resident buffers: the point
                // of the section is the absence of VFP work, not cache
                // pressure.
                auto src = b.load(
                    kTileBase + (2 << 20) + ((it + j) * 64) % (4 << 10),
                    {idx});
                b.store(kTileBase + (3 << 20) + ((it + j) * 64) % (4 << 10),
                        {src});
            }
        }
        b.at(kLoopPc);
        const bool masked =
            mask_period != 0 && (it % mask_period) == mask_period - 1;
        const unsigned m_lanes = masked ? tail_lanes : lanes;

        auto i1 = b.alu();
        auto i2 = b.alu({i1});
        auto i3 = b.alu();
        (void)i3;
        if (rng.chance(0.3))
            b.vint({i2});
        for (unsigned u = 0; u < fma_count; ++u) {
            // Each FMA reads an activation and a weight value from memory
            // (memory-operand FMA plus a weight load): the load ports
            // become the binding resource, so FMAs genuinely wait on
            // their loads — the "memory" component of the FLOPS stack
            // (Fig. 5) even without cache misses.
            Addr act_addr;
            if (rng_addr.chance(stream_frac)) {
                stream_addr += 64;
                if (stream_addr >= kStreamBase + in_bytes)
                    stream_addr = kStreamBase;
                act_addr = stream_addr;
            } else {
                // Reuse-heavy input tile (L1-resident blocking).
                act_addr = kTileBase + rng_addr.below(12 << 10) / 64 * 64;
            }
            auto ld_act = b.load(act_addr, {i2});
            if (dual_operand_loads) {
                // SKX-style: the weight panel is reloaded every step too.
                auto ld_w =
                    b.load(kTileBase + (1 << 20) + rng_addr.below(w_bytes));
                acc[u] = b.vfma(m_lanes, {ld_act, ld_w, acc[u]});
            } else {
                // KNL-style register blocking keeps weights resident.
                acc[u] = b.vfma(m_lanes, {ld_act, acc[u]});
            }
        }
        if (phase != ConvPhase::kFwd) {
            b.store(kStoreBase + (it * 64) % (4 << 20), {acc[0]});
            if (phase == ConvPhase::kBwdData)
                b.store(kStoreBase + (it * 192 + 64) % (8 << 20), {acc[1 % fma_count]});
        }
        auto ptr = b.alu();
        b.branch(true, {ptr});
        ++it;
    }
}

std::vector<HpcBenchmark>
buildSuite()
{
    std::vector<HpcBenchmark> suite;

    const SgemmConfig train_cfgs[] = {
        {1760, 128, 1760}, {1760, 64, 1760}, {2048, 128, 2048},
        {2560, 128, 2560}, {4096, 64, 4096}, {1024, 128, 1024},
        {2048, 32, 2048},  {2560, 64, 2560},
    };
    for (std::size_t i = 0; i < std::size(train_cfgs); ++i) {
        HpcBenchmark bm;
        bm.name = "sgemm_train_" + std::to_string(i);
        bm.group = "sgemm_train";
        bm.is_sgemm = true;
        bm.sgemm = train_cfgs[i];
        suite.push_back(bm);
    }

    const SgemmConfig inf_cfgs[] = {
        {1760, 1, 1760}, {1760, 2, 1760}, {2048, 4, 2048}, {2560, 2, 2560},
        {4096, 4, 4096}, {1024, 8, 1024}, {2048, 1, 2048}, {1760, 4, 1760},
    };
    for (std::size_t i = 0; i < std::size(inf_cfgs); ++i) {
        HpcBenchmark bm;
        bm.name = "sgemm_inf_" + std::to_string(i);
        bm.group = "sgemm_inf";
        bm.is_sgemm = true;
        bm.sgemm = inf_cfgs[i];
        suite.push_back(bm);
    }

    const ConvConfig conv_cfgs[] = {
        {112, 112, 64, 128, 3}, {56, 56, 128, 256, 3}, {28, 28, 256, 512, 3},
        {14, 14, 512, 512, 3},  {7, 7, 512, 512, 3},   {224, 224, 3, 64, 7},
        {56, 56, 64, 64, 1},    {28, 28, 128, 128, 3}, {112, 112, 32, 64, 5},
        {14, 14, 256, 256, 3},
    };
    const struct { ConvPhase phase; const char *group; } phases[] = {
        {ConvPhase::kFwd, "conv_fwd"},
        {ConvPhase::kBwdFilter, "conv_bwd_f"},
        {ConvPhase::kBwdData, "conv_bwd_d"},
    };
    for (const auto &[phase, group] : phases) {
        for (std::size_t i = 0; i < std::size(conv_cfgs); ++i) {
            HpcBenchmark bm;
            bm.name = std::string(group) + "_" + std::to_string(i);
            bm.group = group;
            bm.is_sgemm = false;
            bm.conv = conv_cfgs[i];
            bm.conv_phase = phase;
            suite.push_back(bm);
        }
    }
    return suite;
}

}  // namespace

std::unique_ptr<TraceSource>
makeSgemmTrace(const SgemmConfig &cfg, const HpcTarget &target,
               std::uint64_t num_instrs, std::uint64_t seed)
{
    (void)seed;  // sgemm streams are fully deterministic from the shape
    TraceBuilder b;
    if (target.sgemm_style == SgemmCodegen::kKnlJit)
        buildSgemmKnlJit(b, cfg, target.vec_lanes, num_instrs);
    else
        buildSgemmSkxBroadcast(b, cfg, target.vec_lanes, num_instrs);
    return b.build();
}

std::unique_ptr<TraceSource>
makeConvTrace(const ConvConfig &cfg, ConvPhase phase, const HpcTarget &target,
              std::uint64_t num_instrs, std::uint64_t seed)
{
    TraceBuilder b;
    buildConv(b, cfg, phase, target.vec_lanes, num_instrs, seed,
              target.sgemm_style == SgemmCodegen::kSkxBroadcast);
    return b.build();
}

std::unique_ptr<TraceSource>
HpcBenchmark::make(const HpcTarget &target, std::uint64_t num_instrs) const
{
    if (is_sgemm)
        return makeSgemmTrace(sgemm, target, num_instrs);
    return makeConvTrace(conv, conv_phase, target, num_instrs);
}

const std::vector<HpcBenchmark> &
deepBenchSuite()
{
    static const std::vector<HpcBenchmark> suite = buildSuite();
    return suite;
}

}  // namespace stackscope::trace
