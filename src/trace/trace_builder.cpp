#include "trace/trace_builder.hpp"

#include <cassert>
#include <utility>

namespace stackscope::trace {

VectorTraceSource::VectorTraceSource(std::vector<DynInstr> instrs)
    : instrs_(std::make_shared<const std::vector<DynInstr>>(std::move(instrs)))
{
}

VectorTraceSource::VectorTraceSource(
    std::shared_ptr<const std::vector<DynInstr>> instrs)
    : instrs_(std::move(instrs))
{
    assert(instrs_);
}

bool
VectorTraceSource::next(DynInstr &out)
{
    if (pos_ >= instrs_->size())
        return false;
    out = (*instrs_)[pos_++];
    return true;
}

void
VectorTraceSource::reset()
{
    pos_ = 0;
}

std::unique_ptr<TraceSource>
VectorTraceSource::clone() const
{
    return std::make_unique<VectorTraceSource>(instrs_);
}

TraceBuilder::TraceBuilder() = default;

TraceBuilder &
TraceBuilder::at(Addr pc)
{
    next_pc_ = pc;
    return *this;
}

InstrHandle
TraceBuilder::add(DynInstr instr)
{
    if (instr.pc == 0) {
        instr.pc = next_pc_;
    } else {
        next_pc_ = instr.pc;
    }
    next_pc_ += 4;
    instrs_.push_back(instr);
    return InstrHandle{instrs_.size() - 1};
}

InstrHandle
TraceBuilder::append(InstrClass cls, std::initializer_list<InstrHandle> deps,
                     Addr mem_addr, bool taken, unsigned lanes,
                     unsigned decode_cycles, std::uint32_t yield_cycles)
{
    DynInstr instr;
    instr.pc = next_pc_;
    next_pc_ += 4;
    instr.cls = cls;
    instr.mem_addr = mem_addr;
    instr.branch_taken = taken;
    instr.active_lanes = static_cast<std::uint8_t>(lanes);
    instr.decode_cycles = static_cast<std::uint8_t>(decode_cycles);
    instr.yield_cycles = yield_cycles;
    for (InstrHandle h : deps) {
        assert(h.index != kNoSeq && h.index < instrs_.size());
        assert(instr.num_srcs < kMaxSrcs);
        assert(instrs_.size() - h.index <= kMaxDepDistance);
        instr.src[instr.num_srcs++] = h.index;
    }
    instrs_.push_back(instr);
    return InstrHandle{instrs_.size() - 1};
}

InstrHandle
TraceBuilder::nop()
{
    return append(InstrClass::kNop, {});
}

InstrHandle
TraceBuilder::alu(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kAlu, deps);
}

InstrHandle
TraceBuilder::mul(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kAluMul, deps);
}

InstrHandle
TraceBuilder::div(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kAluDiv, deps);
}

InstrHandle
TraceBuilder::load(Addr addr, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kLoad, deps, addr);
}

InstrHandle
TraceBuilder::store(Addr addr, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kStore, deps, addr);
}

InstrHandle
TraceBuilder::branch(bool taken, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kBranch, deps, 0, taken);
}

InstrHandle
TraceBuilder::fpAdd(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kFpAdd, deps);
}

InstrHandle
TraceBuilder::fpMul(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kFpMul, deps);
}

InstrHandle
TraceBuilder::fpDiv(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kFpDiv, deps);
}

InstrHandle
TraceBuilder::vfma(unsigned lanes, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kVecFma, deps, 0, false, lanes);
}

InstrHandle
TraceBuilder::vadd(unsigned lanes, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kVecAdd, deps, 0, false, lanes);
}

InstrHandle
TraceBuilder::vmul(unsigned lanes, std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kVecMul, deps, 0, false, lanes);
}

InstrHandle
TraceBuilder::vint(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kVecInt, deps);
}

InstrHandle
TraceBuilder::vbroadcast(std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kVecBroadcast, deps);
}

InstrHandle
TraceBuilder::microcoded(unsigned decode_cycles,
                         std::initializer_list<InstrHandle> deps)
{
    return append(InstrClass::kAlu, deps, 0, false, 0, decode_cycles);
}

InstrHandle
TraceBuilder::yield(std::uint32_t cycles)
{
    return append(InstrClass::kYield, {}, 0, false, 0, 1, cycles);
}

TraceBuilder &
TraceBuilder::repeatLast(std::size_t count, std::size_t times)
{
    assert(count <= instrs_.size());
    const std::size_t begin = instrs_.size() - count;
    for (std::size_t t = 0; t < times; ++t) {
        for (std::size_t i = begin; i < begin + count; ++i) {
            DynInstr instr = instrs_[i];
            const std::size_t here = instrs_.size();
            // The copies execute the *same code again* (a loop): they keep
            // the template's PCs, so the icache and the branch predictor
            // see loop behaviour, not straight-line code.
            //
            // Preserve the producer-consumer *distance* of each dependence.
            // This is the natural loop-body semantics: an accumulator that
            // read its value from `count` instructions earlier keeps doing
            // so, chaining iteration to iteration.
            for (unsigned s = 0; s < instr.num_srcs; ++s) {
                const std::uint64_t distance = i - instr.src[s];
                instr.src[s] = here - distance;
            }
            instrs_.push_back(instr);
        }
    }
    return *this;
}

std::unique_ptr<VectorTraceSource>
TraceBuilder::build()
{
    return std::make_unique<VectorTraceSource>(std::move(instrs_));
}

}  // namespace stackscope::trace
