/**
 * @file
 * HPC kernel trace generators standing in for the DeepBench benchmarks
 * (sgemm and convolution) used to evaluate FLOPS stacks (paper §IV, §V-B).
 *
 * The paper runs DeepBench through Intel MKL / MKL-DNN, whose JIT kernels
 * have two documented codegen idioms that drive the Figure 4 results:
 *
 * - KNL JIT sgemm uses FMA instructions *with a memory operand*; each such
 *   instruction splits into a load uop plus an FMA uop, and the FMA waits
 *   on the L1 load — producing a large "memory" FLOPS-stack component even
 *   with few cache misses.
 * - SKX sgemm loads data, *broadcasts* it across an AVX512 register, and
 *   feeds many register-register FMAs from the broadcast — producing a
 *   "dependence" component instead.
 *
 * These generators reproduce exactly that structure, parameterized by the
 * GEMM/conv shape. Convolution adds address arithmetic (lower VFP
 * fraction), edge-tile masking, strided input loads with real cache misses,
 * and periodic synchronization yields (the "Unsched" component of Fig. 5).
 */

#ifndef STACKSCOPE_TRACE_HPC_KERNELS_HPP
#define STACKSCOPE_TRACE_HPC_KERNELS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"

namespace stackscope::trace {

/** MKL-style code generation idiom for sgemm inner loops. */
enum class SgemmCodegen
{
    kKnlJit,        ///< FMA with memory operand: load + FMA uop pair.
    kSkxBroadcast,  ///< load + broadcast feeding register-register FMAs.
};

/** Properties of the machine the kernel is JITed for. */
struct HpcTarget
{
    unsigned vec_lanes = 16;  ///< SP elements per vector (16 for AVX512).
    SgemmCodegen sgemm_style = SgemmCodegen::kSkxBroadcast;
};

/** GEMM problem shape (C[m,n] += A[m,k] * B[k,n]). */
struct SgemmConfig
{
    unsigned m = 1760;
    unsigned n = 128;
    unsigned k = 1760;
};

/** Convolution pass, as in DeepBench training. */
enum class ConvPhase
{
    kFwd,        ///< forward
    kBwdFilter,  ///< backward w.r.t. weights
    kBwdData,    ///< backward w.r.t. input
};

/** Convolution problem shape (simplified NCHW). */
struct ConvConfig
{
    unsigned width = 112;
    unsigned height = 112;
    unsigned channels = 64;
    unsigned filters = 128;
    unsigned kernel = 3;  ///< filter size (kernel x kernel)
};

/** Trace length used for each HPC kernel configuration. */
inline constexpr std::uint64_t kHpcTraceInstrs = 300'000;

/** Generate an sgemm kernel trace for @p target. */
std::unique_ptr<TraceSource> makeSgemmTrace(const SgemmConfig &cfg,
                                            const HpcTarget &target,
                                            std::uint64_t num_instrs =
                                                kHpcTraceInstrs,
                                            std::uint64_t seed = 42);

/** Generate a convolution kernel trace for @p target. */
std::unique_ptr<TraceSource> makeConvTrace(const ConvConfig &cfg,
                                           ConvPhase phase,
                                           const HpcTarget &target,
                                           std::uint64_t num_instrs =
                                               kHpcTraceInstrs,
                                           std::uint64_t seed = 42);

/**
 * One DeepBench-style benchmark configuration: a kernel shape plus the
 * benchmark group it reports under (Fig. 4 averages per group).
 */
struct HpcBenchmark
{
    std::string name;
    std::string group;  ///< sgemm_train | sgemm_inf | conv_fwd | conv_bwd_f | conv_bwd_d

    bool is_sgemm = true;
    SgemmConfig sgemm{};
    ConvConfig conv{};
    ConvPhase conv_phase = ConvPhase::kFwd;

    /** Instantiate the trace, JITed for @p target. */
    std::unique_ptr<TraceSource> make(const HpcTarget &target,
                                      std::uint64_t num_instrs =
                                          kHpcTraceInstrs) const;
};

/**
 * The full DeepBench-inspired suite: sgemm training and inference shapes
 * plus convolution shapes in all three phases (paper §IV simulates 235
 * sgemm and 3x94 conv configurations; we use a representative subset, see
 * DESIGN.md "Substitutions").
 */
const std::vector<HpcBenchmark> &deepBenchSuite();

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_HPC_KERNELS_HPP
