/**
 * @file
 * Parameterized synthetic instruction-stream generator.
 *
 * Replaces the SPEC CPU 2017 traces of the paper's evaluation (§IV) with
 * deterministic streams whose bottleneck structure is controllable:
 * instruction mix, dependence distance distribution, code and data
 * footprints, branch predictability, pointer chasing, streaming, microcode
 * density and synchronization yields. The workload library
 * (trace/workload_library.hpp) instantiates presets mimicking the paper's
 * named benchmarks.
 */

#ifndef STACKSCOPE_TRACE_SYNTHETIC_GENERATOR_HPP
#define STACKSCOPE_TRACE_SYNTHETIC_GENERATOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace_source.hpp"

namespace stackscope::trace {

/**
 * Generator knobs. All probabilities in [0, 1]; instruction-mix weights are
 * normalized internally.
 */
struct SyntheticParams
{
    /** Trace length in correct-path uops. */
    std::uint64_t num_instrs = 1'000'000;

    /** Master seed; the full stream is a pure function of params + seed. */
    std::uint64_t seed = 1;

    /** @name Instruction mix weights @{ */
    double w_alu = 0.50;      ///< single-cycle integer
    double w_mul = 0.02;      ///< multi-cycle integer multiply
    double w_div = 0.00;      ///< long-latency divide
    double w_load = 0.25;
    double w_store = 0.08;
    double w_branch = 0.15;
    double w_fp_add = 0.0;
    double w_fp_mul = 0.0;
    double w_fp_div = 0.0;
    double w_vec_fma = 0.0;
    double w_vec_add = 0.0;
    double w_vec_int = 0.0;
    /** @} */

    /** Fraction of non-memory compute ops that are microcoded. */
    double microcoded_frac = 0.0;
    /** Decoder occupancy of a microcoded op. */
    unsigned microcode_decode_cycles = 4;

    /** @name Dependence behaviour @{ */
    /** Probability of depending on the immediately preceding uop. */
    double chain_frac = 0.30;
    /** Probability of a uniform-random producer within dep_window. */
    double far_dep_frac = 0.40;
    /** Window (in uops) for far dependences; must be <= kMaxDepDistance. */
    unsigned dep_window = 32;
    /** Probability of a second source operand. */
    double second_src_frac = 0.20;
    /**
     * Fraction of multi-cycle ALU ops that chain onto the previous one
     * (accumulator recurrences). Exposed as the "ALU lat" component when
     * cache misses are idealized away (paper Table I, mcf on KNL).
     */
    double mul_chain_frac = 0.3;
    /**
     * Fraction of branches that compare a recently loaded value
     * (data-dependent branches). When such a load misses, the branch
     * resolves late — this is what makes bpred and Dcache penalties
     * overlap (paper Table I, mcf on BDW).
     */
    double branch_dep_load_frac = 0.15;
    /** @} */

    /** @name Data memory behaviour @{ */
    std::uint64_t data_footprint = 1 << 20;  ///< bytes of cold data
    /**
     * Fraction of plain loads that hit a small hot region (cache-resident
     * working set); the rest are uniform over the cold footprint.
     */
    double hot_frac = 0.85;
    std::uint64_t hot_bytes = 16 << 10;
    /** Fraction of loads that stream sequentially (prefetcher-friendly). */
    double stream_frac = 0.0;
    unsigned stream_stride = 64;
    /** Fraction of loads forming a pointer-chase chain over the cold
     *  footprint (serialized misses). */
    double pointer_chase_frac = 0.0;
    /** Fraction of loads aliasing a recent store (issue-stage conflicts). */
    double store_load_conflict_frac = 0.0;
    /** @} */

    /** @name Code / icache behaviour @{ */
    /**
     * Bytes of distinct code. The instruction at each address is a pure
     * function of the address (real code is static), so branch predictor
     * tables and the instruction cache see realistic per-PC behaviour.
     */
    std::uint64_t code_footprint = 16 << 10;
    /** Size of one "function": taken branches mostly stay inside it. */
    std::uint64_t function_bytes = 4 << 10;
    /** Fraction of taken branches that call a random other function. */
    double call_frac = 0.06;
    /** @} */

    /** @name Branch behaviour @{ */
    /** Fraction of *static* branches with a random (unpredictable) outcome. */
    double branch_random_frac = 0.0;
    /** Taken-probability of the remaining (biased, predictable) branches. */
    double branch_bias = 0.92;
    /** @} */

    /** @name Vector behaviour @{ */
    unsigned vec_lanes = 8;        ///< active lanes of unmasked vector ops
    double vec_mask_frac = 0.0;    ///< fraction of vector ops partially masked
    /** @} */

    /** @name Synchronization @{ */
    std::uint64_t yield_every = 0;  ///< uops between yields (0 = never)
    std::uint32_t yield_cycles = 0;
    /** @} */
};

/**
 * Streaming trace source realizing SyntheticParams. O(1) memory; reset()
 * and clone() reproduce the identical stream.
 */
class SyntheticGenerator : public TraceSource
{
  public:
    explicit SyntheticGenerator(const SyntheticParams &params);

    bool next(DynInstr &out) override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

    const SyntheticParams &params() const { return params_; }

  private:
    /** @name Packed static code properties (one byte per PC) @{ */
    static constexpr std::uint8_t kScValid = 0x80;     ///< entry computed
    static constexpr std::uint8_t kScClassMask = 0x0f; ///< InstrClass value
    static constexpr std::uint8_t kScMicro = 0x10;     ///< microcoded op
    static constexpr std::uint8_t kScBrRandom = 0x20;  ///< random-outcome br
    static constexpr std::uint8_t kScBrBias = 0x40;    ///< biased-taken br
    /** @} */

    void reseed();
    InstrClass classAt(Addr pc) const;
    std::uint8_t staticCodeAt(Addr pc);
    void fillDeps(DynInstr &instr);
    Addr pickLoadAddr(DynInstr &instr);
    Addr pickStoreAddr();
    void advancePc(DynInstr &instr, std::uint8_t sc);

    SyntheticParams params_;

    // Derived, fixed after construction: cumulative mix distribution.
    std::array<double, 12> mix_cumulative_{};
    std::array<InstrClass, 12> mix_classes_{};

    /**
     * Lazily filled per-PC cache of the static code properties (opcode
     * class, microcode flag, branch bias) that are pure functions of
     * params + seed + address. One byte per 4-byte code slot; 0 means
     * "not computed yet". Survives reset() — the code image is static.
     */
    std::vector<std::uint8_t> code_cache_;

    // Per-stream state (reset() restores).
    Rng rng_class_{0};
    Rng rng_dep_{0};
    Rng rng_mem_{0};
    Rng rng_branch_{0};
    Rng rng_misc_{0};
    std::uint64_t index_ = 0;
    Addr pc_ = 0;
    Addr stream_addr_ = 0;
    std::uint64_t chase_producer_ = kNoSeq;  ///< index of last chase load
    std::uint64_t last_load_index_ = kNoSeq;
    std::uint64_t last_mul_index_ = kNoSeq;
    static constexpr unsigned kRecentStores = 8;
    std::array<Addr, kRecentStores> recent_stores_{};
    unsigned recent_store_count_ = 0;
};

}  // namespace stackscope::trace

#endif  // STACKSCOPE_TRACE_SYNTHETIC_GENERATOR_HPP
