#include "runner/job_spec.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "validate/invariants.hpp"

namespace stackscope::runner {

namespace {

const char *
specModeName(stacks::SpeculationMode mode)
{
    switch (mode) {
      case stacks::SpeculationMode::kOracle: return "oracle";
      case stacks::SpeculationMode::kSimple: return "simple";
      case stacks::SpeculationMode::kSpecCounters: return "spec-counters";
    }
    return "oracle";
}

}  // namespace

std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
canonicalJson(const JobSpec &spec)
{
    const sim::SimOptions &o = spec.options;
    obs::JsonWriter w;
    w.beginObject()
        .key("workload").value(spec.workload)
        .key("machine").value(spec.machine)
        .key("cores").value(spec.cores)
        .key("instrs").value(spec.instrs)
        .key("options").beginObject()
        .key("spec_mode").value(specModeName(o.spec_mode))
        .key("accounting").value(o.accounting)
        .key("engine").value(o.reference_engine ? "reference" : "batched")
        .key("max_cycles").value(static_cast<std::uint64_t>(o.max_cycles))
        .key("warmup_instrs");
    if (o.warmup_instrs)
        w.value(*o.warmup_instrs);
    else
        w.null();
    w.key("validation").value(validate::toString(o.validation))
        .key("validation_interval")
        .value(static_cast<std::uint64_t>(o.validation_interval))
        .key("watchdog_cycles")
        .value(static_cast<std::uint64_t>(o.watchdog_cycles))
        .key("deadline_cycles")
        .value(static_cast<std::uint64_t>(o.deadline_cycles))
        .key("job_timeout_seconds").value(o.job_timeout_seconds)
        .key("fault");
    if (o.fault) {
        w.value(std::string(validate::toString(o.fault->kind)) + ":" +
                std::to_string(o.fault->seed));
    } else {
        w.null();
    }
    w.key("interval_cycles")
        .value(static_cast<std::uint64_t>(o.obs.interval_cycles))
        .key("trace_events").value(o.obs.trace_events)
        .key("trace_capacity")
        .value(static_cast<std::uint64_t>(o.obs.trace_capacity))
        .endObject()
        .endObject();
    return w.str();
}

std::string
specHash(const JobSpec &spec)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(canonicalJson(spec))));
    return buf;
}

}  // namespace stackscope::runner
