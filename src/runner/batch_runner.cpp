#include "runner/batch_runner.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace stackscope::runner {

namespace {

/** Cycles and instructions one finished job contributed. */
void
jobWork(const JobOutcome &outcome, std::uint64_t &cycles,
        std::uint64_t &instrs)
{
    cycles = 0;
    instrs = 0;
    if (outcome.multi) {
        for (const sim::SimResult &core : outcome.multi->per_core) {
            cycles += core.cycles;
            instrs += core.instrs;
        }
    } else {
        cycles = outcome.single.cycles;
        instrs = outcome.single.instrs;
    }
}

}  // namespace

SimJob
makeJob(std::string label, sim::MachineConfig machine,
        const trace::TraceSource &trace, sim::SimOptions options,
        unsigned cores)
{
    SimJob job;
    job.label = std::move(label);
    job.machine = std::move(machine);
    job.trace = trace.clone();
    job.options = options;
    job.cores = cores;
    return job;
}

BatchResult
BatchRunner::run(std::vector<SimJob> jobs, ProgressObserver *progress)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("runner.batches_total").inc();
    reg.counter("runner.batch_jobs_total").inc(jobs.size());
    log::debug("runner", "batch started",
               {{"jobs", jobs.size()}, {"threads", pool_.threads()}});

    struct Slot
    {
        JobOutcome outcome;
        std::exception_ptr error;
        bool ran = false;
    };
    std::vector<Slot> slots(jobs.size());
    std::atomic<bool> cancel{false};
    std::atomic<std::size_t> done{0};
    const std::size_t total = jobs.size();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool_.submit([&jobs, &slots, &cancel, &done, total, progress, i] {
            if (cancel.load(std::memory_order_acquire))
                return;
            const SimJob &job = jobs[i];
            Slot &slot = slots[i];
            slot.outcome.label = job.label;
            try {
                if (job.cores > 1) {
                    slot.outcome.multi = sim::simulateMulticore(
                        job.machine, *job.trace, job.cores, job.options);
                } else {
                    slot.outcome.single =
                        sim::simulate(job.machine, *job.trace, job.options);
                }
                slot.ran = true;
            } catch (...) {
                slot.error = std::current_exception();
                cancel.store(true, std::memory_order_release);
                log::error("runner", "job failed, cancelling batch",
                           {{"job", job.label}, {"job_index", i}});
            }
            if (progress != nullptr) {
                std::uint64_t cycles = 0;
                std::uint64_t instrs = 0;
                if (slot.ran)
                    jobWork(slot.outcome, cycles, instrs);
                progress->onJobDone(
                    done.fetch_add(1, std::memory_order_acq_rel) + 1,
                    total, cycles, instrs);
            }
        });
    }
    pool_.waitIdle();
    log::debug("runner", "batch finished", {{"jobs", jobs.size()}});

    // Rethrow the lowest-indexed failure with the job identity attached.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].error)
            continue;
        try {
            std::rethrow_exception(slots[i].error);
        } catch (const StackscopeError &e) {
            StackscopeError out = e;
            throw out.withContext("job", jobs[i].label)
                .withContext("job_index", std::to_string(i));
        } catch (const std::exception &e) {
            throw StackscopeError(ErrorCategory::kInternal, e.what())
                .withContext("job", jobs[i].label)
                .withContext("job_index", std::to_string(i));
        }
    }

    BatchResult out;
    out.outcomes.reserve(slots.size());
    if (!jobs.empty())
        out.validation.policy = jobs.front().options.validation;
    for (Slot &slot : slots) {
        if (slot.ran) {
            const validate::ValidationReport &rep =
                slot.outcome.validation();
            for (const validate::Violation &v : rep.violations) {
                out.validation.add(v.invariant,
                                   "job " + slot.outcome.label + ": " +
                                       v.detail,
                                   v.cycle);
            }
            out.validation.checks_run += rep.checks_run;
        }
        out.outcomes.push_back(std::move(slot.outcome));
    }
    return out;
}

}  // namespace stackscope::runner
