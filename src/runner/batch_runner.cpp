#include "runner/batch_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace stackscope::runner {

namespace {

/** Cycles and instructions one finished job contributed. */
void
jobWork(const JobOutcome &outcome, std::uint64_t &cycles,
        std::uint64_t &instrs)
{
    cycles = 0;
    instrs = 0;
    if (outcome.multi) {
        for (const sim::SimResult &core : outcome.multi->per_core) {
            cycles += core.cycles;
            instrs += core.instrs;
        }
    } else {
        cycles = outcome.single.cycles;
        instrs = outcome.single.instrs;
    }
}

/** The resilience counters; registered up front so a clean batch still
 *  publishes them (at 0) into host_metrics snapshots. */
struct BatchCounters
{
    obs::Counter ok;
    obs::Counter retries;
    obs::Counter timeout;
    obs::Counter quarantined;
    obs::Counter skipped;

    explicit BatchCounters(obs::MetricsRegistry &reg)
        : ok(reg.counter("runner.jobs_ok_total")),
          retries(reg.counter("runner.job_retries_total")),
          timeout(reg.counter("runner.jobs_timeout_total")),
          quarantined(reg.counter("runner.jobs_quarantined_total")),
          skipped(reg.counter("runner.jobs_skipped_total"))
    {
    }
};

}  // namespace

const char *
toString(JobStatus s)
{
    switch (s) {
      case JobStatus::kOk:
        return "ok";
      case JobStatus::kRetried:
        return "retried";
      case JobStatus::kTimeout:
        return "timeout";
      case JobStatus::kQuarantined:
        return "quarantined";
      case JobStatus::kSkipped:
        return "skipped";
    }
    return "?";
}

std::chrono::milliseconds
RetryPolicy::delayFor(unsigned retry) const
{
    if (retry == 0 || backoff.count() <= 0)
        return std::chrono::milliseconds{0};
    std::chrono::milliseconds delay = backoff;
    for (unsigned i = 1; i < retry && delay < backoff_cap; ++i)
        delay *= 2;
    return delay < backoff_cap ? delay : backoff_cap;
}

StatusTally
BatchResult::tally() const
{
    StatusTally t;
    for (const JobOutcome &o : outcomes) {
        switch (o.status) {
          case JobStatus::kOk:
            ++t.ok;
            break;
          case JobStatus::kRetried:
            ++t.retried;
            break;
          case JobStatus::kTimeout:
            ++t.timeout;
            break;
          case JobStatus::kQuarantined:
            ++t.quarantined;
            break;
          case JobStatus::kSkipped:
            ++t.skipped;
            break;
        }
    }
    return t;
}

int
BatchResult::exitCode() const
{
    const StatusTally t = tally();
    if (t.completed() == outcomes.size())
        return 0;
    return t.completed() == 0 ? kExitTotalFailure : kExitPartialSuccess;
}

SimJob
makeJob(std::string label, sim::MachineConfig machine,
        const trace::TraceSource &trace, sim::SimOptions options,
        unsigned cores)
{
    SimJob job;
    job.label = std::move(label);
    job.machine = std::move(machine);
    job.trace = trace.clone();
    job.options = options;
    job.cores = cores;
    return job;
}

BatchResult
BatchRunner::run(std::vector<SimJob> jobs, ProgressObserver *progress,
                 const BatchOptions &options)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("runner.batches_total").inc();
    reg.counter("runner.batch_jobs_total").inc(jobs.size());
    BatchCounters counters(reg);
    log::debug("runner", "batch started",
               {{"jobs", jobs.size()},
                {"threads", pool_.threads()},
                {"keep_going", options.keep_going},
                {"max_retries", options.retry.max_retries}});

    struct Slot
    {
        JobOutcome outcome;
        std::exception_ptr error;
    };
    std::vector<Slot> slots(jobs.size());
    std::atomic<bool> cancel{false};
    std::atomic<std::size_t> done{0};
    const std::size_t total = jobs.size();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool_.submit([&jobs, &slots, &cancel, &done, &options, &counters,
                      total, progress, i] {
            const SimJob &job = jobs[i];
            Slot &slot = slots[i];
            slot.outcome.label = job.label;
            if (cancel.load(std::memory_order_acquire))
                return;

            const unsigned max_attempts = options.retry.max_retries + 1;
            StackscopeError last(ErrorCategory::kInternal, "never ran");
            bool succeeded = false;
            for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
                try {
                    sim::SimOptions opt = job.options;
                    opt.attempt = attempt;
                    if (job.cores > 1) {
                        slot.outcome.multi = sim::simulateMulticore(
                            job.machine, *job.trace, job.cores, opt);
                    } else {
                        slot.outcome.single =
                            sim::simulate(job.machine, *job.trace, opt);
                    }
                    slot.outcome.attempts = attempt + 1;
                    slot.outcome.status = attempt == 0
                                              ? JobStatus::kOk
                                              : JobStatus::kRetried;
                    succeeded = true;
                    break;
                } catch (const StackscopeError &e) {
                    last = e;
                } catch (const std::exception &e) {
                    last = StackscopeError(ErrorCategory::kInternal,
                                           e.what());
                }
                slot.outcome.attempts = attempt + 1;
                if (!retryableCategory(last.category()) ||
                    attempt + 1 == max_attempts ||
                    cancel.load(std::memory_order_acquire))
                    break;
                counters.retries.inc();
                log::warn("runner", "job failed, retrying",
                          {{"job", job.label},
                           {"attempt", attempt + 1},
                           {"error", last.describe()}});
                const auto delay = options.retry.delayFor(attempt + 1);
                if (delay.count() > 0)
                    std::this_thread::sleep_for(delay);
            }

            if (succeeded) {
                counters.ok.inc();
            } else {
                slot.outcome.status =
                    last.category() == ErrorCategory::kWatchdog
                        ? JobStatus::kTimeout
                        : JobStatus::kQuarantined;
                slot.outcome.error = last.describe();
                slot.outcome.error_category = last.category();
                slot.error = std::make_exception_ptr(last);
                (slot.outcome.status == JobStatus::kTimeout
                     ? counters.timeout
                     : counters.quarantined)
                    .inc();
                if (options.keep_going) {
                    log::warn("runner", "job failed, continuing batch",
                              {{"job", job.label},
                               {"job_index", i},
                               {"status", toString(slot.outcome.status)},
                               {"attempts", slot.outcome.attempts}});
                } else {
                    cancel.store(true, std::memory_order_release);
                    log::error("runner", "job failed, cancelling batch",
                               {{"job", job.label}, {"job_index", i}});
                }
            }

            if (options.on_outcome)
                options.on_outcome(i, slot.outcome);
            if (progress != nullptr) {
                std::uint64_t cycles = 0;
                std::uint64_t instrs = 0;
                if (slot.outcome.completed())
                    jobWork(slot.outcome, cycles, instrs);
                progress->onJobDone(
                    done.fetch_add(1, std::memory_order_acq_rel) + 1,
                    total, cycles, instrs, slot.outcome.status);
            }
        });
    }
    pool_.waitIdle();
    for (const Slot &slot : slots) {
        if (slot.outcome.status == JobStatus::kSkipped)
            counters.skipped.inc();
    }
    log::debug("runner", "batch finished", {{"jobs", jobs.size()}});

    // Fail-fast: rethrow the lowest-indexed failure with the job identity
    // attached. Under keep_going failures stay in their outcome slots.
    if (!options.keep_going) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (!slots[i].error)
                continue;
            try {
                std::rethrow_exception(slots[i].error);
            } catch (const StackscopeError &e) {
                StackscopeError out = e;
                throw out.withContext("job", jobs[i].label)
                    .withContext("job_index", std::to_string(i))
                    .withContext("attempts",
                                 std::to_string(slots[i].outcome.attempts));
            } catch (const std::exception &e) {
                throw StackscopeError(ErrorCategory::kInternal, e.what())
                    .withContext("job", jobs[i].label)
                    .withContext("job_index", std::to_string(i));
            }
        }
    }

    BatchResult out;
    out.outcomes.reserve(slots.size());
    if (!jobs.empty())
        out.validation.policy = jobs.front().options.validation;
    for (Slot &slot : slots) {
        if (slot.outcome.completed()) {
            const validate::ValidationReport &rep =
                slot.outcome.validation();
            for (const validate::Violation &v : rep.violations) {
                out.validation.add(v.invariant,
                                   "job " + slot.outcome.label + ": " +
                                       v.detail,
                                   v.cycle);
            }
            out.validation.checks_run += rep.checks_run;
        }
        out.outcomes.push_back(std::move(slot.outcome));
    }
    return out;
}

}  // namespace stackscope::runner
