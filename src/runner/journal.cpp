#include "runner/journal.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace stackscope::runner {

namespace {

constexpr std::string_view kHeaderMagic = "stackscope-journal v1 ";

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

std::string
crcHex(std::uint32_t crc)
{
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    return buf;
}

std::string
serializeRecord(const JournalRecord &r)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("spec").value(r.spec_hash)
        .key("label").value(r.label)
        .key("status").value(r.status)
        .key("attempts").value(r.attempts)
        .key("job").value(r.job_json)
        .key("csv").value(r.csv)
        .endObject();
    return w.str();
}

/** Parse one checksummed payload; false on any structural problem. */
bool
parseRecord(std::string_view payload, JournalRecord &out)
{
    try {
        const obs::JsonValue v = obs::parseJson(payload);
        if (!v.isObject())
            return false;
        out.spec_hash = v.at("spec").string;
        out.label = v.at("label").string;
        out.status = v.at("status").string;
        out.attempts = static_cast<unsigned>(v.at("attempts").number);
        out.job_json = v.at("job").string;
        out.csv = v.at("csv").string;
        return true;
    } catch (const StackscopeError &) {
        return false;
    }
}

int
openForAppend(const std::string &path, bool truncate)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "cannot open sweep journal for writing")
            .withContext("path", path)
            .withContext("errno", std::strerror(errno));
    }
    return fd;
}

void
writeDurably(int fd, const std::string &path, std::string_view line)
{
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw StackscopeError(ErrorCategory::kInternal,
                                  "sweep journal write failed")
                .withContext("path", path)
                .withContext("errno", std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        throw StackscopeError(ErrorCategory::kInternal,
                              "sweep journal fsync failed")
            .withContext("path", path)
            .withContext("errno", std::strerror(errno));
    }
}

}  // namespace

std::uint32_t
crc32(std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data)
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
              (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

SweepJournal::SweepJournal(SweepJournal &&other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_),
      records_(std::move(other.records_))
{
    other.fd_ = -1;
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

SweepJournal
SweepJournal::create(const std::string &path,
                     const std::string &sweep_hash)
{
    const int fd = openForAppend(path, /*truncate=*/true);
    SweepJournal journal(path, fd);
    writeDurably(fd, path,
                 std::string(kHeaderMagic) + sweep_hash + "\n");
    return journal;
}

SweepJournal
SweepJournal::resume(const std::string &path,
                     const std::string &sweep_hash)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "cannot open sweep journal for resume")
            .withContext("path", path);
    }
    std::string header;
    if (!std::getline(in, header) ||
        header.rfind(kHeaderMagic, 0) != 0) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "not a stackscope sweep journal")
            .withContext("path", path);
    }
    const std::string recorded_hash =
        header.substr(kHeaderMagic.size());
    if (recorded_hash != sweep_hash) {
        throw StackscopeError(
            ErrorCategory::kUsage,
            "journal belongs to a different sweep (its job grid or "
            "options differ from this invocation)")
            .withContext("path", path)
            .withContext("journal_sweep", recorded_hash)
            .withContext("this_sweep", sweep_hash);
    }

    std::vector<JournalRecord> records;
    std::string line;
    std::size_t line_no = 1;
    bool tail_dropped = false;
    // Byte offset just past the last intact line; a corrupt tail is cut
    // back to it so fresh appends never land after garbage.
    auto valid_end = static_cast<off_t>(in.tellg());
    while (std::getline(in, line)) {
        ++line_no;
        // "<crc32hex> <payload>"; anything that does not verify is the
        // crash tail (or corruption) — stop, the rest re-simulates.
        bool ok = false;
        JournalRecord rec;
        if (line.size() > 9 && line[8] == ' ') {
            const std::string_view payload =
                std::string_view(line).substr(9);
            if (crcHex(crc32(payload)) == line.substr(0, 8))
                ok = parseRecord(payload, rec);
        }
        if (!ok) {
            tail_dropped = true;
            log::warn("runner",
                      "journal record failed checksum/parse; dropping it "
                      "and everything after (crash tail)",
                      {{"path", path}, {"line", line_no}});
            break;
        }
        valid_end = static_cast<off_t>(in.tellg());
        records.push_back(std::move(rec));
    }
    in.close();

    if (tail_dropped && ::truncate(path.c_str(), valid_end) != 0) {
        throw StackscopeError(ErrorCategory::kUsage,
                              "cannot truncate corrupt journal tail")
            .withContext("path", path)
            .withContext("errno", std::strerror(errno));
    }

    const int fd = openForAppend(path, /*truncate=*/false);
    SweepJournal journal(path, fd);
    journal.records_ = std::move(records);
    log::debug("runner", "journal resumed",
               {{"path", path},
                {"records", journal.records_.size()},
                {"tail_dropped", tail_dropped}});
    return journal;
}

void
SweepJournal::append(const JournalRecord &record)
{
    const std::string payload = serializeRecord(record);
    const std::string line =
        crcHex(crc32(payload)) + " " + payload + "\n";
    std::lock_guard<std::mutex> lock(mutex_);
    writeDurably(fd_, path_, line);
}

const JournalRecord *
SweepJournal::find(std::string_view spec_hash) const
{
    for (const JournalRecord &r : records_) {
        if (r.spec_hash == spec_hash)
            return &r;
    }
    return nullptr;
}

}  // namespace stackscope::runner
