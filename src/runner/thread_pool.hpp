/**
 * @file
 * Work-stealing thread pool for the batch-simulation engine.
 *
 * Every figure of the paper is assembled from dozens of *independent*
 * simulations (idealization pairs, speculation modes, workload x machine
 * grids). Those jobs are embarrassingly parallel but wildly uneven in
 * length — an idealized run can finish in half the cycles of its real
 * counterpart — so a static partition would leave workers idle. Each
 * worker therefore owns a deque: it pushes and pops its own work LIFO
 * (cache-warm) and steals FIFO from the front of a random-start victim
 * scan when it runs dry, which balances the long tail automatically.
 */

#ifndef STACKSCOPE_RUNNER_THREAD_POOL_HPP
#define STACKSCOPE_RUNNER_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace stackscope::runner {

/**
 * Fixed-size pool of worker threads with per-worker work-stealing deques.
 *
 * submit() never blocks; waitIdle() blocks until every task submitted so
 * far has finished. The destructor drains all remaining tasks and joins.
 * Tasks must not throw — wrap fallible work and capture the exception
 * (BatchRunner does exactly that).
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Point-in-time scheduling statistics. When the pool is idle,
     * own_pops + steals == completed == submitted, and every task was
     * popped exactly once (tests/runner asserts this).
     */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t own_pops = 0;
        std::uint64_t steals = 0;
        /** Total wall time workers spent asleep waiting for work. */
        std::uint64_t idle_micros = 0;
    };

    /** @param threads worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p task. Calls from a worker thread of this pool push onto
     * that worker's own deque (depth-first, cache-warm); external calls
     * are distributed round-robin.
     */
    void submit(Task task);

    /** Block until all tasks submitted so far have completed. */
    void waitIdle();

    /** Tasks submitted but not yet finished (queued + executing). */
    std::size_t pending() const
    {
        return pending_.load(std::memory_order_relaxed);
    }

    /** Scheduling counters for this pool instance. */
    Stats stats() const;

    /** std::thread::hardware_concurrency(), clamped to at least 1. */
    static unsigned hardwareThreads();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> deque;
    };

    void workerLoop(unsigned index);
    /** Own deque back first, then steal from the other workers' fronts. */
    bool tryPop(unsigned index, Task &out);
    /** Any queue non-empty? (slow path, used under sleep_mutex_). */
    bool haveWork();
    void push(unsigned index, Task task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards the sleep/wake protocol, not the deques. */
    std::mutex sleep_mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;

    /** Tasks submitted but not yet finished. */
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<bool> stopping_{false};

    /** Per-instance scheduling counters (see Stats). */
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> own_pops_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> idle_micros_{0};

    /** Process-wide series in MetricsRegistry::global(). */
    obs::Counter m_submitted_;
    obs::Counter m_completed_;
    obs::Counter m_own_pops_;
    obs::Counter m_steals_;
    obs::Counter m_idle_micros_;
    obs::Gauge m_queue_depth_;
};

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_THREAD_POOL_HPP
