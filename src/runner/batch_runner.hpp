/**
 * @file
 * Batch-simulation engine: execute any set of (machine, trace, options)
 * simulation points concurrently and deterministically.
 *
 * Every job owns a private clone of its trace source and constructs its
 * own core inside sim::simulate() / sim::simulateMulticore(), so no state
 * is shared between jobs and the results are bit-identical to running the
 * same points serially, regardless of thread count or scheduling order.
 * This is the parallel layer the paper's host simulator (Sniper) and
 * gem5-style batch harnesses provide around their own cores: the
 * simulations themselves stay single-threaded and reproducible, the
 * *batch* saturates the machine.
 */

#ifndef STACKSCOPE_RUNNER_BATCH_RUNNER_HPP
#define STACKSCOPE_RUNNER_BATCH_RUNNER_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/thread_pool.hpp"
#include "sim/multicore.hpp"
#include "sim/simulation.hpp"

namespace stackscope::runner {

/** One simulation point: a machine, a trace, options and a core count. */
struct SimJob
{
    /** Identifies the job in merged reports and error context. */
    std::string label;
    sim::MachineConfig machine;
    /** Owned clone; the job's run clones it again, so a job is reusable. */
    std::unique_ptr<trace::TraceSource> trace;
    sim::SimOptions options{};
    /** 1 = sim::simulate(); >1 = sim::simulateMulticore(). */
    unsigned cores = 1;
};

/** Build a SimJob, cloning @p trace (the argument is not consumed). */
SimJob makeJob(std::string label, sim::MachineConfig machine,
               const trace::TraceSource &trace,
               sim::SimOptions options = {}, unsigned cores = 1);

/** Result of one job, in the shape its core count produced. */
struct JobOutcome
{
    std::string label;
    /** Valid when the job ran with cores == 1. */
    sim::SimResult single{};
    /** Set when the job ran with cores > 1. */
    std::optional<sim::MulticoreResult> multi{};

    const validate::ValidationReport &
    validation() const
    {
        return multi ? multi->validation : single.validation;
    }
};

/** All outcomes of one batch, in submission order. */
struct BatchResult
{
    std::vector<JobOutcome> outcomes;
    /**
     * Per-job reports merged into one, each violation detail prefixed
     * with the job label; per-job reports stay in the outcomes.
     */
    validate::ValidationReport validation{};
};

/**
 * Observes batch progress as jobs complete. onJobDone() is called from
 * worker threads (once per finished job, successful or not) and must be
 * thread-safe; it must not throw. Heartbeat implements this to print live
 * progress lines.
 */
class ProgressObserver
{
  public:
    virtual ~ProgressObserver() = default;

    /**
     * @param jobs_done   jobs finished so far, including this one.
     * @param jobs_total  jobs in the batch.
     * @param cycles      simulated cycles this job contributed.
     * @param instrs      instructions this job committed.
     */
    virtual void onJobDone(std::size_t jobs_done, std::size_t jobs_total,
                           std::uint64_t cycles, std::uint64_t instrs) = 0;
};

/**
 * Executes batches of SimJobs on a work-stealing thread pool.
 *
 * Determinism: outcomes are indexed by submission order and every result
 * is bit-identical to calling simulate()/simulateMulticore() serially
 * with the same arguments.
 *
 * Failure: when any job throws (e.g. a strict-policy validation failure),
 * the batch is cancelled — queued jobs are skipped, in-flight jobs finish
 * — and the error of the lowest-indexed failed job is rethrown with
 * "job"/"job_index" context attached. Which jobs were already skipped
 * when the failure hit is scheduling-dependent; the no-failure results
 * are not.
 */
class BatchRunner
{
  public:
    /** @param threads worker count; 0 = all hardware threads. */
    explicit BatchRunner(unsigned threads = 0) : pool_(threads) {}

    unsigned threads() const { return pool_.threads(); }

    /** Run every job; blocks until the batch completes or fails. */
    BatchResult run(std::vector<SimJob> jobs,
                    ProgressObserver *progress = nullptr);

    /** Scheduling statistics of the underlying pool. */
    ThreadPool::Stats poolStats() const { return pool_.stats(); }

  private:
    ThreadPool pool_;
};

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_BATCH_RUNNER_HPP
