/**
 * @file
 * Batch-simulation engine: execute any set of (machine, trace, options)
 * simulation points concurrently and deterministically.
 *
 * Every job owns a private clone of its trace source and constructs its
 * own core inside sim::simulate() / sim::simulateMulticore(), so no state
 * is shared between jobs and the results are bit-identical to running the
 * same points serially, regardless of thread count or scheduling order.
 * This is the parallel layer the paper's host simulator (Sniper) and
 * gem5-style batch harnesses provide around their own cores: the
 * simulations themselves stay single-threaded and reproducible, the
 * *batch* saturates the machine.
 */

#ifndef STACKSCOPE_RUNNER_BATCH_RUNNER_HPP
#define STACKSCOPE_RUNNER_BATCH_RUNNER_HPP

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runner/thread_pool.hpp"
#include "sim/multicore.hpp"
#include "sim/simulation.hpp"

namespace stackscope::runner {

/** One simulation point: a machine, a trace, options and a core count. */
struct SimJob
{
    /** Identifies the job in merged reports and error context. */
    std::string label;
    sim::MachineConfig machine;
    /** Owned clone; the job's run clones it again, so a job is reusable. */
    std::unique_ptr<trace::TraceSource> trace;
    sim::SimOptions options{};
    /** 1 = sim::simulate(); >1 = sim::simulateMulticore(). */
    unsigned cores = 1;
};

/** Build a SimJob, cloning @p trace (the argument is not consumed). */
SimJob makeJob(std::string label, sim::MachineConfig machine,
               const trace::TraceSource &trace,
               sim::SimOptions options = {}, unsigned cores = 1);

/** Final disposition of one batch job. */
enum class JobStatus
{
    kOk,           ///< completed on the first attempt
    kRetried,      ///< completed after one or more retries
    kTimeout,      ///< exhausted retries on a watchdog/deadline error
    kQuarantined,  ///< exhausted retries on any other error
    kSkipped,      ///< never ran (batch cancelled before its turn)
};

const char *toString(JobStatus s);

/** Bounded-attempt retry with exponential backoff. */
struct RetryPolicy
{
    /** Extra attempts after the first; 0 = fail on the first error. */
    unsigned max_retries = 0;
    /** Delay before the first retry; doubles per retry up to the cap. */
    std::chrono::milliseconds backoff{50};
    std::chrono::milliseconds backoff_cap{2000};

    /** Delay before retry number @p retry (1-based). */
    std::chrono::milliseconds delayFor(unsigned retry) const;
};

/** Result of one job, in the shape its core count produced. */
struct JobOutcome
{
    std::string label;
    /** Valid when the job ran with cores == 1. */
    sim::SimResult single{};
    /** Set when the job ran with cores > 1. */
    std::optional<sim::MulticoreResult> multi{};

    JobStatus status = JobStatus::kSkipped;
    /** Simulation attempts actually made (0 when skipped). */
    unsigned attempts = 0;
    /** describe() of the final error; empty when the job completed. */
    std::string error;
    /** Category of the final error; meaningful only when !completed(). */
    ErrorCategory error_category = ErrorCategory::kInternal;

    /** True when the job produced a usable result. */
    bool
    completed() const
    {
        return status == JobStatus::kOk || status == JobStatus::kRetried;
    }

    const validate::ValidationReport &
    validation() const
    {
        return multi ? multi->validation : single.validation;
    }
};

/** Per-status job counts of a finished batch. */
struct StatusTally
{
    std::size_t ok = 0;
    std::size_t retried = 0;
    std::size_t timeout = 0;
    std::size_t quarantined = 0;
    std::size_t skipped = 0;

    std::size_t completed() const { return ok + retried; }
    std::size_t failed() const { return timeout + quarantined; }
};

/** All outcomes of one batch, in submission order. */
struct BatchResult
{
    std::vector<JobOutcome> outcomes;
    /**
     * Per-job reports merged into one, each violation detail prefixed
     * with the job label; per-job reports stay in the outcomes. Only
     * *completed* jobs contribute: conservation checks on a job that
     * timed out or was quarantined are meaningless.
     */
    validate::ValidationReport validation{};

    StatusTally tally() const;

    /**
     * Batch exit code: 0 when every job completed, kExitTotalFailure
     * when none did, kExitPartialSuccess otherwise (failed or skipped
     * jobs alongside completed ones).
     */
    int exitCode() const;
};

/**
 * Observes batch progress as jobs complete. onJobDone() is called from
 * worker threads (once per finished job, successful or not) and must be
 * thread-safe; it must not throw. Heartbeat implements this to print live
 * progress lines.
 */
class ProgressObserver
{
  public:
    virtual ~ProgressObserver() = default;

    /**
     * @param jobs_done   jobs finished so far, including this one.
     * @param jobs_total  jobs in the batch.
     * @param cycles      simulated cycles this job contributed.
     * @param instrs      instructions this job committed.
     * @param status      the job's final disposition.
     */
    virtual void onJobDone(std::size_t jobs_done, std::size_t jobs_total,
                           std::uint64_t cycles, std::uint64_t instrs,
                           JobStatus status) = 0;
};

/** Failure-handling policy for one batch. */
struct BatchOptions
{
    /**
     * false (default): the first job that exhausts its retries cancels
     * the batch and run() rethrows its error — the historical
     * all-or-nothing behaviour. true: failed jobs are quarantined in
     * their outcome slots and the rest of the batch continues.
     */
    bool keep_going = false;
    RetryPolicy retry{};
    /**
     * Called from worker threads once per job that reaches a final
     * status by running (never for skipped jobs), after the outcome
     * slot is fully written. Must be thread-safe and must not throw.
     * The sweep journal hooks in here to persist completed points.
     */
    std::function<void(std::size_t job_index, const JobOutcome &outcome)>
        on_outcome{};
};

/**
 * Executes batches of SimJobs on a work-stealing thread pool.
 *
 * Determinism: outcomes are indexed by submission order and every result
 * is bit-identical to calling simulate()/simulateMulticore() serially
 * with the same arguments.
 *
 * Failure: each failing job is retried per BatchOptions::retry while its
 * error is retryable (watchdog/validation categories), then reaches a
 * final failed status (kTimeout for watchdog errors, kQuarantined
 * otherwise). Under the default fail-fast policy the first such job
 * cancels the batch — queued jobs are skipped, in-flight jobs finish —
 * and run() rethrows the error of the lowest-indexed failed job with
 * "job"/"job_index" context. Under keep_going the batch runs to the end
 * and failures stay isolated in their outcome slots; the caller decides
 * via BatchResult::exitCode(). Which jobs get skipped by a fail-fast
 * cancel is scheduling-dependent; every other result is deterministic.
 */
class BatchRunner
{
  public:
    /** @param threads worker count; 0 = all hardware threads. */
    explicit BatchRunner(unsigned threads = 0) : pool_(threads) {}

    unsigned threads() const { return pool_.threads(); }

    /** Run every job; blocks until the batch completes or fails. */
    BatchResult run(std::vector<SimJob> jobs,
                    ProgressObserver *progress = nullptr,
                    const BatchOptions &options = {});

    /** Scheduling statistics of the underlying pool. */
    ThreadPool::Stats poolStats() const { return pool_.stats(); }

  private:
    ThreadPool pool_;
};

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_BATCH_RUNNER_HPP
