#include "runner/heartbeat.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace stackscope::runner {

namespace {

bool
stderrIsTty()
{
#if defined(__unix__) || defined(__APPLE__)
    return isatty(fileno(stderr)) == 1;
#else
    return false;
#endif
}

/** "mm:ss" (or "hh:mm:ss" past an hour). */
std::string
formatDuration(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    const auto total = static_cast<std::uint64_t>(seconds + 0.5);
    char buf[32];
    if (total >= 3600) {
        std::snprintf(buf, sizeof(buf), "%llu:%02llu:%02llu",
                      static_cast<unsigned long long>(total / 3600),
                      static_cast<unsigned long long>(total / 60 % 60),
                      static_cast<unsigned long long>(total % 60));
    } else {
        std::snprintf(buf, sizeof(buf), "%02llu:%02llu",
                      static_cast<unsigned long long>(total / 60),
                      static_cast<unsigned long long>(total % 60));
    }
    return buf;
}

}  // namespace

std::string
formatHeartbeatLine(const std::string &tag, std::size_t jobs_done,
                    std::size_t jobs_total, std::size_t failed,
                    std::size_t retried, std::uint64_t cycles_done,
                    double elapsed_seconds, bool final_line)
{
    std::string line = "[" + tag + "] " + std::to_string(jobs_done) + "/" +
                       std::to_string(jobs_total) + " jobs";
    if (cycles_done > 0 && elapsed_seconds > 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "  %.3g cycles/s",
                      static_cast<double>(cycles_done) / elapsed_seconds);
        line += buf;
    } else {
        line += "  -- cycles/s";
    }
    if (failed > 0)
        line += "  " + std::to_string(failed) + " failed";
    if (retried > 0)
        line += "  " + std::to_string(retried) + " retried";
    if (final_line) {
        line += "  done in " + formatDuration(elapsed_seconds);
    } else if (jobs_done > 0 && elapsed_seconds > 0.0) {
        constexpr double kEtaCap = 24.0 * 3600.0;
        const double eta = elapsed_seconds *
                           static_cast<double>(jobs_total - jobs_done) /
                           static_cast<double>(jobs_done);
        if (eta > kEtaCap)
            line += "  ETA >" + formatDuration(kEtaCap);
        else
            line += "  ETA " + formatDuration(eta);
    }
    return line;
}

bool
Heartbeat::enabledFromEnv()
{
    if (const char *env = std::getenv("STACKSCOPE_PROGRESS"))
        return env[0] == '1';
    return stderrIsTty();
}

Heartbeat::Heartbeat(std::string tag)
    : tag_(std::move(tag)),
      enabled_(enabledFromEnv()),
      tty_(stderrIsTty()),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_)
{
}

Heartbeat::~Heartbeat()
{
    finish();
}

void
Heartbeat::onJobDone(std::size_t jobs_done, std::size_t jobs_total,
                     std::uint64_t cycles, std::uint64_t instrs,
                     JobStatus status)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    cycles_done_ += cycles;
    instrs_done_ += instrs;
    if (status == JobStatus::kTimeout || status == JobStatus::kQuarantined)
        ++failed_;
    else if (status == JobStatus::kRetried)
        ++retried_;
    if (finished_)
        return;
    // Overwriting a TTY line is cheap; spamming a log file is not.
    const auto min_gap =
        tty_ ? std::chrono::milliseconds(250) : std::chrono::milliseconds(2000);
    const auto now = std::chrono::steady_clock::now();
    const bool last = jobs_done >= jobs_total;
    if (!last && now - last_print_ < min_gap)
        return;
    last_print_ = now;
    printLine(jobs_done, jobs_total, last);
    if (last)
        finished_ = true;
}

void
Heartbeat::finish()
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
        finished_ = true;
        return;
    }
    finished_ = true;
    if (line_open_) {
        std::fputc('\n', stderr);
        line_open_ = false;
    }
}

void
Heartbeat::printLine(std::size_t jobs_done, std::size_t jobs_total,
                     bool final_line)
{
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string line =
        formatHeartbeatLine(tag_, jobs_done, jobs_total, failed_, retried_,
                            cycles_done_, elapsed, final_line);

    if (tty_) {
        std::fprintf(stderr, "\r\033[2K%s", line.c_str());
        line_open_ = true;
        if (final_line) {
            std::fputc('\n', stderr);
            line_open_ = false;
        }
        std::fflush(stderr);
    } else {
        std::fprintf(stderr, "%s\n", line.c_str());
    }
}

}  // namespace stackscope::runner
