/**
 * @file
 * Canonical job-spec serialization and hashing.
 *
 * A sweep point is fully determined by (workload, machine, cores,
 * instruction count, simulation options): simulations are deterministic,
 * so that tuple is a content address for the result. The canonical JSON
 * form — fixed key order, every result-affecting option spelled out, the
 * runtime-only retry attempt excluded — is hashed (FNV-1a 64) into a
 * 16-hex-digit key. The sweep journal uses it to match completed points
 * on `--resume`, and the future serve-cache will use the same key, so
 * the canonical form is a contract: changing it orphans every existing
 * journal and cache entry.
 */

#ifndef STACKSCOPE_RUNNER_JOB_SPEC_HPP
#define STACKSCOPE_RUNNER_JOB_SPEC_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/simulation.hpp"

namespace stackscope::runner {

/** Identity of one simulation point. */
struct JobSpec
{
    /** Workload name (synthetic generator / kernel identity). */
    std::string workload;
    /** Machine configuration name. */
    std::string machine;
    unsigned cores = 1;
    /** Measured instruction count of the workload. */
    std::uint64_t instrs = 0;
    sim::SimOptions options{};
};

/** FNV-1a 64-bit hash. */
std::uint64_t fnv1a64(std::string_view data);

/**
 * Deterministic JSON serialization of @p spec: fixed key order, no
 * whitespace, SimOptions::attempt excluded (retries must not change the
 * identity of a point).
 */
std::string canonicalJson(const JobSpec &spec);

/** fnv1a64(canonicalJson(spec)) as 16 lowercase hex digits. */
std::string specHash(const JobSpec &spec);

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_JOB_SPEC_HPP
