/**
 * @file
 * Crash-safe on-disk sweep journal.
 *
 * A killed sweep must not throw away hours of completed simulation. The
 * journal is an append-only line-oriented file: a header binding it to
 * one sweep (the FNV-1a hash over every point's spec hash), then one
 * CRC32-checksummed record per *completed* job — its spec hash, final
 * status, and the exact report fragment and CSV rows the cold run would
 * have produced, stored verbatim so a resumed sweep replays them
 * byte-for-byte. Every append is written with a single write() and
 * fsync'd before returning, so a record is either durably complete or
 * absent; load() verifies each line's checksum and stops at the first
 * corrupt/truncated one (the crash tail), re-simulating only what is
 * missing. Failed jobs are deliberately not journaled: their faults are
 * deterministic and must re-fail (or succeed under new limits) on
 * resume.
 *
 * The journal deliberately treats the report fragment and CSV text as
 * opaque payloads: the runner layer sits below the report builder in the
 * library stack, and the replay contract is byte-identity, not
 * interpretation.
 */

#ifndef STACKSCOPE_RUNNER_JOURNAL_HPP
#define STACKSCOPE_RUNNER_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stackscope::runner {

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320). */
std::uint32_t crc32(std::string_view data);

/** One journaled (completed) job. */
struct JournalRecord
{
    /** Canonical spec hash of the point (see job_spec.hpp). */
    std::string spec_hash;
    std::string label;
    /** Final status: "ok" or "retried". */
    std::string status;
    unsigned attempts = 1;
    /** Report job fragment, verbatim. */
    std::string job_json;
    /** CSV rows (newline-separated, no trailing newline), verbatim. */
    std::string csv;
};

/**
 * Append-side and resume-side handle on one journal file. Thread-safe:
 * append() may be called concurrently from batch worker threads.
 */
class SweepJournal
{
  public:
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;
    SweepJournal(SweepJournal &&) noexcept;
    ~SweepJournal();

    /**
     * Start a fresh journal at @p path (truncating any existing file)
     * for the sweep identified by @p sweep_hash. Throws
     * StackscopeError(kUsage) when the file cannot be created.
     */
    static SweepJournal create(const std::string &path,
                               const std::string &sweep_hash);

    /**
     * Open @p path for resumption: verify the header matches
     * @p sweep_hash (kUsage error otherwise — resuming a journal from a
     * different sweep would silently mix results), load every intact
     * record, drop a corrupt/truncated tail with a warning, and keep the
     * file open for further appends.
     */
    static SweepJournal resume(const std::string &path,
                               const std::string &sweep_hash);

    /** Durably append one record (single write + fsync). Thread-safe. */
    void append(const JournalRecord &record);

    /** Records loaded by resume(), in file order. */
    const std::vector<JournalRecord> &records() const { return records_; }

    /** Loaded record with @p spec_hash, or nullptr. */
    const JournalRecord *find(std::string_view spec_hash) const;

    const std::string &path() const { return path_; }

  private:
    SweepJournal(std::string path, int fd)
        : path_(std::move(path)), fd_(fd)
    {
    }

    std::string path_;
    int fd_ = -1;
    std::mutex mutex_;
    std::vector<JournalRecord> records_;
};

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_JOURNAL_HPP
