/**
 * @file
 * Live progress heartbeat for long batch runs.
 *
 * A 48-point sweep can run for minutes with nothing on the terminal; the
 * heartbeat prints a short stderr line as jobs complete — completed/total,
 * aggregate simulated cycles per second, and an ETA extrapolated from the
 * jobs finished so far. On a TTY the line overwrites itself with '\r'; in
 * a pipe it degrades to plain lines (throttled harder) so logs stay
 * readable. STACKSCOPE_PROGRESS=0/1 overrides the isatty(stderr) default,
 * which keeps CI output clean without any flag plumbing.
 */

#ifndef STACKSCOPE_RUNNER_HEARTBEAT_HPP
#define STACKSCOPE_RUNNER_HEARTBEAT_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "runner/batch_runner.hpp"

namespace stackscope::runner {

/**
 * Renders one heartbeat line. Pure and testable: "[tag] done/total jobs
 * rate  [counts]  ETA/done-in". The rate reads "--" until at least one
 * simulated cycle has been observed (a "0 cycles/s" first interval is a
 * lie, not a measurement), failed/retried counts appear only when
 * nonzero, and the ETA — extrapolated from finished jobs — is shown only
 * once defined and clamped to 24h so a collapsed rate cannot print a
 * nonsense horizon.
 */
std::string formatHeartbeatLine(const std::string &tag,
                                std::size_t jobs_done,
                                std::size_t jobs_total, std::size_t failed,
                                std::size_t retried,
                                std::uint64_t cycles_done,
                                double elapsed_seconds, bool final_line);

/**
 * ProgressObserver that prints heartbeat lines to stderr. Safe to pass to
 * BatchRunner::run() unconditionally: when disabled (not a TTY and not
 * forced on) every callback is a no-op.
 */
class Heartbeat : public ProgressObserver
{
  public:
    /** @param tag short prefix identifying the command ("sweep", ...). */
    explicit Heartbeat(std::string tag);

    /** Terminates a pending overwrite line (as if finish() was called). */
    ~Heartbeat() override;

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    /** True when lines will actually be printed. */
    bool enabled() const { return enabled_; }

    void onJobDone(std::size_t jobs_done, std::size_t jobs_total,
                   std::uint64_t cycles, std::uint64_t instrs,
                   JobStatus status) override;

    /** Print the final line and a newline; further callbacks are no-ops. */
    void finish();

    /** STACKSCOPE_PROGRESS override, else isatty(stderr). */
    static bool enabledFromEnv();

  private:
    void printLine(std::size_t jobs_done, std::size_t jobs_total,
                   bool final_line);

    const std::string tag_;
    const bool enabled_;
    const bool tty_;
    const std::chrono::steady_clock::time_point start_;

    std::mutex mutex_;
    std::chrono::steady_clock::time_point last_print_;
    std::uint64_t cycles_done_ = 0;
    std::uint64_t instrs_done_ = 0;
    std::size_t failed_ = 0;
    std::size_t retried_ = 0;
    bool line_open_ = false;
    bool finished_ = false;
};

}  // namespace stackscope::runner

#endif  // STACKSCOPE_RUNNER_HEARTBEAT_HPP
