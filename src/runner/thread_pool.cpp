#include "runner/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace stackscope::runner {

namespace {

/**
 * Identifies the pool (and worker slot) the current thread belongs to, so
 * nested submit() calls go to the caller's own deque. Plain globals are
 * fine: a thread belongs to at most one pool for its whole lifetime.
 */
thread_local const ThreadPool *tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

}  // namespace

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
{
    // Same names every instance: the global registry deduplicates, so
    // successive pools (one per sweep, per test, ...) extend one series.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    m_submitted_ = reg.counter("runner.tasks_submitted_total");
    m_completed_ = reg.counter("runner.tasks_completed_total");
    m_own_pops_ = reg.counter("runner.own_pops_total");
    m_steals_ = reg.counter("runner.steals_total");
    m_idle_micros_ = reg.counter("runner.worker_idle_micros_total");
    m_queue_depth_ = reg.gauge("runner.queue_depth");

    const unsigned n = threads == 0 ? hardwareThreads() : threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_.store(true, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::push(unsigned index, Task task)
{
    {
        Worker &w = *workers_[index];
        std::lock_guard<std::mutex> lock(w.mutex);
        w.deque.push_back(std::move(task));
    }
    // Publish under sleep_mutex_ so a worker that just found its queues
    // empty re-checks before sleeping (no lost wakeup).
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    work_cv_.notify_one();
}

void
ThreadPool::submit(Task task)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    m_submitted_.inc();
    const std::size_t depth =
        pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
    m_queue_depth_.set(static_cast<double>(depth));
    if (tls_pool == this) {
        push(tls_worker, std::move(task));
        return;
    }
    const std::size_t slot =
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    push(static_cast<unsigned>(slot), std::move(task));
}

bool
ThreadPool::tryPop(unsigned index, Task &out)
{
    {
        Worker &own = *workers_[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.deque.empty()) {
            out = std::move(own.deque.back());
            own.deque.pop_back();
            own_pops_.fetch_add(1, std::memory_order_relaxed);
            m_own_pops_.inc();
            return true;
        }
    }
    // Steal oldest-first from the other workers, starting just past us so
    // thieves spread over victims instead of all hammering worker 0.
    const unsigned n = threads();
    for (unsigned k = 1; k < n; ++k) {
        Worker &victim = *workers_[(index + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.deque.empty()) {
            out = std::move(victim.deque.front());
            victim.deque.pop_front();
            steals_.fetch_add(1, std::memory_order_relaxed);
            m_steals_.inc();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::haveWork()
{
    for (const auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mutex);
        if (!w->deque.empty())
            return true;
    }
    return false;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.own_pops = own_pops_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.idle_micros = idle_micros_.load(std::memory_order_relaxed);
    return s;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

void
ThreadPool::workerLoop(unsigned index)
{
    tls_pool = this;
    tls_worker = index;
    for (;;) {
        Task task;
        if (tryPop(index, task)) {
            task();
            task = nullptr;  // release captures before signalling idle
            completed_.fetch_add(1, std::memory_order_relaxed);
            m_completed_.inc();
            const std::size_t left =
                pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
            m_queue_depth_.set(static_cast<double>(left));
            if (left == 0) {
                std::lock_guard<std::mutex> lock(sleep_mutex_);
                idle_cv_.notify_all();
            }
            continue;
        }
        const auto idle_start = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stopping_.load(std::memory_order_acquire) && !haveWork())
            return;
        work_cv_.wait(lock, [this] {
            return stopping_.load(std::memory_order_acquire) || haveWork();
        });
        const auto idle_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - idle_start)
                .count();
        idle_micros_.fetch_add(static_cast<std::uint64_t>(idle_us),
                               std::memory_order_relaxed);
        m_idle_micros_.inc(static_cast<std::uint64_t>(idle_us));
        if (stopping_.load(std::memory_order_acquire) && !haveWork())
            return;
    }
}

}  // namespace stackscope::runner
