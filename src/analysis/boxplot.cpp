#include "analysis/boxplot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace stackscope::analysis {

BoxPlotEntry
makeBox(std::string label, std::vector<double> samples)
{
    BoxPlotEntry e;
    e.label = std::move(label);
    e.summary = fiveNumberSummary(samples);
    e.samples = std::move(samples);
    return e;
}

std::string
renderBoxPlot(const std::vector<BoxPlotEntry> &boxes,
              const std::string &title, unsigned width)
{
    std::ostringstream out;
    out << title << "\n";
    if (boxes.empty())
        return out.str();

    double lo = 0.0;
    double hi = 0.0;
    for (const BoxPlotEntry &b : boxes) {
        lo = std::min(lo, b.summary.min);
        hi = std::max(hi, b.summary.max);
    }
    if (hi - lo < 1e-12) {
        lo -= 1.0;
        hi += 1.0;
    }
    const double span = hi - lo;
    auto col = [&](double x) {
        const double t = (x - lo) / span;
        return static_cast<unsigned>(
            std::clamp(t, 0.0, 1.0) * (width - 1));
    };

    std::size_t label_w = 0;
    for (const BoxPlotEntry &b : boxes)
        label_w = std::max(label_w, b.label.size());

    for (const BoxPlotEntry &b : boxes) {
        std::string row(width, ' ');
        const FiveNumberSummary &s = b.summary;
        for (unsigned i = col(s.min); i <= col(s.q1); ++i)
            row[i] = '-';
        for (unsigned i = col(s.q1); i <= col(s.q3); ++i)
            row[i] = '=';
        for (unsigned i = col(s.q3); i <= col(s.max); ++i)
            row[i] = '-';
        row[col(s.median)] = '|';
        if (lo <= 0.0 && 0.0 <= hi && row[col(0.0)] == ' ')
            row[col(0.0)] = '.';
        out << "  ";
        out.width(static_cast<int>(label_w));
        out << std::left << b.label << " [" << row << "]\n";
    }

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  axis: [%+.3f .. %+.3f]   ('|' median, '=' IQR,"
                  " '-' whiskers)\n",
                  lo, hi);
    out << buf;
    for (const BoxPlotEntry &b : boxes) {
        const FiveNumberSummary &s = b.summary;
        std::snprintf(buf, sizeof(buf),
                      "  %-12s n=%-3zu min=%+.3f q1=%+.3f med=%+.3f "
                      "q3=%+.3f max=%+.3f\n",
                      b.label.c_str(), s.count, s.min, s.q1, s.median, s.q3,
                      s.max);
        out << buf;
    }
    return out.str();
}

}  // namespace stackscope::analysis
