#include "analysis/csv.hpp"

#include <cstdio>
#include <sstream>

namespace stackscope::analysis {

namespace {

template <typename E>
std::string
stackHeader(const std::string &label_col)
{
    std::ostringstream out;
    out << label_col;
    for (std::size_t i = 0; i < stacks::StackT<E>::kSize; ++i)
        out << ',' << componentName(static_cast<E>(i));
    return out.str();
}

template <typename E>
std::string
stackRow(const std::string &label, const stacks::StackT<E> &stack)
{
    std::ostringstream out;
    out << csvField(label);
    char buf[32];
    stack.forEach([&](E, double v) {
        std::snprintf(buf, sizeof(buf), ",%.6g", v);
        out << buf;
    });
    return out.str();
}

}  // namespace

std::string
csvField(std::string_view text)
{
    if (text.find_first_of(",\"\r\n") == std::string_view::npos)
        return std::string(text);
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
parseCsvLine(std::string_view line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"' && cur.empty()) {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(std::move(cur));
    return fields;
}

std::string
cpiStackCsvHeader(const std::string &label_col)
{
    return stackHeader<stacks::CpiComponent>(label_col);
}

std::string
toCsvRow(const std::string &label, const stacks::CpiStack &stack)
{
    return stackRow(label, stack);
}

std::string
flopsStackCsvHeader(const std::string &label_col)
{
    return stackHeader<stacks::FlopsComponent>(label_col);
}

std::string
toCsvRow(const std::string &label, const stacks::FlopsStack &stack)
{
    return stackRow(label, stack);
}

std::string
toCsvRow(const std::string &label, const std::vector<double> &values)
{
    std::ostringstream out;
    out << label;
    char buf[32];
    for (double v : values) {
        std::snprintf(buf, sizeof(buf), ",%.6g", v);
        out << buf;
    }
    return out.str();
}

}  // namespace stackscope::analysis
