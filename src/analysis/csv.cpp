#include "analysis/csv.hpp"

#include <cstdio>
#include <sstream>

namespace stackscope::analysis {

namespace {

template <typename E>
std::string
stackHeader(const std::string &label_col)
{
    std::ostringstream out;
    out << label_col;
    for (std::size_t i = 0; i < stacks::StackT<E>::kSize; ++i)
        out << ',' << componentName(static_cast<E>(i));
    return out.str();
}

template <typename E>
std::string
stackRow(const std::string &label, const stacks::StackT<E> &stack)
{
    std::ostringstream out;
    out << label;
    char buf[32];
    stack.forEach([&](E, double v) {
        std::snprintf(buf, sizeof(buf), ",%.6g", v);
        out << buf;
    });
    return out.str();
}

}  // namespace

std::string
cpiStackCsvHeader(const std::string &label_col)
{
    return stackHeader<stacks::CpiComponent>(label_col);
}

std::string
toCsvRow(const std::string &label, const stacks::CpiStack &stack)
{
    return stackRow(label, stack);
}

std::string
flopsStackCsvHeader(const std::string &label_col)
{
    return stackHeader<stacks::FlopsComponent>(label_col);
}

std::string
toCsvRow(const std::string &label, const stacks::FlopsStack &stack)
{
    return stackRow(label, stack);
}

std::string
toCsvRow(const std::string &label, const std::vector<double> &values)
{
    std::ostringstream out;
    out << label;
    char buf[32];
    for (double v : values) {
        std::snprintf(buf, sizeof(buf), ",%.6g", v);
        out << buf;
    }
    return out.str();
}

}  // namespace stackscope::analysis
