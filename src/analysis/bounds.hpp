/**
 * @file
 * Multi-stage CPI stack analysis: per-component bounds across the three
 * stage stacks and the error metric of the paper's validation study (§V-A).
 */

#ifndef STACKSCOPE_ANALYSIS_BOUNDS_HPP
#define STACKSCOPE_ANALYSIS_BOUNDS_HPP

#include <array>
#include <span>
#include <string>
#include <vector>

#include "runner/batch_runner.hpp"
#include "sim/simulation.hpp"
#include "stacks/stack.hpp"

namespace stackscope::analysis {

/** The three per-stage CPI stacks of one run (CPI units). */
struct MultiStageStacks
{
    stacks::CpiStack dispatch;
    stacks::CpiStack issue;
    stacks::CpiStack commit;

    const stacks::CpiStack &
    at(stacks::Stage s) const
    {
        switch (s) {
          case stacks::Stage::kDispatch: return dispatch;
          case stacks::Stage::kIssue: return issue;
          default: return commit;
        }
    }
};

/** Lower/upper bound of one component across the three stacks. */
struct ComponentBounds
{
    double lo = 0.0;
    double hi = 0.0;

    bool
    contains(double x) const
    {
        return x >= lo && x <= hi;
    }
};

/** Min/max of @p c over the dispatch, issue and commit stacks. */
ComponentBounds componentBounds(const MultiStageStacks &ms,
                                stacks::CpiComponent c);

/**
 * Error of a single stack's component as a predictor of the actual CPI
 * reduction: predicted − actual (signed, §V-A).
 */
double singleStackError(const stacks::CpiStack &stack,
                        stacks::CpiComponent c, double actual_reduction);

/**
 * Error of the multi-stage representation: 0 when the actual reduction
 * lies within the bounds, otherwise the signed error of the closest
 * single-stack component (§V-A).
 */
double multiStageError(const MultiStageStacks &ms, stacks::CpiComponent c,
                       double actual_reduction);

/** The three per-stage CPI stacks of a completed run. */
MultiStageStacks multiStageOf(const sim::SimResult &r);

/** One idealization experiment: a knob and the component it targets. */
struct IdealizationKnob
{
    std::string label;
    stacks::CpiComponent comp;
    sim::Idealization ideal;
};

/**
 * The four structure idealizations of the paper's validation study
 * (§IV): perfect I$, perfect D$, perfect bpred, 1-cycle ALU.
 */
std::vector<IdealizationKnob> standardKnobs();

/**
 * Everything the Table I / Fig. 2 methodology measures for one
 * (machine, workload) point: the real run plus one idealized run per
 * knob, with the actual CPI reduction, the multi-stage bounds of the
 * targeted component and the §V-A error metric.
 */
struct IdealizationStudy
{
    sim::SimResult real;
    MultiStageStacks stacks;

    struct Entry
    {
        IdealizationKnob knob;
        sim::SimResult idealized;
        /** real.cpi − idealized.cpi (positive = improvement). */
        double actual_reduction = 0.0;
        ComponentBounds bounds;
        double multi_error = 0.0;
    };
    std::vector<Entry> entries;

    /** Merged validation reports of the real and all idealized runs. */
    validate::ValidationReport validation;
};

/**
 * Run the real configuration and every idealization pair of @p knobs as
 * one concurrent batch on @p batch. Results are bit-identical to the
 * serial sequence simulate(real), simulate(knob 0), ... — each job owns
 * its core and a private clone of @p trace. @p progress, when non-null,
 * observes job completions (e.g. runner::Heartbeat).
 */
IdealizationStudy runIdealizationStudy(
    const sim::MachineConfig &machine, const trace::TraceSource &trace,
    std::span<const IdealizationKnob> knobs,
    const sim::SimOptions &options, runner::BatchRunner &batch,
    runner::ProgressObserver *progress = nullptr);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_BOUNDS_HPP
