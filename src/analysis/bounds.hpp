/**
 * @file
 * Multi-stage CPI stack analysis: per-component bounds across the three
 * stage stacks and the error metric of the paper's validation study (§V-A).
 */

#ifndef STACKSCOPE_ANALYSIS_BOUNDS_HPP
#define STACKSCOPE_ANALYSIS_BOUNDS_HPP

#include <array>

#include "stacks/stack.hpp"

namespace stackscope::analysis {

/** The three per-stage CPI stacks of one run (CPI units). */
struct MultiStageStacks
{
    stacks::CpiStack dispatch;
    stacks::CpiStack issue;
    stacks::CpiStack commit;

    const stacks::CpiStack &
    at(stacks::Stage s) const
    {
        switch (s) {
          case stacks::Stage::kDispatch: return dispatch;
          case stacks::Stage::kIssue: return issue;
          default: return commit;
        }
    }
};

/** Lower/upper bound of one component across the three stacks. */
struct ComponentBounds
{
    double lo = 0.0;
    double hi = 0.0;

    bool
    contains(double x) const
    {
        return x >= lo && x <= hi;
    }
};

/** Min/max of @p c over the dispatch, issue and commit stacks. */
ComponentBounds componentBounds(const MultiStageStacks &ms,
                                stacks::CpiComponent c);

/**
 * Error of a single stack's component as a predictor of the actual CPI
 * reduction: predicted − actual (signed, §V-A).
 */
double singleStackError(const stacks::CpiStack &stack,
                        stacks::CpiComponent c, double actual_reduction);

/**
 * Error of the multi-stage representation: 0 when the actual reduction
 * lies within the bounds, otherwise the signed error of the closest
 * single-stack component (§V-A).
 */
double multiStageError(const MultiStageStacks &ms, stacks::CpiComponent c,
                       double actual_reduction);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_BOUNDS_HPP
