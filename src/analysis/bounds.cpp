#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace stackscope::analysis {

ComponentBounds
componentBounds(const MultiStageStacks &ms, stacks::CpiComponent c)
{
    ComponentBounds b;
    b.lo = std::min({ms.dispatch[c], ms.issue[c], ms.commit[c]});
    b.hi = std::max({ms.dispatch[c], ms.issue[c], ms.commit[c]});
    return b;
}

double
singleStackError(const stacks::CpiStack &stack, stacks::CpiComponent c,
                 double actual_reduction)
{
    return stack[c] - actual_reduction;
}

double
multiStageError(const MultiStageStacks &ms, stacks::CpiComponent c,
                double actual_reduction)
{
    const ComponentBounds b = componentBounds(ms, c);
    if (b.contains(actual_reduction))
        return 0.0;
    // Outside the bounds: the signed error of the closest component.
    const double err_lo = b.lo - actual_reduction;
    const double err_hi = b.hi - actual_reduction;
    return std::abs(err_lo) < std::abs(err_hi) ? err_lo : err_hi;
}

}  // namespace stackscope::analysis
