#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace stackscope::analysis {

using stacks::Stage;

ComponentBounds
componentBounds(const MultiStageStacks &ms, stacks::CpiComponent c)
{
    ComponentBounds b;
    b.lo = std::min({ms.dispatch[c], ms.issue[c], ms.commit[c]});
    b.hi = std::max({ms.dispatch[c], ms.issue[c], ms.commit[c]});
    return b;
}

double
singleStackError(const stacks::CpiStack &stack, stacks::CpiComponent c,
                 double actual_reduction)
{
    return stack[c] - actual_reduction;
}

double
multiStageError(const MultiStageStacks &ms, stacks::CpiComponent c,
                double actual_reduction)
{
    const ComponentBounds b = componentBounds(ms, c);
    if (b.contains(actual_reduction))
        return 0.0;
    // Outside the bounds: the signed error of the closest component.
    const double err_lo = b.lo - actual_reduction;
    const double err_hi = b.hi - actual_reduction;
    return std::abs(err_lo) < std::abs(err_hi) ? err_lo : err_hi;
}

MultiStageStacks
multiStageOf(const sim::SimResult &r)
{
    return {r.cpiStack(Stage::kDispatch), r.cpiStack(Stage::kIssue),
            r.cpiStack(Stage::kCommit)};
}

std::vector<IdealizationKnob>
standardKnobs()
{
    using stacks::CpiComponent;
    return {
        {"Icache", CpiComponent::kIcache, {.perfect_icache = true}},
        {"Dcache", CpiComponent::kDcache, {.perfect_dcache = true}},
        {"bpred", CpiComponent::kBpred, {.perfect_bpred = true}},
        {"ALU", CpiComponent::kAluLat, {.single_cycle_alu = true}},
    };
}

IdealizationStudy
runIdealizationStudy(const sim::MachineConfig &machine,
                     const trace::TraceSource &trace,
                     std::span<const IdealizationKnob> knobs,
                     const sim::SimOptions &options,
                     runner::BatchRunner &batch,
                     runner::ProgressObserver *progress)
{
    std::vector<runner::SimJob> jobs;
    jobs.reserve(knobs.size() + 1);
    jobs.push_back(runner::makeJob("real", machine, trace, options));
    for (const IdealizationKnob &k : knobs) {
        jobs.push_back(runner::makeJob(
            k.label, sim::applyIdealization(machine, k.ideal), trace,
            options));
    }
    runner::BatchResult results = batch.run(std::move(jobs), progress);

    IdealizationStudy study;
    study.real = std::move(results.outcomes.front().single);
    study.stacks = multiStageOf(study.real);
    study.validation = std::move(results.validation);
    study.entries.reserve(knobs.size());
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        IdealizationStudy::Entry e;
        e.knob = knobs[i];
        e.idealized = std::move(results.outcomes[i + 1].single);
        e.actual_reduction = study.real.cpi - e.idealized.cpi;
        e.bounds = componentBounds(study.stacks, knobs[i].comp);
        e.multi_error =
            multiStageError(study.stacks, knobs[i].comp, e.actual_reduction);
        study.entries.push_back(std::move(e));
    }
    return study;
}

}  // namespace stackscope::analysis
