/**
 * @file
 * CSV export of stacks and experiment sweeps, so the paper's figures can
 * be re-plotted from the bench binaries' output.
 */

#ifndef STACKSCOPE_ANALYSIS_CSV_HPP
#define STACKSCOPE_ANALYSIS_CSV_HPP

#include <string>
#include <vector>

#include "stacks/stack.hpp"

namespace stackscope::analysis {

/** Header line for CPI stack rows: "label,Base,Icache,...". */
std::string cpiStackCsvHeader(const std::string &label_col = "label");

/** One CSV row for a CPI stack. */
std::string toCsvRow(const std::string &label,
                     const stacks::CpiStack &stack);

/** Header line for FLOPS stack rows. */
std::string flopsStackCsvHeader(const std::string &label_col = "label");

/** One CSV row for a FLOPS stack. */
std::string toCsvRow(const std::string &label,
                     const stacks::FlopsStack &stack);

/** Generic CSV row from label + values. */
std::string toCsvRow(const std::string &label,
                     const std::vector<double> &values);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_CSV_HPP
