/**
 * @file
 * CSV export of stacks and experiment sweeps, so the paper's figures can
 * be re-plotted from the bench binaries' output.
 */

#ifndef STACKSCOPE_ANALYSIS_CSV_HPP
#define STACKSCOPE_ANALYSIS_CSV_HPP

#include <string>
#include <string_view>
#include <vector>

#include "stacks/stack.hpp"

namespace stackscope::analysis {

/**
 * RFC 4180 field encoding: returns @p text unchanged unless it contains a
 * comma, double quote, CR or LF, in which case it is wrapped in double
 * quotes with embedded quotes doubled. Plain fields stay byte-identical,
 * so existing consumers (and byte-comparison CI gates) only see quoting
 * when it is actually needed.
 */
std::string csvField(std::string_view text);

/**
 * Parse one RFC 4180 CSV line (no trailing newline) into its fields,
 * honouring quoted fields with embedded commas and doubled quotes. The
 * inverse of csvField-joined rows.
 */
std::vector<std::string> parseCsvLine(std::string_view line);

/** Header line for CPI stack rows: "label,Base,Icache,...". */
std::string cpiStackCsvHeader(const std::string &label_col = "label");

/** One CSV row for a CPI stack. */
std::string toCsvRow(const std::string &label,
                     const stacks::CpiStack &stack);

/** Header line for FLOPS stack rows. */
std::string flopsStackCsvHeader(const std::string &label_col = "label");

/** One CSV row for a FLOPS stack. */
std::string toCsvRow(const std::string &label,
                     const stacks::FlopsStack &stack);

/** Generic CSV row from label + values. */
std::string toCsvRow(const std::string &label,
                     const std::vector<double> &values);

}  // namespace stackscope::analysis

#endif  // STACKSCOPE_ANALYSIS_CSV_HPP
